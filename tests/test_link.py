"""Tests for the path model."""

import pytest

from repro.net.link import CELLULAR, WIFI, Path, cellular_path, wifi_path
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps


class TestPath:
    def test_bandwidth_follows_trace(self):
        trace = BandwidthTrace.from_samples([100.0, 200.0], 1.0)
        path = Path("wifi", trace, rtt=0.05)
        assert path.bandwidth_at(0.5) == 100.0
        assert path.bandwidth_at(1.5) == 200.0

    def test_throttle_caps_bandwidth(self):
        path = Path("cellular", BandwidthTrace.constant(1000.0), rtt=0.05,
                    throttle=300.0)
        assert path.bandwidth_at(0.0) == 300.0
        assert path.mean_bandwidth() == 300.0

    def test_no_throttle_by_default(self):
        path = Path("cellular", BandwidthTrace.constant(1000.0), rtt=0.05)
        assert path.bandwidth_at(0.0) == 1000.0

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ValueError):
            Path("wifi", BandwidthTrace.constant(1.0), rtt=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Path("wifi", BandwidthTrace.constant(1.0), rtt=0.05, cost=-1.0)

    def test_enabled_by_default(self):
        path = Path("wifi", BandwidthTrace.constant(1.0), rtt=0.05)
        assert path.enabled


class TestBuilders:
    def test_wifi_path_defaults(self):
        path = wifi_path(bandwidth_mbps=3.8)
        assert path.name == WIFI
        assert path.rtt == pytest.approx(0.05)
        assert path.cost == 0.0
        assert path.bandwidth_at(0.0) == pytest.approx(mbps(3.8))

    def test_cellular_path_defaults(self):
        path = cellular_path(bandwidth_mbps=3.0)
        assert path.name == CELLULAR
        assert path.rtt == pytest.approx(0.055)
        assert path.cost == 1.0

    def test_builder_accepts_trace(self):
        trace = BandwidthTrace.constant(500.0)
        path = wifi_path(trace=trace)
        assert path.bandwidth_at(0.0) == 500.0

    def test_builder_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            wifi_path()
        with pytest.raises(ValueError):
            wifi_path(bandwidth_mbps=1.0,
                      trace=BandwidthTrace.constant(1.0))
