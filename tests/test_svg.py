"""Tests for the dependency-free SVG chart renderer."""

import xml.etree.ElementTree as ET

from repro.obs.svg import (SERIES_CLASSES, LaneSegment, Series, StripCell,
                           bar_chart, cdf_chart, flame_lanes, fmt,
                           histogram_chart, legend_html, line_chart,
                           nice_ticks, series_class, stacked_area,
                           strip_chart, tick_label)


def well_formed(svg: str) -> ET.Element:
    """Parse the fragment; raises on malformed markup."""
    return ET.fromstring(svg)


HIST = {"bounds": [0.0, 1.0, 2.0, 4.0], "counts": [2, 5, 1, 0, 1],
        "count": 9, "sum": 11.0, "min": -0.5, "max": 4.5}


class TestFormatting:
    def test_fmt_trims_trailing_zeros(self):
        assert fmt(3.10) == "3.1"
        assert fmt(3.00) == "3"

    def test_fmt_negative_zero_normalized(self):
        assert fmt(-0.001) == "0"

    def test_tick_label_keeps_clean_numbers(self):
        assert tick_label(0.3) == "0.3"
        assert tick_label(250.0) == "250"

    def test_series_class_clamped_never_cycled(self):
        assert series_class(0) == "s1"
        assert series_class(7) == "s8"
        # A 9th series folds into the last slot, never a generated hue.
        assert series_class(8) == "s8"
        assert series_class(100) == SERIES_CLASSES[-1]

    def test_nice_ticks_cover_range(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0
        assert len(ticks) >= 2

    def test_nice_ticks_degenerate_range(self):
        assert nice_ticks(5.0, 5.0)  # hi <= lo widens instead of dying

    def test_nice_ticks_nonfinite(self):
        assert nice_ticks(float("nan"), 1.0) == []


class TestLineChart:
    def test_empty_series_fallback(self):
        svg = line_chart([])
        assert "no samples" in svg
        well_formed(svg)

    def test_series_with_no_points_dropped(self):
        svg = line_chart([Series("empty", []),
                          Series("full", [(0, 1), (1, 2)])])
        assert "full" in svg
        well_formed(svg)

    def test_polyline_per_series_with_classes(self):
        svg = line_chart([Series("a", [(0, 1), (1, 2)]),
                          Series("b", [(0, 2), (1, 1)])])
        assert 'class="line s1"' in svg
        assert 'class="line s2"' in svg
        well_formed(svg)

    def test_step_mode_doubles_points(self):
        plain = line_chart([Series("a", [(0, 1), (1, 2), (2, 1)])])
        step = line_chart([Series("a", [(0, 1), (1, 2), (2, 1)])],
                          step=True)
        assert step.count(",") > plain.count(",")
        well_formed(step)

    def test_shades_and_refs_rendered(self):
        svg = line_chart([Series("a", [(0, 1), (10, 2)])],
                         shades=[(2.0, 4.0, "shade")], refs=(5.0,))
        assert 'class="shade"' in svg
        assert 'class="refline"' in svg
        well_formed(svg)

    def test_out_of_range_ref_skipped(self):
        svg = line_chart([Series("a", [(0, 1), (10, 2)])], refs=(99.0,))
        assert "refline" not in svg

    def test_markers_emit_dots(self):
        svg = line_chart([Series("a", [(0, 1), (1, 2)])], markers=True)
        assert 'class="dot s1"' in svg
        well_formed(svg)

    def test_flat_series_does_not_divide_by_zero(self):
        well_formed(line_chart([Series("a", [(0, 5.0), (1, 5.0)])]))


class TestStackedArea:
    def test_empty_fallback(self):
        assert "no samples" in stacked_area([])

    def test_polygon_per_series(self):
        svg = stacked_area([Series("a", [(0, 1), (1, 1)]),
                            Series("b", [(0, 2), (1, 2)])])
        assert svg.count("<polygon") == 2
        well_formed(svg)


class TestBarChart:
    def test_mismatched_lengths_fallback(self):
        assert "no data" in bar_chart(["a", "b"], [1.0])

    def test_one_bar_per_category(self):
        svg = bar_chart(["x", "y", "z"], [1.0, 2.0, 3.0])
        assert svg.count('class="fill') == 3
        assert 'class="fill s3"' in svg  # fixed order, per category
        well_formed(svg)

    def test_value_labels_formatted(self):
        svg = bar_chart(["x"], [1234.5], value_format="{:.1f}")
        assert "1234.5" in svg


class TestHistogramAndCdf:
    def test_histogram_empty_fallback(self):
        assert "no observations" in histogram_chart({"bounds": [],
                                                     "counts": []})
        assert "no observations" in histogram_chart(
            {"bounds": [1.0], "counts": [0, 0]})

    def test_histogram_draws_occupied_buckets_only(self):
        svg = histogram_chart(HIST)
        assert svg.count("<rect") == 4  # zero bucket skipped
        well_formed(svg)

    def test_histogram_ref_line(self):
        svg = histogram_chart(HIST, refs=(1.0,))
        assert "refline" in svg

    def test_cdf_reaches_one(self):
        svg = cdf_chart(HIST)
        assert 'class="line s1"' in svg
        well_formed(svg)

    def test_cdf_custom_css(self):
        assert 'class="line s2"' in cdf_chart(HIST, css="s2")

    def test_cdf_empty_fallback(self):
        assert "no observations" in cdf_chart({"bounds": [], "counts": []})


class TestStripChart:
    def test_empty_fallback(self):
        assert "no chunks" in strip_chart([])
        assert "no chunks" in strip_chart(
            [StripCell(1.0, 1.0, 0.5, 0.0, "lvl0")])  # zero width

    def test_bar_and_overlay(self):
        svg = strip_chart([
            StripCell(0.0, 2.0, 1.0, 0.5, "lvl4", label="chunk 0"),
            StripCell(2.0, 4.0, 0.4, 0.0, "lvl1")])
        assert 'class="fill lvl4"' in svg
        assert 'class="fill lvl1"' in svg
        assert svg.count('class="overlay"') == 1  # only the cellular cell
        assert "chunk 0" in svg
        well_formed(svg)


class TestFlameLanes:
    def test_empty_fallback(self):
        assert "no intervals" in flame_lanes([])
        assert "no intervals" in flame_lanes([("wifi", [])])

    def test_lane_labels_and_segments(self):
        svg = flame_lanes([
            ("wifi", [LaneSegment(0.0, 2.0, "radio-active", "active")]),
            ("lte", [LaneSegment(1.0, 3.0, "radio-tail")])])
        assert "wifi" in svg and "lte" in svg
        assert 'class="fill radio-active"' in svg
        well_formed(svg)

    def test_explicit_window_clips_segments(self):
        svg = flame_lanes(
            [("a", [LaneSegment(-5.0, 50.0, "s1")])], x_min=0.0,
            x_max=10.0)
        well_formed(svg)

    def test_height_scales_with_lanes(self):
        one = flame_lanes([("a", [LaneSegment(0, 1, "s1")])])
        three = flame_lanes([
            (name, [LaneSegment(0, 1, "s1")]) for name in "abc"])
        height = lambda svg: int(well_formed(svg).get("height"))
        assert height(three) > height(one)


class TestLegend:
    def test_keys_and_swatches(self):
        html = legend_html([("s1", "wifi"), ("s2", "lte")])
        assert html.count('class="key"') == 2
        assert 'class="sw s1"' in html
        well_formed(html)

    def test_escapes_text(self):
        assert "&lt;b&gt;" in legend_html([("s1", "<b>")])


class TestDeterminism:
    def test_rendering_is_pure(self):
        chart = lambda: line_chart(
            [Series("a", [(i * 0.1, i ** 1.5) for i in range(50)])],
            markers=True, shades=[(1.0, 2.0, "shade")], refs=(3.0,))
        assert chart() == chart()
