"""Tests for the trace-driven scheduling simulator (§7.2.2 / Table 2)."""

import pytest

from repro.core.tracesim import simulate_online, simulate_oracle
from repro.estimators import Ewma
from repro.net.units import mbps, megabytes

SLOT = 0.05


def constant(rate_mbps, slots=2000):
    return [mbps(rate_mbps)] * slots


class TestValidation:
    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            simulate_online(constant(1), constant(1), SLOT, 1e6, 10.0,
                            alpha=0.0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            simulate_online(constant(1), constant(1), 0.0, 1e6, 10.0)
        with pytest.raises(ValueError):
            simulate_online(constant(1), constant(1), SLOT, -1.0, 10.0)
        with pytest.raises(ValueError):
            simulate_oracle(constant(1), constant(1), SLOT, 1e6, 0.0)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            simulate_online([], constant(1), SLOT, 1e6, 10.0)


class TestOnline:
    def test_no_cellular_when_wifi_sufficient(self):
        result = simulate_online(constant(8.0), constant(8.0), SLOT,
                                 megabytes(5), 10.0)
        assert result.bytes_per_path["cellular"] == 0.0
        assert not result.missed
        assert result.finish_time <= 10.0

    def test_cellular_fills_the_gap(self):
        # 5 MB in 8s needs 5 Mbps; WiFi gives 3.8.
        result = simulate_online(constant(3.8), constant(3.0), SLOT,
                                 megabytes(5), 8.0)
        assert result.bytes_per_path["cellular"] > 0
        assert not result.missed
        assert result.finish_time <= 8.0 + SLOT

    def test_total_bytes_equal_size(self):
        result = simulate_online(constant(3.8), constant(3.0), SLOT,
                                 megabytes(5), 8.0)
        assert result.total_bytes == pytest.approx(megabytes(5), rel=1e-9)

    def test_longer_deadline_less_cellular(self):
        shares = {}
        for deadline in (8.0, 9.0, 10.0):
            result = simulate_online(constant(3.8), constant(3.0), SLOT,
                                     megabytes(5), deadline)
            shares[deadline] = result.fraction_on("cellular")
        assert shares[8.0] > shares[9.0] > shares[10.0]

    def test_infeasible_deadline_missed_then_finishes(self):
        result = simulate_online(constant(1.0), constant(1.0), SLOT,
                                 megabytes(5), 2.0)
        assert result.missed
        assert result.miss_by > 0
        assert result.total_bytes == pytest.approx(megabytes(5))

    def test_custom_estimator_accepted(self):
        result = simulate_online(constant(3.8), constant(3.0), SLOT,
                                 megabytes(5), 8.0,
                                 estimator_factory=lambda: Ewma(0.5))
        assert not result.missed

    def test_smaller_alpha_uses_more_cellular(self):
        tight = simulate_online(constant(3.8), constant(3.0), SLOT,
                                megabytes(5), 10.0, alpha=0.8)
        loose = simulate_online(constant(3.8), constant(3.0), SLOT,
                                megabytes(5), 10.0, alpha=1.0)
        assert tight.bytes_per_path["cellular"] >= \
            loose.bytes_per_path["cellular"]


class TestOracle:
    def test_oracle_meets_feasible_deadline(self):
        result = simulate_oracle(constant(3.8), constant(3.0), SLOT,
                                 megabytes(5), 8.0)
        assert not result.missed
        assert result.finish_time <= 8.0 + SLOT

    def test_oracle_never_worse_than_online_on_constant_traces(self):
        for deadline in (8.0, 9.0, 10.0):
            oracle = simulate_oracle(constant(3.8), constant(3.0), SLOT,
                                     megabytes(5), deadline)
            online = simulate_online(constant(3.8), constant(3.0), SLOT,
                                     megabytes(5), deadline)
            assert oracle.bytes_per_path["cellular"] <= \
                online.bytes_per_path["cellular"] + 1.0

    def test_oracle_matches_fluid_optimum_on_constant_traces(self):
        # Deficit = S - wifi_capacity(D): 5 MB - 3.8 Mbps * 8s = 1.2 MB.
        result = simulate_oracle(constant(3.8), constant(3.0), SLOT,
                                 megabytes(5), 8.0)
        deficit = megabytes(5) - mbps(3.8) * 8.0
        assert result.bytes_per_path["cellular"] == pytest.approx(
            deficit, rel=0.05)

    def test_oracle_no_cellular_when_not_needed(self):
        result = simulate_oracle(constant(8.0), constant(8.0), SLOT,
                                 megabytes(5), 10.0)
        assert result.bytes_per_path["cellular"] == 0.0

    def test_oracle_on_fluctuating_trace_still_meets_deadline(self):
        import numpy as np
        rng = np.random.default_rng(3)
        wifi = list(rng.uniform(mbps(2.0), mbps(6.0), 400))
        cell = list(rng.uniform(mbps(2.0), mbps(4.0), 400))
        result = simulate_oracle(wifi, cell, SLOT, megabytes(5), 9.0)
        assert not result.missed
