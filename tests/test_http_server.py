"""Tests for the HTTP layer and the DASH server."""

import pytest

from repro.dash.http import HttpClient
from repro.dash.media import VideoAsset
from repro.dash.server import DashServer
from repro.mptcp.connection import MptcpConnection
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator


@pytest.fixture
def server():
    server = DashServer()
    server.host(VideoAsset.generate("movie", 4.0, 40.0, [1.0, 2.0],
                                    seed=0))
    return server


class TestServer:
    def test_resolve_known_chunk(self, server):
        size = server.resolve("/movie/level0/chunk3")
        assert size is not None and size > 0

    def test_resolve_unknown_video(self, server):
        assert server.resolve("/other/level0/chunk0") is None

    def test_resolve_out_of_range(self, server):
        assert server.resolve("/movie/level5/chunk0") is None
        assert server.resolve("/movie/level0/chunk999") is None

    def test_resolve_malformed_path(self, server):
        assert server.resolve("not-a-chunk") is None
        assert server.resolve("/movie/level0/") is None

    def test_manifest_matches_asset(self, server):
        manifest = server.manifest("movie")
        assert manifest.num_chunks == 10
        assert manifest.num_levels == 2

    def test_manifest_unknown_video_rejected(self, server):
        with pytest.raises(KeyError):
            server.manifest("ghost")

    def test_duplicate_hosting_rejected(self, server):
        with pytest.raises(ValueError):
            server.host(VideoAsset.generate("movie", 4.0, 8.0, [1.0],
                                            seed=0))

    def test_hosted_listing(self, server):
        assert server.hosted() == ["movie"]


class TestHttpClient:
    def make_client(self, server):
        sim = Simulator()
        conn = MptcpConnection(sim, [wifi_path(bandwidth_mbps=8.0),
                                     cellular_path(bandwidth_mbps=8.0)])
        return sim, conn, HttpClient(conn, server.resolve)

    def test_get_delivers_body(self, server):
        sim, _conn, client = self.make_client(server)
        responses = []
        client.get("/movie/level0/chunk0", responses.append)
        sim.run(until=30.0)
        assert len(responses) == 1
        response = responses[0]
        assert response.ok
        assert response.transfer.complete
        assert response.transfer.total_bytes == response.content_length

    def test_content_length_matches_server(self, server):
        sim, _conn, client = self.make_client(server)
        responses = []
        client.get("/movie/level1/chunk2", responses.append)
        sim.run(until=30.0)
        assert responses[0].content_length == int(round(
            server.resolve("/movie/level1/chunk2")))

    def test_missing_resource_404s_immediately(self, server):
        sim, _conn, client = self.make_client(server)
        responses = []
        client.get("/nope", responses.append)
        assert len(responses) == 1
        assert responses[0].status == 404
        assert not responses[0].ok
        assert responses[0].transfer is None

    def test_before_transfer_sees_content_length_first(self, server):
        sim, _conn, client = self.make_client(server)
        order = []

        def before(response):
            order.append(("before", response.content_length,
                          response.transfer))

        def after(response):
            order.append(("after", response.content_length))

        client.get("/movie/level0/chunk0", after, before)
        sim.run(until=30.0)
        assert order[0][0] == "before"
        assert order[0][1] > 0
        assert order[0][2] is None  # transfer not yet issued
        assert order[1][0] == "after"

    def test_requests_counted(self, server):
        sim, _conn, client = self.make_client(server)
        client.get("/movie/level0/chunk0", lambda r: None)
        client.get("/nope", lambda r: None)
        assert client.requests_sent == 2
