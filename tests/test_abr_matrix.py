"""Smoke matrix: every ABR under every scheme completes cleanly.

Broad-but-shallow coverage that every registered rate-adaptation algorithm
composes with the MP-DASH adapter under both deadline modes, on both a
comfortable and a constrained network, without stalls, deadline misses, or
byte-accounting drift.
"""

import pytest

from repro.abr import abr_names
from repro.experiments import SCHEMES, SessionConfig, run_session

CONDITIONS = [("comfortable", 6.0, 4.0), ("constrained", 2.2, 1.2)]


@pytest.mark.parametrize("abr", abr_names())
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("label,wifi,lte", CONDITIONS)
def test_abr_scheme_matrix(abr, scheme, label, wifi, lte):
    config = SessionConfig(video="big_buck_bunny", abr=abr,
                           wifi_mbps=wifi, lte_mbps=lte,
                           video_duration=60.0).with_scheme(scheme)
    result = run_session(config)
    assert result.finished, (abr, scheme, label)
    assert result.metrics.stall_count == 0, (abr, scheme, label)
    # Byte conservation between player and transport.
    chunk_total = sum(c.size for c in result.player.log.chunks)
    transport_total = sum(sf.total_bytes for sf in result.connection.subflows)
    assert transport_total == pytest.approx(chunk_total, rel=1e-3)
    # No MP-DASH deadline misses anywhere in the matrix.
    stats = result.scheduler_stats
    if stats:
        assert stats["deadline_misses"] == 0, (abr, scheme, label)
