"""Tests for the packet-granularity transport and fluid cross-validation."""

import pytest

from repro.experiments import FileDownloadConfig, run_file_download
from repro.mptcp.packet_level import (PacketLevelDownload,
                                      run_packet_download)
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.units import mbps, megabytes


def paths(wifi=3.8, lte=3.0):
    return [wifi_path(bandwidth_mbps=wifi), cellular_path(bandwidth_mbps=lte)]


class TestPacketModel:
    def test_bulk_download_completes(self):
        result = run_packet_download(paths(), megabytes(2))
        assert result.total_bytes >= megabytes(2) * 0.999

    def test_throughput_close_to_capacity(self):
        """A 5 MB bulk download over 6.8 Mbps combined should take roughly
        6-8 s (ideal 5.9 s; packet effects cost some)."""
        result = run_packet_download(paths(), megabytes(5))
        assert 5.5 <= result.duration <= 9.0

    def test_single_path(self):
        result = run_packet_download([wifi_path(bandwidth_mbps=4.0)],
                                     megabytes(2))
        assert result.fraction_on("wifi") == 1.0

    def test_drops_occur_and_are_recovered(self):
        result = run_packet_download(paths(), megabytes(5))
        assert sum(result.drops.values()) > 0
        assert result.total_bytes >= megabytes(5) * 0.999

    def test_deadline_met_with_algorithm1(self):
        result = run_packet_download(paths(), megabytes(5), deadline=10.0)
        assert not result.missed_deadline
        assert result.duration <= 10.0

    def test_deadline_reduces_cellular(self):
        bounded = run_packet_download(paths(), megabytes(5), deadline=10.0)
        bulk = run_packet_download(paths(), megabytes(5))
        assert bounded.bytes_per_path["cellular"] < \
            0.5 * bulk.bytes_per_path["cellular"]

    def test_longer_deadline_less_cellular(self):
        tight = run_packet_download(paths(), megabytes(5), deadline=8.0)
        loose = run_packet_download(paths(), megabytes(5), deadline=10.0)
        assert loose.bytes_per_path["cellular"] <= \
            tight.bytes_per_path["cellular"] + 50e3

    def test_impossible_deadline_missed_then_finishes(self):
        result = run_packet_download(paths(1.0, 1.0), megabytes(5),
                                     deadline=2.0)
        assert result.missed_deadline
        assert result.total_bytes >= megabytes(5) * 0.999

    def test_validation_errors(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PacketLevelDownload(sim, paths(), 0)
        with pytest.raises(ValueError):
            PacketLevelDownload(sim, [], megabytes(1))
        with pytest.raises(ValueError):
            PacketLevelDownload(sim, paths(), megabytes(1), deadline=0.0)
        with pytest.raises(ValueError):
            PacketLevelDownload(sim, paths(), megabytes(1), alpha=0.0)

    def test_result_before_finish_rejected(self):
        sim = Simulator()
        download = PacketLevelDownload(sim, paths(), megabytes(1))
        with pytest.raises(RuntimeError):
            download.result()


class TestCrossValidation:
    """The packet model confirms the fluid model's headline quantities."""

    def test_bulk_path_split_agrees(self):
        pkt = run_packet_download(paths(), megabytes(5))
        fluid = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, mpdash=False,
            wifi_mbps=3.8, lte_mbps=3.0))
        assert pkt.fraction_on("cellular") == pytest.approx(
            fluid.cellular_fraction, abs=0.05)

    def test_bulk_duration_agrees_within_packet_overheads(self):
        pkt = run_packet_download(paths(), megabytes(5))
        fluid = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, mpdash=False,
            wifi_mbps=3.8, lte_mbps=3.0))
        # The fluid model is loss-free and therefore a lower bound; packet
        # effects (slow-start overshoot, drops) cost up to ~1/3 extra.
        assert fluid.duration <= pkt.duration <= fluid.duration * 1.35

    def test_deadline_behaviour_agrees(self):
        for deadline in (8.0, 10.0):
            pkt = run_packet_download(paths(), megabytes(5),
                                      deadline=deadline)
            fluid = run_file_download(FileDownloadConfig(
                size=megabytes(5), deadline=deadline,
                wifi_mbps=3.8, lte_mbps=3.0))
            assert pkt.missed_deadline == fluid.missed_deadline
            # Both save heavily vs the ~2.2 MB unscheduled cellular share;
            # the packet model's noisier ACK-clocked estimate is more
            # conservative, so allow it up to ~3x the fluid bytes plus
            # slack.
            assert pkt.bytes_per_path["cellular"] <= \
                3.0 * fluid.cellular_bytes + 0.4e6

    def test_plentiful_wifi_no_cellular_in_both(self):
        pkt = run_packet_download(paths(20.0, 10.0), megabytes(5),
                                  deadline=10.0)
        fluid = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, wifi_mbps=20.0,
            lte_mbps=10.0))
        # The packet model's ACK-clocked estimate starts slow-start-low, so
        # it conservatively taps cellular for a few hundred KB before the
        # WiFi estimate warms; both end far below the unscheduled ~33%.
        assert pkt.fraction_on("cellular") < 0.12
        assert fluid.cellular_fraction < 0.05
