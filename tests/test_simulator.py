"""Tests for the discrete-event kernel."""

import pytest

from repro.net.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "latest")
        sim.run()
        assert fired == ["early", "late", "latest"]

    def test_ties_break_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_zero_delay_event_fires_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(0.0,
                                               lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["b"]
        assert sim.now == 5.0

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.run(until=3.0)
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()


class TestPeriodicProcess:
    def test_fires_every_interval(self):
        sim = Simulator()
        times = []
        sim.call_every(1.0, lambda: times.append(sim.now))
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        times = []
        proc = sim.call_every(1.0, lambda: times.append(sim.now))
        sim.run(until=2.5)
        proc.stop()
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not proc.active

    def test_callback_may_stop_its_own_process(self):
        sim = Simulator()
        times = []

        def tick():
            times.append(sim.now)
            if len(times) == 2:
                proc.stop()

        proc = sim.call_every(1.0, tick)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_restart_after_stop(self):
        sim = Simulator()
        times = []
        proc = sim.call_every(1.0, lambda: times.append(sim.now))
        sim.run(until=1.5)
        proc.stop()
        sim.run(until=5.0)
        proc.start()
        sim.run(until=6.5)
        assert times == [1.0, 6.0]

    def test_non_positive_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)


class TestHeapCompaction:
    def test_queue_stays_bounded_under_schedule_cancel_cycles(self):
        """Timeouts that almost never fire (the schedule/cancel pattern)
        must not grow the heap without bound."""
        sim = Simulator()
        keeper = sim.schedule(1e9, lambda: None)
        for _ in range(10_000):
            sim.schedule(1e6, lambda: None).cancel()
        assert sim.pending_events() == 1
        assert len(sim._heap) < 200
        keeper.cancel()

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        events = [sim.schedule(float(i), fired.append, i)
                  for i in range(200)]
        # Cancel most of the early ones to force a compaction.
        for event in events[:150]:
            if event.time % 2 == 0:
                event.cancel()
        for _ in range(500):
            sim.schedule(1e6, lambda: None).cancel()
        sim.run(until=300.0)
        expected = [i for i in range(200) if not (i < 150 and i % 2 == 0)]
        assert fired == expected

    def test_pending_events_is_exact(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None)
                  for i in range(10)]
        assert sim.pending_events() == 10
        events[3].cancel()
        events[7].cancel()
        events[7].cancel()  # double-cancel must not double-count
        assert sim.pending_events() == 8
        sim.run()
        assert sim.pending_events() == 0

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()  # already fired; must be a no-op
        assert sim.pending_events() == 1

    def test_explicit_compact_is_idempotent(self):
        sim = Simulator()
        live = sim.schedule(5.0, lambda: None)
        for _ in range(10):
            sim.schedule(1.0, lambda: None).cancel()
        sim.compact()
        sim.compact()
        assert len(sim._heap) == 1
        assert sim.pending_events() == 1
        assert sim._heap[0] is live
