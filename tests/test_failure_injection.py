"""Failure injection: blackouts, dead paths, pathological configurations.

The paper's robustness story (§5.1) is that MP-DASH steps aside — low
buffer disables the scheduler, a passed deadline re-opens every path — so
adversity degrades QoE gracefully instead of deadlocking.  These tests
drive those paths explicitly.
"""

import pytest

from repro.experiments import (FileDownloadConfig, SessionConfig,
                               run_file_download, run_session)
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps, megabytes


def blackout_trace(rate_mbps, start, end, horizon=700.0):
    base = BandwidthTrace.constant(mbps(rate_mbps))
    base.duration = horizon
    return BandwidthTrace.with_dropouts(base, [(start, end)],
                                        floor_bytes_per_s=mbps(0.05))


class TestWifiBlackout:
    def test_session_survives_mid_stream_blackout(self):
        """WiFi dies for 30 s mid-session; LTE carries the stream."""
        config = SessionConfig(
            video="big_buck_bunny", abr="festive", mpdash=True,
            deadline_mode="rate",
            wifi_trace=blackout_trace(3.8, 60.0, 90.0),
            lte_trace=BandwidthTrace.constant(mbps(4.0)),
            wifi_mbps=None, lte_mbps=None, video_duration=180.0)
        result = run_session(config)
        assert result.finished
        assert result.metrics.stall_count == 0
        # The blackout forced real cellular usage.
        assert result.metrics.cellular_bytes > megabytes(5)

    def test_blackout_cellular_concentrated_in_window(self):
        config = SessionConfig(
            video="big_buck_bunny", abr="festive", mpdash=True,
            deadline_mode="rate",
            wifi_trace=blackout_trace(4.5, 60.0, 90.0),
            lte_trace=BandwidthTrace.constant(mbps(4.0)),
            wifi_mbps=None, lte_mbps=None, video_duration=180.0)
        result = run_session(config)
        activity = result.connection.activity
        during = activity.bytes_between("cellular", 55.0, 100.0)
        total = activity.total_bytes("cellular")
        assert total > 0
        assert during / total > 0.6

    def test_scheduler_reenables_wifi_after_recovery(self):
        config = SessionConfig(
            video="big_buck_bunny", abr="festive", mpdash=True,
            deadline_mode="rate",
            wifi_trace=blackout_trace(4.5, 40.0, 60.0),
            lte_trace=BandwidthTrace.constant(mbps(4.0)),
            wifi_mbps=None, lte_mbps=None, video_duration=180.0)
        result = run_session(config)
        activity = result.connection.activity
        # WiFi carries traffic again well after the blackout.
        late_wifi = activity.bytes_between("wifi", 100.0, 180.0)
        late_cell = activity.bytes_between("cellular", 100.0, 180.0)
        assert late_wifi > 3 * late_cell


class TestDegenerateNetworks:
    def test_dead_cellular_path(self):
        """A cellular path with (almost) no bandwidth: MP-DASH cannot make
        deadlines with it, but nothing hangs and WiFi still streams."""
        config = SessionConfig(
            video="big_buck_bunny", abr="gpac", mpdash=True,
            deadline_mode="rate", wifi_mbps=5.0, lte_mbps=0.01,
            video_duration=120.0)
        result = run_session(config)
        assert result.finished
        assert result.metrics.stall_count == 0

    def test_both_paths_starved_stalls_but_terminates(self):
        config = SessionConfig(
            video="big_buck_bunny", abr="gpac", mpdash=True,
            deadline_mode="rate", wifi_mbps=0.3, lte_mbps=0.2,
            video_duration=60.0, max_sim_time=400.0)
        result = run_session(config)
        # The lowest level (0.58 Mbps) exceeds capacity: stalls happen,
        # the run still terminates at the cap or completion.
        assert result.session_duration <= 401.0
        assert result.metrics.stall_count >= 1 or not result.finished

    def test_deadline_miss_recovery_in_download(self):
        """An impossible deadline is missed once, after which the transfer
        finishes on all paths (condition 2 of §3.2)."""
        result = run_file_download(FileDownloadConfig(
            size=megabytes(10), deadline=1.0, wifi_mbps=2.0, lte_mbps=2.0))
        assert result.missed_deadline
        assert result.total_bytes >= megabytes(10) * 0.99
        # After deactivation both paths were used.
        assert result.bytes_per_path["cellular"] > 0

    def test_extremely_short_video(self):
        config = SessionConfig(video="big_buck_bunny", abr="festive",
                               mpdash=True, wifi_mbps=8.0, lte_mbps=8.0,
                               video_duration=8.0, buffer_capacity=16.0)
        result = run_session(config)
        assert result.finished
        assert len(result.player.log.chunks) == 2

    def test_tiny_buffer_capacity(self):
        config = SessionConfig(video="big_buck_bunny", abr="gpac",
                               mpdash=True, wifi_mbps=8.0, lte_mbps=8.0,
                               buffer_capacity=8.0, video_duration=60.0)
        result = run_session(config)
        assert result.finished
        assert result.metrics.stall_count == 0


class TestSchedulerRobustness:
    def test_flapping_wifi_no_deadline_misses(self):
        """WiFi alternating hard every 5 s: the scheduler flaps cellular
        but keeps every chunk on time."""
        pattern = ([mbps(6.0)] * 10 + [mbps(1.0)] * 10) * 40
        wifi = BandwidthTrace.from_samples(pattern, 0.5)
        config = SessionConfig(
            video="big_buck_bunny", abr="festive", mpdash=True,
            deadline_mode="rate", wifi_trace=wifi,
            lte_trace=BandwidthTrace.constant(mbps(4.0)),
            wifi_mbps=None, lte_mbps=None, video_duration=200.0)
        result = run_session(config)
        assert result.finished
        assert result.metrics.stall_count == 0
        assert result.scheduler_stats["deadline_misses"] == 0

    def test_alpha_extremes(self):
        for alpha in (0.05, 1.0):
            result = run_file_download(FileDownloadConfig(
                size=megabytes(5), deadline=10.0, alpha=alpha,
                wifi_mbps=3.8, lte_mbps=3.0))
            assert not result.missed_deadline, alpha
