"""Tests for the parallel, cached, fault-tolerant sweep engine."""

import json
import os
import signal
import time

import pytest

from repro.experiments import (FileDownloadConfig, SessionConfig, run_schemes,
                               run_session)
from repro.experiments.sweep import (FAILED_ERROR, FAILED_TIMEOUT,
                                     DownloadSummary, ResultCache,
                                     SessionSummary, config_key,
                                     default_runner, expand_grid, run_sweep,
                                     summarize_session, summary_from_dict)
from repro.experiments.tables import sweep_table
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps
from repro.obs import (EventBus, SweepCompleted, SweepRunFailed,
                       SweepRunFinished, SweepRunStarted, SweepStarted)


def short_config(**overrides):
    defaults = dict(video_duration=20.0, wifi_mbps=8.0, lte_mbps=8.0)
    defaults.update(overrides)
    return SessionConfig(**defaults)


# Module-level runners so the process pool can pickle them by reference.
def crash_runner(config):
    raise RuntimeError("injected crash")


def sleepy_runner(config):
    time.sleep(10.0)
    return default_runner(config)


def crash_on_slow_wifi(config):
    if config.wifi_mbps < 5.0:
        raise ValueError("boom")
    return default_runner(config)


class TestConfigKey:
    def test_equal_configs_equal_keys(self):
        assert config_key(short_config()) == config_key(short_config())

    def test_any_field_changes_the_key(self):
        base = config_key(short_config())
        assert config_key(short_config(alpha=0.9)) != base
        assert config_key(short_config(abr="gpac")) != base
        assert config_key(short_config(mpdash=True)) != base

    def test_kind_is_part_of_the_key(self):
        session = config_key(short_config())
        download = config_key(FileDownloadConfig(size=1e6, deadline=10.0))
        assert session != download

    def test_trace_configs_are_hashable(self):
        trace = BandwidthTrace.from_samples([mbps(4.0), mbps(6.0)], 0.5)
        one = config_key(short_config(wifi_mbps=None, wifi_trace=trace))
        same = BandwidthTrace.from_samples([mbps(4.0), mbps(6.0)], 0.5)
        other = BandwidthTrace.from_samples([mbps(4.0), mbps(7.0)], 0.5)
        assert one == config_key(short_config(wifi_mbps=None,
                                              wifi_trace=same))
        assert one != config_key(short_config(wifi_mbps=None,
                                              wifi_trace=other))


class TestExpandGrid:
    def test_cartesian_product(self):
        configs = expand_grid(short_config(),
                              {"wifi_mbps": [2.0, 4.0],
                               "alpha": [0.8, 1.0]})
        assert len(configs) == 4
        assert [(c.wifi_mbps, c.alpha) for c in configs] == [
            (2.0, 0.8), (2.0, 1.0), (4.0, 0.8), (4.0, 1.0)]

    def test_scheme_axis_routes_through_with_scheme(self):
        configs = expand_grid(short_config(),
                              {"scheme": ["baseline", "rate"]})
        assert [c.mpdash for c in configs] == [False, True]
        assert configs[1].deadline_mode == "rate"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            expand_grid(short_config(), {"wombat": [1]})

    def test_empty_grid_is_the_base(self):
        base = short_config()
        assert expand_grid(base, {}) == [base]


class TestSummaries:
    def test_session_summary_round_trip(self):
        result = run_session(short_config())
        summary = summarize_session(result)
        payload = json.loads(json.dumps(summary.to_dict()))
        again = summary_from_dict(payload)
        assert isinstance(again, SessionSummary)
        assert again == summary
        assert again.metrics.cellular_bytes == result.metrics.cellular_bytes

    def test_download_summary_round_trip(self):
        summary = DownloadSummary(config_key="k", duration=3.0,
                                  bytes_per_path={"wifi": 5e6,
                                                  "cellular": 1e6},
                                  missed_deadline=False, radio_energy=12.0)
        again = summary_from_dict(json.loads(json.dumps(summary.to_dict())))
        assert again == summary
        assert again.cellular_fraction == pytest.approx(1.0 / 6.0)


class TestSerialSweep:
    def test_matches_direct_runs(self):
        configs = [short_config(), short_config(mpdash=True)]
        sweep = run_sweep(configs)
        assert sweep.ok and len(sweep) == 2
        for config, run in zip(configs, sweep.runs):
            direct = run_session(config)
            assert run.summary.metrics == direct.metrics
            assert run.summary.finished == direct.finished

    def test_download_configs_use_the_download_runner(self):
        sweep = run_sweep([FileDownloadConfig(size=2e6, deadline=8.0,
                                              wifi_mbps=4.0, lte_mbps=4.0)])
        assert sweep.ok
        assert isinstance(sweep.runs[0].summary, DownloadSummary)
        assert not sweep.runs[0].summary.missed_deadline

    def test_lifecycle_events_published(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        run_sweep([short_config()], bus=bus)
        kinds = [type(e).__name__ for e in seen]
        assert kinds == ["SweepStarted", "SweepRunStarted",
                        "SweepRunFinished", "SweepRunSummarized",
                        "SweepCompleted"]
        assert seen[0].total == 1
        assert seen[-1].succeeded == 1
        assert seen[-1].failed == 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_sweep([], jobs=0)
        with pytest.raises(ValueError):
            run_sweep([], retries=-1)
        with pytest.raises(ValueError):
            run_sweep([], timeout=0.0)


class TestParallelSweep:
    def test_pool_matches_serial(self):
        configs = expand_grid(short_config(),
                              {"scheme": ["baseline", "rate"],
                               "wifi_mbps": [6.0, 8.0]})
        serial = run_sweep(configs, jobs=1)
        pooled = run_sweep(configs, jobs=2)
        assert pooled.ok and pooled.jobs == 2
        for a, b in zip(serial.runs, pooled.runs):
            assert a.config_key == b.config_key
            assert a.summary.metrics == b.summary.metrics


class TestCaching:
    def test_rerun_serves_from_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        configs = [short_config(), short_config(mpdash=True)]
        first = run_sweep(configs, cache_dir=cache_dir)
        assert first.cache_hits == 0
        second = run_sweep(configs, cache_dir=cache_dir)
        assert second.cache_hits == 2
        assert all(run.cached for run in second.runs)
        for a, b in zip(first.runs, second.runs):
            assert a.summary == b.summary

    def test_cache_is_shared_across_job_counts(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        configs = [short_config(wifi_mbps=w) for w in (6.0, 7.0, 8.0)]
        run_sweep(configs, jobs=2, cache_dir=cache_dir)
        again = run_sweep(configs, jobs=1, cache_dir=cache_dir)
        assert again.cache_hits == 3

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = short_config()
        run_sweep([config], cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        with open(cache.path(config_key(config)), "w") as handle:
            handle.write("{not json")
        sweep = run_sweep([config], cache_dir=cache_dir)
        assert sweep.ok
        assert sweep.cache_hits == 0
        # The rerun healed the artifact.
        assert cache.load(config_key(config)) is not None

    def test_failures_are_never_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_sweep([short_config()], cache_dir=cache_dir,
                          runner=crash_runner)
        assert not first.ok
        second = run_sweep([short_config()], cache_dir=cache_dir,
                           runner=crash_runner)
        assert second.cache_hits == 0
        assert not second.ok


class TestFaultIsolation:
    def test_injected_crash_yields_run_failure(self):
        sweep = run_sweep([short_config()], runner=crash_runner)
        assert len(sweep) == 1
        failure = sweep.runs[0].failure
        assert failure is not None
        assert failure.kind == FAILED_ERROR
        assert "injected crash" in failure.error
        assert failure.attempts == 1
        assert not sweep.ok

    def test_retries_are_bounded(self):
        sweep = run_sweep([short_config()], runner=crash_runner, retries=2)
        assert sweep.runs[0].failure.attempts == 3

    def test_crash_in_pool_does_not_abort_the_sweep(self):
        configs = [short_config(wifi_mbps=2.0), short_config(wifi_mbps=8.0)]
        sweep = run_sweep(configs, jobs=2, runner=crash_on_slow_wifi)
        assert len(sweep) == 2
        assert sweep.runs[0].failure is not None
        assert "boom" in sweep.runs[0].failure.error
        assert sweep.runs[1].ok

    def test_timeout_yields_run_failure(self):
        start = time.perf_counter()
        sweep = run_sweep([short_config()], timeout=0.3,
                          runner=sleepy_runner)
        elapsed = time.perf_counter() - start
        failure = sweep.runs[0].failure
        assert failure is not None
        assert failure.kind == FAILED_TIMEOUT
        assert elapsed < 5.0

    def test_timeout_in_pool(self):
        sweep = run_sweep([short_config()], jobs=2, timeout=0.3,
                          runner=sleepy_runner)
        assert sweep.runs[0].failure is not None
        assert sweep.runs[0].failure.kind == FAILED_TIMEOUT

    def test_failed_events_published(self):
        bus = EventBus()
        failed = []
        bus.subscribe(SweepRunFailed, failed.append)
        run_sweep([short_config()], runner=crash_runner, bus=bus)
        assert len(failed) == 1
        assert failed[0].kind == FAILED_ERROR
        assert "injected crash" in failed[0].error

    def test_rerun_after_partial_failure_serves_cache(self, tmp_path):
        """The acceptance scenario: one crashing run, sweep completes,
        and an immediate re-run replays the successes from cache."""
        cache_dir = str(tmp_path / "cache")
        configs = [short_config(wifi_mbps=8.0), short_config(wifi_mbps=2.0)]
        first = run_sweep(configs, cache_dir=cache_dir,
                          runner=crash_on_slow_wifi)
        assert first.runs[0].ok
        assert first.runs[1].failure is not None
        second = run_sweep(configs, cache_dir=cache_dir,
                           runner=crash_on_slow_wifi)
        assert second.runs[0].cached
        assert second.runs[0].summary == first.runs[0].summary
        assert second.runs[1].failure is not None


class TestSweepTable:
    def test_renders_successes_and_failures(self, tmp_path):
        configs = [short_config(wifi_mbps=8.0), short_config(wifi_mbps=2.0)]
        sweep = run_sweep(configs, runner=crash_on_slow_wifi)
        text = sweep_table(sweep)
        assert "failed:error" in text
        assert "boom" in text
        assert "2 runs, 1 failed" in text


class TestRunSchemesOnEngine:
    def test_comparison_still_works(self):
        # Constrained WiFi and a session long enough to leave the
        # low-buffer startup guard, so MP-DASH actually activates.
        base = short_config(video_duration=60.0,
                            wifi_mbps=3.8, lte_mbps=3.0)
        comparison = run_schemes(base, schemes=("baseline", "rate"))
        assert comparison.baseline.metrics.cellular_bytes > 0
        assert comparison.cellular_savings("rate") > 0

    def test_jobs_and_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_schemes(short_config(), schemes=("baseline", "rate"),
                            jobs=2, cache_dir=cache_dir)
        second = run_schemes(short_config(), schemes=("baseline", "rate"),
                             cache_dir=cache_dir)
        for scheme in ("baseline", "rate"):
            assert (first.results[scheme].metrics
                    == second.results[scheme].metrics)

    def test_failed_scheme_raises(self):
        with pytest.raises(RuntimeError, match="baseline"):
            # A scheme comparison is meaningless with holes; the engine's
            # RunFailure surfaces as an exception at this level.
            base = short_config(video_duration=-1.0)
            run_schemes(base, schemes=("baseline",))


class TestSweepHistograms:
    def _metric_config(self, **overrides):
        # Constrained links so MP-DASH actually arms deadlines and the
        # slack histogram has samples.
        defaults = dict(mpdash=True, collect_metrics=True, wifi_mbps=3.8,
                        lte_mbps=3.0, video_duration=40.0)
        defaults.update(overrides)
        return short_config(**defaults)

    def test_summary_carries_serialized_histograms(self):
        result = run_session(self._metric_config())
        summary = summarize_session(result)
        assert "repro_deadline_slack_seconds" in summary.histograms
        payload = json.loads(json.dumps(summary.to_dict()))
        again = summary_from_dict(payload)
        assert again.histograms == summary.histograms

    def test_pre_histogram_payloads_still_load(self):
        """Cache artifacts written before histograms existed have no
        'histograms' key; loading them must not fail."""
        summary = summarize_session(run_session(short_config()))
        payload = json.loads(json.dumps(summary.to_dict()))
        del payload["histograms"]
        again = summary_from_dict(payload)
        assert again.histograms == {}
        assert again.metrics == summary.metrics

    def test_histograms_survive_the_cache(self, tmp_path):
        from repro.experiments.sweep import merged_histograms

        configs = [self._metric_config(),
                   self._metric_config(wifi_mbps=6.0)]
        cache = str(tmp_path / "cache")
        first = run_sweep(configs, cache_dir=cache)
        second = run_sweep(configs, cache_dir=cache)
        assert second.cache_hits == 2
        for fresh, cached in zip(first.runs, second.runs):
            assert cached.summary.histograms == fresh.summary.histograms
        merged = merged_histograms(second)
        slack = merged["repro_deadline_slack_seconds"]
        assert slack.count == sum(
            run.summary.histograms["repro_deadline_slack_seconds"]["count"]
            for run in second.runs)
        assert slack.quantile(0.95) is not None

    def test_merged_histograms_skips_runs_without_metrics(self):
        from repro.experiments.sweep import merged_histograms

        sweep = run_sweep([short_config()])
        assert merged_histograms(sweep) == {}

    def test_merged_histograms_names_series_and_run_on_mismatch(self):
        from repro.experiments.sweep import merged_histograms

        sweep = run_sweep([self._metric_config(),
                           self._metric_config(wifi_mbps=6.0)])
        bad = sweep.summaries[1]
        name = "repro_deadline_slack_seconds"
        payload = dict(bad.histograms[name])
        payload["bounds"] = [b * 2.0 for b in payload["bounds"]]
        bad.histograms[name] = payload
        with pytest.raises(ValueError,
                           match="mismatched bucket layouts") as excinfo:
            merged_histograms(sweep)
        message = str(excinfo.value)
        assert name in message
        assert bad.config_key[:12] in message

    def test_sweep_table_reports_slack(self):
        sweep = run_sweep([self._metric_config()])
        table = sweep_table(sweep)
        assert "p95 slack" in table
        assert "merged deadline slack" in table

    def test_sweep_table_without_metrics_has_no_footer(self):
        sweep = run_sweep([short_config()])
        table = sweep_table(sweep)
        assert "p95 slack" in table  # the column is always present
        assert "merged deadline slack" not in table


# Module-level kill runners for the broken-pool tests (picklable).
def kill_once_runner(config):
    """SIGKILL this worker the first time, succeed on the retry."""
    marker = os.environ["REPRO_TEST_KILL_MARKER"]
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return default_runner(config)
    os.kill(os.getpid(), signal.SIGKILL)


def always_kill_runner(config):
    os.kill(os.getpid(), signal.SIGKILL)


#: In-process invocation log for the dedup tests (jobs=1 only).
counting_calls = []


def counting_runner(config):
    counting_calls.append(config_key(config))
    return default_runner(config)


class TestDuplicateConfigs:
    def test_duplicates_simulated_once(self):
        counting_calls.clear()
        configs = [short_config()] * 3
        sweep = run_sweep(configs, runner=counting_runner)
        assert sweep.ok and len(sweep) == 3
        assert len(counting_calls) == 1
        assert not sweep.runs[0].shared
        assert sweep.runs[1].shared and sweep.runs[2].shared
        for run in sweep.runs[1:]:
            assert run.cached  # served without a fresh simulation
            assert run.summary == sweep.runs[0].summary
            assert run.attempts == sweep.runs[0].attempts

    def test_mixed_grid_keeps_distinct_configs_distinct(self):
        counting_calls.clear()
        configs = [short_config(), short_config(wifi_mbps=6.0),
                   short_config()]
        sweep = run_sweep(configs, runner=counting_runner)
        assert sweep.ok
        assert len(counting_calls) == 2
        assert sweep.runs[2].shared and not sweep.runs[1].shared

    def test_duplicate_failure_carries_its_own_index(self):
        sweep = run_sweep([short_config()] * 2, runner=crash_runner)
        assert not sweep.ok
        assert sweep.runs[1].shared
        assert sweep.runs[1].failure is not None
        assert sweep.runs[1].failure.index == 1
        assert sweep.runs[0].failure.index == 0
        assert "injected crash" in sweep.runs[1].failure.error

    def test_duplicate_events_published_per_run(self):
        bus = EventBus()
        finished = []
        bus.subscribe(SweepRunFinished, finished.append)
        run_sweep([short_config()] * 3, bus=bus)
        assert sorted(e.index for e in finished) == [0, 1, 2]

    def test_dedup_in_pool(self):
        sweep = run_sweep([short_config()] * 3, jobs=2)
        assert sweep.ok
        assert [run.shared for run in sweep.runs] == [False, True, True]
        assert sweep.runs[1].summary == sweep.runs[0].summary

    def test_dedup_composes_with_the_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_sweep([short_config()] * 2, cache_dir=cache_dir)
        assert first.cache_hits == 1  # the duplicate
        second = run_sweep([short_config()] * 2, cache_dir=cache_dir)
        assert second.cache_hits == 2
        assert second.runs[0].summary == first.runs[0].summary


class TestCacheStoreFailure:
    def test_store_failure_degrades_to_a_warning(self, tmp_path,
                                                 monkeypatch):
        def broken_store(self, key, payload):
            raise OSError("disk full")

        monkeypatch.setattr(ResultCache, "store", broken_store)
        sweep = run_sweep([short_config()],
                          cache_dir=str(tmp_path / "cache"))
        assert sweep.ok  # the simulation itself survived
        run = sweep.runs[0]
        assert run.summary is not None
        assert run.cache_error is not None
        assert "disk full" in run.cache_error
        assert len(sweep.cache_errors) == 1
        assert run.config_key in sweep.cache_errors[0]

    def test_healthy_cache_records_no_warning(self, tmp_path):
        sweep = run_sweep([short_config()],
                          cache_dir=str(tmp_path / "cache"))
        assert sweep.ok
        assert sweep.runs[0].cache_error is None
        assert sweep.cache_errors == []


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"),
                    reason="needs SIGKILL (POSIX)")
class TestBrokenPoolRecovery:
    def test_worker_death_is_retried_on_a_fresh_pool(self, tmp_path,
                                                     monkeypatch):
        marker = tmp_path / "killed"
        monkeypatch.setenv("REPRO_TEST_KILL_MARKER", str(marker))
        sweep = run_sweep([short_config()], jobs=2, retries=2,
                          runner=kill_once_runner)
        assert marker.exists()
        assert sweep.ok
        # Exactly one attempt died with the pool before the retry won.
        assert sweep.runs[0].attempts == 2

    def test_collateral_runs_survive_the_pool_death(self, tmp_path,
                                                    monkeypatch):
        marker = tmp_path / "killed"
        monkeypatch.setenv("REPRO_TEST_KILL_MARKER", str(marker))
        configs = [short_config(wifi_mbps=w) for w in (6.0, 7.0, 8.0)]
        sweep = run_sweep(configs, jobs=2, retries=2,
                          runner=kill_once_runner)
        assert sweep.ok and len(sweep) == 3

    def test_permanent_worker_death_records_a_failure(self):
        sweep = run_sweep([short_config()], jobs=2, retries=1,
                          runner=always_kill_runner)
        assert not sweep.ok
        failure = sweep.runs[0].failure
        assert failure is not None
        assert failure.kind == FAILED_ERROR
        assert "worker process died" in failure.error
        assert failure.attempts == 2


class TestMixedKeyEncode:
    def test_mixed_type_dict_keys_are_hashable(self):
        # Raw-key sorting would raise TypeError("'<' not supported ...").
        key = config_key(short_config(abr_kwargs={"b": 1, 2: 3}))
        assert isinstance(key, str)

    def test_stringified_order_is_stable(self):
        one = config_key(short_config(abr_kwargs={"b": 1, 2: 3}))
        other = config_key(short_config(abr_kwargs={2: 3, "b": 1}))
        assert one == other

    def test_string_form_collisions_are_shared_keys(self):
        # {"2": x} and {2: x} canonicalize identically by design: the
        # emitted JSON carries stringified keys either way.
        assert config_key(short_config(abr_kwargs={"2": 3})) == \
            config_key(short_config(abr_kwargs={2: 3}))
