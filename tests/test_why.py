"""Tests for repro.obs.why: causal root-cause attribution.

Synthetic event streams exercise each rule in isolation; the
determinism pins for full sessions live in test_determinism.py and the
CLI surface in test_cli.py.
"""

import gzip
import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.check import ERROR, WARNING, CheckReport, Violation
from repro.obs.events import (ChunkDownloaded, ChunkRequested,
                              DeadlineMissed, HttpRequestSent,
                              HttpResponseReceived, MpDashArmed,
                              MpDashSkipped, PathSampled, SchedulerActivated,
                              SessionClosed, StallStart, TransferCompleted,
                              TransferStarted)
from repro.obs.trace_export import Trace, TraceMeta, dumps_jsonl
from repro.obs.why import (CAUSE_ABR_OVERREACH, CAUSE_ACTIVATION_LATENCY,
                           CAUSE_BANDWIDTH_DROP, CAUSE_ESTIMATOR_DRIFT,
                           CAUSE_INVARIANT, CAUSE_PATH_CONTROL,
                           CAUSE_QUEUE_BUILDUP, CAUSE_UNKNOWN,
                           CONFIDENCE_HIGH, CONFIDENCE_LOW,
                           CONFIDENCE_MEDIUM, KIND_MISS, KIND_STALL,
                           KIND_VIOLATION, LAYER_ABR, LAYER_ESTIMATOR,
                           LAYER_NETWORK, LAYER_PLAYER, LAYER_SCHEDULER,
                           LAYER_UNKNOWN, Attribution, attribute_anomaly,
                           attributions_from_trace, diff_traces,
                           fold_attributions, render_attributions,
                           summarize_attributions)


def clean_report():
    """A CheckReport with no violations: isolates the event-driven rules."""
    return CheckReport(violations=[], events=0, checkers=[])


def make_trace(events, duration=60.0):
    return Trace(meta=TraceMeta(session_duration=duration),
                 events=list(events))


def chain(events, index=0, transfer=1, request=1, start=0.0, level=2,
          size=1e6, window=4.0, activation_gap=0.01, miss=False,
          done=None, throughput=None, armed=True, downloaded=True):
    """Append one chunk's full causal chain to ``events``.

    Timing mirrors the simulator: transfer starts 0.01 s after the
    request, the deadline activates ``activation_gap`` later, and a
    missed chunk finishes 1 s past its deadline unless ``done`` says
    otherwise.
    """
    url = f"/chunk{index}"
    events.append(ChunkRequested(start, index, level, 5.0))
    if armed:
        events.append(MpDashArmed(start, index, window))
    else:
        events.append(MpDashSkipped(start, index))
    events.append(HttpRequestSent(start, url, request))
    events.append(TransferStarted(start + 0.01, transfer, url, size))
    activated = start + 0.01 + activation_gap
    events.append(SchedulerActivated(activated, transfer, size, window))
    deadline_at = activated + window
    if miss:
        events.append(DeadlineMissed(deadline_at + 0.01, transfer))
        done_t = done if done is not None else deadline_at + 1.0
    else:
        done_t = done if done is not None else start + 2.0
    events.append(TransferCompleted(done_t, transfer, url, size,
                                    done_t - start - 0.01))
    events.append(HttpResponseReceived(done_t, url, 200, int(size),
                                       request))
    if downloaded:
        tput = (throughput if throughput is not None
                else size / max(done_t - start, 1e-9))
        events.append(ChunkDownloaded(done_t, index, level, size,
                                      done_t - start, start, tput,
                                      {"wifi": size}, window, 5.0))


def samples(events, times, throughput=1e6, rtt=0.05, path="wifi"):
    for time in times:
        events.append(PathSampled(time, path, 10.0, rtt, throughput))


def only(attributions, kind):
    picked = [a for a in attributions if a.kind == kind]
    assert len(picked) == 1, picked
    return picked[0]


class TestMissRules:
    def test_activation_latency_blames_scheduler(self):
        events = []
        chain(events, index=0, start=0.0, activation_gap=2.0, miss=True)
        events.append(SessionClosed(20.0))
        trace = make_trace(events)
        verdict = only(attributions_from_trace(trace, clean_report()),
                       KIND_MISS)
        assert verdict.cause == CAUSE_ACTIVATION_LATENCY
        assert verdict.layer == LAYER_SCHEDULER
        assert verdict.chunk == 0 and verdict.transfer == 1
        # The arm gap itself is the counterfactual slack, and it covers
        # the 1 s deficit, so the verdict is high-confidence.
        assert verdict.slack == pytest.approx(2.0)
        assert verdict.confidence == CONFIDENCE_HIGH
        assert "activating at start" in verdict.counterfactual

    def test_bandwidth_drop_blames_network(self):
        events = []
        samples(events, range(8), throughput=1e6)
        chain(events, index=0, start=10.0, miss=True)
        samples(events, (11.0, 12.0), throughput=0.25e6)
        events.append(SessionClosed(20.0))
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_BANDWIDTH_DROP
        assert verdict.layer == LAYER_NETWORK
        assert verdict.confidence == CONFIDENCE_HIGH  # below 0.4x
        assert "deadline met" in verdict.counterfactual
        assert verdict.slack is not None and verdict.slack > 0

    def test_abr_overreach_blames_abr(self):
        events = []
        chain(events, index=0, transfer=1, request=1, start=0.0,
              throughput=2e5)
        chain(events, index=1, transfer=2, request=2, start=10.0,
              size=2e6, miss=True)
        events.append(SessionClosed(20.0))
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_ABR_OVERREACH
        assert verdict.layer == LAYER_ABR
        # 2 MB over a 4 s window needs 2.5x the 2e5 B/s recent rate.
        assert verdict.confidence == CONFIDENCE_HIGH
        assert verdict.slack == pytest.approx(4.0 - 2e6 / 2e5)

    def test_estimator_drift_blames_estimator(self):
        events = []
        samples(events, range(8), throughput=3e6)
        chain(events, index=0, transfer=1, request=1, start=0.0,
              throughput=1e6)
        chain(events, index=1, transfer=2, request=2, start=10.0,
              miss=True, throughput=1e6)
        events.append(SessionClosed(20.0))
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_ESTIMATOR_DRIFT
        assert verdict.layer == LAYER_ESTIMATOR
        assert verdict.confidence == CONFIDENCE_HIGH  # 3x lead
        assert "promised" in verdict.counterfactual

    def test_queue_buildup_blames_network(self):
        events = []
        samples(events, range(8), throughput=1e6, rtt=0.05)
        chain(events, index=0, transfer=1, request=1, start=0.0,
              throughput=1e6)
        chain(events, index=1, transfer=2, request=2, start=10.0,
              miss=True, throughput=1e6)
        samples(events, (11.0, 12.0), throughput=1e6, rtt=0.2)
        events.append(SessionClosed(20.0))
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_QUEUE_BUILDUP
        assert verdict.layer == LAYER_NETWORK
        assert verdict.confidence == CONFIDENCE_MEDIUM
        assert "RTT inflated" in verdict.counterfactual

    def test_path_control_error_wins_over_every_rule(self):
        events = []
        chain(events, index=0, start=0.0, activation_gap=2.0, miss=True)
        events.append(SessionClosed(20.0))
        report = CheckReport(violations=[
            Violation(checker="path-control", severity=ERROR, time=3.0,
                      message="all paths disabled while armed",
                      events=(4,))], events=len(events), checkers=[])
        verdicts = attributions_from_trace(make_trace(events), report)
        miss = only(verdicts, KIND_MISS)
        assert miss.cause == CAUSE_PATH_CONTROL
        assert miss.layer == LAYER_SCHEDULER
        assert miss.confidence == CONFIDENCE_HIGH
        assert miss.slack == pytest.approx(1.0)  # the deadline deficit
        assert 4 in miss.evidence and miss.anomaly_index in miss.evidence
        # The ERROR itself is also explained, as a violation verdict.
        violation = only(verdicts, KIND_VIOLATION)
        assert violation.cause == CAUSE_PATH_CONTROL
        assert violation.layer == LAYER_SCHEDULER

    def test_no_rule_matched_is_insufficient_evidence(self):
        events = []
        chain(events, index=0, start=0.0, miss=True)
        events.append(SessionClosed(20.0))
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_UNKNOWN
        assert verdict.layer == LAYER_UNKNOWN
        assert verdict.confidence == CONFIDENCE_LOW

    def test_verdicts_sorted_by_stream_position(self):
        events = []
        chain(events, index=0, transfer=1, request=1, start=0.0,
              activation_gap=2.0, miss=True)
        chain(events, index=1, transfer=2, request=2, start=20.0,
              activation_gap=2.0, miss=True)
        events.append(SessionClosed(40.0))
        verdicts = attributions_from_trace(make_trace(events),
                                           clean_report())
        assert [v.chunk for v in verdicts] == [0, 1]
        assert verdicts[0].anomaly_index < verdicts[1].anomaly_index


class TestDegradedChains:
    """Malformed causal chains degrade to confidence="low", never raise."""

    def test_truncated_trace_degrades_confidence(self):
        events = []
        chain(events, index=0, start=0.0, activation_gap=2.0, miss=True)
        # No SessionClosed: the stream was cut mid-session.
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_ACTIVATION_LATENCY
        assert verdict.confidence == CONFIDENCE_LOW

    def test_chunk_never_downloaded_degrades_confidence(self):
        events = []
        chain(events, index=0, start=0.0, activation_gap=2.0, miss=True,
              downloaded=False)
        events.append(SessionClosed(20.0))
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_ACTIVATION_LATENCY
        assert verdict.confidence == CONFIDENCE_LOW

    def test_orphan_miss_still_gets_a_verdict(self):
        events = [DeadlineMissed(5.0, 99), SessionClosed(10.0)]
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_UNKNOWN
        assert verdict.confidence == CONFIDENCE_LOW
        assert verdict.transfer == 99 and verdict.chunk is None

    def test_orphan_transfer_events_never_raise(self):
        events = [TransferStarted(1.0, 7, "/stray", 1e6),
                  DeadlineMissed(2.0, 7),
                  TransferCompleted(3.0, 7, "/stray", 1e6, 2.0),
                  SessionClosed(4.0)]
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.confidence == CONFIDENCE_LOW
        assert verdict.transfer == 7

    def test_crashing_walker_degrades_instead_of_raising(self, monkeypatch):
        from repro.obs import why as why_mod

        def boom(self, index, time, transfer):
            raise KeyError("synthetic walker crash")

        monkeypatch.setattr(why_mod._Attributor, "_explain_miss", boom)
        events = []
        chain(events, index=0, start=0.0, activation_gap=2.0, miss=True)
        events.append(SessionClosed(20.0))
        verdict = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_MISS)
        assert verdict.cause == CAUSE_UNKNOWN
        assert verdict.confidence == CONFIDENCE_LOW
        assert "walker degraded" in verdict.message
        assert "KeyError" in verdict.message


class TestStalls:
    def test_stall_inherits_recent_miss_cause(self):
        events = []
        chain(events, index=0, start=0.0, activation_gap=2.0, miss=True)
        events.append(StallStart(8.0))
        events.append(SessionClosed(20.0))
        verdicts = attributions_from_trace(make_trace(events),
                                           clean_report())
        stall = only(verdicts, KIND_STALL)
        miss = only(verdicts, KIND_MISS)
        assert stall.cause == miss.cause == CAUSE_ACTIVATION_LATENCY
        assert stall.chunk == miss.chunk
        assert stall.anomaly_index in stall.evidence
        assert set(miss.evidence) <= set(stall.evidence)
        assert "follows the missed deadline" in stall.message

    def test_orphan_stall_probes_bandwidth(self):
        events = []
        samples(events, range(8), throughput=1e6)
        samples(events, (26.0, 27.0), throughput=0.2e6)
        events.append(StallStart(30.0))
        events.append(SessionClosed(40.0))
        stall = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_STALL)
        assert stall.cause == CAUSE_BANDWIDTH_DROP
        assert stall.layer == LAYER_NETWORK
        assert stall.confidence == CONFIDENCE_HIGH
        assert "buffer drained" in stall.message

    def test_orphan_stall_without_samples_is_unknown(self):
        events = [StallStart(5.0), SessionClosed(10.0)]
        stall = only(
            attributions_from_trace(make_trace(events), clean_report()),
            KIND_STALL)
        assert stall.cause == CAUSE_UNKNOWN
        assert stall.confidence == CONFIDENCE_LOW


class TestViolations:
    def test_checker_maps_to_layer(self):
        report = CheckReport(violations=[
            Violation(checker="stall-pairing", severity=ERROR, time=1.0,
                      message="StallEnd without StallStart",
                      events=(0,))], events=1, checkers=[])
        trace = make_trace([SessionClosed(1.0)])
        verdict = only(attributions_from_trace(trace, report),
                       KIND_VIOLATION)
        assert verdict.layer == LAYER_PLAYER
        assert verdict.cause == CAUSE_INVARIANT
        assert verdict.confidence == CONFIDENCE_HIGH
        assert verdict.anomaly_index == 0

    def test_unknown_checker_degrades(self):
        report = CheckReport(violations=[
            Violation(checker="from-the-future", severity=ERROR,
                      time=1.0, message="?", events=())],
            events=1, checkers=[])
        trace = make_trace([SessionClosed(1.0)])
        verdict = only(attributions_from_trace(trace, report),
                       KIND_VIOLATION)
        assert verdict.layer == LAYER_UNKNOWN
        assert verdict.confidence == CONFIDENCE_LOW

    def test_warnings_are_not_anomalies(self):
        report = CheckReport(violations=[
            Violation(checker="stall-budget", severity=WARNING, time=1.0,
                      message="soft", events=())], events=1, checkers=[])
        assert attributions_from_trace(make_trace([SessionClosed(1.0)]),
                                       report) == []


class TestPublicApi:
    def test_anomaly_free_trace_attributes_nothing(self):
        events = []
        chain(events, index=0)
        events.append(SessionClosed(10.0))
        assert attributions_from_trace(make_trace(events),
                                       clean_report()) == []

    def test_summary_counts_and_tie_break(self):
        def verdict(cause, layer):
            return Attribution(kind=KIND_VIOLATION, anomaly_index=0,
                               time=0.0, layer=layer, cause=cause,
                               confidence=CONFIDENCE_HIGH)
        attrs = [verdict(CAUSE_INVARIANT, "trace"),
                 verdict(CAUSE_INVARIANT, "trace"),
                 verdict(CAUSE_PATH_CONTROL, LAYER_SCHEDULER),
                 verdict(CAUSE_PATH_CONTROL, LAYER_SCHEDULER)]
        summary = summarize_attributions(attrs)
        assert summary["total"] == 4
        assert summary["counts"] == {CAUSE_INVARIANT: 2,
                                     CAUSE_PATH_CONTROL: 2}
        # On tied counts the specific rule cause wins the headline.
        assert summary["top_cause"] == CAUSE_PATH_CONTROL
        assert summary["confidences"] == {CONFIDENCE_HIGH: 4}

    def test_empty_summary(self):
        summary = summarize_attributions([])
        assert summary["total"] == 0
        assert summary["top_cause"] is None
        assert summary["top_layer"] is None

    def test_to_dict_round_trips_through_json(self):
        events = []
        chain(events, index=0, activation_gap=2.0, miss=True)
        events.append(SessionClosed(20.0))
        verdicts = attributions_from_trace(make_trace(events),
                                           clean_report())
        payload = json.loads(json.dumps([v.to_dict() for v in verdicts]))
        assert payload[0]["cause"] == CAUSE_ACTIVATION_LATENCY
        assert payload[0]["evidence"] == list(verdicts[0].evidence)

    def test_fold_into_registry(self):
        events = []
        chain(events, index=0, activation_gap=2.0, miss=True)
        events.append(StallStart(8.0))
        events.append(SessionClosed(20.0))
        verdicts = attributions_from_trace(make_trace(events),
                                           clean_report())
        registry = MetricsRegistry()
        fold_attributions(registry, verdicts)
        total = registry.counter(
            "repro_fleet_attribution_total",
            {"cause": CAUSE_ACTIVATION_LATENCY,
             "layer": LAYER_SCHEDULER})
        assert total.value == 2  # the miss and the stall it caused
        kinds = registry.counter("repro_fleet_attribution_kind_total",
                                 {"kind": KIND_MISS})
        assert kinds.value == 1
        text = registry.render_prometheus()
        assert 'cause="scheduler-activation-latency"' in text

    def test_render_empty_and_truncated(self):
        assert "no anomalies to attribute" in render_attributions([])
        events = []
        chain(events, index=0, transfer=1, request=1, start=0.0,
              activation_gap=2.0, miss=True)
        chain(events, index=1, transfer=2, request=2, start=20.0,
              activation_gap=2.0, miss=True)
        events.append(SessionClosed(40.0))
        verdicts = attributions_from_trace(make_trace(events),
                                           clean_report())
        text = render_attributions(verdicts, top=1)
        assert CAUSE_ACTIVATION_LATENCY in text
        assert "showing the first 1 of 2" in text
        assert "top cause" in text


class TestAttributeAnomaly:
    def good_record(self, tmp_path, name="run.jsonl.gz"):
        events = []
        chain(events, index=0, activation_gap=2.0, miss=True)
        events.append(SessionClosed(20.0))
        trace = make_trace(events)
        payload = dumps_jsonl(trace.events, trace.meta).encode()
        (tmp_path / name).write_bytes(gzip.compress(payload))
        return {"artifact": name}

    def test_attributes_recorded_artifact(self, tmp_path):
        record = self.good_record(tmp_path)
        result = attribute_anomaly(str(tmp_path), record)
        assert result["attributed"] is True
        assert result["error"] is None
        assert result["summary"]["total"] >= 1
        causes = {a["cause"] for a in result["attributions"]}
        assert CAUSE_ACTIVATION_LATENCY in causes

    def test_record_without_artifact_reports_error(self, tmp_path):
        result = attribute_anomaly(str(tmp_path), {"index": 3})
        assert result["attributed"] is False
        assert "no trace artifact" in result["error"]

    def test_missing_artifact_reports_error(self, tmp_path):
        result = attribute_anomaly(str(tmp_path),
                                   {"artifact": "gone.jsonl.gz"})
        assert result["attributed"] is False
        assert result["attributions"] == []
        assert "gone.jsonl.gz" in result["error"]


class TestDiff:
    def arm_a(self):
        events = []
        chain(events, index=0, transfer=1, request=1, start=0.0)
        chain(events, index=1, transfer=2, request=2, start=10.0,
              level=4, activation_gap=2.0, miss=True)
        events.append(SessionClosed(30.0))
        return make_trace(events)

    def arm_b(self):
        events = []
        chain(events, index=0, transfer=1, request=1, start=0.0)
        chain(events, index=1, transfer=2, request=2, start=10.0,
              level=1, armed=False)
        events.append(SessionClosed(30.0))
        return make_trace(events)

    def diff(self):
        a, b = self.arm_a(), self.arm_b()
        return diff_traces(
            a, b,
            attributions_a=attributions_from_trace(a, clean_report()),
            attributions_b=attributions_from_trace(b, clean_report()))

    def test_first_divergence_is_the_decision_split(self):
        diff = self.diff()
        assert diff.aligned_chunks == 2
        assert diff.first_divergence == {
            "chunk": 1, "decision": "level", "a": 4, "b": 1,
            "evidence_a": diff.first_divergence["evidence_a"],
            "evidence_b": diff.first_divergence["evidence_b"]}
        delta = next(d for d in diff.chunk_deltas if d["chunk"] == 1)
        assert delta["diverged"] == ["level", "mpdash"]
        assert delta["missed_a"] is True and delta["missed_b"] is False

    def test_cause_deltas_rank_the_injected_fault_first(self):
        diff = self.diff()
        assert diff.top_cause == CAUSE_ACTIVATION_LATENCY
        top = diff.cause_deltas[0]
        assert top["delta"] == 1 and top["count_b"] == 0
        assert top["layer"] == LAYER_SCHEDULER
        assert diff.summary_a["misses"] == 1
        assert diff.summary_b["anomalies"] == 0

    def test_render_and_to_dict(self):
        diff = self.diff()
        text = diff.render()
        assert "first diverging decision: chunk 1 level" in text
        assert CAUSE_ACTIVATION_LATENCY in text
        payload = json.loads(json.dumps(diff.to_dict()))
        assert payload["aligned_chunks"] == 2

    def test_identical_arms_have_no_divergence(self):
        a, b = self.arm_b(), self.arm_b()
        diff = diff_traces(a, b, attributions_a=[], attributions_b=[])
        assert diff.first_divergence is None
        assert diff.chunk_deltas == []
        assert diff.cause_deltas == []
        assert diff.top_cause is None
        assert "no diverging per-chunk decision" in diff.render()

    def test_slack_drift_alone_is_reported(self):
        events_a, events_b = [], []
        chain(events_a, index=0, done=1.5)
        chain(events_b, index=0, done=1.0)
        events_a.append(SessionClosed(10.0))
        events_b.append(SessionClosed(10.0))
        diff = diff_traces(make_trace(events_a), make_trace(events_b),
                           attributions_a=[], attributions_b=[])
        assert diff.first_divergence is None
        delta = next(d for d in diff.chunk_deltas if d["chunk"] == 0)
        assert delta["slack_delta"] == pytest.approx(0.5)
