"""Tests for the buffer-based ABR algorithms (BBA-2 and BBA-C)."""

import pytest

from repro.abr import Bba, BbaC, BUFFER_BASED
from repro.abr.base import AbrContext
from repro.dash.events import ChunkRecord
from repro.dash.manifest import Manifest
from repro.dash.media import VideoAsset
from repro.net.units import mbps

BITRATES_MBPS = [0.58, 1.01, 1.47, 2.41, 3.94]
CAPACITY = 40.0


@pytest.fixture
def manifest():
    asset = VideoAsset.generate("m", 4.0, 600.0, BITRATES_MBPS, seed=0)
    return Manifest(asset)


def ctx(manifest, current_level, buffer_level, history=None, override=None,
        measured=None):
    return AbrContext(manifest=manifest, buffer_level=buffer_level,
                      buffer_capacity=CAPACITY, next_chunk_index=10,
                      current_level=current_level,
                      measured_throughput=measured,
                      override_throughput=override,
                      history=history or [], in_startup=False)


def steady(abr):
    """Put a BBA instance into its steady-state phase."""
    abr._in_startup_phase = False
    return abr


def chunk(throughput, download_time=1.0):
    return ChunkRecord(index=0, level=0, size=1e6, duration=4.0,
                       requested_at=0.0, completed_at=download_time,
                       throughput=throughput)


class TestRateMap:
    def test_reservoir_maps_to_lowest(self, manifest):
        abr = Bba()
        rate = abr.rate_map(5.0, CAPACITY, manifest.bitrates())
        assert rate == manifest.bitrates()[0]

    def test_upper_knee_maps_to_highest(self, manifest):
        abr = Bba()
        rate = abr.rate_map(38.0, CAPACITY, manifest.bitrates())
        assert rate == manifest.bitrates()[-1]

    def test_monotonically_increasing(self, manifest):
        abr = Bba()
        rates = [abr.rate_map(b, CAPACITY, manifest.bitrates())
                 for b in range(0, 41, 2)]
        assert rates == sorted(rates)

    def test_level_buffer_range_partitions_cushion(self, manifest):
        abr = Bba()
        bitrates = manifest.bitrates()
        previous_high = None
        for level in range(len(bitrates)):
            low, high = abr.level_buffer_range(level, CAPACITY, bitrates)
            assert low < high
            if previous_high is not None:
                assert low == pytest.approx(previous_high)
            previous_high = high
        assert high == CAPACITY

    def test_level_range_validates(self, manifest):
        with pytest.raises(IndexError):
            Bba().level_buffer_range(9, CAPACITY, manifest.bitrates())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Bba(reservoir_fraction=0.9, upper_fraction=0.5)
        with pytest.raises(ValueError):
            Bba(startup_speedup=1.5)


class TestSteadyState:
    def test_holds_level_inside_band(self, manifest):
        abr = steady(Bba())
        bitrates = manifest.bitrates()
        low, high = abr.level_buffer_range(2, CAPACITY, bitrates)
        level = abr.choose_level(ctx(manifest, 2, (low + high) / 2))
        assert level == 2

    def test_switches_up_when_buffer_high(self, manifest):
        abr = steady(Bba())
        level = abr.choose_level(ctx(manifest, 0, 37.0))
        assert level > 0

    def test_switches_down_when_buffer_low(self, manifest):
        abr = steady(Bba())
        level = abr.choose_level(ctx(manifest, 4, 8.0))
        assert level < 4

    def test_oscillation_between_adjacent_rungs(self, manifest):
        """The Figure-3 pathology: capacity between two rungs makes BBA
        bounce — high buffer pushes it up, the unsustainable rate drains
        the buffer back down."""
        abr = steady(Bba())
        bitrates = manifest.bitrates()
        # Buffer high enough that f(B) reaches the top rung.
        up = abr.choose_level(ctx(manifest, 3, 38.0))
        assert up == 4
        # At the unsustainable top rung the buffer drains; once f(B) falls
        # to rung 3 (hysteresis boundary), BBA steps back down.
        low_3, _ = abr.level_buffer_range(3, CAPACITY, bitrates)
        down = abr.choose_level(ctx(manifest, 4, low_3 - 2.0))
        assert down < 4


class TestStartup:
    def test_fast_downloads_ramp_up(self, manifest):
        abr = Bba()
        history = [chunk(mbps(20.0), download_time=0.5)]
        level = abr.choose_level(ctx(manifest, 0, 6.0, history=history))
        assert level == 1

    def test_slow_downloads_back_off(self, manifest):
        abr = Bba()
        history = [chunk(mbps(0.5), download_time=6.0)]
        level = abr.choose_level(ctx(manifest, 2, 4.0, history=history))
        assert level == 1

    def test_startup_exits_when_map_catches_up(self, manifest):
        abr = Bba()
        abr.choose_level(ctx(manifest, 0, 30.0))
        assert not abr._in_startup_phase

    def test_reset_restores_startup(self, manifest):
        abr = Bba()
        abr.choose_level(ctx(manifest, 0, 30.0))
        abr.reset()
        assert abr._in_startup_phase


class TestBbaC:
    def test_category_inherited(self):
        assert BbaC.category == BUFFER_BASED

    def test_caps_at_measured_throughput(self, manifest):
        """BBA wants the top rung; the 3.4 Mbps capacity cap holds it at
        the highest sustainable level — the paper's oscillation fix."""
        abr = steady(BbaC())
        for _ in range(5):
            abr.on_chunk_downloaded(chunk(mbps(3.4)))
        level = abr.choose_level(ctx(manifest, 3, 38.0))
        assert level == 3  # 2.41 Mbps fits, 3.94 does not

    def test_no_cap_without_estimate(self, manifest):
        abr = steady(BbaC())
        level = abr.choose_level(ctx(manifest, 3, 38.0))
        assert level == 4

    def test_override_feeds_cap(self, manifest):
        abr = steady(BbaC())
        level = abr.choose_level(ctx(manifest, 3, 38.0,
                                     override=mbps(1.2)))
        assert level == 1

    def test_behaves_like_bba_when_capacity_ample(self, manifest):
        bba = steady(Bba())
        bba_c = steady(BbaC())
        for _ in range(5):
            bba_c.on_chunk_downloaded(chunk(mbps(50.0)))
        context = ctx(manifest, 2, 30.0)
        assert bba_c.choose_level(context) == bba.choose_level(context)

    def test_reset_clears_estimator(self, manifest):
        abr = BbaC()
        abr.on_chunk_downloaded(chunk(mbps(3.0)))
        abr.reset()
        assert abr._estimator.predict() is None
