"""Tests for the delayed DSS signaling channel."""

import pytest

from repro.mptcp.options import SignalChannel


class TestSignalChannel:
    def test_initial_value_visible_immediately(self):
        ch = SignalChannel(True, delay=0.05)
        assert ch.current(0.0) is True

    def test_write_invisible_before_delay(self):
        ch = SignalChannel(True, delay=0.05)
        ch.send(1.0, False)
        assert ch.current(1.0) is True
        assert ch.current(1.049) is True

    def test_write_visible_after_delay(self):
        ch = SignalChannel(True, delay=0.05)
        ch.send(1.0, False)
        assert ch.current(1.05) is False

    def test_zero_delay_is_instant(self):
        ch = SignalChannel(True, delay=0.0)
        ch.send(1.0, False)
        assert ch.current(1.0) is False

    def test_writes_apply_in_order(self):
        ch = SignalChannel(False, delay=0.1)
        ch.send(1.0, True)
        ch.send(1.05, False)
        assert ch.current(1.12) is True
        assert ch.current(1.20) is False

    def test_redundant_writes_skipped(self):
        ch = SignalChannel(True, delay=0.1)
        ch.send(1.0, True)
        assert ch.pending() == 0
        ch.send(1.0, False)
        ch.send(1.01, False)
        assert ch.pending() == 1

    def test_latest_writer_wins(self):
        ch = SignalChannel(False, delay=0.1)
        ch.send(0.0, True)
        ch.send(0.01, False)
        ch.send(0.02, True)
        assert ch.current(1.0) is True

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SignalChannel(True, delay=-0.1)

    def test_flip_after_effective_value_consumed(self):
        ch = SignalChannel(True, delay=0.05)
        ch.send(0.0, False)
        assert ch.current(0.05) is False
        ch.send(0.1, True)
        assert ch.current(0.1) is False
        assert ch.current(0.16) is True
