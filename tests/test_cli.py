"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.video == "big_buck_bunny"
        assert args.abr == "festive"
        assert not args.mpdash

    def test_unknown_abr_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--abr", "nope"])

    def test_download_args(self):
        args = build_parser().parse_args(
            ["download", "--size-mb", "7", "--deadline", "12"])
        assert args.size_mb == 7.0
        assert args.deadline == 12.0


class TestCommands:
    def test_videos_lists_table3(self, capsys):
        assert main(["videos"]) == 0
        out = capsys.readouterr().out
        assert "big_buck_bunny" in out
        assert "tears_of_steel_hd" in out
        assert "3.94" in out

    def test_locations_lists_catalog(self, capsys):
        assert main(["locations"]) == 0
        out = capsys.readouterr().out
        assert "hotel_hi" in out
        assert out.count("\n") > 33

    def test_download_runs(self, capsys):
        assert main(["download", "--size-mb", "2", "--deadline", "8",
                     "--wifi", "4", "--lte", "4"]) == 0
        out = capsys.readouterr().out
        assert "deadline met" in out
        assert "True" in out

    def test_stream_runs_short_session(self, capsys):
        assert main(["stream", "--abr", "gpac", "--duration", "60",
                     "--wifi", "8", "--lte", "8", "--mpdash"]) == 0
        captured = capsys.readouterr()
        # Human tables ride stderr; stdout stays machine-parseable.
        assert "cellular MB" in captured.err
        assert "stalls" in captured.err
        assert captured.out == ""

    def test_stream_visualize(self, capsys):
        assert main(["stream", "--abr", "gpac", "--duration", "60",
                     "--wifi", "8", "--lte", "8", "--visualize"]) == 0
        captured = capsys.readouterr()
        assert "levels:" in captured.err  # the chunk-strip legend
        assert captured.out == ""

    def test_compare_runs(self, capsys):
        assert main(["compare", "--abr", "gpac", "--duration", "60",
                     "--wifi", "6", "--lte", "4"]) == 0
        captured = capsys.readouterr()
        assert "baseline" in captured.err
        assert "rate" in captured.err
        assert "cell saved" in captured.err
        assert captured.out == ""


class TestSweep:
    def test_sweep_json_parallel(self, capsys):
        assert main(["sweep", "--abr", "gpac", "--duration", "20",
                     "--wifi", "8", "--lte", "8",
                     "--grid", "wifi_mbps=6,8", "--jobs", "2",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 2
        assert report["succeeded"] == 2
        assert report["failed"] == 0
        assert report["jobs"] == 2
        assert all(run["status"] == "ok" for run in report["runs"])

    def test_sweep_table_output(self, capsys):
        assert main(["sweep", "--abr", "gpac", "--duration", "20",
                     "--wifi", "8", "--lte", "8",
                     "--schemes", "baseline,rate"]) == 0
        captured = capsys.readouterr()
        assert "2 runs" in captured.err
        assert "status" in captured.err
        assert captured.out == ""

    def test_sweep_table_reports_violations(self, capsys):
        assert main(["sweep", "--abr", "gpac", "--duration", "20",
                     "--wifi", "8", "--lte", "8",
                     "--schemes", "baseline,rate"]) == 0
        err = capsys.readouterr().err
        assert "viol" in err  # column header from the checked runs

    def test_sweep_json_carries_violation_counts(self, capsys):
        assert main(["sweep", "--abr", "gpac", "--duration", "20",
                     "--wifi", "8", "--lte", "8",
                     "--grid", "wifi_mbps=6,8", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        for run in report["runs"]:
            # Checked and clean: present, empty.
            assert run["summary"]["violations"] == {}

    def test_sweep_cache_rerun_hits(self, tmp_path, capsys):
        argv = ["sweep", "--abr", "gpac", "--duration", "20",
                "--wifi", "8", "--lte", "8",
                "--grid", "wifi_mbps=6,8",
                "--cache-dir", str(tmp_path / "cache"), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache_hits"] == 0
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache_hits"] == 2
        assert all(run["cached"] for run in second["runs"])

    def test_sweep_bad_grid_field_exits_2(self, capsys):
        assert main(["sweep", "--grid", "wombat=1,2"]) == 2
        err = capsys.readouterr().err
        assert "wombat" in err

    def test_sweep_malformed_grid_exits_2(self, capsys):
        assert main(["sweep", "--grid", "wifi_mbps"]) == 2


class TestTrace:
    def test_trace_json_summary(self, capsys):
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--mpdash", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["source"] == "live"
        assert summary["meta"]["session_duration"] > 0
        assert summary["events"]["total"] == sum(
            summary["events"]["by_type"].values())
        assert summary["events"]["by_type"]["SessionClosed"] == 1
        assert summary["metrics"]["chunk_count"] > 0

    def test_trace_export_then_load_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--mpdash", "--out", path,
                     "--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        assert main(["trace", "--load", path, "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)
        # Offline analysis of the export reproduces the live run exactly.
        assert offline["metrics"] == live["metrics"]
        assert offline["events"] == live["events"]
        assert offline["source"] == path

    def test_trace_gzip_export_then_load_round_trip(self, tmp_path,
                                                    capsys):
        path = str(tmp_path / "run.jsonl.gz")
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--mpdash", "--out", path,
                     "--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # actually gzipped
        assert main(["trace", "--load", path, "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)
        assert offline["metrics"] == live["metrics"]
        assert offline["events"] == live["events"]

    def test_trace_diff_reports_delta(self, tmp_path, capsys):
        base = str(tmp_path / "vanilla.jsonl")
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--out", base]) == 0
        capsys.readouterr()
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--mpdash", "--diff", base,
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"a", "b", "delta"}
        assert report["a"]["source"] == "live"
        assert report["b"]["source"] == base
        for key, value in report["delta"].items():
            assert value == (report["b"]["metrics"][key]
                             - report["a"]["metrics"][key])

    def test_trace_table_output(self, capsys):
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8"]) == 0
        out = capsys.readouterr().out
        assert "trace live" in out
        assert "events" in out
        assert "energy J" in out


SESSION_ARGS = ["--duration", "40", "--wifi", "8", "--lte", "8", "--mpdash"]


class TestStats:
    def test_prometheus_on_stdout(self, capsys):
        assert main(["stats"] + SESSION_ARGS) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_chunks_downloaded_total counter" in out
        assert "repro_deadline_slack_seconds_bucket" in out

    def test_json_stdout_is_machine_parseable(self, capsys):
        assert main(["stats"] + SESSION_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in payload["metrics"]}
        assert "repro_chunks_downloaded_total" in names
        assert "repro_path_bytes_total" in names

    def test_offline_equals_live(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(["trace"] + SESSION_ARGS + ["--out", path]) == 0
        capsys.readouterr()
        assert main(["stats", "--load", path, "--json"]) == 0
        captured = capsys.readouterr()
        # The rebuilt-from note goes to stderr; stdout stays pure JSON.
        assert "rebuilt from" in captured.err
        offline = json.loads(captured.out)
        assert any(m["name"] == "repro_chunks_downloaded_total"
                   for m in offline["metrics"])

    def test_load_error_exits_1_on_stderr(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["stats", "--load", missing]) == 1
        captured = capsys.readouterr()
        assert "cannot load" in captured.err
        assert captured.out == ""


class TestSpans:
    def test_tree_on_stdout(self, capsys):
        assert main(["spans"] + SESSION_ARGS) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("session")
        assert any(line.lstrip().startswith("chunk[") for line in lines)

    def test_json_round_trip_offline(self, tmp_path, capsys):
        assert main(["spans"] + SESSION_ARGS + ["--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        path = str(tmp_path / "run.jsonl")
        assert main(["trace"] + SESSION_ARGS + ["--out", path]) == 0
        capsys.readouterr()
        assert main(["spans", "--load", path, "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)
        # Same seeded stream -> identical span dicts, live or offline.
        assert offline == live
        assert live[0]["kind"] == "session"

    def test_chrome_export_validates(self, tmp_path, capsys):
        target = str(tmp_path / "spans.chrome.json")
        assert main(["spans"] + SESSION_ARGS + ["--chrome", target]) == 0
        captured = capsys.readouterr()
        assert "Perfetto" in captured.err
        records = json.loads(open(target).read())
        assert isinstance(records, list) and records
        for record in records:
            assert record["ph"] == "X"
            assert {"ts", "dur", "pid", "tid", "name"} <= set(record)

    def test_limit(self, capsys):
        assert main(["spans"] + SESSION_ARGS + ["--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "more spans" in out


class TestProfile:
    def test_report_sections(self, capsys):
        assert main(["profile"] + SESSION_ARGS) == 0
        out = capsys.readouterr().out
        assert "profiled wall clock" in out
        assert "Bus events (inclusive dispatch time)" in out
        assert "Simulator callbacks" in out

    def test_json(self, capsys):
        assert main(["profile"] + SESSION_ARGS + ["--json", "--top", "5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["wall_clock"] > 0
        assert "PacketSent" in payload["events"]


class TestStderrRouting:
    def test_sweep_progress_and_table_not_on_stdout(self, capsys):
        assert main(["sweep", "--abr", "gpac", "--duration", "20",
                     "--wifi", "8", "--lte", "8",
                     "--grid", "wifi_mbps=6,8"]) == 0
        captured = capsys.readouterr()
        # Progress lines and the human table both ride stderr; stdout is
        # reserved for --json.
        assert "run 1/2" in captured.err
        assert "2 runs" in captured.err
        assert captured.out == ""

    def test_trace_out_note_not_on_stdout(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(["trace"] + SESSION_ARGS + ["--out", path,
                                                "--json"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert "trace written to" in captured.err


class TestCheck:
    def test_live_clean_session_exits_0(self, capsys):
        assert main(["check"] + SESSION_ARGS) == 0
        captured = capsys.readouterr()
        assert "all invariants hold" in captured.out
        assert "13 checkers" in captured.out

    def test_json_report_on_stdout(self, capsys):
        assert main(["check"] + SESSION_ARGS + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["violations"] == []
        assert report["counts"] == {"info": 0, "warning": 0, "error": 0}
        assert len(report["checkers"]) == 13

    def test_offline_equals_live(self, tmp_path, capsys):
        assert main(["check"] + SESSION_ARGS + ["--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        path = str(tmp_path / "run.jsonl")
        assert main(["trace"] + SESSION_ARGS + ["--out", path]) == 0
        capsys.readouterr()
        assert main(["check", "--load", path, "--json"]) == 0
        captured = capsys.readouterr()
        assert "checked" in captured.err  # offline note rides stderr
        offline = json.loads(captured.out)
        assert offline == live

    def test_error_violation_exits_1(self, tmp_path, capsys):
        from repro.core.scheduler import DeadlineAwareScheduler

        orig = DeadlineAwareScheduler.on_transfer_start

        def faulty(scheduler, now, transfer, conn):
            orig(scheduler, now, transfer, conn)
            if scheduler.active:
                for name in conn.path_names():
                    conn.request_path_state(name, False)

        path = str(tmp_path / "faulty.jsonl")
        DeadlineAwareScheduler.on_transfer_start = faulty
        try:
            assert main(["trace"] + SESSION_ARGS + ["--out", path]) == 0
        finally:
            DeadlineAwareScheduler.on_transfer_start = orig
        capsys.readouterr()
        assert main(["check", "--load", path]) == 1
        out = capsys.readouterr().out
        assert "path-control" in out
        assert "ERROR" in out

    def test_budget_flags_are_applied(self, capsys):
        # An impossible stall budget of 0% stays a warning -> exit 0.
        assert main(["check"] + SESSION_ARGS +
                    ["--max-stall-ratio", "0.0", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True

    def test_load_error_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["check", "--load", missing]) == 2
        captured = capsys.readouterr()
        assert "cannot load" in captured.err
        assert captured.out == ""


class TestBench:
    def test_bench_writes_report_and_renders(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_test.json")
        assert main(["bench", "--scenarios", "single", "--label", "test",
                     "--out", out]) == 0
        captured = capsys.readouterr()
        assert "benchmark report written to" in captured.err
        assert "single" in captured.err
        assert captured.out == ""
        report = json.loads(open(out).read())
        assert report["label"] == "test"
        assert report["results"][0]["scenario"] == "single"
        assert report["results"][0]["wall_clock"] > 0

    def test_bench_json_on_stdout(self, tmp_path, capsys):
        assert main(["bench", "--scenarios", "single", "--out", "-",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results"][0]["sim_per_wall"] > 0

    def test_compare_clean_against_self(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_a.json")
        assert main(["bench", "--scenarios", "single", "--out", out]) == 0
        capsys.readouterr()
        assert main(["bench", "--load", out, "--compare", out]) == 0
        err = capsys.readouterr().err
        assert "no regression" in err
        assert "environment mismatch" not in err

    def test_compare_warns_on_environment_mismatch(self, tmp_path,
                                                   capsys):
        out = str(tmp_path / "BENCH_a.json")
        assert main(["bench", "--scenarios", "single", "--out", out]) == 0
        payload = json.loads(open(out).read())
        payload["meta"]["python"] = "2.7.18"
        other = str(tmp_path / "BENCH_elsewhere.json")
        with open(other, "w") as handle:
            json.dump(payload, handle)
        capsys.readouterr()
        # Same numbers, different recorded environment: a warning, not
        # a gate failure.
        assert main(["bench", "--load", out, "--compare", other]) == 0
        err = capsys.readouterr().err
        assert "repro bench: warning: environment mismatch" in err
        assert "2.7.18" in err
        assert "no regression" in err

    def test_compare_tightened_baseline_exits_nonzero(self, tmp_path,
                                                      capsys):
        out = str(tmp_path / "BENCH_a.json")
        assert main(["bench", "--scenarios", "single", "--out", out]) == 0
        payload = json.loads(open(out).read())
        for entry in payload["results"]:
            entry["wall_clock"] /= 10.0
        tight = str(tmp_path / "BENCH_tight.json")
        with open(tight, "w") as handle:
            json.dump(payload, handle)
        capsys.readouterr()
        assert main(["bench", "--load", out, "--compare", tight]) == 1
        err = capsys.readouterr().err
        assert "PERFORMANCE REGRESSION" in err
        assert "wall_clock" in err

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["bench", "--scenarios", "warp"]) == 2
        assert "unknown benchmark scenario" in capsys.readouterr().err

    def test_load_error_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "--load", missing]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestReportCommand:
    def test_offline_render_from_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(["trace", "--mpdash", "--duration", "30",
                     "--out", trace]) == 0
        capsys.readouterr()
        out = str(tmp_path / "report.html")
        assert main(["report", "--load", trace, "--out", out]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""  # stdout stays machine-parseable
        assert "session report written to" in captured.err
        html = open(out).read()
        assert html.startswith("<!DOCTYPE html>")
        assert "Session overview" in html

    def test_live_session_render(self, tmp_path, capsys):
        out = str(tmp_path / "live.html")
        assert main(["report", "--mpdash", "--duration", "30",
                     "--out", out]) == 0
        assert "session report written to" in capsys.readouterr().err
        assert "Path timelines" in open(out).read()

    def test_missing_trace_exits_1(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["report", "--load", missing]) == 1
        assert "cannot load" in capsys.readouterr().err


class TestSweepReportCli:
    def test_sweep_writes_html_report(self, tmp_path, capsys):
        out = str(tmp_path / "sweep.html")
        assert main(["sweep", "--schemes", "baseline,rate",
                     "--duration", "20", "--wifi", "8", "--lte", "8",
                     "--report", out]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "sweep report written to" in captured.err
        html = open(out).read()
        assert "Scheme comparison" in html
        assert "mpdash-rate" in html

    def test_live_flag_off_tty_keeps_line_progress(self, tmp_path,
                                                   capsys):
        # capsys streams are not TTYs: --live must auto-disable and the
        # classic progress lines stay.
        assert main(["sweep", "--schemes", "baseline", "--duration", "20",
                     "--wifi", "8", "--lte", "8", "--live"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "run 1/1" in captured.err
        assert "\x1b[" not in captured.err  # no ANSI leaked

    def test_bad_bench_report_exits_2(self, tmp_path, capsys):
        out = str(tmp_path / "sweep.html")
        missing = str(tmp_path / "nope.json")
        assert main(["sweep", "--schemes", "baseline", "--duration", "20",
                     "--wifi", "8", "--lte", "8", "--report", out,
                     "--bench", missing]) == 2
        assert "cannot load bench report" in capsys.readouterr().err


class TestBenchHtml:
    def test_html_report_written(self, tmp_path, capsys):
        bench = str(tmp_path / "BENCH_t.json")
        assert main(["bench", "--scenarios", "single", "--out",
                     bench]) == 0
        capsys.readouterr()
        out = str(tmp_path / "bench.html")
        assert main(["bench", "--load", bench, "--html", out]) == 0
        assert "bench HTML report written to" in capsys.readouterr().err
        html = open(out).read()
        assert "Benchmarks" in html
        assert "wall clock" in html

    def test_html_with_compare_embeds_verdict(self, tmp_path, capsys):
        bench = str(tmp_path / "BENCH_t.json")
        assert main(["bench", "--scenarios", "single", "--out",
                     bench]) == 0
        capsys.readouterr()
        out = str(tmp_path / "bench.html")
        assert main(["bench", "--load", bench, "--compare", bench,
                     "--html", out]) == 0
        assert "no regression" in open(out).read()


class TestFleet:
    ARGS = ["fleet", "--sessions", "6", "--shard-size", "3",
            "--duration", "8", "--seed", "3"]

    def test_fleet_json(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        out = capsys.readouterr()
        payload = json.loads(out.out)
        assert payload["completed"] is True
        assert payload["population"]["sessions"] == 6
        assert payload["registry"]  # full population registry on stdout
        assert out.err == ""  # --json keeps stderr quiet

    def test_fleet_table_and_progress(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr()
        assert out.out == ""
        assert "sessions simulated" in out.err
        assert "shard 1/2" in out.err

    def test_fleet_report(self, tmp_path, capsys):
        report = tmp_path / "fleet.html"
        assert main(self.ARGS + ["--json", "--report", str(report)]) == 0
        assert report.stat().st_size > 1000
        assert "fleet report written" in capsys.readouterr().err

    def test_fleet_checkpoint_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        argv = self.ARGS + ["--json", "--checkpoint-dir", ckpt,
                            "--checkpoint-every", "1"]
        assert main(argv + ["--stop-after", "1"]) == 0
        partial = json.loads(capsys.readouterr().out)
        assert partial["completed"] is False
        assert main(argv + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["completed"] is True
        assert resumed["resumed_shards"] == 1

    def test_foreign_checkpoint_exits_2(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        argv = self.ARGS + ["--json", "--checkpoint-dir", ckpt]
        assert main(argv + ["--stop-after", "1"]) == 0
        capsys.readouterr()
        other = ["fleet", "--sessions", "6", "--shard-size", "3",
                 "--duration", "8", "--seed", "4", "--json",
                 "--checkpoint-dir", ckpt, "--resume"]
        assert main(other) == 2
        assert "belongs to fleet" in capsys.readouterr().err

    def test_bad_args_exit_2(self, capsys):
        assert main(["fleet", "--sessions", "-1"]) == 2
        assert main(["fleet", "--resume"]) == 2
        capsys.readouterr()


class TestFleetRecorderCli:
    ARGS = ["fleet", "--sessions", "6", "--shard-size", "3",
            "--duration", "8", "--seed", "3"]

    def record_args(self, tmp_path, extra=()):
        return self.ARGS + ["--record-dir", str(tmp_path / "records"),
                            "--fault-session", "2", *extra]

    def test_record_then_triage_end_to_end(self, tmp_path, capsys):
        assert main(self.record_args(tmp_path, ["--json"])) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recorder"]["captured"] >= 1
        assert any(r["index"] == 2 and r["reason"] == "violation"
                   for r in payload["anomalies"])
        records = str(tmp_path / "records")
        assert main(["triage", "--record-dir", records, "--top", "3",
                     "--json"]) == 0
        triaged = json.loads(capsys.readouterr().out)
        assert triaged["stats"] == payload["recorder"]
        worst = triaged["records"][0]
        assert worst["index"] == 2 and worst["reason"] == "violation"
        assert worst["replay"]["replayed"] is True
        assert worst["replay"]["matches_recorded"] is True

    def test_progress_lines_announce_captures(self, capsys):
        import tempfile

        with tempfile.TemporaryDirectory() as records:
            assert main(self.ARGS + ["--record-dir", records,
                                     "--fault-session", "1"]) == 0
        err = capsys.readouterr().err
        assert "captured session 1 (violation" in err
        assert "recorder captures" in err

    def test_report_links_mini_anomaly_reports(self, tmp_path, capsys):
        report = tmp_path / "out" / "fleet.html"
        report.parent.mkdir()
        assert main(self.record_args(
            tmp_path, ["--json", "--report", str(report),
                       "--triage-top", "2"])) == 0
        capsys.readouterr()
        html = report.read_text()
        assert "Captured anomalies" in html
        assert (tmp_path / "out" / "anomaly-00000002.html").is_file()
        assert "anomaly-00000002.html" in html

    def test_triage_table_and_html(self, tmp_path, capsys):
        assert main(self.record_args(tmp_path, ["--json"])) == 0
        capsys.readouterr()
        html = tmp_path / "triage" / "triage.html"
        html.parent.mkdir()
        assert main(["triage", "--record-dir",
                     str(tmp_path / "records"), "--top", "2",
                     "--html", str(html)]) == 0
        out = capsys.readouterr()
        assert out.out == ""  # table mode keeps stdout machine-clean
        assert "anomaly record(s)" in out.err
        assert "triage report written" in out.err
        assert html.stat().st_size > 500
        assert (tmp_path / "triage" / "anomaly-00000002.html").is_file()

    def test_triage_accepts_campaign_dir_and_key_prefix(self, tmp_path,
                                                        capsys):
        assert main(self.record_args(tmp_path, ["--json"])) == 0
        payload = json.loads(capsys.readouterr().out)
        key = payload["fleet_key"]
        records = str(tmp_path / "records")
        assert main(["triage", "--record-dir", records,
                     "--fleet-key", key[:8], "--json"]) == 0
        triaged = json.loads(capsys.readouterr().out)
        assert triaged["fleet_key"] == key

    def test_triage_without_manifest_exits_2(self, tmp_path, capsys):
        assert main(["triage", "--record-dir",
                     str(tmp_path / "empty")]) == 2
        assert "no anomaly manifest" in capsys.readouterr().err

    def test_triage_unknown_key_prefix_exits_2(self, tmp_path, capsys):
        assert main(self.record_args(tmp_path, ["--json"])) == 0
        capsys.readouterr()
        assert main(["triage", "--record-dir",
                     str(tmp_path / "records"),
                     "--fleet-key", "zzzzzz"]) == 2
        assert "no campaign matching" in capsys.readouterr().err

    def test_triage_ambiguous_campaigns_exit_2(self, tmp_path, capsys):
        records = str(tmp_path / "records")
        for seed in ("3", "4"):
            assert main(["fleet", "--sessions", "3", "--shard-size", "3",
                         "--duration", "8", "--seed", seed,
                         "--record-dir", records, "--json"]) == 0
        capsys.readouterr()
        assert main(["triage", "--record-dir", records]) == 2
        assert "pick one with --fleet-key" in capsys.readouterr().err

    def test_bad_recorder_args_exit_2(self, capsys):
        assert main(self.ARGS + ["--record-dir", "x",
                                 "--record-bottom-k", "-1"]) == 2
        assert main(self.ARGS + ["--fault-session", "-5"]) == 2
        capsys.readouterr()


class TestWhyCli:
    """repro why: attribution over live runs, exports, and campaigns."""

    def fault_trace(self, tmp_path, name="faulty.jsonl"):
        """Export a trace with the seeded scheduler fault."""
        from repro.core.scheduler import DeadlineAwareScheduler

        orig = DeadlineAwareScheduler.on_transfer_start

        def faulty(scheduler, now, transfer, conn):
            orig(scheduler, now, transfer, conn)
            if scheduler.active:
                for path in conn.path_names():
                    conn.request_path_state(path, False)

        path = str(tmp_path / name)
        DeadlineAwareScheduler.on_transfer_start = faulty
        try:
            assert main(["trace"] + SESSION_ARGS + ["--out", path]) == 0
        finally:
            DeadlineAwareScheduler.on_transfer_start = orig
        return path

    def test_live_session_attributes_to_stderr(self, capsys):
        assert main(["why"] + SESSION_ARGS) == 0
        captured = capsys.readouterr()
        assert captured.out == ""  # human table rides stderr
        assert ("no anomalies to attribute" in captured.err
                or "anomalies attributed" in captured.err)

    def test_load_faulty_trace_blames_scheduler(self, tmp_path, capsys):
        path = self.fault_trace(tmp_path)
        capsys.readouterr()
        assert main(["why", "--load", path, "--json"]) == 0
        captured = capsys.readouterr()
        assert f"attributing {path} offline" in captured.err
        payload = json.loads(captured.out)
        assert payload["summary"]["top_layer"] == "scheduler"
        assert payload["summary"]["top_cause"] == \
            "path-control-violation"
        assert payload["attributions"]

    def test_offline_equals_live_verdicts(self, tmp_path, capsys):
        assert main(["why"] + SESSION_ARGS + ["--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        path = str(tmp_path / "run.jsonl")
        assert main(["trace"] + SESSION_ARGS + ["--out", path]) == 0
        capsys.readouterr()
        assert main(["why", "--load", path, "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)
        # The sampler rides along live but never perturbs the session,
        # so verdicts agree; the live trace just has more evidence.
        assert offline["summary"]["total"] == live["summary"]["total"]

    def test_diff_two_arms(self, tmp_path, capsys):
        base = str(tmp_path / "vanilla.jsonl")
        faulty = self.fault_trace(tmp_path)
        assert main(["trace"] + SESSION_ARGS + ["--out", base]) == 0
        capsys.readouterr()
        assert main(["why", "--diff", faulty, base, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aligned_chunks"] > 0
        top = payload["cause_deltas"][0]
        # The injected scheduler fault is the top mover, A-heavy.
        assert top["cause"] == "path-control-violation"
        assert top["delta"] > 0
        assert main(["why", "--diff", faulty, base]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "diffing" in captured.err
        assert "path-control-violation" in captured.err

    def test_diff_load_error_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["why", "--diff", missing, missing]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_load_error_exits_2(self, tmp_path, capsys):
        assert main(["why", "--load",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_record_dir_attributes_campaign(self, tmp_path, capsys):
        records = str(tmp_path / "records")
        assert main(["fleet", "--sessions", "6", "--shard-size", "3",
                     "--duration", "8", "--seed", "3", "--record-dir",
                     records, "--fault-session", "2", "--json"]) == 0
        capsys.readouterr()
        assert main(["why", "--record-dir", records, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet_key"]
        fault = next(r for r in payload["records"] if r["index"] == 2)
        assert fault["why"]["attributed"] is True
        assert fault["why"]["summary"]["top_layer"] == "scheduler"
        # Human mode summarizes per record on stderr.
        assert main(["why", "--record-dir", records]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "session 2 [violation]" in captured.err
        assert "top cause" in captured.err

    def test_record_dir_without_manifest_exits_2(self, tmp_path, capsys):
        assert main(["why", "--record-dir",
                     str(tmp_path / "empty")]) == 2
        assert "no anomaly manifest" in capsys.readouterr().err


class TestTopValidation:
    """--top must be a positive integer on every CLI that ranks."""

    @pytest.mark.parametrize("value", ["0", "-3", "nope"])
    def test_triage_rejects_non_positive_top(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["triage", "--record-dir", "x", "--top", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "argument --top" in err
        assert "positive integer" in err or "not an integer" in err

    @pytest.mark.parametrize("value", ["0", "-1", "2.5"])
    def test_why_rejects_non_positive_top(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["why", "--top", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "argument --top" in err
        assert "positive integer" in err or "not an integer" in err


def _seed_ledger(path, misses=(0.0, 0.0, 0.0), kind="fleet"):
    """Hand-built single-metric history; returns the entries in order.

    Labels are distinct per entry so the content-addressed ids differ
    even when a perfectly stable history repeats one metric value.
    """
    from repro.obs.ledger import LedgerEntry, RunLedger

    ledger = RunLedger(path)
    entries = []
    for i, value in enumerate(misses):
        entry = LedgerEntry(kind=kind, key="grid", label=f"run{i}",
                            environment={"python": "3.11"},
                            metrics={"deadline_misses": value,
                                     "qoe": 5.0})
        ledger.append(entry)
        entries.append(entry)
    return entries


class TestHistory:
    def test_list_table_goes_to_stderr(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        assert main(["history", "list", "--ledger", path]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "3 entries" in captured.err
        assert "fleet" in captured.err

    def test_list_json_is_pure_stdout(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        entries = _seed_ledger(path)
        assert main(["history", "list", "--ledger", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["entry_id"] for e in payload] == [
            entry.entry_id for entry in entries]

    def test_kind_and_last_filters(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path, misses=(0.0, 1.0, 2.0))
        _seed_ledger(path, misses=(9.0,), kind="session")
        assert main(["history", "list", "--ledger", path,
                     "--kind", "fleet", "--last", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["metrics"]["deadline_misses"] for e in payload] == [1.0,
                                                                     2.0]

    def test_missing_ledger_lists_empty(self, tmp_path, capsys):
        assert main(["history", "list", "--ledger",
                     str(tmp_path / "never.jsonl"), "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_corrupt_line_warns_on_stderr(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        with open(path, "a") as handle:
            handle.write("{torn")  # crash mid-append
        assert main(["history", "list", "--ledger", path, "--json"]) == 0
        captured = capsys.readouterr()
        assert len(json.loads(captured.out)) == 3
        assert "skipped unreadable ledger line" in captured.err

    def test_show_prints_canonical_entry(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        entries = _seed_ledger(path)
        target = entries[1]
        assert main(["history", "show", target.entry_id[:10],
                     "--ledger", path]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["entry_id"] == target.entry_id
        assert "deadline_misses" in captured.err  # human metric table

    def test_show_unknown_prefix_exits_2(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        assert main(["history", "show", "ffffff", "--ledger", path]) == 2
        assert "no entry matching" in capsys.readouterr().err

    def test_show_ambiguous_prefix_exits_2(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path, misses=(0.0, 1.0))
        assert main(["history", "show", "", "--ledger", path]) == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_show_requires_exactly_one_id(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        assert main(["history", "show", "--ledger", path]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_diff_reports_deltas(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        entries = _seed_ledger(path, misses=(2.0, 6.0))
        assert main(["history", "diff", entries[0].entry_id[:10],
                     entries[1].entry_id[:10], "--ledger", path,
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        misses = [d for d in document["metrics"]
                  if d["metric"] == "deadline_misses"][0]
        assert misses["a"] == 2.0 and misses["b"] == 6.0
        assert misses["delta"] == 4.0
        assert misses["relative"] == pytest.approx(2.0)
        assert document["environment_changes"] == {}

    def test_diff_requires_two_ids(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        assert main(["history", "diff", "--ledger", path]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_trend_json_document(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        assert main(["history", "trend", "--ledger", path,
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["entries"] == 3
        assert document["gate_ok"] is True
        assert {s["metric"] for s in document["series"]} == {
            "deadline_misses", "qoe"}

    def test_trend_html_written(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        html = str(tmp_path / "trend.html")
        assert main(["history", "trend", "--ledger", path,
                     "--html", html]) == 0
        text = open(html).read()
        assert "MP-DASH run history" in text
        assert "deadline_misses" in text
        assert "written to" in capsys.readouterr().err

    def test_trend_html_bad_bench_report_exits_2(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        assert main(["history", "trend", "--ledger", path,
                     "--html", str(tmp_path / "t.html"),
                     "--bench", str(tmp_path / "missing.json")]) == 2
        assert "cannot load bench report" in capsys.readouterr().err

    def test_gate_passes_on_stable_history(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path)
        assert main(["history", "gate", "--ledger", path]) == 0
        assert "drift gate passed" in capsys.readouterr().err

    def test_gate_fails_on_adverse_drift(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path, misses=(0.0, 0.0, 0.0, 50.0))
        assert main(["history", "gate", "--ledger", path]) == 1
        err = capsys.readouterr().err
        assert "DRIFT GATE FAILED" in err
        assert "deadline_misses" in err

    def test_gate_flag_is_an_alias(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path, misses=(0.0, 0.0, 0.0, 50.0))
        assert main(["history", "--gate", "--ledger", path]) == 1
        capsys.readouterr()

    def test_gate_json_document(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path, misses=(0.0, 0.0, 0.0, 50.0))
        assert main(["history", "gate", "--ledger", path, "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["gate_ok"] is False
        assert any(f["severity"] == "error"
                   for f in document["findings"])

    def test_stream_ledger_flag_appends(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        path = str(tmp_path / "runs.jsonl")
        assert main(["stream", "--abr", "gpac", "--duration", "60",
                     "--wifi", "10", "--lte", "10",
                     "--ledger", path]) == 0
        capsys.readouterr()
        entries = RunLedger(path).entries()
        assert len(entries) == 1 and entries[0].kind == "session"


class TestHistoryDeterminism:
    """The pinned ISSUE contract: every derived view is a byte-
    deterministic pure function of the ledger file."""

    def _trend_bytes(self, path, capsys):
        assert main(["history", "trend", "--ledger", path,
                     "--json"]) == 0
        return capsys.readouterr().out

    def test_trend_json_is_byte_identical(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path, misses=(0.0, 1.0, 0.0, 50.0))
        assert self._trend_bytes(path, capsys) == self._trend_bytes(
            path, capsys)

    def test_history_html_is_byte_identical(self, tmp_path):
        from repro.obs import history_report_html
        from repro.obs.ledger import RunLedger

        path = str(tmp_path / "runs.jsonl")
        _seed_ledger(path, misses=(0.0, 1.0, 0.0, 50.0))
        entries = RunLedger(path).entries()
        first = history_report_html(entries)
        second = history_report_html(RunLedger(path).entries())
        assert first.encode("utf-8") == second.encode("utf-8")

    def test_gate_verdict_survives_copying_the_ledger(self, tmp_path,
                                                      capsys):
        import shutil

        live = str(tmp_path / "live.jsonl")
        _seed_ledger(live, misses=(0.0, 0.0, 0.0, 50.0))
        copy = str(tmp_path / "copy.jsonl")
        shutil.copyfile(live, copy)
        live_code = main(["history", "gate", "--ledger", live])
        live_out = capsys.readouterr()
        copy_code = main(["history", "gate", "--ledger", copy])
        copy_out = capsys.readouterr()
        assert live_code == copy_code == 1
        assert live_out.err == copy_out.err
        assert self._trend_bytes(live, capsys) == self._trend_bytes(
            copy, capsys)
