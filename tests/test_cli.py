"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.video == "big_buck_bunny"
        assert args.abr == "festive"
        assert not args.mpdash

    def test_unknown_abr_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--abr", "nope"])

    def test_download_args(self):
        args = build_parser().parse_args(
            ["download", "--size-mb", "7", "--deadline", "12"])
        assert args.size_mb == 7.0
        assert args.deadline == 12.0


class TestCommands:
    def test_videos_lists_table3(self, capsys):
        assert main(["videos"]) == 0
        out = capsys.readouterr().out
        assert "big_buck_bunny" in out
        assert "tears_of_steel_hd" in out
        assert "3.94" in out

    def test_locations_lists_catalog(self, capsys):
        assert main(["locations"]) == 0
        out = capsys.readouterr().out
        assert "hotel_hi" in out
        assert out.count("\n") > 33

    def test_download_runs(self, capsys):
        assert main(["download", "--size-mb", "2", "--deadline", "8",
                     "--wifi", "4", "--lte", "4"]) == 0
        out = capsys.readouterr().out
        assert "deadline met" in out
        assert "True" in out

    def test_stream_runs_short_session(self, capsys):
        assert main(["stream", "--abr", "gpac", "--duration", "60",
                     "--wifi", "8", "--lte", "8", "--mpdash"]) == 0
        out = capsys.readouterr().out
        assert "cellular MB" in out
        assert "stalls" in out

    def test_stream_visualize(self, capsys):
        assert main(["stream", "--abr", "gpac", "--duration", "60",
                     "--wifi", "8", "--lte", "8", "--visualize"]) == 0
        out = capsys.readouterr().out
        assert "levels:" in out  # the chunk-strip legend

    def test_compare_runs(self, capsys):
        assert main(["compare", "--abr", "gpac", "--duration", "60",
                     "--wifi", "6", "--lte", "4"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "rate" in out
        assert "cell saved" in out
