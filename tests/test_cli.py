"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.video == "big_buck_bunny"
        assert args.abr == "festive"
        assert not args.mpdash

    def test_unknown_abr_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--abr", "nope"])

    def test_download_args(self):
        args = build_parser().parse_args(
            ["download", "--size-mb", "7", "--deadline", "12"])
        assert args.size_mb == 7.0
        assert args.deadline == 12.0


class TestCommands:
    def test_videos_lists_table3(self, capsys):
        assert main(["videos"]) == 0
        out = capsys.readouterr().out
        assert "big_buck_bunny" in out
        assert "tears_of_steel_hd" in out
        assert "3.94" in out

    def test_locations_lists_catalog(self, capsys):
        assert main(["locations"]) == 0
        out = capsys.readouterr().out
        assert "hotel_hi" in out
        assert out.count("\n") > 33

    def test_download_runs(self, capsys):
        assert main(["download", "--size-mb", "2", "--deadline", "8",
                     "--wifi", "4", "--lte", "4"]) == 0
        out = capsys.readouterr().out
        assert "deadline met" in out
        assert "True" in out

    def test_stream_runs_short_session(self, capsys):
        assert main(["stream", "--abr", "gpac", "--duration", "60",
                     "--wifi", "8", "--lte", "8", "--mpdash"]) == 0
        out = capsys.readouterr().out
        assert "cellular MB" in out
        assert "stalls" in out

    def test_stream_visualize(self, capsys):
        assert main(["stream", "--abr", "gpac", "--duration", "60",
                     "--wifi", "8", "--lte", "8", "--visualize"]) == 0
        out = capsys.readouterr().out
        assert "levels:" in out  # the chunk-strip legend

    def test_compare_runs(self, capsys):
        assert main(["compare", "--abr", "gpac", "--duration", "60",
                     "--wifi", "6", "--lte", "4"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "rate" in out
        assert "cell saved" in out


class TestSweep:
    def test_sweep_json_parallel(self, capsys):
        assert main(["sweep", "--abr", "gpac", "--duration", "20",
                     "--wifi", "8", "--lte", "8",
                     "--grid", "wifi_mbps=6,8", "--jobs", "2",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 2
        assert report["succeeded"] == 2
        assert report["failed"] == 0
        assert report["jobs"] == 2
        assert all(run["status"] == "ok" for run in report["runs"])

    def test_sweep_table_output(self, capsys):
        assert main(["sweep", "--abr", "gpac", "--duration", "20",
                     "--wifi", "8", "--lte", "8",
                     "--schemes", "baseline,rate"]) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "status" in out

    def test_sweep_cache_rerun_hits(self, tmp_path, capsys):
        argv = ["sweep", "--abr", "gpac", "--duration", "20",
                "--wifi", "8", "--lte", "8",
                "--grid", "wifi_mbps=6,8",
                "--cache-dir", str(tmp_path / "cache"), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache_hits"] == 0
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache_hits"] == 2
        assert all(run["cached"] for run in second["runs"])

    def test_sweep_bad_grid_field_exits_2(self, capsys):
        assert main(["sweep", "--grid", "wombat=1,2"]) == 2
        err = capsys.readouterr().err
        assert "wombat" in err

    def test_sweep_malformed_grid_exits_2(self, capsys):
        assert main(["sweep", "--grid", "wifi_mbps"]) == 2


class TestTrace:
    def test_trace_json_summary(self, capsys):
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--mpdash", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["source"] == "live"
        assert summary["meta"]["session_duration"] > 0
        assert summary["events"]["total"] == sum(
            summary["events"]["by_type"].values())
        assert summary["events"]["by_type"]["SessionClosed"] == 1
        assert summary["metrics"]["chunk_count"] > 0

    def test_trace_export_then_load_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--mpdash", "--out", path,
                     "--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        assert main(["trace", "--load", path, "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)
        # Offline analysis of the export reproduces the live run exactly.
        assert offline["metrics"] == live["metrics"]
        assert offline["events"] == live["events"]
        assert offline["source"] == path

    def test_trace_diff_reports_delta(self, tmp_path, capsys):
        base = str(tmp_path / "vanilla.jsonl")
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--out", base]) == 0
        capsys.readouterr()
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8", "--mpdash", "--diff", base,
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"a", "b", "delta"}
        assert report["a"]["source"] == "live"
        assert report["b"]["source"] == base
        for key, value in report["delta"].items():
            assert value == (report["b"]["metrics"][key]
                             - report["a"]["metrics"][key])

    def test_trace_table_output(self, capsys):
        assert main(["trace", "--duration", "40", "--wifi", "8",
                     "--lte", "8"]) == 0
        out = capsys.readouterr().out
        assert "trace live" in out
        assert "events" in out
        assert "energy J" in out
