"""Tests for the offline optimal (knapsack) schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offline import (fluid_lower_bound, solve_greedy,
                                solve_offline)

COSTS = {"wifi": 0.0, "cellular": 1.0}


def simple_instance(wifi_rate=500.0, cell_rate=400.0, slots=10):
    return {"wifi": [wifi_rate] * slots, "cellular": [cell_rate] * slots}


class TestValidation:
    @pytest.mark.parametrize("solver", [solve_offline, solve_greedy])
    def test_empty_interfaces_rejected(self, solver):
        with pytest.raises(ValueError):
            solver({}, COSTS, 1.0, 100.0)

    def test_mismatched_slot_counts_rejected(self):
        with pytest.raises(ValueError):
            solve_offline({"wifi": [1.0], "cellular": [1.0, 2.0]},
                          COSTS, 1.0, 100.0)

    def test_missing_costs_rejected(self):
        with pytest.raises(ValueError):
            solve_offline({"wifi": [1.0]}, {}, 1.0, 100.0)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            solve_offline(simple_instance(), COSTS, 1.0, 0.0)

    def test_non_positive_slot_rejected(self):
        with pytest.raises(ValueError):
            solve_offline(simple_instance(), COSTS, 0.0, 100.0)


class TestOptimalSolver:
    def test_wifi_only_when_sufficient(self):
        bw = simple_instance()
        solution = solve_offline(bw, COSTS, 1.0, 3000.0)
        assert solution.cost == 0.0
        assert solution.bytes_per_path.get("cellular", 0.0) == 0.0
        assert solution.total_bytes >= 3000.0

    def test_cellular_tops_up_deficit(self):
        bw = simple_instance(wifi_rate=500.0, cell_rate=400.0, slots=10)
        # WiFi capacity 5000; need 6000 -> >= 1000 from cellular.
        solution = solve_offline(bw, COSTS, 1.0, 6000.0)
        assert solution.feasible
        assert solution.total_bytes >= 6000.0
        assert solution.bytes_per_path["cellular"] >= 1000.0
        # Cellular slots are 400 each: optimal picks 3 (1200 bytes).
        assert solution.bytes_per_path["cellular"] == pytest.approx(
            1200.0, abs=1.0)

    def test_infeasible_instance_flagged(self):
        bw = simple_instance(slots=2)
        solution = solve_offline(bw, COSTS, 1.0, 1e9)
        assert not solution.feasible
        assert solution.total_bytes == pytest.approx(1800.0)

    def test_coverage_always_reached_when_feasible(self):
        rng = np.random.default_rng(7)
        bw = {"wifi": list(rng.uniform(100, 500, 20)),
              "cellular": list(rng.uniform(100, 500, 20))}
        size = 4000.0
        solution = solve_offline(bw, COSTS, 1.0, size)
        assert solution.feasible
        assert solution.total_bytes >= size

    def test_selected_items_match_reported_bytes(self):
        bw = simple_instance()
        solution = solve_offline(bw, COSTS, 1.0, 3000.0)
        recomputed = {}
        for name, j in solution.selected:
            recomputed[name] = recomputed.get(name, 0.0) + bw[name][j] * 1.0
        for name, total in solution.bytes_per_path.items():
            assert recomputed.get(name, 0.0) == pytest.approx(total)

    def test_respects_cost_ordering_three_paths(self):
        bw = {"a": [100.0] * 5, "b": [100.0] * 5, "c": [100.0] * 5}
        costs = {"a": 0.0, "b": 1.0, "c": 10.0}
        solution = solve_offline(bw, costs, 1.0, 700.0)
        assert solution.bytes_per_path.get("a", 0.0) == pytest.approx(500.0)
        assert solution.bytes_per_path.get("b", 0.0) >= 200.0
        assert solution.bytes_per_path.get("c", 0.0) == 0.0

    def test_fraction_on_sums_to_one(self):
        bw = simple_instance(wifi_rate=500.0, cell_rate=400.0)
        size = 6000.0
        solution = solve_offline(bw, COSTS, 1.0, size)
        total = (solution.fraction_on("wifi", size)
                 + solution.fraction_on("cellular", size))
        assert total == pytest.approx(1.0, abs=0.05)


class TestBounds:
    def test_dp_between_fluid_bound_and_greedy(self):
        rng = np.random.default_rng(0)
        bw = {"wifi": list(rng.uniform(3e5, 6e5, 30)),
              "cellular": list(rng.uniform(2e5, 5e5, 30))}
        costs = {"wifi": 0.1, "cellular": 1.0}
        size = 1.6e7
        resolution = size / 4000.0
        dp = solve_offline(bw, costs, 1.0, size, resolution=resolution)
        greedy = solve_greedy(bw, costs, 1.0, size)
        fluid = fluid_lower_bound(bw, costs, 1.0, size)
        # DP is optimal up to one resolution quantum per selected item.
        tolerance = resolution * len(dp.selected) * max(costs.values())
        assert dp.cost <= greedy.cost + tolerance
        assert dp.cost >= fluid - 1e-6

    def test_dp_converges_with_resolution(self):
        rng = np.random.default_rng(1)
        bw = {"wifi": list(rng.uniform(3e5, 6e5, 20)),
              "cellular": list(rng.uniform(2e5, 5e5, 20))}
        costs = {"wifi": 0.1, "cellular": 1.0}
        size = 1.1e7
        coarse = solve_offline(bw, costs, 1.0, size, resolution=size / 500)
        fine = solve_offline(bw, costs, 1.0, size, resolution=size / 8000)
        assert fine.cost <= coarse.cost + 1e-6


class TestGreedy:
    def test_greedy_covers_size(self):
        bw = simple_instance()
        solution = solve_greedy(bw, COSTS, 1.0, 6000.0)
        assert solution.feasible
        assert solution.total_bytes >= 6000.0

    def test_greedy_prefers_cheap_tier(self):
        bw = simple_instance()
        solution = solve_greedy(bw, COSTS, 1.0, 3000.0)
        assert solution.bytes_per_path.get("cellular", 0.0) == 0.0

    def test_greedy_infeasible(self):
        solution = solve_greedy(simple_instance(slots=1), COSTS, 1.0, 1e9)
        assert not solution.feasible


class TestFluidBound:
    def test_exact_on_uniform_instance(self):
        bw = simple_instance(wifi_rate=500.0, cell_rate=400.0, slots=10)
        # Need 6000: wifi 5000 free + exactly 1000 cellular.
        assert fluid_lower_bound(bw, COSTS, 1.0, 6000.0) == pytest.approx(
            1000.0)

    def test_zero_when_cheap_capacity_sufficient(self):
        assert fluid_lower_bound(simple_instance(), COSTS, 1.0, 100.0) == 0.0


class TestProperties:
    @given(
        st.lists(st.floats(min_value=10.0, max_value=1000.0), min_size=2,
                 max_size=12),
        st.lists(st.floats(min_value=10.0, max_value=1000.0), min_size=2,
                 max_size=12),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=30, deadline=None)
    def test_dp_invariants(self, wifi, cell, demand_fraction):
        slots = min(len(wifi), len(cell))
        bw = {"wifi": wifi[:slots], "cellular": cell[:slots]}
        capacity = sum(wifi[:slots]) + sum(cell[:slots])
        size = capacity * demand_fraction
        solution = solve_offline(bw, COSTS, 1.0, size)
        assert solution.feasible
        assert solution.total_bytes >= size - 1e-6
        assert solution.cost >= fluid_lower_bound(bw, COSTS, 1.0, size) - 1e-6
        assert solution.cost == pytest.approx(
            solution.bytes_per_path.get("cellular", 0.0))


class TestTimeVaryingCosts:
    """The §4 formulation's c(i, j) is per-slot; costs may vary in time."""

    def test_per_slot_costs_accepted(self):
        bw = {"wifi": [500.0] * 4, "cellular": [400.0] * 4}
        costs = {"wifi": 0.0, "cellular": [1.0, 1.0, 5.0, 5.0]}
        solution = solve_offline(bw, costs, 1.0, 2600.0)
        assert solution.feasible
        # The 600-byte deficit is covered by cheap-hour cellular slots.
        cheap = {("cellular", 0), ("cellular", 1)}
        chosen_cell = {item for item in solution.selected
                       if item[0] == "cellular"}
        assert chosen_cell <= cheap

    def test_expensive_hours_avoided_by_greedy_too(self):
        bw = {"wifi": [500.0] * 4, "cellular": [400.0] * 4}
        costs = {"wifi": 0.0, "cellular": [5.0, 5.0, 1.0, 1.0]}
        solution = solve_greedy(bw, costs, 1.0, 2600.0)
        chosen_cell = {item for item in solution.selected
                       if item[0] == "cellular"}
        assert chosen_cell <= {("cellular", 2), ("cellular", 3)}

    def test_fluid_bound_respects_slot_costs(self):
        bw = {"wifi": [500.0] * 2, "cellular": [400.0] * 2}
        costs = {"wifi": 0.0, "cellular": [1.0, 3.0]}
        # Deficit 200 bytes, cheapest cellular slot costs 1/byte.
        assert fluid_lower_bound(bw, costs, 1.0, 1200.0) == pytest.approx(
            200.0)

    def test_wrong_length_rejected(self):
        bw = {"wifi": [500.0] * 4}
        with pytest.raises(ValueError):
            solve_offline(bw, {"wifi": [1.0, 2.0]}, 1.0, 100.0)

    def test_mixed_static_and_per_slot(self):
        bw = {"wifi": [500.0] * 3, "cellular": [400.0] * 3}
        costs = {"wifi": 0.1, "cellular": [0.5, 2.0, 2.0]}
        solution = solve_offline(bw, costs, 1.0, 1800.0)
        assert solution.feasible
        assert solution.total_bytes >= 1800.0
