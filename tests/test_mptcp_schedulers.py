"""Tests for the MPTCP packet schedulers."""

import pytest

from repro.mptcp.schedulers import (MinRttScheduler, RoundRobinScheduler,
                                    make_scheduler, scheduler_names)
from repro.mptcp.subflow import Subflow
from repro.net.link import Path
from repro.net.trace import BandwidthTrace


def _subflow(name, rtt):
    return Subflow(Path(name, BandwidthTrace.constant(1e6), rtt=rtt))


@pytest.fixture
def subflows():
    return [_subflow("wifi", 0.05), _subflow("cellular", 0.08)]


class TestMinRtt:
    def test_saturated_fills_everything(self, subflows):
        sched = MinRttScheduler()
        budgets = {"wifi": 100.0, "cellular": 100.0}
        alloc = sched.allocate(1000.0, subflows, budgets)
        assert alloc == {"wifi": 100.0, "cellular": 100.0}

    def test_sliver_goes_to_lowest_rtt_first(self, subflows):
        sched = MinRttScheduler()
        budgets = {"wifi": 100.0, "cellular": 100.0}
        alloc = sched.allocate(60.0, subflows, budgets)
        assert alloc == {"wifi": 60.0, "cellular": 0.0}

    def test_sliver_overflows_to_next_path(self, subflows):
        sched = MinRttScheduler()
        budgets = {"wifi": 100.0, "cellular": 100.0}
        alloc = sched.allocate(150.0, subflows, budgets)
        assert alloc == {"wifi": 100.0, "cellular": 50.0}

    def test_rtt_order_not_list_order(self, subflows):
        sched = MinRttScheduler()
        budgets = {"wifi": 100.0, "cellular": 100.0}
        alloc = sched.allocate(60.0, list(reversed(subflows)), budgets)
        assert alloc["wifi"] == 60.0


class TestRoundRobin:
    def test_saturated_fills_everything(self, subflows):
        sched = RoundRobinScheduler()
        budgets = {"wifi": 100.0, "cellular": 300.0}
        alloc = sched.allocate(1000.0, subflows, budgets)
        assert alloc == {"wifi": 100.0, "cellular": 300.0}

    def test_sliver_split_proportionally(self, subflows):
        sched = RoundRobinScheduler()
        budgets = {"wifi": 100.0, "cellular": 300.0}
        alloc = sched.allocate(200.0, subflows, budgets)
        assert alloc["wifi"] == pytest.approx(50.0)
        assert alloc["cellular"] == pytest.approx(150.0)

    def test_zero_budget_allocates_nothing(self, subflows):
        sched = RoundRobinScheduler()
        alloc = sched.allocate(100.0, subflows,
                               {"wifi": 0.0, "cellular": 0.0})
        assert alloc == {"wifi": 0.0, "cellular": 0.0}


class TestCommonInvariants:
    @pytest.mark.parametrize("name", ["minrtt", "roundrobin"])
    def test_never_exceeds_budget_or_remaining(self, name, subflows):
        sched = make_scheduler(name)
        budgets = {"wifi": 70.0, "cellular": 40.0}
        for remaining in (0.0, 10.0, 100.0, 110.0, 500.0):
            alloc = sched.allocate(remaining, subflows, budgets)
            assert sum(alloc.values()) <= remaining + 1e-9
            for key, value in alloc.items():
                assert value <= budgets[key] + 1e-9
                assert value >= 0.0


class TestFactory:
    def test_make_by_name(self):
        assert make_scheduler("minrtt").name == "minrtt"
        assert make_scheduler("roundrobin").name == "roundrobin"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown MPTCP scheduler"):
            make_scheduler("bogus")

    def test_names_listed(self):
        assert scheduler_names() == ["minrtt", "roundrobin"]
