"""Tests for the perf-regression benchmark harness (repro.obs.bench)."""

import json

import pytest

from repro.obs.bench import (SCENARIOS, BenchReport, BenchResult,
                             compare_meta, compare_reports, run_bench,
                             run_scenario)


def result(scenario="single", wall_clock=1.0, sim_seconds=300.0,
           events=1000, peak_rss_kb=50000, repeats=1):
    return BenchResult(
        scenario=scenario, wall_clock=wall_clock, sim_seconds=sim_seconds,
        sim_per_wall=sim_seconds / wall_clock, events=events,
        events_per_sec=(events / wall_clock if events is not None else None),
        peak_rss_kb=peak_rss_kb, repeats=repeats)


class TestBenchReportSerialization:
    def test_round_trip(self, tmp_path):
        report = BenchReport(label="x", results=[result(), result("sweep16",
                                                                  events=None)],
                             meta={"python": "3.11"})
        path = str(tmp_path / "BENCH_x.json")
        report.dump(path)
        loaded = BenchReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.result("sweep16").events is None

    def test_dump_is_stable_json(self, tmp_path):
        report = BenchReport(label="x", results=[result()])
        path = str(tmp_path / "b.json")
        report.dump(path)
        payload = json.loads(open(path).read())
        assert payload["label"] == "x"
        assert payload["results"][0]["scenario"] == "single"

    def test_old_payload_without_optionals_loads(self):
        loaded = BenchReport.from_dict({
            "label": "old",
            "results": [{"scenario": "single", "wall_clock": 1.0,
                         "sim_seconds": 300.0, "sim_per_wall": 300.0}]})
        entry = loaded.result("single")
        assert entry.events is None and entry.peak_rss_kb is None
        assert entry.repeats == 1

    def test_render_lists_every_scenario(self):
        report = BenchReport(label="x",
                             results=[result(), result("mobility")])
        text = report.render()
        assert "single" in text and "mobility" in text
        assert "sim/wall" in text


class TestCompareReports:
    def test_identical_reports_clean(self):
        report = BenchReport(label="a", results=[result()])
        assert compare_reports(report, report, 0.25) == []

    def test_wall_clock_regression_detected(self):
        baseline = BenchReport(label="b", results=[result(wall_clock=1.0)])
        current = BenchReport(label="c", results=[result(wall_clock=1.5)])
        regressions = compare_reports(current, baseline, 0.25)
        assert len(regressions) >= 1
        assert any("wall_clock" in r for r in regressions)

    def test_drift_within_threshold_clean(self):
        baseline = BenchReport(label="b", results=[result(wall_clock=1.0)])
        current = BenchReport(label="c", results=[result(wall_clock=1.2)])
        assert compare_reports(current, baseline, 0.25) == []

    def test_throughput_drop_detected(self):
        baseline = BenchReport(label="b",
                               results=[result(events=1000)])
        current = BenchReport(label="c", results=[result(events=100)])
        regressions = compare_reports(current, baseline, 0.25)
        assert any("events_per_sec" in r for r in regressions)

    def test_rss_growth_detected(self):
        baseline = BenchReport(label="b",
                               results=[result(peak_rss_kb=10000)])
        current = BenchReport(label="c",
                              results=[result(peak_rss_kb=20000)])
        regressions = compare_reports(current, baseline, 0.25)
        assert any("peak_rss_kb" in r for r in regressions)

    def test_missing_scenario_or_metric_skipped(self):
        baseline = BenchReport(
            label="b", results=[result(), result("mobility", events=None,
                                                 peak_rss_kb=None)])
        current = BenchReport(label="c", results=[result()])
        assert compare_reports(current, baseline, 0.25) == []

    def test_artificially_tightened_baseline_regresses(self):
        report = BenchReport(label="now", results=[result(wall_clock=1.0)])
        payload = report.to_dict()
        for entry in payload["results"]:
            entry["wall_clock"] /= 10.0
            entry["sim_per_wall"] *= 10.0
        tightened = BenchReport.from_dict(payload)
        regressions = compare_reports(report, tightened, 0.25)
        assert any("wall_clock" in r for r in regressions)
        assert any("sim_per_wall" in r for r in regressions)

    def test_negative_threshold_rejected(self):
        report = BenchReport(label="a", results=[result()])
        with pytest.raises(ValueError):
            compare_reports(report, report, -0.1)


class TestRunScenario:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark scenario"):
            run_scenario("warp-speed")

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("single", repeats=0)

    def test_single_scenario_measures(self):
        measured = run_scenario("single")
        assert measured.scenario == "single"
        assert measured.wall_clock > 0
        assert measured.sim_seconds > 0
        assert measured.sim_per_wall > 0
        assert measured.events and measured.events > 0
        assert measured.events_per_sec and measured.events_per_sec > 0

    def test_mobility_scenario_measures(self):
        measured = run_scenario("mobility")
        assert measured.scenario == "mobility"
        assert measured.sim_seconds > 0
        assert measured.events and measured.events > 0

    def test_single_tick_scenario_measures(self):
        measured = run_scenario("single_tick")
        assert measured.scenario == "single_tick"
        assert measured.sim_seconds > 0
        assert measured.events and measured.events > 0

    def test_scenario_registry_names(self):
        assert set(SCENARIOS) == {"single", "single_tick", "mobility",
                                  "sweep16", "fleet", "fleet_rec"}

    def test_fleet_scenario_measures(self):
        measured = run_scenario("fleet")
        assert measured.scenario == "fleet"
        assert measured.sim_seconds > 0
        assert measured.events is None  # spans many worker buses

    def test_fleet_rec_scenario_measures(self):
        # Same campaign as "fleet" with the flight recorder armed; the
        # pair is what CI's recorder-overhead gate compares.
        measured = run_scenario("fleet_rec")
        assert measured.scenario == "fleet_rec"
        assert measured.sim_seconds > 0


class TestRunBench:
    def test_selected_scenarios_and_progress(self):
        lines = []
        report = run_bench(scenarios=["single"], label="test",
                           progress=lines.append)
        assert [r.scenario for r in report.results] == ["single"]
        assert report.label == "test"
        assert report.meta["python"]
        assert lines and "single" in lines[0]

    def test_ledger_opt_in_appends_bench_entry(self, tmp_path):
        from repro.obs.ledger import RunLedger

        path = str(tmp_path / "runs.jsonl")
        report = run_bench(scenarios=["single"], label="test", ledger=path)
        entries = RunLedger(path).entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.kind == "bench" and entry.key == "test"
        assert entry.metrics["single.wall_clock"] == pytest.approx(
            report.result("single").wall_clock)
        assert entry.environment == dict(report.meta)


class TestEnvironmentMeta:
    def meta(self, **overrides):
        base = {"python": "3.11.7", "platform": "Linux-6.1-x86_64",
                "machine": "x86_64"}
        base.update(overrides)
        return base

    def test_render_includes_environment_line(self):
        report = BenchReport(label="x", results=[result()],
                             meta=self.meta())
        text = report.render()
        assert "env machine=x86_64 platform=Linux-6.1-x86_64" in text
        assert "python=3.11.7" in text

    def test_render_without_meta_has_no_env_line(self):
        report = BenchReport(label="x", results=[result()])
        assert "env " not in report.render()

    def report(self, **overrides):
        return BenchReport(label="x", results=[result()],
                           meta=self.meta(**overrides))

    def test_compare_meta_agreement_is_silent(self):
        assert compare_meta(self.report(), self.report()) == []

    def test_compare_meta_flags_each_differing_field(self):
        mismatches = compare_meta(self.report(),
                                  self.report(python="3.10.0",
                                              machine="aarch64"))
        assert sorted(m.field for m in mismatches) == ["machine", "python"]
        python = [m for m in mismatches if m.field == "python"][0]
        assert python.current == "3.11.7"
        assert python.baseline == "3.10.0"
        text = python.render()
        assert "environment mismatch" in text
        assert "3.11.7" in text and "3.10.0" in text
        assert str(python) == text

    def test_compare_meta_handles_unrecorded_fields(self):
        old_baseline = BenchReport(label="old", results=[result()],
                                   meta={"python": "3.10.0"})
        mismatches = compare_meta(self.report(python="3.10.0"),
                                  old_baseline)
        assert sorted(m.field for m in mismatches) == ["machine",
                                                       "platform"]
        assert all(m.baseline is None for m in mismatches)
        assert all("(unrecorded)" in m.render() for m in mismatches)

    def test_compare_meta_empty_both_ways(self):
        bare = BenchReport(label="bare", results=[result()])
        assert compare_meta(bare, bare) == []
