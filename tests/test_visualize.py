"""Tests for the text visualizations."""

import pytest

from repro.analysis.analyzer import ChunkView
from repro.analysis.visualize import chunk_timeline, sparkline, \
    throughput_plot


def view(index, level, cellular):
    return ChunkView(index=index, level=level, start=index * 4.0,
                     end=index * 4.0 + 2.0, size=1e6,
                     cellular_fraction=cellular)


class TestChunkTimeline:
    def test_renders_every_chunk(self):
        chunks = [view(i, i % 5, 0.0) for i in range(10)]
        text = chunk_timeline(chunks)
        assert text.count(".") >= 10  # one no-cellular marker per chunk

    def test_cellular_fraction_digit(self):
        text = chunk_timeline([view(0, 4, 0.73)])
        assert "7" in text.splitlines()[0]

    def test_zero_cellular_marked_with_dot(self):
        text = chunk_timeline([view(0, 4, 0.0)])
        assert "." in text.splitlines()[0]

    def test_legend_present(self):
        assert "levels:" in chunk_timeline([view(0, 0, 0.0)])

    def test_wraps_long_sessions(self):
        chunks = [view(i, 0, 0.0) for i in range(200)]
        lines = chunk_timeline(chunks, width=50).splitlines()
        assert len(lines) > 3

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            chunk_timeline([view(0, 0, 0.0)], width=2)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0.0, 5.0, 10.0])
        assert line[0] <= line[1] <= line[2]

    def test_all_zero(self):
        assert sparkline([0.0, 0.0]) == "  "


class TestThroughputPlot:
    def test_includes_labels_and_means(self):
        series = [("wifi", [1e6] * 50), ("lte", [5e5] * 50)]
        text = throughput_plot(series, interval=0.1)
        assert "wifi" in text and "lte" in text
        assert "Mbps" in text

    def test_downsamples_long_series(self):
        series = [("wifi", [1e6] * 10_000)]
        text = throughput_plot(series, interval=0.1, width=40)
        first_line = text.splitlines()[0]
        assert len(first_line) < 100

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            throughput_plot([("a", [1.0])], 0.1, width=3)
