"""Tests for the figure geometry and the text visualizations."""

import pytest

from repro.analysis.analyzer import ChunkView
from repro.analysis.visualize import (NUM_LEVELS, chunk_cells,
                                      chunk_timeline, sparkline,
                                      throughput_plot)


def view(index, level, cellular):
    return ChunkView(index=index, level=level, start=index * 4.0,
                     end=index * 4.0 + 2.0, size=1e6,
                     cellular_fraction=cellular)


class TestChunkCells:
    def test_one_cell_per_chunk(self):
        cells = chunk_cells([view(i, 0, 0.0) for i in range(7)])
        assert [c.index for c in cells] == list(range(7))

    def test_level_clamped_to_bands(self):
        cell = chunk_cells([view(0, NUM_LEVELS + 3, 0.0)])[0]
        assert cell.level == NUM_LEVELS - 1
        assert cell.height_fraction == 1.0

    def test_height_fraction_one_band_per_level(self):
        fractions = [chunk_cells([view(0, level, 0.0)])[0].height_fraction
                     for level in range(NUM_LEVELS)]
        assert fractions == sorted(fractions)
        assert fractions[0] == pytest.approx(1.0 / NUM_LEVELS)

    def test_marker_tenths(self):
        assert chunk_cells([view(0, 0, 0.0)])[0].marker == "."
        assert chunk_cells([view(0, 0, 0.73)])[0].marker == "7"
        assert chunk_cells([view(0, 0, 1.0)])[0].marker == "9"

    def test_window_and_duration_preserved(self):
        cell = chunk_cells([view(3, 1, 0.5)])[0]
        assert (cell.start, cell.end) == (12.0, 14.0)
        assert cell.duration == pytest.approx(2.0)
        assert cell.cellular_fraction == 0.5

    def test_text_strip_consumes_the_same_geometry(self):
        chunks = [view(i, i % NUM_LEVELS, i / 10) for i in range(5)]
        first_line = chunk_timeline(chunks).splitlines()[0]
        expected = "".join(c.glyph + c.marker for c in chunk_cells(chunks))
        assert first_line == expected


class TestChunkTimeline:
    def test_renders_every_chunk(self):
        chunks = [view(i, i % 5, 0.0) for i in range(10)]
        text = chunk_timeline(chunks)
        assert text.count(".") >= 10  # one no-cellular marker per chunk

    def test_cellular_fraction_digit(self):
        text = chunk_timeline([view(0, 4, 0.73)])
        assert "7" in text.splitlines()[0]

    def test_zero_cellular_marked_with_dot(self):
        text = chunk_timeline([view(0, 4, 0.0)])
        assert "." in text.splitlines()[0]

    def test_legend_present(self):
        assert "levels:" in chunk_timeline([view(0, 0, 0.0)])

    def test_wraps_long_sessions(self):
        chunks = [view(i, 0, 0.0) for i in range(200)]
        lines = chunk_timeline(chunks, width=50).splitlines()
        assert len(lines) > 3

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            chunk_timeline([view(0, 0, 0.0)], width=2)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_explicit_maximum_rescales(self):
        assert sparkline([5.0], maximum=10.0) != sparkline([5.0])

    def test_none_maximum_uses_peak(self):
        assert sparkline([5.0], maximum=None) == sparkline([5.0])

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0.0, 5.0, 10.0])
        assert line[0] <= line[1] <= line[2]

    def test_all_zero(self):
        assert sparkline([0.0, 0.0]) == "  "


class TestThroughputPlot:
    def test_includes_labels_and_means(self):
        series = [("wifi", [1e6] * 50), ("lte", [5e5] * 50)]
        text = throughput_plot(series, interval=0.1)
        assert "wifi" in text and "lte" in text
        assert "Mbps" in text

    def test_downsamples_long_series(self):
        series = [("wifi", [1e6] * 10_000)]
        text = throughput_plot(series, interval=0.1, width=40)
        first_line = text.splitlines()[0]
        assert len(first_line) < 100

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            throughput_plot([("a", [1.0])], 0.1, width=3)

    def test_no_series_renders_footer_only(self):
        text = throughput_plot([], interval=0.1)
        assert "peak 0.00" in text

    def test_empty_series_mean_zero(self):
        text = throughput_plot([("idle", [])], interval=0.1)
        assert "mean=0.00" in text
