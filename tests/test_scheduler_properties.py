"""Property-based tests of the scheduling core (hypothesis).

These pin the invariants the paper's §4 argument rests on, across randomly
drawn workloads rather than hand-picked points:

* feasible deadlines are met by the online algorithm;
* the clairvoyant oracle never uses more cellular than the online
  algorithm (it is the optimum for N=2);
* on constant-rate paths the oracle's cellular usage equals the analytic
  deficit ``max(0, S − R_wifi · D)``.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.tracesim import simulate_online, simulate_oracle
from repro.net.units import mbps

SLOT = 0.05

rates = st.floats(min_value=0.5, max_value=30.0)
sizes = st.floats(min_value=0.5e6, max_value=30e6)


def constant(rate_mbps):
    return [mbps(rate_mbps)] * 4000


class TestFeasibilityProperties:
    @given(wifi=rates, lte=rates, size=sizes,
           slack=st.floats(min_value=1.1, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_feasible_deadline_is_met(self, wifi, lte, size, slack):
        """Deadline = slack x the combined-capacity lower bound."""
        deadline = slack * size / (mbps(wifi) + mbps(lte))
        assume(deadline > 20 * SLOT)  # sub-second deadlines quantize away
        result = simulate_online(constant(wifi), constant(lte), SLOT, size,
                                 deadline)
        # One slot of tolerance: decisions update once per slot, so a
        # knife-edge deadline can slip by less than a slot.
        assert result.miss_by <= SLOT
        assert result.finish_time <= deadline + SLOT
        assert result.total_bytes == pytest.approx(size, rel=1e-9)

    @given(wifi=rates, lte=rates, size=sizes,
           slack=st.floats(min_value=1.1, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_oracle_never_uses_more_cellular_than_online(self, wifi, lte,
                                                         size, slack):
        deadline = slack * size / (mbps(wifi) + mbps(lte))
        assume(deadline > 20 * SLOT)
        oracle = simulate_oracle(constant(wifi), constant(lte), SLOT, size,
                                 deadline)
        online = simulate_online(constant(wifi), constant(lte), SLOT, size,
                                 deadline)
        # Quantization slack on both axes: decisions update per slot, and
        # the online run may finish up to one slot past the deadline —
        # gaining one slot of WiFi the oracle did not have.
        assert oracle.bytes_per_path["cellular"] <= \
            online.bytes_per_path["cellular"] + mbps(wifi + lte) * SLOT

    @given(wifi=rates, lte=rates, size=sizes,
           slack=st.floats(min_value=1.2, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_oracle_matches_analytic_deficit(self, wifi, lte, size, slack):
        deadline = slack * size / (mbps(wifi) + mbps(lte))
        assume(deadline > 5 * SLOT)
        oracle = simulate_oracle(constant(wifi), constant(lte), SLOT, size,
                                 deadline)
        deficit = max(0.0, size - mbps(wifi) * deadline)
        tolerance = mbps(wifi + lte) * SLOT * 2
        assert oracle.bytes_per_path["cellular"] == pytest.approx(
            deficit, abs=tolerance)

    @given(wifi=rates, lte=rates, size=sizes)
    @settings(max_examples=40, deadline=None)
    def test_infeasible_instances_still_complete(self, wifi, lte, size):
        """A deadline below even the combined-capacity bound is missed,
        but the transfer always finishes afterwards on all paths."""
        deadline = 0.5 * size / (mbps(wifi) + mbps(lte))
        assume(deadline > 3 * SLOT)
        result = simulate_online(constant(wifi), constant(lte), SLOT, size,
                                 deadline)
        assert result.missed
        assert result.total_bytes == pytest.approx(size, rel=1e-9)

    @given(wifi=rates, lte=rates, size=sizes,
           slack=st.floats(min_value=1.2, max_value=2.5),
           alpha_low=st.floats(min_value=0.5, max_value=0.8))
    @settings(max_examples=40, deadline=None)
    def test_alpha_monotonicity(self, wifi, lte, size, slack, alpha_low):
        deadline = slack * size / (mbps(wifi) + mbps(lte))
        assume(deadline > 5 * SLOT)
        conservative = simulate_online(constant(wifi), constant(lte), SLOT,
                                       size, deadline, alpha=alpha_low)
        trusting = simulate_online(constant(wifi), constant(lte), SLOT,
                                   size, deadline, alpha=1.0)
        assert conservative.bytes_per_path["cellular"] >= \
            trusting.bytes_per_path["cellular"] - 1.0
        assert conservative.finish_time <= trusting.finish_time + SLOT
