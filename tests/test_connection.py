"""Tests for the MPTCP connection."""

import pytest

from repro.mptcp.connection import MptcpConnection, PathController
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.units import mbps, megabytes


def make_connection(sim, wifi=8.0, lte=8.0, **kwargs):
    paths = [wifi_path(bandwidth_mbps=wifi), cellular_path(bandwidth_mbps=lte)]
    return MptcpConnection(sim, paths, **kwargs)


class TestTransfers:
    def test_transfer_completes(self):
        sim = Simulator()
        conn = make_connection(sim)
        done = []
        conn.start_transfer(megabytes(1), tag="t",
                            on_complete=lambda t: done.append(sim.now))
        sim.run(until=30.0)
        assert len(done) == 1

    def test_transfer_time_close_to_fluid_bound(self):
        """1 MB over 8+8 Mbps should take about 0.5s plus ramp and RTT."""
        sim = Simulator()
        conn = make_connection(sim)
        transfer = conn.start_transfer(megabytes(1))
        sim.run(until=30.0)
        assert transfer.complete
        assert 0.5 <= transfer.duration() <= 2.0

    def test_bytes_split_across_paths(self):
        sim = Simulator()
        conn = make_connection(sim)
        transfer = conn.start_transfer(megabytes(5))
        sim.run(until=60.0)
        assert transfer.per_path["wifi"] > 0
        assert transfer.per_path["cellular"] > 0
        assert transfer.bytes_done == pytest.approx(megabytes(5), abs=10.0)

    def test_request_latency_one_rtt(self):
        sim = Simulator()
        conn = make_connection(sim)
        transfer = conn.start_transfer(megabytes(1))
        sim.run(until=30.0)
        # Data began flowing one primary RTT after the request.
        assert transfer.started_at == pytest.approx(
            transfer.requested_at + conn.primary.path.rtt, abs=0.02)

    def test_transfers_queue_sequentially(self):
        sim = Simulator()
        conn = make_connection(sim)
        order = []
        conn.start_transfer(megabytes(1), tag="a",
                            on_complete=lambda t: order.append(t.tag))
        conn.start_transfer(megabytes(1), tag="b",
                            on_complete=lambda t: order.append(t.tag))
        sim.run(until=60.0)
        assert order == ["a", "b"]

    def test_invalid_size_rejected(self):
        sim = Simulator()
        conn = make_connection(sim)
        with pytest.raises(ValueError):
            conn.start_transfer(0)

    def test_disabled_path_carries_nothing(self):
        sim = Simulator()
        conn = make_connection(sim, lte=8.0)
        conn.request_path_state("cellular", False)
        sim.run(until=1.0)  # let the signal take effect
        transfer = conn.start_transfer(megabytes(1))
        sim.run(until=30.0)
        assert transfer.per_path.get("cellular", 0.0) == 0.0
        assert transfer.complete

    def test_close_stops_ticking(self):
        sim = Simulator()
        conn = make_connection(sim)
        conn.close()
        assert sim.pending_events() == 0


class TestPathControl:
    def test_state_change_delayed_by_signaling(self):
        sim = Simulator()
        conn = make_connection(sim, signaling_delay=0.2)
        conn.request_path_state("cellular", False)
        assert conn.path_state("cellular") is True
        sim.run(until=0.3)
        assert conn.path_state("cellular") is False

    def test_zero_signaling_is_instant(self):
        sim = Simulator()
        conn = make_connection(sim, signaling_delay=0.0)
        conn.request_path_state("cellular", False)
        assert conn.path_state("cellular") is False

    def test_unknown_path_rejected(self):
        sim = Simulator()
        conn = make_connection(sim)
        with pytest.raises(KeyError):
            conn.request_path_state("bluetooth", True)
        with pytest.raises(KeyError):
            conn.subflow("bluetooth")

    def test_duplicate_path_names_rejected(self):
        sim = Simulator()
        paths = [wifi_path(bandwidth_mbps=1.0), wifi_path(bandwidth_mbps=2.0)]
        with pytest.raises(ValueError):
            MptcpConnection(sim, paths)

    def test_needs_at_least_one_path(self):
        with pytest.raises(ValueError):
            MptcpConnection(Simulator(), [])


class TestEstimates:
    def test_aggregate_estimate_sums_paths(self):
        sim = Simulator()
        conn = make_connection(sim, wifi=8.0, lte=4.0)
        conn.start_transfer(megabytes(10))
        sim.run(until=10.0)
        aggregate = conn.aggregate_throughput_estimate()
        assert aggregate == pytest.approx(mbps(12.0), rel=0.15)

    def test_estimate_none_before_traffic(self):
        sim = Simulator()
        conn = make_connection(sim)
        assert conn.aggregate_throughput_estimate() is None
        assert conn.throughput_estimate("wifi") is None

    def test_disabled_path_estimate_frozen_not_lost(self):
        sim = Simulator()
        conn = make_connection(sim, wifi=8.0, lte=4.0)
        conn.start_transfer(megabytes(5))
        sim.run(until=10.0)
        before = conn.throughput_estimate("cellular")
        conn.request_path_state("cellular", False)
        conn.start_transfer(megabytes(2))
        sim.run(until=20.0)
        assert conn.throughput_estimate("cellular") == before


class RecordingController(PathController):
    def __init__(self):
        self.started = []
        self.completed = []
        self.ticks = 0

    def on_tick(self, now, transfer, connection):
        self.ticks += 1
        return None

    def on_transfer_start(self, now, transfer, connection):
        self.started.append(transfer.id)

    def on_transfer_complete(self, now, transfer, connection):
        self.completed.append(transfer.id)


class TestControllerHooks:
    def test_controller_sees_lifecycle(self):
        sim = Simulator()
        conn = make_connection(sim)
        controller = RecordingController()
        conn.controller = controller
        transfer = conn.start_transfer(megabytes(1))
        sim.run(until=30.0)
        assert controller.started == [transfer.id]
        assert controller.completed == [transfer.id]
        assert controller.ticks > 0

    def test_controller_decisions_applied(self):
        class DisableCellular(PathController):
            def on_tick(self, now, transfer, connection):
                return {"cellular": False}

        sim = Simulator()
        conn = make_connection(sim)
        conn.controller = DisableCellular()
        transfer = conn.start_transfer(megabytes(2))
        sim.run(until=60.0)
        # Cellular may carry a sliver before the first decision lands.
        assert transfer.per_path.get("cellular", 0.0) < megabytes(2) * 0.1
        assert transfer.complete


class TestTransferAccessors:
    def test_fraction_on(self):
        sim = Simulator()
        conn = make_connection(sim, wifi=6.0, lte=2.0)
        transfer = conn.start_transfer(megabytes(4))
        sim.run(until=60.0)
        total = sum(transfer.fraction_on(p) for p in ("wifi", "cellular"))
        assert total == pytest.approx(1.0)
        assert transfer.fraction_on("wifi") > transfer.fraction_on("cellular")

    def test_throughput_reported(self):
        sim = Simulator()
        conn = make_connection(sim)
        transfer = conn.start_transfer(megabytes(1))
        sim.run(until=30.0)
        assert transfer.throughput() == pytest.approx(
            transfer.total_bytes / transfer.duration())
