"""Tests for the MP-DASH video adapter (§5)."""

import pytest

from repro.abr import Bba, Festive, make_abr
from repro.core.adapter import MpDashAdapter
from repro.core.policy import prefer_wifi
from repro.core.socket_api import MpDashSocket
from repro.dash.http import HttpClient
from repro.dash.media import VideoAsset
from repro.dash.player import DashPlayer
from repro.dash.server import DashServer
from repro.mptcp.connection import MptcpConnection
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.units import mbps, megabytes


def make_player(abr, wifi=8.0, lte=8.0, deadline_mode="rate",
                buffer_capacity=40.0, **adapter_kwargs):
    sim = Simulator()
    conn = MptcpConnection(sim, [wifi_path(bandwidth_mbps=wifi),
                                 cellular_path(bandwidth_mbps=lte)])
    socket = MpDashSocket(conn, prefer_wifi())
    adapter = MpDashAdapter(socket, deadline_mode=deadline_mode,
                            **adapter_kwargs)
    server = DashServer()
    server.host(VideoAsset.generate("m", 4.0, 120.0,
                                    [0.58, 1.01, 1.47, 2.41, 3.94], seed=0))
    client = HttpClient(conn, server.resolve)
    player = DashPlayer(sim, client, server.manifest("m"), abr,
                        addon=adapter, buffer_capacity=buffer_capacity)
    return sim, conn, socket, adapter, player


def warm_socket(sim, conn):
    """Generate traffic so the transport estimators are warm."""
    conn.start_transfer(megabytes(2))
    sim.run(until=8.0)


class TestThresholds:
    def test_phi_throughput_based(self):
        _sim, _conn, _socket, adapter, player = make_player(Festive())
        assert adapter.phi(player) == pytest.approx(0.8 * 40.0)

    def test_phi_buffer_based(self):
        _sim, _conn, _socket, adapter, player = make_player(Bba())
        assert adapter.phi(player) == pytest.approx(40.0 - 4.0)

    def test_phi_override(self):
        _sim, _conn, _socket, adapter, player = make_player(
            Festive(), phi_fraction=0.5)
        assert adapter.phi(player) == pytest.approx(20.0)

    def test_omega_floor_without_estimate(self):
        """No transport estimate yet: supplied content is 0, so Omega is
        the full consumption window — MP-DASH stays off."""
        _sim, _conn, _socket, adapter, player = make_player(Festive())
        assert adapter.omega_throughput_based(player) == pytest.approx(80.0)

    def test_omega_with_ample_estimate_hits_floor(self):
        sim, conn, _socket, adapter, player = make_player(Festive())
        warm_socket(sim, conn)
        # 16 Mbps against a 0.58 Mbps lowest level: T' >> T, floor applies.
        assert adapter.omega_throughput_based(player) == pytest.approx(
            0.4 * 40.0)

    def test_omega_buffer_based_uses_level_map(self):
        _sim, _conn, _socket, adapter, player = make_player(Bba())
        omega = adapter.omega_buffer_based(player, level=3)
        low, _ = player.abr.level_buffer_range(3, 40.0,
                                               player.manifest.bitrates())
        assert omega == pytest.approx(low + 4.0)


class TestArming:
    def test_not_armed_during_startup(self):
        _sim, _conn, _socket, adapter, player = make_player(Festive())
        assert adapter.on_chunk_request(player, 0, 1e6) is None
        assert adapter.skipped_count == 1

    def test_armed_when_buffer_healthy(self):
        sim, conn, socket, adapter, player = make_player(Festive())
        warm_socket(sim, conn)
        player._playing = True
        player.buffer.add(30.0)
        deadline = adapter.on_chunk_request(player, 4, 2e6)
        assert deadline is not None
        assert adapter.armed_count == 1

    def test_skipped_below_omega(self):
        sim, conn, socket, adapter, player = make_player(Festive())
        warm_socket(sim, conn)
        player._playing = True
        player.buffer.add(10.0)  # below the 16s floor
        assert adapter.on_chunk_request(player, 4, 2e6) is None

    def test_skip_disables_active_socket(self):
        sim, conn, socket, adapter, player = make_player(Festive())
        warm_socket(sim, conn)
        player._playing = True
        player.buffer.add(30.0)
        adapter.on_chunk_request(player, 4, 2e6)
        player.buffer.drain(25.0)
        adapter.on_chunk_request(player, 4, 2e6)
        assert not socket.scheduler.active
        assert not socket.scheduler._pending


class TestDeadlines:
    def test_rate_based_deadline(self):
        sim, conn, socket, adapter, player = make_player(
            Festive(), deadline_mode="rate")
        warm_socket(sim, conn)
        player._playing = True
        player.buffer.add(20.0)  # below phi: no extension
        size = mbps(3.94) * 4.0
        deadline = adapter.on_chunk_request(player, 4, size)
        assert deadline == pytest.approx(4.0)

    def test_duration_based_deadline(self):
        sim, conn, socket, adapter, player = make_player(
            Festive(), deadline_mode="duration")
        warm_socket(sim, conn)
        player._playing = True
        player.buffer.add(20.0)
        deadline = adapter.on_chunk_request(player, 4, 123456.0)
        assert deadline == pytest.approx(4.0)

    def test_extension_above_phi(self):
        sim, conn, socket, adapter, player = make_player(
            Festive(), deadline_mode="duration")
        warm_socket(sim, conn)
        player._playing = True
        player.buffer.add(36.0)  # phi is 32
        deadline = adapter.on_chunk_request(player, 4, 123456.0)
        assert deadline == pytest.approx(4.0 + 4.0)

    def test_extension_disabled(self):
        sim, conn, socket, adapter, player = make_player(
            Festive(), deadline_mode="duration", extension_enabled=False)
        warm_socket(sim, conn)
        player._playing = True
        player.buffer.add(36.0)
        deadline = adapter.on_chunk_request(player, 4, 123456.0)
        assert deadline == pytest.approx(4.0)


class TestBufferBasedGuard:
    def test_armed_only_at_sustainable_top(self):
        sim, conn, socket, adapter, player = make_player(Bba())
        warm_socket(sim, conn)  # estimate ~16 Mbps: level 4 sustainable
        player._playing = True
        player.buffer.add(39.0)
        assert adapter.on_chunk_request(player, 4, 2e6) is not None
        # Requesting a lower-than-sustainable level: not armed.
        player.buffer.drain(0.1)
        assert adapter.on_chunk_request(player, 2, 2e6) is None

    def test_not_armed_without_estimate(self):
        _sim, _conn, _socket, adapter, player = make_player(Bba())
        player._playing = True
        player.buffer.add(39.0)
        assert adapter.on_chunk_request(player, 4, 2e6) is None


class TestOverride:
    def test_override_reports_aggregate(self):
        sim, conn, socket, adapter, player = make_player(Festive())
        warm_socket(sim, conn)
        assert adapter.throughput_override(player) == pytest.approx(
            conn.aggregate_throughput_estimate())

    def test_override_none_before_traffic(self):
        _sim, _conn, _socket, adapter, player = make_player(Festive())
        assert adapter.throughput_override(player) is None


class TestEndToEnd:
    def test_full_session_arms_most_chunks(self):
        sim, _conn, socket, adapter, player = make_player(Festive(),
                                                          wifi=6.0, lte=6.0)
        player.start()
        while not player.finished and sim.now < 400.0:
            sim.run(until=sim.now + 5.0)
        assert player.finished
        assert adapter.armed_count > adapter.skipped_count
        assert socket.scheduler.deadline_misses == 0
