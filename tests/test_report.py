"""Tests for the full-session report."""

import pytest

from repro.analysis import session_report
from repro.experiments import SessionConfig, run_session


@pytest.fixture(scope="module")
def mpdash_result():
    return run_session(SessionConfig(
        video="big_buck_bunny", abr="festive", mpdash=True,
        deadline_mode="rate", wifi_mbps=6.0, lte_mbps=4.0,
        video_duration=60.0))


@pytest.fixture(scope="module")
def baseline_result():
    return run_session(SessionConfig(
        video="big_buck_bunny", abr="gpac", mpdash=False,
        wifi_mbps=6.0, lte_mbps=4.0, video_duration=60.0))


class TestSessionReport:
    def test_contains_all_sections(self, mpdash_result):
        report = session_report(mpdash_result)
        assert "Session:" in report
        assert "cellular data" in report
        assert "Chunk strip" in report
        assert "Throughput patterns" in report
        assert "Idle gaps" in report

    def test_mpdash_mode_labelled(self, mpdash_result):
        assert "MP-DASH (rate)" in session_report(mpdash_result)
        assert "MP-DASH activations" in session_report(mpdash_result)

    def test_baseline_mode_labelled(self, baseline_result):
        report = session_report(baseline_result)
        assert "vanilla MPTCP" in report
        assert "MP-DASH activations" not in report

    def test_pattern_window_bounds_plot(self, mpdash_result):
        short = session_report(mpdash_result, pattern_window=10.0)
        assert "first 10s" in short

    def test_full_session_window(self, mpdash_result):
        report = session_report(mpdash_result, pattern_window=None)
        assert "Throughput patterns" in report

    def test_width_controls_strip(self, mpdash_result):
        narrow = session_report(mpdash_result, width=40)
        wide = session_report(mpdash_result, width=200)
        assert max(len(line) for line in narrow.splitlines()) <= \
            max(len(line) for line in wide.splitlines())

    def test_width_floor_rejected(self, mpdash_result):
        with pytest.raises(ValueError):
            session_report(mpdash_result, width=5)

    def test_pattern_window_beyond_session_clamped(self, mpdash_result):
        report = session_report(mpdash_result, pattern_window=1e9)
        assert f"first {mpdash_result.session_duration:.0f}s" in report

    def test_short_session_still_reports(self):
        result = run_session(SessionConfig(
            video="big_buck_bunny", abr="festive", wifi_mbps=8.0,
            lte_mbps=8.0, video_duration=8.0))
        report = session_report(result)
        assert "Session:" in report
        assert "Idle gaps" in report
