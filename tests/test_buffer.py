"""Tests for the playback buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dash.buffer import PlaybackBuffer


class TestBasics:
    def test_starts_empty(self):
        buf = PlaybackBuffer(40.0)
        assert buf.level == 0.0
        assert buf.empty
        assert buf.free == 40.0

    def test_add_and_drain(self):
        buf = PlaybackBuffer(40.0)
        buf.add(4.0)
        assert buf.level == 4.0
        played = buf.drain(1.5)
        assert played == 1.5
        assert buf.level == pytest.approx(2.5)

    def test_drain_stops_at_empty(self):
        buf = PlaybackBuffer(40.0)
        buf.add(2.0)
        played = buf.drain(5.0)
        assert played == 2.0
        assert buf.empty

    def test_total_played_accumulates(self):
        buf = PlaybackBuffer(40.0)
        buf.add(4.0)
        buf.drain(1.0)
        buf.drain(1.0)
        assert buf.total_played == 2.0

    def test_overflow_rejected(self):
        buf = PlaybackBuffer(8.0)
        buf.add(4.0)
        buf.add(4.0)
        with pytest.raises(ValueError):
            buf.add(4.0)

    def test_fits(self):
        buf = PlaybackBuffer(8.0)
        buf.add(4.0)
        assert buf.fits(4.0)
        assert not buf.fits(4.1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(0.0)
        buf = PlaybackBuffer(10.0)
        with pytest.raises(ValueError):
            buf.add(0.0)
        with pytest.raises(ValueError):
            buf.drain(-1.0)


class TestProperties:
    @given(st.lists(st.tuples(st.booleans(),
                              st.floats(min_value=0.01, max_value=5.0)),
                    max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_level_always_within_bounds(self, operations):
        buf = PlaybackBuffer(20.0)
        for is_add, amount in operations:
            if is_add:
                if buf.fits(amount):
                    buf.add(amount)
            else:
                buf.drain(amount)
            assert 0.0 <= buf.level <= buf.capacity + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=3.0), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_conservation(self, adds):
        """Everything added is either in the buffer or was played."""
        buf = PlaybackBuffer(1000.0)
        total_added = 0.0
        for amount in adds:
            buf.add(amount)
            total_added += amount
            buf.drain(amount / 2)
        assert buf.level + buf.total_played == pytest.approx(total_added)
