"""Tests for the DASH media model."""

import pytest

from repro.dash.media import QualityLevel, VideoAsset
from repro.net.units import mbps


def make_asset(**kwargs):
    defaults = dict(name="test", chunk_duration=4.0, duration=60.0,
                    bitrates_mbps=[1.0, 2.0, 4.0], seed=1)
    defaults.update(kwargs)
    return VideoAsset.generate(**defaults)


class TestQualityLevel:
    def test_mbps_conversion(self):
        level = QualityLevel(0, mbps(4.0))
        assert level.bitrate_mbps == pytest.approx(4.0)

    def test_paper_level_is_one_based(self):
        assert QualityLevel(0, 1.0).paper_level == 1
        assert QualityLevel(4, 1.0).paper_level == 5


class TestGeneration:
    def test_chunk_count(self):
        asset = make_asset(duration=60.0, chunk_duration=4.0)
        assert asset.num_chunks == 15
        assert asset.duration == 60.0

    def test_level_count_and_order(self):
        asset = make_asset()
        assert asset.num_levels == 3
        rates = asset.bitrates()
        assert rates == sorted(rates)

    def test_mean_chunk_size_matches_nominal(self):
        asset = make_asset(duration=600.0)
        for level in range(asset.num_levels):
            nominal = asset.level(level).bitrate * asset.chunk_duration
            sizes = [asset.chunk_size(level, i)
                     for i in range(asset.num_chunks)]
            assert sum(sizes) / len(sizes) == pytest.approx(nominal,
                                                            rel=1e-6)

    def test_vbr_sizes_vary(self):
        asset = make_asset(vbr_sigma=0.2)
        sizes = {round(asset.chunk_size(0, i))
                 for i in range(asset.num_chunks)}
        assert len(sizes) > 1

    def test_size_pattern_shared_across_levels(self):
        """A complex scene is big at every level."""
        asset = make_asset()
        ratios = [asset.chunk_size(2, i) / asset.chunk_size(0, i)
                  for i in range(asset.num_chunks)]
        assert max(ratios) - min(ratios) < 1e-9

    def test_deterministic_per_seed(self):
        a = make_asset(seed=5)
        b = make_asset(seed=5)
        c = make_asset(seed=6)
        assert a.chunk_size(0, 3) == b.chunk_size(0, 3)
        assert a.chunk_size(0, 3) != c.chunk_size(0, 3)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            make_asset(duration=0.0)


class TestValidation:
    def test_decreasing_bitrates_rejected(self):
        with pytest.raises(ValueError):
            VideoAsset("x", 4.0,
                       [QualityLevel(0, 200.0), QualityLevel(1, 100.0)],
                       [[800.0], [400.0]])

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            VideoAsset("x", 4.0, [QualityLevel(0, 100.0)], [])

    def test_uneven_chunk_counts_rejected(self):
        with pytest.raises(ValueError):
            VideoAsset("x", 4.0,
                       [QualityLevel(0, 100.0), QualityLevel(1, 200.0)],
                       [[400.0], [800.0, 900.0]])

    def test_bad_level_indices_rejected(self):
        with pytest.raises(ValueError):
            VideoAsset("x", 4.0,
                       [QualityLevel(1, 100.0), QualityLevel(2, 200.0)],
                       [[400.0], [800.0]])

    def test_out_of_range_lookups_rejected(self):
        asset = make_asset()
        with pytest.raises(IndexError):
            asset.chunk_size(99, 0)
        with pytest.raises(IndexError):
            asset.chunk_size(0, 9999)
        with pytest.raises(IndexError):
            asset.level(99)


class TestSustainableLevel:
    def test_highest_fitting_level(self):
        asset = make_asset(bitrates_mbps=[1.0, 2.0, 4.0])
        assert asset.highest_sustainable_level(mbps(3.0)) == 1
        assert asset.highest_sustainable_level(mbps(10.0)) == 2

    def test_floor_at_lowest_level(self):
        asset = make_asset()
        assert asset.highest_sustainable_level(0.0) == 0
