"""Tests for the player event log."""

import pytest

from repro.dash.events import (ChunkRecord, PlayerEventLog, REQUEST,
                               STALL_END, STALL_START)


def make_chunk(index=0, level=0, cellular=0.0, wifi=100.0):
    return ChunkRecord(index=index, level=level, size=wifi + cellular,
                       duration=4.0, requested_at=index * 4.0,
                       completed_at=index * 4.0 + 2.0, throughput=1000.0,
                       bytes_per_path={"wifi": wifi, "cellular": cellular})


class TestEvents:
    def test_events_recorded_in_order(self):
        log = PlayerEventLog()
        log.record(1.0, REQUEST, index=0)
        log.record(2.0, REQUEST, index=1)
        assert [e.time for e in log.of_kind(REQUEST)] == [1.0, 2.0]

    def test_stall_pairing(self):
        log = PlayerEventLog()
        log.record(5.0, STALL_START)
        log.record(7.5, STALL_END)
        assert log.stall_count == 1
        assert log.total_stall_time == pytest.approx(2.5)

    def test_unmatched_stall_end_rejected(self):
        log = PlayerEventLog()
        with pytest.raises(ValueError):
            log.record(1.0, STALL_END)

    def test_close_ends_open_stall(self):
        log = PlayerEventLog()
        log.record(5.0, STALL_START)
        log.close(9.0)
        assert log.stall_count == 1
        assert log.total_stall_time == pytest.approx(4.0)

    def test_close_without_open_stall_is_noop(self):
        log = PlayerEventLog()
        log.close(10.0)
        assert log.stall_count == 0


class TestChunks:
    def test_quality_switch_count(self):
        log = PlayerEventLog()
        for level in [0, 0, 1, 1, 0, 2]:
            log.record_chunk(make_chunk(level=level))
        assert log.quality_switches() == 3

    def test_fraction_on(self):
        chunk = make_chunk(cellular=25.0, wifi=75.0)
        assert chunk.fraction_on("cellular") == pytest.approx(0.25)
        assert chunk.fraction_on("wifi") == pytest.approx(0.75)

    def test_fraction_on_empty_chunk(self):
        chunk = ChunkRecord(index=0, level=0, size=0.0, duration=4.0,
                            requested_at=0.0, completed_at=1.0,
                            throughput=0.0)
        assert chunk.fraction_on("wifi") == 0.0

    def test_download_time(self):
        chunk = make_chunk(index=3)
        assert chunk.download_time == pytest.approx(2.0)
