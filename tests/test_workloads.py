"""Tests for the workload catalog (videos, profiles, locations, mobility)."""

import pytest

from repro.net.units import mbps, to_mbps
from repro.workloads import (MobilityScenario, SCENARIO_ALWAYS,
                             SCENARIO_COUNTS, SCENARIO_NEVER,
                             SCENARIO_SOMETIMES, TABLE5_LOCATIONS,
                             TOP_BITRATE_MBPS, VIDEO_LADDERS,
                             coffeehouse_profile, fast_food_profile,
                             field_study_locations, location_by_name,
                             office_profile, synthetic_profile,
                             table1_profiles, video_asset, video_names)


class TestVideos:
    def test_table3_ladders_verbatim(self):
        assert VIDEO_LADDERS["big_buck_bunny"] == (0.58, 1.01, 1.47, 2.41,
                                                   3.94)
        assert VIDEO_LADDERS["tears_of_steel_hd"][-1] == 10.0

    def test_four_videos(self):
        assert len(video_names()) == 4

    def test_asset_matches_ladder(self):
        asset = video_asset("big_buck_bunny")
        assert asset.num_levels == 5
        assert asset.level(4).bitrate == pytest.approx(mbps(3.94))
        assert asset.num_chunks == 150  # 600 s / 4 s
        assert asset.chunk_duration == 4.0

    def test_asset_deterministic(self):
        a = video_asset("tears_of_steel")
        b = video_asset("tears_of_steel")
        assert a.chunk_size(2, 10) == b.chunk_size(2, 10)

    def test_unknown_video_rejected(self):
        with pytest.raises(KeyError):
            video_asset("cats")

    def test_custom_chunk_duration(self):
        asset = video_asset("big_buck_bunny", chunk_duration=10.0)
        assert asset.num_chunks == 60


class TestSyntheticProfiles:
    def test_table1_complete(self):
        profiles = table1_profiles()
        assert len(profiles) == 5
        assert "synthetic-10pct" in profiles
        assert "office" in profiles

    def test_synthetic_means(self):
        p = synthetic_profile(0.10)
        assert p.wifi.mean_bandwidth() == pytest.approx(mbps(3.8), rel=0.05)
        assert p.cellular.mean_bandwidth() == pytest.approx(mbps(3.0),
                                                            rel=0.05)
        assert p.file_size == 5_000_000
        assert p.deadlines == (8.0, 9.0, 10.0)

    def test_sigma_changes_variability(self):
        calm = synthetic_profile(0.10, seed=1)
        wild = synthetic_profile(0.30, seed=1)

        def spread(trace):
            samples = trace.samples(0.25, 60.0)
            return max(samples) - min(samples)

        assert spread(wild.wifi) > spread(calm.wifi)

    def test_real_location_profiles_match_table1(self):
        assert fast_food_profile().wifi_mean_mbps == 5.2
        assert coffeehouse_profile().cellular_mean_mbps == 7.6
        assert office_profile().file_size == 50_000_000

    def test_slot_series_lengths_match(self):
        p = fast_food_profile()
        wifi, cell = p.slot_series(0.05, 20.0)
        assert len(wifi) == len(cell) == 400

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            synthetic_profile(0.0)


class TestLocations:
    def test_catalog_has_33_locations(self):
        assert len(field_study_locations()) == 33

    def test_scenario_split_64_15_21(self):
        locations = field_study_locations()
        counts = {s: sum(1 for l in locations if l.scenario == s)
                  for s in (SCENARIO_NEVER, SCENARIO_SOMETIMES,
                            SCENARIO_ALWAYS)}
        assert counts == SCENARIO_COUNTS == {1: 21, 2: 5, 3: 7}

    def test_table5_values_verbatim(self):
        hotel = location_by_name("hotel_hi")
        assert hotel.wifi_mbps == 2.92
        assert hotel.lte_mbps == 11.0
        library = location_by_name("library")
        assert library.wifi_mbps == 17.8
        assert library.lte_rtt_ms == 64.1

    def test_scenario1_below_top_bitrate(self):
        for location in field_study_locations():
            if location.scenario == SCENARIO_NEVER:
                assert location.wifi_mbps < TOP_BITRATE_MBPS

    def test_scenario3_well_above_top_bitrate(self):
        for location in field_study_locations():
            if location.scenario == SCENARIO_ALWAYS:
                assert location.wifi_mbps > 1.5 * TOP_BITRATE_MBPS

    def test_scenario2_has_dropouts(self):
        for location in field_study_locations():
            if location.scenario == SCENARIO_SOMETIMES:
                assert location.dropouts

    def test_unique_names(self):
        names = [l.name for l in field_study_locations()]
        assert len(set(names)) == 33

    def test_catalog_deterministic(self):
        a = field_study_locations()
        b = field_study_locations()
        assert [(l.name, l.wifi_mbps, l.seed) for l in a] == \
            [(l.name, l.wifi_mbps, l.seed) for l in b]

    def test_paths_built_with_location_rtts(self):
        location = location_by_name("hotel_ha")
        wifi, lte = location.paths(duration=60.0)
        assert wifi.rtt == pytest.approx(0.0408)
        assert lte.rtt == pytest.approx(0.0686)
        assert to_mbps(wifi.mean_bandwidth()) == pytest.approx(
            location.wifi_mbps, rel=0.2)

    def test_unknown_location_rejected(self):
        with pytest.raises(KeyError):
            location_by_name("mars_base")


class TestMobility:
    def test_wifi_swings_lte_steady(self):
        scenario = MobilityScenario()
        wifi = scenario.wifi_trace(120.0)
        lte = scenario.lte_trace(120.0)
        wifi_samples = wifi.samples(1.0, 120.0)
        lte_samples = lte.samples(1.0, 120.0)
        assert max(wifi_samples) > 3 * min(wifi_samples)
        assert max(lte_samples) < 2 * min(lte_samples)

    def test_paths(self):
        scenario = MobilityScenario()
        paths = scenario.paths(60.0)
        assert [p.name for p in paths] == ["wifi", "cellular"]
        assert len(scenario.wifi_only_paths(60.0)) == 1
