"""Tests for preference policies."""

import pytest

from repro.core.policy import Preference, prefer_cellular, prefer_wifi
from repro.net.link import Path, cellular_path, wifi_path


class TestPreference:
    def test_primary_is_first(self):
        pref = Preference(["wifi", "cellular"])
        assert pref.primary == "wifi"
        assert pref.secondary_names() == ["cellular"]

    def test_default_costs_follow_order(self):
        pref = Preference(["a", "b", "c"])
        assert pref.cost_of("a") < pref.cost_of("b") < pref.cost_of("c")

    def test_explicit_costs(self):
        pref = Preference(["wifi", "cellular"],
                          {"wifi": 0.0, "cellular": 5.0})
        assert pref.cost_of("cellular") == 5.0

    def test_rank(self):
        pref = Preference(["wifi", "cellular"])
        assert pref.rank("wifi") == 0
        assert pref.rank("cellular") == 1

    def test_unknown_interface_rejected(self):
        pref = prefer_wifi()
        with pytest.raises(KeyError):
            pref.cost_of("bluetooth")
        with pytest.raises(KeyError):
            pref.rank("bluetooth")

    def test_empty_order_rejected(self):
        with pytest.raises(ValueError):
            Preference([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Preference(["wifi", "wifi"])

    def test_costs_must_match_order(self):
        with pytest.raises(ValueError):
            Preference(["wifi", "cellular"],
                       {"wifi": 2.0, "cellular": 1.0})

    def test_missing_costs_rejected(self):
        with pytest.raises(ValueError):
            Preference(["wifi", "cellular"], {"wifi": 0.0})

    def test_apply_costs_stamps_paths(self):
        paths = [wifi_path(bandwidth_mbps=1.0),
                 cellular_path(bandwidth_mbps=1.0)]
        pref = Preference(["wifi", "cellular"],
                          {"wifi": 0.0, "cellular": 3.0})
        pref.apply_costs(paths)
        assert paths[0].cost == 0.0
        assert paths[1].cost == 3.0

    def test_sorted_paths(self):
        paths = [cellular_path(bandwidth_mbps=1.0),
                 wifi_path(bandwidth_mbps=1.0)]
        ordered = prefer_wifi().sorted_paths(paths)
        assert [p.name for p in ordered] == ["wifi", "cellular"]

    def test_equality(self):
        assert prefer_wifi() == prefer_wifi()
        assert prefer_wifi() != prefer_cellular()


class TestBuiltins:
    def test_prefer_wifi(self):
        pref = prefer_wifi()
        assert pref.primary == "wifi"
        assert pref.cost_of("wifi") < pref.cost_of("cellular")

    def test_prefer_cellular_is_symmetric(self):
        pref = prefer_cellular()
        assert pref.primary == "cellular"
        assert pref.cost_of("cellular") < pref.cost_of("wifi")
