"""Tests for the fluid TCP subflow model."""

import pytest

from repro.net.tcp import INITIAL_CWND, MIN_RTO, TcpState
from repro.net.units import PACKET_SIZE, mbps


RTT = 0.05
BW = mbps(10.0)


def advance_for(tcp, start, duration, bw, dt=0.01):
    """Drive the window forward while continuously sending."""
    t = start
    delivered = 0.0
    while t < start + duration - 1e-12:
        delivered += tcp.advance(t, dt, bw, sending=True)
        t += dt
    return delivered, t


class TestSlowStart:
    def test_starts_at_initial_window(self):
        tcp = TcpState(RTT)
        assert tcp.cwnd == INITIAL_CWND

    def test_window_roughly_doubles_per_rtt(self):
        tcp = TcpState(RTT)
        advance_for(tcp, 0.0, RTT, BW)
        assert tcp.cwnd == pytest.approx(2 * INITIAL_CWND, rel=0.1)

    def test_rate_capped_by_available_bandwidth(self):
        tcp = TcpState(RTT)
        advance_for(tcp, 0.0, 2.0, BW)  # plenty of time to saturate
        assert tcp.rate(BW) == pytest.approx(BW)

    def test_rate_capped_by_window(self):
        tcp = TcpState(RTT)
        assert tcp.rate(BW) == pytest.approx(INITIAL_CWND / RTT)

    def test_delivery_approaches_bandwidth_delay_product(self):
        tcp = TcpState(RTT)
        delivered, _ = advance_for(tcp, 0.0, 5.0, BW)
        # After the ramp the link should be nearly saturated.
        assert delivered >= 0.85 * BW * 5.0

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ValueError):
            TcpState(0.0)


class TestCongestionAvoidance:
    def test_window_stops_at_queue_ceiling(self):
        tcp = TcpState(RTT)
        advance_for(tcp, 0.0, 10.0, BW)
        bdp = BW * RTT
        assert tcp.cwnd <= bdp * 1.3 + PACKET_SIZE

    def test_window_shrinks_when_bandwidth_drops(self):
        tcp = TcpState(RTT)
        _, t = advance_for(tcp, 0.0, 5.0, BW)
        high_cwnd = tcp.cwnd
        advance_for(tcp, t, 3.0, BW / 10.0)
        assert tcp.cwnd < high_cwnd
        assert tcp.rate(BW / 10.0) == pytest.approx(BW / 10.0)


class TestIdleRestart:
    def test_long_idle_decays_window(self):
        tcp = TcpState(RTT)
        _, t = advance_for(tcp, 0.0, 5.0, BW)
        saturated = tcp.cwnd
        # Idle for many RTOs, then resume.
        resume = t + 10.0
        tcp.advance(resume, 0.01, BW, sending=True)
        assert tcp.cwnd < saturated

    def test_short_gap_keeps_window(self):
        tcp = TcpState(RTT)
        _, t = advance_for(tcp, 0.0, 5.0, BW)
        saturated = tcp.cwnd
        tcp.advance(t + MIN_RTO / 2, 0.01, BW, sending=True)
        assert tcp.cwnd >= saturated * 0.9

    def test_idle_never_drops_below_initial_window(self):
        tcp = TcpState(RTT)
        advance_for(tcp, 0.0, 5.0, BW)
        tcp.advance(1e6, 0.01, BW, sending=True)
        assert tcp.cwnd >= INITIAL_CWND

    def test_not_sending_delivers_nothing(self):
        tcp = TcpState(RTT)
        assert tcp.advance(0.0, 0.01, BW, sending=False) == 0.0


class TestReset:
    def test_reset_restores_initial_state(self):
        tcp = TcpState(RTT)
        advance_for(tcp, 0.0, 5.0, BW)
        tcp.reset()
        assert tcp.cwnd == INITIAL_CWND
        assert tcp.ssthresh == float("inf")
