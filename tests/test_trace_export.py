"""JSONL trace export: round trips, offline replay, and radio timelines."""

import io

import pytest

from repro.analysis.analyzer import MultipathVideoAnalyzer
from repro.energy.devices import GALAXY_NOTE
from repro.energy.model import radio_state_events, session_radio_events
from repro.experiments import SessionConfig, run_session
from repro.mptcp.activity import ActivityLog
from repro.obs import (RADIO_ACTIVE, RADIO_IDLE, RADIO_TAIL, EventBus,
                       Trace, TraceMeta, TraceRecorder, dump_jsonl,
                       dumps_jsonl, gzip_bytes, load_jsonl, loads_jsonl,
                       metrics_from_trace, replay)
from repro.obs.events import PacketSent, StallStart


def _short_session(**overrides):
    kwargs = dict(video_duration=40.0, mpdash=True, record_trace=True)
    kwargs.update(overrides)
    return run_session(SessionConfig(**kwargs))


class TestRecorder:
    def test_records_in_publication_order(self):
        bus = EventBus()
        recorder = TraceRecorder(bus)
        bus.publish(StallStart(1.0))
        bus.publish(PacketSent(2.0, "wifi", 10.0))
        assert [type(e).__name__ for e in recorder.events] == [
            "StallStart", "PacketSent"]

    def test_session_capture_off_by_default(self):
        result = run_session(SessionConfig(video_duration=20.0))
        assert result.events is None
        with pytest.raises(ValueError, match="record_trace"):
            result.export_trace(io.StringIO())


class TestRoundTrip:
    def test_text_round_trip_is_exact(self):
        result = _short_session()
        text = dumps_jsonl(result.events, result.trace_meta)
        trace = loads_jsonl(text)
        assert trace.meta == result.trace_meta
        assert trace.events == result.events
        # Re-dumping the loaded trace reproduces the bytes.
        assert dumps_jsonl(trace.events, trace.meta) == text

    def test_file_round_trip(self, tmp_path):
        result = _short_session()
        path = tmp_path / "session.jsonl"
        result.export_trace(str(path))
        trace = load_jsonl(str(path))
        assert trace.events == result.events

    def test_gzip_round_trip_is_exact(self, tmp_path):
        result = _short_session()
        path = tmp_path / "session.jsonl.gz"
        dump_jsonl(str(path), result.events, result.trace_meta)
        trace = load_jsonl(str(path))
        assert trace.meta == result.trace_meta
        assert trace.events == result.events
        assert dumps_jsonl(trace.events, trace.meta) == \
            dumps_jsonl(result.events, result.trace_meta)

    def test_gzip_and_plain_carry_the_same_trace(self, tmp_path):
        result = _short_session()
        plain = tmp_path / "session.jsonl"
        packed = tmp_path / "session.jsonl.gz"
        dump_jsonl(str(plain), result.events, result.trace_meta)
        dump_jsonl(str(packed), result.events, result.trace_meta)
        assert packed.stat().st_size < plain.stat().st_size
        assert load_jsonl(str(packed)).events == \
            load_jsonl(str(plain)).events

    def test_gzip_bytes_is_deterministic(self, tmp_path):
        # mtime is pinned, so equal traces compress to equal bytes —
        # the property the flight recorder's artifact identity rests on.
        result = _short_session()
        text = dumps_jsonl(result.events, result.trace_meta).encode()
        assert gzip_bytes(text) == gzip_bytes(text)
        one = tmp_path / "one.jsonl.gz"
        two = tmp_path / "two.jsonl.gz"
        dump_jsonl(str(one), result.events, result.trace_meta)
        dump_jsonl(str(two), result.events, result.trace_meta)
        assert one.read_bytes() == two.read_bytes()

    def test_offline_metrics_identical_to_live(self):
        result = _short_session()
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        assert metrics_from_trace(trace) == result.metrics

    def test_offline_metrics_identical_for_vanilla_session(self):
        result = _short_session(mpdash=False)
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        assert metrics_from_trace(trace) == result.metrics

    def test_analyzer_from_trace_rebuilds_views(self):
        result = _short_session()
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        offline = MultipathVideoAnalyzer.from_trace(trace)
        live = result.analyzer
        assert offline.session_duration == live.session_duration
        for path in live.activity.paths():
            assert (offline.activity.total_bytes(path)
                    == live.activity.total_bytes(path))
        assert len(offline.log.chunks) == len(live.log.chunks)
        assert ([c.level for c in offline.log.chunks]
                == [c.level for c in live.log.chunks])
        assert offline.utilization() == live.utilization()

    def test_count_by_type(self):
        result = _short_session()
        trace = Trace(meta=result.trace_meta, events=result.events)
        counts = trace.count_by_type()
        assert counts["SessionClosed"] == 1
        assert counts["ChunkDownloaded"] == len(result.analyzer.log.chunks)
        assert sum(counts.values()) == len(result.events)


class TestLoaderValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            loads_jsonl("")

    def test_missing_meta_rejected(self):
        with pytest.raises(ValueError, match="meta"):
            loads_jsonl('{"type":"StallStart","time":0.0}\n')

    def test_wrong_version_rejected(self):
        text = dumps_jsonl([], TraceMeta(session_duration=1.0, version=99))
        with pytest.raises(ValueError, match="version"):
            loads_jsonl(text)

    def test_dump_to_file_object(self):
        buffer = io.StringIO()
        dump_jsonl(buffer, [StallStart(1.0)],
                   TraceMeta(session_duration=2.0))
        trace = load_jsonl(io.StringIO(buffer.getvalue()))
        assert trace.events == [StallStart(1.0)]


class TestReplay:
    def test_replay_preserves_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        events = [StallStart(1.0), PacketSent(2.0, "wifi", 5.0)]
        replay(events, bus)
        assert seen == events


class TestRadioTimeline:
    def test_states_alternate_and_start_active(self):
        activity = ActivityLog(0.1)
        activity.record(0.0, "cellular", 1000.0)
        activity.record(5.0, "cellular", 1000.0)
        events = radio_state_events(activity, "cellular",
                                    GALAXY_NOTE.lte, session_end=20.0)
        states = [e.state for e in events]
        assert states[0] == RADIO_ACTIVE
        assert RADIO_TAIL in states and RADIO_IDLE in states
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_session_timeline_merges_paths(self):
        result = _short_session()
        events = result.analyzer.radio_timeline()
        assert events, "an active session has radio transitions"
        assert [e.time for e in events] == sorted(e.time for e in events)
        assert {e.path for e in events} <= {"wifi", "cellular"}
        merged = session_radio_events(result.analyzer.activity, GALAXY_NOTE,
                                      result.session_duration)
        assert merged == events
