"""Tests for CDF helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import (empirical_cdf, fraction_at_most, percentile,
                                quartile_summary)


class TestEmpiricalCdf:
    def test_sorted_with_probabilities(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ps == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_probabilities_monotone_ending_at_one(self, values):
        xs, ps = empirical_cdf(values)
        assert xs == sorted(values)
        assert ps == sorted(ps)
        assert ps[-1] == 1.0


class TestPercentiles:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_bounds(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_quartile_summary(self):
        q25, q50, q75 = quartile_summary(list(range(101)))
        assert (q25, q50, q75) == (25.0, 50.0, 75.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestFractionAtMost:
    def test_basic(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert fraction_at_most(values, 2.5) == 0.5
        assert fraction_at_most(values, 0.0) == 0.0
        assert fraction_at_most(values, 10.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_at_most([], 1.0)
