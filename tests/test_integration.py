"""Integration tests: full sessions through the experiment harness.

These exercise the paper's headline claims end to end on short videos:
MP-DASH cuts cellular usage versus vanilla MPTCP without stalling, the
file-download scheduler meets deadlines while avoiding cellular, and the
throttling baseline wastes energy.
"""

import pytest

from repro.experiments import (BASELINE, DURATION, FileDownloadConfig, RATE,
                               SessionConfig, run_file_download, run_schemes,
                               run_session)
from repro.net.units import kbps, megabytes

VIDEO_SECONDS = 120.0


def short_config(**kwargs):
    defaults = dict(video="big_buck_bunny", abr="festive",
                    wifi_mbps=3.8, lte_mbps=3.0,
                    video_duration=VIDEO_SECONDS)
    defaults.update(kwargs)
    return SessionConfig(**defaults)


class TestStreamingSessions:
    def test_baseline_overuses_cellular(self):
        """The Figure-1 motivation: vanilla MPTCP puts roughly half the
        bytes on LTE even though WiFi nearly suffices."""
        result = run_session(short_config(mpdash=False))
        assert result.finished
        assert result.metrics.cellular_fraction > 0.30

    @pytest.mark.parametrize("mode", ["rate", "duration"])
    def test_mpdash_cuts_cellular_without_stalls(self, mode):
        baseline = run_session(short_config(mpdash=False))
        treated = run_session(short_config(mpdash=True, deadline_mode=mode))
        assert treated.finished
        assert treated.metrics.stall_count == 0
        assert treated.metrics.cellular_bytes < \
            0.4 * baseline.metrics.cellular_bytes
        # QoE preserved: no meaningful playback bitrate loss.
        assert treated.metrics.mean_bitrate >= \
            0.9 * baseline.metrics.mean_bitrate

    def test_run_schemes_comparison(self):
        comparison = run_schemes(short_config(),
                                 schemes=(BASELINE, RATE, DURATION))
        assert comparison.cellular_savings(RATE) > 0.5
        assert comparison.cellular_savings(DURATION) > 0.5
        assert comparison.stalls(RATE) == 0
        assert abs(comparison.bitrate_reduction(RATE)) < 0.1

    def test_plenty_of_wifi_means_almost_no_cellular(self):
        """Scenario 3 locations: WiFi alone sustains the top bitrate, so
        MP-DASH nearly eliminates cellular traffic (up to 99% in the
        paper)."""
        comparison = run_schemes(short_config(wifi_mbps=20.0, lte_mbps=10.0),
                                 schemes=(BASELINE, RATE))
        assert comparison.cellular_savings(RATE) > 0.9
        assert comparison.energy_savings(RATE) > 0.3

    def test_wifi_only_session(self):
        result = run_session(short_config(wifi_only=True, wifi_mbps=8.0,
                                          mpdash=False))
        assert result.finished
        assert result.metrics.cellular_bytes == 0.0

    def test_scheduler_stats_exposed(self):
        result = run_session(short_config(mpdash=True))
        stats = result.scheduler_stats
        assert stats["activations"] > 0
        assert stats["deadline_misses"] == 0

    def test_throttling_hurts_energy_per_byte(self):
        """Table 4: throttling LTE to 700 kbps trickles data and burns
        radio energy; MP-DASH gets below it on cellular bytes AND energy."""
        throttled = run_session(short_config(
            mpdash=False, abr="gpac", lte_throttle=kbps(700)))
        mpdash = run_session(short_config(mpdash=True, abr="gpac",
                                          deadline_mode="rate"))
        assert mpdash.metrics.cellular_bytes < throttled.metrics.cellular_bytes
        assert mpdash.metrics.radio_energy < throttled.metrics.radio_energy

    def test_insufficient_network_caps_at_sim_deadline(self):
        config = short_config(wifi_mbps=0.2, lte_mbps=0.2,
                              max_sim_time=90.0, mpdash=False)
        result = run_session(config)
        assert not result.finished
        assert result.session_duration <= 90.0 + 1.0

    def test_steady_state_fraction_respected(self):
        full = run_session(short_config(steady_state_fraction=0.0))
        steady = run_session(short_config(steady_state_fraction=0.2))
        assert steady.metrics.chunk_count < full.metrics.chunk_count


class TestSchemeConfig:
    def test_with_scheme(self):
        base = short_config()
        assert base.with_scheme(BASELINE).mpdash is False
        assert base.with_scheme(RATE).deadline_mode == "rate"
        assert base.with_scheme(DURATION).mpdash is True
        with pytest.raises(ValueError):
            base.with_scheme("bogus")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(deadline_mode="bogus")
        with pytest.raises(ValueError):
            SessionConfig(alpha=0.0)
        with pytest.raises(ValueError):
            SessionConfig(wifi_mbps=None)


class TestFileDownload:
    def test_mpdash_download_meets_deadline_avoiding_cellular(self):
        """The §7.2 experiment: 5 MB, WiFi 3.8 / LTE 3.0, deadline 10 s
        (WiFi alone needs ~10.5 s, so a whiff of cellular is expected)."""
        result = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, wifi_mbps=3.8, lte_mbps=3.0))
        assert not result.missed_deadline
        assert result.cellular_fraction < 0.25

    def test_baseline_download_splits_by_capacity(self):
        result = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, mpdash=False,
            wifi_mbps=3.8, lte_mbps=3.0))
        assert result.cellular_fraction > 0.35

    def test_shorter_deadline_more_cellular(self):
        results = {}
        for deadline in (8.0, 10.0):
            results[deadline] = run_file_download(FileDownloadConfig(
                size=megabytes(5), deadline=deadline,
                wifi_mbps=3.8, lte_mbps=3.0))
        assert results[8.0].cellular_bytes > results[10.0].cellular_bytes
        assert not results[8.0].missed_deadline

    def test_mpdash_saves_energy_vs_baseline(self):
        baseline = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, mpdash=False,
            wifi_mbps=3.8, lte_mbps=3.0))
        mpdash = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, wifi_mbps=3.8, lte_mbps=3.0))
        assert mpdash.cellular_bytes < baseline.cellular_bytes
        assert mpdash.radio_energy < baseline.radio_energy

    def test_round_robin_scheduler_works_too(self):
        result = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, wifi_mbps=3.8, lte_mbps=3.0,
            mptcp_scheduler="roundrobin"))
        assert not result.missed_deadline

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FileDownloadConfig(size=0, deadline=10.0)
        with pytest.raises(ValueError):
            FileDownloadConfig(size=1e6, deadline=0.0)
