"""Edge cases for the derived observability views.

The offline rebuilders (`registry_from_trace`, `spans_from_trace`) and
the live `PathSampler` all have a degenerate regime — no events at all,
or a session shorter than one sampling interval — that the end-to-end
determinism tests never exercise.  These pin the behaviour there.
"""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.obs import (SessionMetricsCollector, Trace, TraceMeta,
                       collector_from_trace, loads_jsonl,
                       registry_from_trace, spans_from_trace)
from repro.obs.events import PathSampled
from repro.obs.metrics import PathSampler


def empty_trace(**meta):
    defaults = dict(session_duration=0.0)
    defaults.update(meta)
    return Trace(meta=TraceMeta(**defaults), events=[])


class TestEmptyTrace:
    def test_empty_jsonl_text_is_rejected_by_the_loader(self):
        """The loader refuses a headerless stream, which is why an empty
        trace has to be constructed directly."""
        with pytest.raises(ValueError, match="empty trace"):
            loads_jsonl("")

    def test_registry_from_empty_trace_is_empty(self):
        registry = registry_from_trace(empty_trace())
        assert len(registry) == 0
        assert registry.to_dict() == {"metrics": []}

    def test_registry_from_empty_trace_equals_idle_live_collector(self):
        """Offline == live must hold even for the zero-event stream."""
        live = SessionMetricsCollector()
        assert registry_from_trace(empty_trace()).to_dict() == \
            live.registry.to_dict()

    def test_collector_from_empty_trace_takes_meta(self):
        collector = collector_from_trace(
            empty_trace(activity_bin=0.25, device="galaxy_s3"))
        assert collector.activity_bin == 0.25
        assert collector.device == "galaxy_s3"

    def test_spans_from_empty_trace_is_empty(self):
        assert spans_from_trace(empty_trace()) == []


class TestPathSamplerShortSession:
    def make(self):
        sim = Simulator()
        connection = MptcpConnection(sim, [wifi_path(bandwidth_mbps=4.0),
                                           cellular_path(bandwidth_mbps=4.0)])
        samples = []
        sim.bus.subscribe(PathSampled, samples.append)
        sampler = PathSampler(sim, connection)
        return sim, sampler, samples

    def test_sub_interval_session_emits_no_samples(self):
        """`call_every` first fires at t=interval, so a session shorter
        than one 1 Hz interval legitimately has zero PathSampled events
        — consumers must not assume at least one sample per path."""
        sim, _sampler, samples = self.make()
        sim.run(until=0.5)
        assert samples == []

    def test_first_sample_lands_at_the_interval(self):
        sim, _sampler, samples = self.make()
        sim.run(until=1.5)
        assert [s.time for s in samples] == [1.0, 1.0]
        assert {s.path for s in samples} == {"wifi", "cellular"}

    def test_stopped_sampler_emits_nothing_further(self):
        sim, sampler, samples = self.make()
        sim.run(until=1.5)
        sampler.stop()
        sim.run(until=5.0)
        assert len(samples) == 2

    def test_sub_interval_session_registry_has_no_sample_series(self):
        """The derived registry built from such a stream simply lacks the
        cwnd/RTT series rather than holding empty ones."""
        sim = Simulator()
        MptcpConnection(sim, [wifi_path(bandwidth_mbps=4.0),
                              cellular_path(bandwidth_mbps=4.0)])
        collector = SessionMetricsCollector(sim.bus)
        sim.run(until=0.5)
        assert collector.registry.get(
            "repro_path_cwnd_bytes", {"path": "wifi"}) is None
