"""Tests for the subflow teardown/re-establish alternative (§6).

MP-DASH deliberately "disables" a subflow by skipping it in the scheduler
rather than removing it, so re-enabling is free.  The alternative — adding
and removing the subflow, as eMPTCP-style designs do — pays a handshake
delay and a congestion restart per re-enable.  These tests pin both
semantics and their difference.
"""

import pytest

from repro.experiments import FileDownloadConfig, run_file_download
from repro.mptcp.connection import MptcpConnection
from repro.mptcp.subflow import Subflow
from repro.net.link import Path, cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace
from repro.net.units import megabytes, mbps


def toggling_connection(reestablish):
    sim = Simulator()
    conn = MptcpConnection(
        sim, [wifi_path(bandwidth_mbps=4.0),
              cellular_path(bandwidth_mbps=4.0)],
        signaling_delay=0.0, subflow_reestablish=reestablish)
    return sim, conn


class TestSubflowSemantics:
    def test_skip_semantics_reenable_is_free(self):
        sim, conn = toggling_connection(reestablish=False)
        subflow = conn.subflow("cellular")
        conn.request_path_state("cellular", False)
        sim.run(until=1.0)
        conn.request_path_state("cellular", True)
        sim.run(until=1.05)
        assert subflow.deliverable(sim.now, 0.01) > 0
        assert subflow.reconnects == 0

    def test_reestablish_pays_handshake(self):
        sim, conn = toggling_connection(reestablish=True)
        subflow = conn.subflow("cellular")
        conn.request_path_state("cellular", False)
        sim.run(until=1.0)
        conn.request_path_state("cellular", True)
        sim.run(until=1.02)
        # Within the handshake window the subflow is not usable.
        assert subflow.deliverable(sim.now, 0.01) == 0.0
        sim.run(until=1.2)  # 1.5 * 55 ms RTT has elapsed
        assert subflow.deliverable(sim.now, 0.01) > 0
        assert subflow.reconnects == 1

    def test_reestablish_resets_congestion_window(self):
        sim, conn = toggling_connection(reestablish=True)
        subflow = conn.subflow("cellular")
        conn.start_transfer(megabytes(3))
        sim.run(until=5.0)
        grown = subflow.tcp.cwnd
        conn.request_path_state("cellular", False)
        sim.run(until=6.0)
        conn.request_path_state("cellular", True)
        sim.run(until=6.1)
        assert subflow.tcp.cwnd < grown

    def test_negative_reconnect_delay_rejected(self):
        path = Path("x", BandwidthTrace.constant(mbps(1.0)), rtt=0.05)
        with pytest.raises(ValueError):
            Subflow(path, reconnect_delay=-1.0)


class TestEndToEndCost:
    def test_reestablish_never_beats_skip_on_deadline_slack(self):
        """Same MP-DASH download under both semantics: teardown finishes
        no earlier and reconnects at least once when cellular is needed."""
        results = {}
        for reestablish in (False, True):
            results[reestablish] = run_file_download(FileDownloadConfig(
                size=megabytes(5), deadline=8.0, wifi_mbps=3.8,
                lte_mbps=3.0, subflow_reestablish=reestablish))
        assert not results[False].missed_deadline
        assert not results[True].missed_deadline
        assert results[True].duration >= results[False].duration - 0.05

    def test_reconnect_count_exposed(self):
        result = run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=8.0, wifi_mbps=3.8, lte_mbps=3.0,
            subflow_reestablish=True))
        # Cellular was disabled at arm time and re-enabled at least once
        # under deadline pressure.
        assert result.cellular_bytes > 0
