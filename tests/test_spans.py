"""Tests for repro.obs.spans: the causal span tree and its exports."""

import json

import pytest

from repro.experiments import SessionConfig, run_session
from repro.obs import EventBus, dumps_jsonl, loads_jsonl
from repro.obs.events import (ChunkDownloaded, ChunkRequested,
                              DeadlineMissed, HttpRequestSent,
                              HttpResponseReceived, MpDashArmed,
                              PlaybackStarted, SchedulerActivated,
                              SessionClosed, StallEnd, StallStart,
                              TransferCompleted, TransferStarted)
from repro.obs.spans import (STATUS_MISSED, STATUS_OK, STATUS_OPEN, Span,
                             SpanBuilder, children, dump_chrome_trace,
                             render_span_tree, spans_from_trace,
                             spans_to_dicts, to_chrome_trace)

def short_config(**kwargs):
    defaults = dict(video="big_buck_bunny", abr="festive", mpdash=True,
                    deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
                    video_duration=60.0)
    defaults.update(kwargs)
    return SessionConfig(**defaults)


def chunk_chain(bus, index=0, url="/chunk0", transfer=1, request=1,
                start=0.0, miss=False):
    """Publish one chunk's full causal chain onto ``bus``."""
    bus.publish(ChunkRequested(start, index, 1, 5.0))
    bus.publish(MpDashArmed(start, index, 4.0))
    bus.publish(HttpRequestSent(start, url, request))
    bus.publish(TransferStarted(start + 0.01, transfer, url, 1e6))
    bus.publish(SchedulerActivated(start + 0.01, transfer, 1e6, 4.0))
    if miss:
        bus.publish(DeadlineMissed(start + 4.01, transfer))
        done = start + 5.0
    else:
        done = start + 2.0
    bus.publish(TransferCompleted(done, transfer, url, 1e6, done - start))
    bus.publish(HttpResponseReceived(done, url, 200, int(1e6), request))
    bus.publish(ChunkDownloaded(done, index, 1, 1e6, done - start, start,
                                1e6 / (done - start), {}, None, 5.0))


class TestSpanBuilder:
    def test_single_chunk_chain(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        chunk_chain(bus)
        bus.publish(SessionClosed(10.0))
        spans = builder.spans
        by_kind = {s.kind: s for s in spans}
        assert set(by_kind) == {"session", "chunk", "request", "transfer",
                                "deadline"}
        session = by_kind["session"]
        chunk = by_kind["chunk"]
        request = by_kind["request"]
        transfer = by_kind["transfer"]
        deadline = by_kind["deadline"]
        # Parent chain: session <- chunk <- request <- transfer <- deadline.
        assert session.parent is None
        assert chunk.parent == session.span_id
        assert request.parent == chunk.span_id
        assert transfer.parent == request.span_id
        assert deadline.parent == transfer.span_id
        # All closed OK with the expected intervals.
        assert all(s.status == STATUS_OK for s in spans)
        assert chunk.start == 0.0 and chunk.end == 2.0
        assert deadline.attrs["deadline_at"] == pytest.approx(4.01)
        assert deadline.attrs["slack"] == pytest.approx(2.01)
        assert chunk.attrs["mpdash"] == "armed"
        assert chunk.attrs["final_level"] == 1
        assert children(spans, session) == [chunk]

    def test_deadline_miss_marks_span(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        chunk_chain(bus, miss=True)
        bus.publish(SessionClosed(10.0))
        deadline = next(s for s in builder.spans if s.kind == "deadline")
        assert deadline.status == STATUS_MISSED
        assert deadline.attrs["missed_at"] == pytest.approx(4.01)
        assert deadline.attrs["slack"] < 0
        assert deadline.end == 5.0

    def test_interleaved_chunks_keep_separate_trees(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        chunk_chain(bus, index=0, url="/c0", transfer=1, request=1,
                    start=0.0)
        chunk_chain(bus, index=1, url="/c1", transfer=2, request=2,
                    start=3.0)
        bus.publish(SessionClosed(10.0))
        chunks = [s for s in builder.spans if s.kind == "chunk"]
        assert [c.attrs["index"] for c in chunks] == [0, 1]
        for chunk in chunks:
            (request,) = children(builder.spans, chunk)
            (transfer,) = children(builder.spans, request)
            assert transfer.attrs["transfer"] == chunk.attrs["index"] + 1

    def test_stall_and_playback(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        bus.publish(PlaybackStarted(1.0))
        bus.publish(StallStart(2.0))
        bus.publish(StallEnd(3.5))
        bus.publish(SessionClosed(5.0))
        session = builder.spans[0]
        assert session.attrs["playback_started"] == 1.0
        stall = next(s for s in builder.spans if s.kind == "stall")
        assert stall.duration == pytest.approx(1.5)
        assert stall.status == STATUS_OK

    def test_session_close_finishes_open_spans(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        bus.publish(ChunkRequested(1.0, 0, 1, 5.0))
        bus.publish(StallStart(2.0))
        bus.publish(SessionClosed(4.0))
        for span in builder.spans:
            assert span.end == 4.0
        # Non-session spans that never completed keep OPEN status.
        chunk = next(s for s in builder.spans if s.kind == "chunk")
        assert chunk.status == STATUS_OPEN
        assert builder.spans[0].status == STATUS_OK

    def test_span_value_equality(self):
        a = Span(1, "x", "chunk", 0.0, attrs={"k": 1})
        b = Span(1, "x", "chunk", 0.0, attrs={"k": 1})
        assert a == b
        b.close(1.0)
        assert a != b


class TestChromeTrace:
    def _spans(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        chunk_chain(bus)
        bus.publish(SessionClosed(10.0))
        return builder.spans

    def test_records_validate_against_trace_event_schema(self):
        records = to_chrome_trace(self._spans())
        assert isinstance(records, list) and records
        for record in records:
            # Complete events: the required trace-event fields, µs times.
            assert record["ph"] == "X"
            assert isinstance(record["ts"], (int, float))
            assert isinstance(record["dur"], (int, float))
            assert record["dur"] >= 0
            assert isinstance(record["pid"], int)
            assert isinstance(record["tid"], int)
            assert isinstance(record["name"], str)
            assert isinstance(record["args"], dict)

    def test_microsecond_timestamps_and_lanes(self):
        spans = self._spans()
        records = to_chrome_trace(spans)
        chunk = next(r for r in records if r["cat"] == "chunk")
        assert chunk["ts"] == 0.0
        assert chunk["dur"] == pytest.approx(2e6)
        tids = {r["cat"]: r["tid"] for r in records}
        assert len(set(tids.values())) == len(tids)  # one lane per kind

    def test_dump_round_trips_through_json(self, tmp_path):
        spans = self._spans()
        target = tmp_path / "trace.json"
        dump_chrome_trace(str(target), spans)
        loaded = json.loads(target.read_text())
        assert isinstance(loaded, list)
        assert len(loaded) == len(spans)
        assert all("ph" in r and "ts" in r and "pid" in r and "tid" in r
                   for r in loaded)

    def test_spans_to_dicts(self):
        spans = self._spans()
        payload = spans_to_dicts(spans)
        assert json.loads(json.dumps(payload)) == payload
        assert payload[0]["kind"] == "session"


class TestRenderTree:
    def test_indented_tree_with_markers(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        chunk_chain(bus, miss=True)
        bus.publish(ChunkRequested(9.0, 1, 1, 5.0))
        bus.publish(SessionClosed(10.0))
        text = render_span_tree(builder.spans)
        lines = text.splitlines()
        assert lines[0].startswith("session")
        assert lines[1].startswith("  chunk[0]")
        assert any("[MISSED]" in line for line in lines)

    def test_limit_appends_elision_note(self):
        bus = EventBus()
        builder = SpanBuilder(bus)
        for index in range(5):
            chunk_chain(bus, index=index, url=f"/c{index}",
                        transfer=index + 1, request=index + 1,
                        start=float(index * 3))
        bus.publish(SessionClosed(20.0))
        text = render_span_tree(builder.spans, max_spans=4)
        assert "more spans" in text.splitlines()[-1]


class TestLiveSession:
    def test_spans_attached_via_config(self):
        result = run_session(short_config(collect_spans=True))
        spans = result.spans
        assert spans and spans[0].kind == "session"
        kinds = {s.kind for s in spans}
        assert {"session", "chunk", "request", "transfer"} <= kinds
        # Every chunk span closed by the session end.
        assert all(s.end is not None for s in spans)
        chunk_count = sum(1 for s in spans if s.kind == "chunk")
        assert chunk_count == len(result.player.log.chunks)

    def test_offline_spans_equal_live(self):
        result = run_session(short_config(collect_spans=True,
                                          record_trace=True))
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        assert spans_from_trace(trace) == result.spans


class TestMalformedChains:
    """spans_from_trace and transfer_chunk_map on broken causal chains.

    These are the degraded streams the attribution walker must survive:
    orphaned transfers, chunks that never downloaded, truncated traces.
    """

    def build(self, publish):
        bus = EventBus()
        builder = SpanBuilder(bus)
        publish(bus)
        return builder.spans

    def test_transfer_chunk_map_joins_full_chains(self):
        spans = self.build(lambda bus: (
            chunk_chain(bus, index=0, url="/chunk0", transfer=1,
                        request=1),
            chunk_chain(bus, index=4, url="/chunk4", transfer=9,
                        request=2, start=10.0),
            bus.publish(SessionClosed(20.0))))
        from repro.obs.spans import transfer_chunk_map

        assert transfer_chunk_map(spans) == {1: 0, 9: 4}

    def test_orphan_transfer_parents_to_root_and_stays_unmapped(self):
        def publish(bus):
            bus.publish(TransferStarted(1.0, 7, "/stray", 1e6))
            bus.publish(TransferCompleted(2.0, 7, "/stray", 1e6, 1.0))
            bus.publish(SessionClosed(3.0))

        spans = self.build(publish)
        from repro.obs.spans import transfer_chunk_map

        transfer = next(s for s in spans if s.kind == "transfer")
        assert transfer.parent == spans[0].span_id  # session root
        assert transfer.status == STATUS_OK
        assert transfer_chunk_map(spans) == {}

    def test_chunk_without_download_keeps_open_status(self):
        def publish(bus):
            bus.publish(ChunkRequested(0.0, 0, 1, 5.0))
            bus.publish(HttpRequestSent(0.0, "/chunk0", 1))
            bus.publish(TransferStarted(0.01, 1, "/chunk0", 1e6))
            bus.publish(SessionClosed(5.0))

        spans = self.build(publish)
        from repro.obs.spans import transfer_chunk_map

        chunk = next(s for s in spans if s.kind == "chunk")
        assert chunk.status == STATUS_OPEN
        # The join still resolves: the transfer did belong to chunk 0.
        assert transfer_chunk_map(spans) == {1: 0}

    def test_truncated_trace_leaves_spans_open_without_raising(self):
        def publish(bus):
            chunk_chain(bus, miss=True)
            bus.publish(ChunkRequested(6.0, 1, 1, 3.0))
            # No SessionClosed: stream cut mid-session.

        spans = self.build(publish)
        open_chunks = [s for s in spans
                       if s.kind == "chunk" and s.status == STATUS_OPEN]
        assert len(open_chunks) == 1
        missed = next(s for s in spans if s.kind == "deadline")
        assert missed.status == STATUS_MISSED

    def test_miss_for_unknown_transfer_is_ignored(self):
        def publish(bus):
            chunk_chain(bus)
            bus.publish(DeadlineMissed(4.0, 999))
            bus.publish(SessionClosed(10.0))

        spans = self.build(publish)
        deadline = next(s for s in spans if s.kind == "deadline")
        assert deadline.status == STATUS_OK
