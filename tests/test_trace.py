"""Tests for bandwidth traces."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.trace import BandwidthTrace, constant_mbps
from repro.net.units import mbps


class TestConstruction:
    def test_constant_trace(self):
        trace = BandwidthTrace.constant(1000.0)
        assert trace.bandwidth_at(0.0) == 1000.0
        assert trace.bandwidth_at(1e6) == 1000.0

    def test_constant_mbps_shorthand(self):
        trace = constant_mbps(8.0)
        assert trace.bandwidth_at(5.0) == pytest.approx(1e6)

    def test_from_samples(self):
        trace = BandwidthTrace.from_samples([100.0, 200.0, 300.0], 1.0)
        assert trace.bandwidth_at(0.5) == 100.0
        assert trace.bandwidth_at(1.0) == 200.0
        assert trace.bandwidth_at(2.9) == 300.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0.0, 1.0], [100.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([], [])

    def test_nonzero_start_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([1.0], [100.0])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0.0, 2.0, 1.0], [1.0, 2.0, 3.0])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0.0], [-5.0])

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace.from_samples([1.0], 0.0)


class TestQueries:
    def test_negative_time_rejected(self):
        trace = BandwidthTrace.constant(10.0)
        with pytest.raises(ValueError):
            trace.bandwidth_at(-1.0)

    def test_looping_wraps_around(self):
        trace = BandwidthTrace.from_samples([100.0, 200.0], 1.0)
        assert trace.duration == 2.0
        assert trace.bandwidth_at(2.0) == 100.0
        assert trace.bandwidth_at(3.5) == 200.0

    def test_non_looping_holds_last_value(self):
        trace = BandwidthTrace.from_samples([100.0, 200.0], 1.0, loop=False)
        assert trace.bandwidth_at(100.0) == 200.0

    def test_mean_bandwidth_time_weighted(self):
        trace = BandwidthTrace.from_samples([100.0, 300.0], 1.0)
        assert trace.mean_bandwidth() == pytest.approx(200.0)

    def test_samples(self):
        trace = BandwidthTrace.from_samples([10.0, 20.0], 1.0)
        assert trace.samples(0.5, 2.0) == [10.0, 10.0, 20.0, 20.0]

    def test_scaled(self):
        trace = BandwidthTrace.from_samples([10.0, 20.0], 1.0)
        doubled = trace.scaled(2.0)
        assert doubled.bandwidth_at(0.0) == 20.0
        assert doubled.bandwidth_at(1.0) == 40.0
        # Original untouched.
        assert trace.bandwidth_at(0.0) == 10.0

    def test_capped(self):
        trace = BandwidthTrace.from_samples([10.0, 100.0], 1.0)
        capped = trace.capped(50.0)
        assert capped.bandwidth_at(0.0) == 10.0
        assert capped.bandwidth_at(1.0) == 50.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace.constant(10.0).scaled(-1.0)


class TestGenerators:
    def test_gaussian_mean_approximately_preserved(self):
        trace = BandwidthTrace.gaussian(mbps(3.8), 0.1, 120.0, 0.25, seed=7)
        assert trace.mean_bandwidth() == pytest.approx(mbps(3.8), rel=0.05)

    def test_gaussian_deterministic_per_seed(self):
        a = BandwidthTrace.gaussian(1000.0, 0.3, 10.0, 0.5, seed=3)
        b = BandwidthTrace.gaussian(1000.0, 0.3, 10.0, 0.5, seed=3)
        c = BandwidthTrace.gaussian(1000.0, 0.3, 10.0, 0.5, seed=4)
        assert a.samples(0.5, 10.0) == b.samples(0.5, 10.0)
        assert a.samples(0.5, 10.0) != c.samples(0.5, 10.0)

    def test_gaussian_never_negative(self):
        trace = BandwidthTrace.gaussian(1000.0, 0.9, 60.0, 0.1, seed=1)
        assert all(r > 0 for r in trace.samples(0.1, 60.0))

    def test_random_walk_mean_reverting(self):
        trace = BandwidthTrace.random_walk(mbps(5.0), 0.3, 600.0, 0.5,
                                           seed=11)
        assert trace.mean_bandwidth() == pytest.approx(mbps(5.0), rel=0.15)

    def test_random_walk_bounded(self):
        trace = BandwidthTrace.random_walk(1000.0, 0.5, 300.0, 0.5, seed=2)
        samples = trace.samples(0.5, 300.0)
        assert all(50.0 - 1e-9 <= s <= 2500.0 + 1e-9 for s in samples)

    def test_dropouts_zero_out_windows(self):
        base = BandwidthTrace.constant(1000.0)
        base.duration = 10.0
        trace = BandwidthTrace.with_dropouts(base, [(2.0, 4.0)],
                                             floor_bytes_per_s=10.0)
        assert trace.bandwidth_at(1.0) == 1000.0
        assert trace.bandwidth_at(3.0) == 10.0
        assert trace.bandwidth_at(5.0) == 1000.0

    def test_mobility_walk_oscillates(self):
        trace = BandwidthTrace.mobility_walk(mbps(5.0), mbps(0.3),
                                             period=60.0, duration=120.0,
                                             seed=0, jitter_fraction=0.0)
        near_ap = trace.bandwidth_at(0.0)
        far = trace.bandwidth_at(30.0)
        back = trace.bandwidth_at(60.0)
        assert near_ap == pytest.approx(mbps(5.0), rel=0.05)
        assert far == pytest.approx(mbps(0.3), rel=0.2)
        assert back == pytest.approx(mbps(5.0), rel=0.05)


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e8), min_size=1,
                    max_size=50),
           st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=50, deadline=None)
    def test_bandwidth_at_returns_a_listed_rate(self, rates, interval, t):
        trace = BandwidthTrace.from_samples(rates, interval)
        assert trace.bandwidth_at(t) in rates

    @given(st.lists(st.floats(min_value=0.0, max_value=1e8), min_size=1,
                    max_size=20),
           st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=50, deadline=None)
    def test_looping_is_periodic(self, rates, interval):
        trace = BandwidthTrace.from_samples(rates, interval)
        for k in range(3):
            t = 0.3 * interval
            assert trace.bandwidth_at(t) == trace.bandwidth_at(
                t + k * trace.duration)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                    max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_mean_between_min_and_max(self, rates):
        trace = BandwidthTrace.from_samples(rates, 1.0)
        mean = trace.mean_bandwidth()
        assert min(rates) - 1e-9 <= mean <= max(rates) + 1e-9
