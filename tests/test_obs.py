"""Tests for the typed event bus and the event taxonomy."""

import dataclasses

import pytest

from repro.obs import EventBus
from repro.obs.events import (EVENT_TYPES, ChunkDownloaded, PacketSent,
                              StallStart, TraceEvent, event_from_dict,
                              event_to_dict, fast_ctor, new_packet_sent)


class TestSubscription:
    def test_typed_subscriber_sees_only_its_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(PacketSent, seen.append)
        bus.publish(PacketSent(1.0, "wifi", 100.0))
        bus.publish(StallStart(2.0))
        assert seen == [PacketSent(1.0, "wifi", 100.0)]

    def test_wildcard_subscriber_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.publish(PacketSent(1.0, "wifi", 100.0))
        bus.publish(StallStart(2.0))
        assert [type(e).__name__ for e in seen] == ["PacketSent",
                                                    "StallStart"]

    def test_delivery_order_typed_before_wildcard(self):
        bus = EventBus()
        order = []
        bus.subscribe(StallStart, lambda e: order.append("typed1"))
        bus.subscribe_all(lambda e: order.append("wild"))
        bus.subscribe(StallStart, lambda e: order.append("typed2"))
        bus.publish(StallStart(0.0))
        assert order == ["typed1", "typed2", "wild"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe(StallStart, seen.append)
        bus.publish(StallStart(0.0))
        bus.unsubscribe(StallStart, handler)
        bus.publish(StallStart(1.0))
        assert len(seen) == 1
        # Unsubscribing twice is a no-op.
        bus.unsubscribe(StallStart, handler)

    def test_unsubscribe_all(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe_all(seen.append)
        bus.publish(StallStart(0.0))
        bus.unsubscribe_all(handler)
        bus.publish(StallStart(1.0))
        assert len(seen) == 1

    def test_subscribe_rejects_non_event_types(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(dict, lambda e: None)
        with pytest.raises(TypeError):
            bus.subscribe(PacketSent(0.0, "wifi", 1.0), lambda e: None)

    def test_subscriber_count_and_published(self):
        bus = EventBus()
        bus.subscribe(StallStart, lambda e: None)
        bus.subscribe_all(lambda e: None)
        assert bus.subscriber_count(StallStart) == 2
        assert bus.subscriber_count(PacketSent) == 1
        assert bus.subscriber_count() == 2
        bus.publish(StallStart(0.0))
        assert bus.published == 1

    def test_handlers_may_publish_depth_first(self):
        bus = EventBus()
        order = []
        bus.subscribe(StallStart,
                      lambda e: (order.append("stall"),
                                 bus.publish(PacketSent(e.time, "wifi", 1.0))))
        bus.subscribe(PacketSent, lambda e: order.append("packet"))
        bus.subscribe_all(lambda e: order.append(type(e).__name__))
        bus.publish(StallStart(0.0))
        # The nested PacketSent dispatch completes before StallStart's
        # wildcard delivery.
        assert order == ["stall", "packet", "PacketSent", "StallStart"]

    def test_subscription_changes_take_effect_next_publish(self):
        bus = EventBus()
        seen = []

        def late(e):
            seen.append("late")

        bus.subscribe(StallStart,
                      lambda e: bus.subscribe(StallStart, late))
        bus.publish(StallStart(0.0))
        assert seen == []
        bus.publish(StallStart(1.0))
        assert seen == ["late"]


class TestEventTaxonomy:
    def test_registry_is_complete(self):
        # Every concrete TraceEvent subclass in the module is registered
        # under its class name.
        import repro.obs.events as mod
        concrete = {name: obj for name, obj in vars(mod).items()
                    if isinstance(obj, type) and issubclass(obj, TraceEvent)
                    and obj is not TraceEvent}
        assert EVENT_TYPES == concrete

    def test_events_are_frozen(self):
        event = PacketSent(1.0, "wifi", 100.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.time = 2.0

    def test_round_trip_every_type(self):
        for name, cls in EVENT_TYPES.items():
            kwargs = {}
            for spec in dataclasses.fields(cls):
                if spec.name == "time":
                    kwargs[spec.name] = 1.5
                elif spec.type in ("str",):
                    kwargs[spec.name] = "wifi"
                elif "Mapping" in str(spec.type) or "Dict" in str(spec.type):
                    kwargs[spec.name] = {"wifi": 10.0}
                elif spec.type == "bool":
                    kwargs[spec.name] = True
                elif spec.type == "float":
                    kwargs[spec.name] = 0.125
                else:
                    kwargs[spec.name] = 3
            event = cls(**kwargs)
            record = event_to_dict(event)
            assert record["type"] == name
            assert event_from_dict(record) == event

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            event_from_dict({"type": "NoSuchEvent", "time": 0.0})

    def test_malformed_record_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            event_from_dict({"type": "PacketSent", "time": 0.0,
                             "bogus_field": 1})


class TestFastCtor:
    def test_matches_normal_construction(self):
        assert (new_packet_sent(1.0, "wifi", 100.0, 2)
                == PacketSent(1.0, "wifi", 100.0, 2))

    def test_instances_stay_frozen(self):
        event = new_packet_sent(1.0, "wifi", 100.0, 2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.num_bytes = 0.0

    def test_works_for_any_event_class(self):
        ctor = fast_ctor(ChunkDownloaded)
        fields = [spec.name for spec in dataclasses.fields(ChunkDownloaded)]
        values = [1.0, 2, 3, 4.0, 5.0, 6.0, 7.0, {"wifi": 8.0}, 9.0, 10.0]
        assert len(fields) == len(values)
        assert ctor(*values) == ChunkDownloaded(*values)
