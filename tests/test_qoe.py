"""Tests for the composite QoE score."""

import pytest

from repro.analysis.qoe import QoeScore, qoe_from_bitrates, qoe_of, \
    session_qoe
from repro.experiments import SessionConfig, run_session


class TestScoring:
    def test_steady_high_bitrate_scores_best(self):
        steady = qoe_from_bitrates([4.0] * 10)
        lower = qoe_from_bitrates([2.0] * 10)
        assert steady.total > lower.total
        assert steady.switch_penalty == 0.0

    def test_switching_penalized(self):
        steady = qoe_from_bitrates([3.0] * 10)
        thrash = qoe_from_bitrates([2.0, 4.0] * 5)
        assert thrash.quality == steady.quality
        assert thrash.total < steady.total

    def test_rebuffering_dominates(self):
        clean = qoe_from_bitrates([4.0] * 10)
        stalled = qoe_from_bitrates([4.0] * 10, rebuffer_seconds=3.0)
        assert clean.total - stalled.total == pytest.approx(24.0)

    def test_startup_penalized_lightly(self):
        slow_start = qoe_from_bitrates([4.0] * 10, startup_seconds=2.0)
        assert slow_start.startup_penalty == pytest.approx(2.0)

    def test_per_chunk_normalizes(self):
        short = qoe_from_bitrates([4.0] * 5)
        long = qoe_from_bitrates([4.0] * 50)
        assert short.per_chunk == pytest.approx(long.per_chunk)
        assert long.total > short.total

    def test_empty_session(self):
        score = qoe_from_bitrates([])
        assert score.total == 0.0
        assert score.per_chunk == 0.0

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            qoe_from_bitrates([1.0], rebuffer_seconds=-1.0)
        with pytest.raises(ValueError):
            qoe_from_bitrates([1.0], startup_seconds=-1.0)

    def test_custom_penalties(self):
        harsh = qoe_from_bitrates([2.0, 4.0], switch_penalty=10.0)
        assert harsh.switch_penalty == pytest.approx(20.0)


class TestSessionScoring:
    @pytest.fixture(scope="class")
    def comparison(self):
        results = {}
        for mpdash in (False, True):
            results[mpdash] = run_session(SessionConfig(
                video="big_buck_bunny", abr="festive", mpdash=mpdash,
                deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
                video_duration=120.0))
        return results

    def test_session_qoe_from_log(self, comparison):
        result = comparison[True]
        score = session_qoe(result.player.log,
                            result.player.manifest.bitrates(),
                            startup_delay=result.metrics.startup_delay)
        assert score.chunk_count == len(result.player.log.chunks)
        assert score.total > 0
        assert score.rebuffer_penalty == 0.0

    def test_qoe_of_metrics_matches_log_quality(self, comparison):
        result = comparison[True]
        ladder = result.player.manifest.bitrates()
        from_log = session_qoe(result.player.log, ladder)
        from_metrics = qoe_of(result.metrics, ladder)
        # Metrics skip the first 20% of chunks; per-chunk quality should
        # match to within the startup ramp's influence.
        assert from_metrics.per_chunk == pytest.approx(
            from_log.per_chunk, rel=0.2)

    def test_mpdash_preserves_qoe(self, comparison):
        """The headline claim in QoE terms: MP-DASH scores within a few
        percent of vanilla MPTCP."""
        ladder = comparison[True].player.manifest.bitrates()
        baseline = session_qoe(comparison[False].player.log, ladder)
        treated = session_qoe(comparison[True].player.log, ladder)
        assert treated.total >= 0.93 * baseline.total


class TestRepr:
    def test_repr_shows_decomposition(self):
        score = QoeScore(quality=40.0, switch_penalty=2.0,
                         rebuffer_penalty=0.0, startup_penalty=1.0,
                         chunk_count=10)
        text = repr(score)
        assert "37.0" in text
