"""Tests for repro.obs.profile: the profiler and its two hooks."""

import functools
import json

from repro.experiments import SessionConfig, run_session
from repro.net.simulator import Simulator
from repro.obs import EventBus, ProfiledBus, Profiler
from repro.obs.events import StallEnd, StallStart, TraceEvent
from repro.obs.profile import Stat, _callable_name


def short_config(**kwargs):
    defaults = dict(video="big_buck_bunny", abr="festive", mpdash=True,
                    deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
                    video_duration=60.0)
    defaults.update(kwargs)
    return SessionConfig(**defaults)


class TestStat:
    def test_accumulates(self):
        stat = Stat()
        stat.add(0.5)
        stat.add(1.5)
        assert stat.calls == 2
        assert stat.total == 2.0
        assert stat.mean == 1.0
        assert stat.to_dict() == {"calls": 2, "total": 2.0}

    def test_empty_mean_is_zero(self):
        assert Stat().mean == 0.0


class TestCallableName:
    def test_method_and_function(self):
        assert _callable_name(TestCallableName.test_method_and_function) \
            == "test_profile.TestCallableName.test_method_and_function"

    def test_partial(self):
        def f(a, b):
            return a + b
        name = _callable_name(functools.partial(f, 1))
        assert name.startswith("partial(") and "f" in name

    def test_callable_instance(self):
        class Handler:
            def __call__(self, event):
                pass
        assert _callable_name(Handler()) == "Handler"


class TestProfiledBus:
    def test_delivery_semantics_match_plain_bus(self):
        plain, profiled = EventBus(), ProfiledBus()
        order = {"plain": [], "profiled": []}
        for bus, key in ((plain, "plain"), (profiled, "profiled")):
            bus.subscribe(StallStart,
                          lambda e, key=key: order[key].append(("typed", e)))
            bus.subscribe_all(
                lambda e, key=key: order[key].append(("all", e)))
            bus.publish(StallStart(1.0))
            bus.publish(StallEnd(2.0))
        assert order["plain"] == order["profiled"]
        assert profiled.published == 2

    def test_timings_recorded_per_event_and_handler(self):
        bus = ProfiledBus()
        bus.subscribe(StallStart, lambda e: None)
        bus.publish(StallStart(1.0))
        bus.publish(StallStart(2.0))
        bus.publish(StallEnd(3.0))  # no handlers: event stat only
        profiler = bus.profiler
        assert profiler.events["StallStart"].calls == 2
        assert profiler.events["StallEnd"].calls == 1
        (handler_name,) = profiler.handlers
        assert handler_name.startswith("StallStart → ")
        assert profiler.handlers[handler_name].calls == 2
        assert profiler.events["StallStart"].total >= 0

    def test_external_profiler_shared(self):
        profiler = Profiler()
        bus = ProfiledBus(profiler)
        bus.publish(StallStart(1.0))
        assert profiler.events["StallStart"].calls == 1


class TestSimulatorHook:
    def test_callbacks_timed_when_profiler_set(self):
        sim = Simulator()
        sim.profiler = Profiler()

        def tick():
            pass

        sim.schedule_at(1.0, tick)
        sim.schedule_at(2.0, tick)
        sim.run()
        (name,) = sim.profiler.callbacks
        assert "tick" in name
        assert sim.profiler.callbacks[name].calls == 2

    def test_default_path_has_no_profiler(self):
        sim = Simulator()
        assert sim.profiler is None
        sim.schedule_at(1.0, lambda: None)
        sim.run()  # must not fail without a profiler


class TestReport:
    def _profiler(self):
        bus = ProfiledBus()
        bus.subscribe(StallStart, lambda e: None)
        bus.publish(StallStart(1.0))
        profiler = bus.profiler
        profiler.wall_clock = 0.25
        profiler.record_callback(self._profiler, 0.001)
        return profiler

    def test_report_sections(self):
        text = self._profiler().report()
        assert "profiled wall clock: 0.250s" in text
        assert "Bus events (inclusive dispatch time)" in text
        assert "Subscriber handlers" in text
        assert "Simulator callbacks" in text
        assert "StallStart" in text

    def test_top_orders_by_total(self):
        profiler = Profiler()
        profiler.record_event(StallStart, 0.001)
        profiler.record_event(StallEnd, 0.005)
        rows = profiler.top(profiler.events)
        assert [name for name, _ in rows] == ["StallEnd", "StallStart"]
        assert len(profiler.top(profiler.events, count=1)) == 1

    def test_to_dict_is_json_ready(self):
        payload = self._profiler().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["wall_clock"] == 0.25
        assert payload["events"]["StallStart"]["calls"] == 1


class TestLiveSession:
    def test_run_session_profile_flag(self):
        result = run_session(short_config(), profile=True)
        profiler = result.profile
        assert profiler is not None
        assert profiler.wall_clock is not None and profiler.wall_clock > 0
        assert profiler.events and profiler.callbacks
        # PacketSent is the hot transport event; it must be attributed.
        assert "PacketSent" in profiler.events
        report = profiler.report(top=5)
        assert "Simulator callbacks" in report

    def test_profiling_does_not_change_outcomes(self):
        bare = run_session(short_config())
        profiled = run_session(short_config(), profile=True)
        assert bare.metrics.cellular_bytes == profiled.metrics.cellular_bytes
        assert bare.session_duration == profiled.session_duration
