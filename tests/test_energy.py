"""Tests for the radio energy model."""

import pytest

from repro.energy.devices import DEVICES, GALAXY_NOTE, GALAXY_S3
from repro.energy.model import (EnergyBreakdown, interface_energy,
                                session_energy)
from repro.mptcp.activity import ActivityLog


def burst(log, start, duration, rate_bytes_per_s=1e6, path="cellular",
          bin_width=0.1):
    t = start
    while t < start + duration - 1e-9:
        log.record(t, path, rate_bytes_per_s * bin_width)
        t += bin_width


class TestProfiles:
    def test_active_power_scales_with_throughput(self):
        lte = GALAXY_NOTE.lte
        assert lte.active_power(10.0) > lte.active_power(1.0)
        assert lte.active_power(0.0) == lte.active_base

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError):
            GALAXY_NOTE.lte.active_power(-1.0)

    def test_interface_lookup(self):
        assert GALAXY_NOTE.for_interface("cellular") is GALAXY_NOTE.lte
        assert GALAXY_NOTE.for_interface("wifi") is GALAXY_NOTE.wifi
        with pytest.raises(KeyError):
            GALAXY_NOTE.for_interface("bluetooth")

    def test_lte_costs_more_than_wifi(self):
        """The premise of preferring WiFi: LTE burns far more power."""
        assert GALAXY_NOTE.lte.active_power(5.0) > \
            GALAXY_NOTE.wifi.active_power(5.0)
        assert GALAXY_NOTE.lte.tail_time > GALAXY_NOTE.wifi.tail_time

    def test_devices_registry(self):
        assert DEVICES["galaxy_note"] is GALAXY_NOTE
        assert DEVICES["galaxy_s3"] is GALAXY_S3


class TestInterfaceEnergy:
    def test_idle_only_session(self):
        log = ActivityLog(0.1)
        breakdown = interface_energy(log, "cellular", GALAXY_NOTE.lte, 100.0)
        assert breakdown.active == 0.0
        assert breakdown.tail == 0.0
        assert breakdown.idle == pytest.approx(100.0 *
                                               GALAXY_NOTE.lte.idle_power)

    def test_single_burst_charges_all_states(self):
        log = ActivityLog(0.1)
        burst(log, 10.0, 2.0)
        profile = GALAXY_NOTE.lte
        breakdown = interface_energy(log, "cellular", profile, 100.0)
        assert breakdown.active > 0
        assert breakdown.tail == pytest.approx(
            profile.tail_time * profile.tail_power, rel=0.01)
        assert breakdown.promotion == profile.promotion_energy
        expected_idle = (10.0 + (100.0 - 12.0 - profile.tail_time)) * \
            profile.idle_power
        assert breakdown.idle == pytest.approx(expected_idle, rel=0.05)

    def test_gap_shorter_than_tail_stays_promoted(self):
        log = ActivityLog(0.1)
        burst(log, 0.0, 1.0)
        burst(log, 5.0, 1.0)  # 4s gap < 11.6s tail
        profile = GALAXY_NOTE.lte
        breakdown = interface_energy(log, "cellular", profile, 30.0)
        # Only one promotion; the gap is all tail.
        assert breakdown.promotion == profile.promotion_energy
        assert breakdown.tail == pytest.approx(
            (4.0 + profile.tail_time) * profile.tail_power, rel=0.02)

    def test_gap_longer_than_tail_demotes(self):
        log = ActivityLog(0.1)
        burst(log, 0.0, 1.0)
        burst(log, 50.0, 1.0)
        profile = GALAXY_NOTE.lte
        breakdown = interface_energy(log, "cellular", profile, 100.0)
        assert breakdown.promotion == pytest.approx(
            2 * profile.promotion_energy)
        assert breakdown.tail == pytest.approx(
            2 * profile.tail_time * profile.tail_power, rel=0.02)
        assert breakdown.idle > 0

    def test_dribble_costs_more_than_burst(self):
        """The Table-4 lesson: the same bytes trickled slowly keep the
        radio active far longer than a fast burst plus one tail."""
        total_bytes = 10e6
        dribble = ActivityLog(0.1)
        burst(dribble, 0.0, 100.0, rate_bytes_per_s=total_bytes / 100.0)
        fast = ActivityLog(0.1)
        burst(fast, 0.0, 5.0, rate_bytes_per_s=total_bytes / 5.0)
        profile = GALAXY_NOTE.lte
        dribble_energy = interface_energy(dribble, "cellular", profile,
                                          120.0).total
        fast_energy = interface_energy(fast, "cellular", profile,
                                       120.0).total
        assert dribble_energy > 2 * fast_energy

    def test_invalid_session_end_rejected(self):
        with pytest.raises(ValueError):
            interface_energy(ActivityLog(), "cellular", GALAXY_NOTE.lte, 0.0)


class TestSessionEnergy:
    def test_totals_sum_interfaces(self):
        log = ActivityLog(0.1)
        burst(log, 0.0, 2.0, path="cellular")
        burst(log, 0.0, 2.0, path="wifi")
        energy = session_energy(log, GALAXY_NOTE, 60.0)
        assert energy["total"].total == pytest.approx(
            energy["cellular"].total + energy["wifi"].total)

    def test_breakdown_addition(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        b = EnergyBreakdown(10.0, 20.0, 30.0, 40.0)
        c = a + b
        assert c.total == pytest.approx(110.0)

    def test_devices_yield_similar_results(self):
        """The paper reports Galaxy Note and S III 'yielding similar
        results'."""
        log = ActivityLog(0.1)
        burst(log, 0.0, 10.0, path="cellular")
        note = session_energy(log, GALAXY_NOTE, 60.0)["total"].total
        s3 = session_energy(log, GALAXY_S3, 60.0)["total"].total
        assert s3 == pytest.approx(note, rel=0.25)
