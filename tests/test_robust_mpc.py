"""Tests for the RobustMPC error-discounting extension."""

import pytest

from repro.abr import Mpc, make_abr
from repro.abr.base import AbrContext
from repro.dash.events import ChunkRecord
from repro.dash.manifest import Manifest
from repro.dash.media import VideoAsset
from repro.experiments import SessionConfig, run_session
from repro.net.units import mbps


@pytest.fixture
def manifest():
    asset = VideoAsset.generate("m", 4.0, 600.0,
                                [0.58, 1.01, 1.47, 2.41, 3.94], seed=0)
    return Manifest(asset)


def chunk(throughput):
    return ChunkRecord(index=0, level=0, size=1e6, duration=4.0,
                       requested_at=0.0, completed_at=1.0,
                       throughput=throughput)


def ctx(manifest, current_level, buffer_level):
    return AbrContext(manifest=manifest, buffer_level=buffer_level,
                      buffer_capacity=40.0, next_chunk_index=10,
                      current_level=current_level, in_startup=False)


class TestRobustDiscounting:
    def test_factory_alias(self):
        abr = make_abr("robust-mpc")
        assert isinstance(abr, Mpc)
        assert abr.robust

    def test_no_errors_no_discount(self, manifest):
        plain = Mpc()
        robust = Mpc(robust=True)
        for abr in (plain, robust):
            for _ in range(5):
                abr.on_chunk_downloaded(chunk(mbps(3.0)))
        context = ctx(manifest, 2, 25.0)
        assert plain._prediction(context) == pytest.approx(
            robust._prediction(context), rel=0.01)

    def test_over_prediction_discounts_future(self, manifest):
        robust = Mpc(robust=True)
        # Stable fast samples establish an optimistic prediction...
        for _ in range(5):
            robust.on_chunk_downloaded(chunk(mbps(6.0)))
        robust._prediction(ctx(manifest, 2, 25.0))  # records a prediction
        # ...then the network collapses: the prediction was 3x too high.
        robust.on_chunk_downloaded(chunk(mbps(2.0)))
        discounted = robust._prediction(ctx(manifest, 2, 25.0))
        plain = Mpc()
        for _ in range(5):
            plain.on_chunk_downloaded(chunk(mbps(6.0)))
        plain.on_chunk_downloaded(chunk(mbps(2.0)))
        undiscounted = plain._prediction(ctx(manifest, 2, 25.0))
        assert discounted < undiscounted

    def test_under_prediction_not_penalized(self, manifest):
        robust = Mpc(robust=True)
        for _ in range(3):
            robust.on_chunk_downloaded(chunk(mbps(2.0)))
        robust._prediction(ctx(manifest, 2, 25.0))
        # Faster than predicted: no error recorded.
        robust.on_chunk_downloaded(chunk(mbps(6.0)))
        assert max(robust._recent_errors, default=0.0) == 0.0

    def test_error_window_slides(self, manifest):
        robust = Mpc(robust=True, window=3)
        for _ in range(10):
            robust._prediction(ctx(manifest, 2, 25.0))
            robust.on_chunk_downloaded(chunk(mbps(1.0)))
        assert len(robust._recent_errors) <= 3

    def test_reset_clears_errors(self, manifest):
        robust = Mpc(robust=True)
        robust.on_chunk_downloaded(chunk(mbps(3.0)))
        robust._prediction(ctx(manifest, 2, 25.0))
        robust.on_chunk_downloaded(chunk(mbps(1.0)))
        robust.reset()
        assert robust._recent_errors == []
        assert robust._last_prediction is None


class TestEndToEnd:
    def test_robust_mpc_session_completes_without_stalls(self):
        result = run_session(SessionConfig(
            video="big_buck_bunny", abr="robust-mpc", mpdash=True,
            deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
            video_duration=120.0))
        assert result.finished
        assert result.metrics.stall_count == 0

    def test_robust_no_less_conservative_than_plain(self):
        levels = {}
        for name in ("mpc", "robust-mpc"):
            result = run_session(SessionConfig(
                video="big_buck_bunny", abr=name, mpdash=False,
                wifi_mbps=2.2, lte_mbps=1.2, video_duration=120.0))
            levels[name] = result.metrics.mean_bitrate
        assert levels["robust-mpc"] <= levels["mpc"] * 1.05
