"""Tests for the throughput-based ABR algorithms (GPAC, FESTIVE)."""

import pytest

from repro.abr import Festive, Gpac, THROUGHPUT_BASED
from repro.abr.base import AbrContext
from repro.dash.events import ChunkRecord
from repro.dash.manifest import Manifest
from repro.dash.media import VideoAsset
from repro.net.units import mbps


@pytest.fixture
def manifest():
    asset = VideoAsset.generate("m", 4.0, 600.0,
                                [0.58, 1.01, 1.47, 2.41, 3.94], seed=0)
    return Manifest(asset)


def ctx(manifest, current_level=None, measured=None, override=None,
        buffer_level=20.0, index=5):
    return AbrContext(manifest=manifest, buffer_level=buffer_level,
                      buffer_capacity=40.0, next_chunk_index=index,
                      current_level=current_level,
                      measured_throughput=measured,
                      override_throughput=override, in_startup=False)


def chunk(throughput, level=0):
    return ChunkRecord(index=0, level=level, size=1e6, duration=4.0,
                       requested_at=0.0, completed_at=1.0,
                       throughput=throughput)


class TestGpac:
    def test_category(self):
        assert Gpac.category == THROUGHPUT_BASED

    def test_initial_level_is_lowest(self, manifest):
        assert Gpac().initial_level(manifest) == 0

    def test_picks_highest_level_below_estimate(self, manifest):
        abr = Gpac()
        assert abr.choose_level(ctx(manifest, 0, measured=mbps(3.0))) == 3
        assert abr.choose_level(ctx(manifest, 0, measured=mbps(10.0))) == 4
        assert abr.choose_level(ctx(manifest, 0, measured=mbps(0.6))) == 0

    def test_floor_when_estimate_below_lowest(self, manifest):
        assert Gpac().choose_level(ctx(manifest, 2,
                                       measured=mbps(0.1))) == 0

    def test_no_estimate_falls_to_initial(self, manifest):
        assert Gpac().choose_level(ctx(manifest, 3)) == 0

    def test_override_takes_precedence(self, manifest):
        """The MP-DASH cross-layer estimate replaces the player's own."""
        abr = Gpac()
        level = abr.choose_level(ctx(manifest, 0, measured=mbps(1.0),
                                     override=mbps(10.0)))
        assert level == 4

    def test_safety_factor(self, manifest):
        abr = Gpac(safety=0.5)
        assert abr.choose_level(ctx(manifest, 0, measured=mbps(4.0))) == \
            Gpac().choose_level(ctx(manifest, 0, measured=mbps(2.0)))

    def test_invalid_safety_rejected(self):
        with pytest.raises(ValueError):
            Gpac(safety=0.0)


class TestFestive:
    def test_category(self):
        assert Festive.category == THROUGHPUT_BASED

    def test_moves_one_level_at_a_time(self, manifest):
        abr = Festive()
        for _ in range(5):
            abr.on_chunk_downloaded(chunk(mbps(10.0)))
        level = abr.choose_level(ctx(manifest, current_level=0))
        assert level <= 1

    def test_upswitch_requires_sustained_evidence(self, manifest):
        """Switching up from level k needs k+1 consecutive chunks of
        headroom."""
        abr = Festive()
        for _ in range(5):
            abr.on_chunk_downloaded(chunk(mbps(10.0)))
        # From level 2 the first two calls hold, the third switches.
        assert abr.choose_level(ctx(manifest, current_level=2)) == 2
        assert abr.choose_level(ctx(manifest, current_level=2)) == 2
        assert abr.choose_level(ctx(manifest, current_level=2)) == 3

    def test_downswitch_immediate(self, manifest):
        abr = Festive()
        for _ in range(5):
            abr.on_chunk_downloaded(chunk(mbps(0.3)))
        assert abr.choose_level(ctx(manifest, current_level=3)) == 2

    def test_efficiency_headroom(self, manifest):
        """Estimate 4.2 Mbps: raw selection would be level 5 (3.94) but
        0.85 * 4.2 = 3.57 only sustains level 4 (2.41)."""
        abr = Festive()
        for _ in range(5):
            abr.on_chunk_downloaded(chunk(mbps(4.2)))
        target = abr._target_level(ctx(manifest, current_level=3))
        assert target == 3  # level index 3 = 2.41 Mbps

    def test_harmonic_mean_discounts_spikes(self, manifest):
        abr = Festive()
        for throughput in [mbps(1.0)] * 4 + [mbps(100.0)]:
            abr.on_chunk_downloaded(chunk(throughput))
        target = abr._target_level(ctx(manifest, current_level=0))
        assert target <= 1

    def test_override_replaces_harmonic_mean(self, manifest):
        abr = Festive()
        for _ in range(5):
            abr.on_chunk_downloaded(chunk(mbps(0.3)))
        level = abr.choose_level(ctx(manifest, current_level=2,
                                     override=mbps(10.0)))
        assert level >= 2  # override says the network is fine

    def test_reset_clears_state(self, manifest):
        abr = Festive()
        for _ in range(5):
            abr.on_chunk_downloaded(chunk(mbps(10.0)))
        abr.reset()
        assert abr._estimator.predict() is None

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            Festive(efficiency=1.5)
