"""Tests for the binned activity log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mptcp.activity import ActivityLog


class TestRecording:
    def test_total_bytes_accumulate(self):
        log = ActivityLog(0.1)
        log.record(0.05, "wifi", 100.0)
        log.record(0.07, "wifi", 50.0)
        assert log.total_bytes("wifi") == 150.0

    def test_paths_sorted(self):
        log = ActivityLog()
        log.record(0.0, "wifi", 1.0)
        log.record(0.0, "cellular", 1.0)
        assert log.paths() == ["cellular", "wifi"]

    def test_zero_bytes_ignored(self):
        log = ActivityLog()
        log.record(0.0, "wifi", 0.0)
        assert log.paths() == []

    def test_invalid_bin_width_rejected(self):
        with pytest.raises(ValueError):
            ActivityLog(0.0)


class TestSeries:
    def test_series_fills_gaps_with_zeros(self):
        log = ActivityLog(1.0)
        log.record(0.5, "wifi", 10.0)
        log.record(3.5, "wifi", 20.0)
        times, values = log.series("wifi")
        assert times == [0.0, 1.0, 2.0, 3.0]
        assert values == [10.0, 0.0, 0.0, 20.0]

    def test_series_until_extends_horizon(self):
        log = ActivityLog(1.0)
        log.record(0.5, "wifi", 10.0)
        times, values = log.series("wifi", until=3.0)
        assert len(times) == 4
        assert values == [10.0, 0.0, 0.0, 0.0]

    def test_empty_series(self):
        log = ActivityLog(1.0)
        assert log.series("wifi") == ([], [])

    def test_throughput_series_scales_by_width(self):
        log = ActivityLog(0.5)
        log.record(0.1, "wifi", 100.0)
        _times, rates = log.throughput_series("wifi")
        assert rates[0] == pytest.approx(200.0)

    def test_bytes_between(self):
        log = ActivityLog(1.0)
        for t in range(5):
            log.record(t + 0.5, "wifi", 10.0)
        assert log.bytes_between("wifi", 1.0, 3.0) == pytest.approx(30.0)

    def test_bytes_between_empty_window(self):
        log = ActivityLog(1.0)
        log.record(0.5, "wifi", 10.0)
        assert log.bytes_between("wifi", 5.0, 5.0) == 0.0


class TestActiveWindows:
    def test_contiguous_bins_merge(self):
        log = ActivityLog(1.0)
        log.record(0.5, "wifi", 1.0)
        log.record(1.5, "wifi", 1.0)
        assert log.active_windows("wifi", idle_threshold=0.0) == [(0.0, 2.0)]

    def test_gap_splits_windows(self):
        log = ActivityLog(1.0)
        log.record(0.5, "wifi", 1.0)
        log.record(5.5, "wifi", 1.0)
        windows = log.active_windows("wifi", idle_threshold=1.0)
        assert windows == [(0.0, 1.0), (5.0, 6.0)]

    def test_gap_within_threshold_merges(self):
        log = ActivityLog(1.0)
        log.record(0.5, "wifi", 1.0)
        log.record(5.5, "wifi", 1.0)
        windows = log.active_windows("wifi", idle_threshold=10.0)
        assert windows == [(0.0, 6.0)]

    def test_no_activity_no_windows(self):
        assert ActivityLog().active_windows("wifi", 1.0) == []


class TestProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.001, max_value=1e6)), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_total_bytes_preserved(self, events):
        log = ActivityLog(0.1)
        for t, b in events:
            log.record(t, "wifi", b)
        _times, values = log.series("wifi")
        assert sum(values) == pytest.approx(sum(b for _, b in events))
        assert log.total_bytes("wifi") == pytest.approx(
            sum(b for _, b in events))
