"""Tests for the fleet engine: workload, sharding, checkpoints, reports."""

import json
import os
import signal
import xml.etree.ElementTree as ET

import pytest

from repro.experiments import run_session
from repro.experiments.fleet import (FleetConfig, checkpoint_path,
                                     fleet_key, load_checkpoint, run_fleet,
                                     session_config)
from repro.experiments.tables import fleet_table
from repro.obs import (EventBus, FleetCheckpointSaved, FleetCompleted,
                       FleetShardCompleted, FleetStarted, fleet_report_html)
from repro.workloads import (ARRIVAL_DIURNAL, DIURNAL_CURVE,
                             SessionArrivals, field_study_locations)


def small_fleet(**overrides):
    """A fleet tiny enough for unit tests but spanning several shards."""
    defaults = dict(sessions=8, shard_size=3, video_duration=6.0, seed=7)
    defaults.update(overrides)
    return FleetConfig(**defaults)


# Module-level runners so the process pool can pickle them by reference.
def fail_wifi_only_runner(config):
    if config.wifi_only:
        raise ValueError("no cellular plan")
    return run_session(config)


def kill_once_shard_runner(config):
    """SIGKILL the first worker that runs a session, succeed afterwards."""
    marker = os.environ["REPRO_FLEET_KILL_MARKER"]
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return run_session(config)
    os.kill(os.getpid(), signal.SIGKILL)


def always_kill_shard_runner(config):
    os.kill(os.getpid(), signal.SIGKILL)


class TestSessionArrivals:
    def test_draw_is_deterministic_and_order_independent(self):
        workload = SessionArrivals(sessions=50, seed=3)
        again = SessionArrivals(sessions=50, seed=3)
        assert workload.draw(17) == again.draw(17)
        # Drawing 0..16 first must not change draw(17).
        for index in range(17):
            again.draw(index)
        assert workload.draw(17) == again.draw(17)
        assert list(workload.draws(5, 8)) == [workload.draw(i)
                                              for i in (5, 6, 7)]

    def test_draw_fields_are_in_range(self):
        names = {loc.name for loc in field_study_locations()}
        workload = SessionArrivals(sessions=100, seed=1, horizon=3600.0)
        for draw in workload.draws():
            assert 0.0 <= draw.arrival < 3600.0
            assert draw.location in names
            assert draw.scenario in (1, 2, 3)
            assert draw.device in ("galaxy_note", "galaxy_s3")
            assert draw.trace_seed >= 1
            assert 0.0 <= draw.arrival_hour < 24.0

    def test_seeds_decorrelate(self):
        one = SessionArrivals(sessions=10, seed=0)
        other = SessionArrivals(sessions=10, seed=1)
        assert any(one.draw(i) != other.draw(i) for i in range(10))

    def test_wifi_only_fraction_is_respected(self):
        workload = SessionArrivals(sessions=400, seed=2,
                                   wifi_only_fraction=0.5)
        share = sum(d.wifi_only for d in workload.draws()) / 400
        assert 0.35 < share < 0.65

    def test_device_mix_is_respected(self):
        workload = SessionArrivals(sessions=400, seed=2,
                                   device_mix={"galaxy_note": 1.0})
        assert all(d.device == "galaxy_note" for d in workload.draws())

    def test_diurnal_prefers_prime_time(self):
        workload = SessionArrivals(sessions=2000, seed=4,
                                   arrival=ARRIVAL_DIURNAL)
        peak = max(range(24), key=lambda h: DIURNAL_CURVE[h])
        trough = min(range(24), key=lambda h: DIURNAL_CURVE[h])
        hours = [int(d.arrival_hour) for d in workload.draws()]
        assert hours.count(peak) > hours.count(trough)

    def test_diurnal_with_short_horizon(self):
        workload = SessionArrivals(sessions=50, seed=5,
                                   arrival=ARRIVAL_DIURNAL, horizon=5400.0)
        for draw in workload.draws():
            assert 0.0 <= draw.arrival < 5400.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionArrivals(sessions=-1)
        with pytest.raises(ValueError):
            SessionArrivals(sessions=1, arrival="weekly")
        with pytest.raises(ValueError):
            SessionArrivals(sessions=1, horizon=0.0)
        with pytest.raises(ValueError):
            SessionArrivals(sessions=1, wifi_only_fraction=1.5)
        with pytest.raises(ValueError):
            SessionArrivals(sessions=1, device_mix={})
        with pytest.raises(IndexError):
            SessionArrivals(sessions=5).draw(5)


class TestFleetConfig:
    def test_sharding_arithmetic(self):
        config = small_fleet(sessions=8, shard_size=3)
        assert config.total_shards == 3
        assert list(config.shard_range(0)) == [0, 1, 2]
        assert list(config.shard_range(2)) == [6, 7]
        with pytest.raises(IndexError):
            config.shard_range(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(sessions=-1)
        with pytest.raises(ValueError):
            FleetConfig(arrival="weekly")
        with pytest.raises(ValueError):
            FleetConfig(horizon=0.0)
        with pytest.raises(ValueError):
            FleetConfig(scheme="turbo")
        with pytest.raises(ValueError):
            FleetConfig(video_duration=0.0)
        with pytest.raises(ValueError):
            FleetConfig(shard_size=0)
        with pytest.raises(ValueError):
            FleetConfig(device_mix={"walkie_talkie": 1.0})

    def test_key_tracks_every_field(self):
        base = fleet_key(small_fleet())
        assert fleet_key(small_fleet()) == base
        assert fleet_key(small_fleet(seed=8)) != base
        assert fleet_key(small_fleet(arrival="diurnal")) != base

    def test_session_config_reflects_the_draw(self):
        config = small_fleet(wifi_only_fraction=1.0)
        draw = config.workload().draw(0)
        session = session_config(config, draw)
        assert session.wifi_only and session.lte_trace is None
        assert session.device == draw.device
        multi = small_fleet(wifi_only_fraction=0.0)
        session = session_config(multi, multi.workload().draw(0))
        assert not session.wifi_only and session.lte_trace is not None


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        one = run_fleet(small_fleet())
        two = run_fleet(small_fleet())
        assert one.registry_json() == two.registry_json()
        assert one.sessions == 8 and one.completed

    def test_pool_matches_serial_byte_for_byte(self):
        serial = run_fleet(small_fleet(), jobs=1)
        pooled = run_fleet(small_fleet(), jobs=3)
        assert pooled.registry_json() == serial.registry_json()
        assert pooled.sessions == serial.sessions
        assert pooled.jobs == 3

    def test_different_seeds_differ(self):
        assert run_fleet(small_fleet()).registry_json() != \
            run_fleet(small_fleet(seed=8)).registry_json()

    def test_shard_size_does_not_change_the_population_counts(self):
        # Float-merge order differs across shardings, so only the
        # integer-valued population counters are sharding-invariant.
        coarse = run_fleet(small_fleet(shard_size=8))
        fine = run_fleet(small_fleet(shard_size=2))
        assert coarse.population()["deadline_misses_total"] == \
            fine.population()["deadline_misses_total"]
        assert coarse.sessions == fine.sessions


class TestCheckpointResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        config = small_fleet()
        ckpt = str(tmp_path / "ckpt")
        partial = run_fleet(config, checkpoint_dir=ckpt,
                            checkpoint_every=1, stop_after=2)
        assert partial.shards_done == 2 and not partial.completed
        resumed = run_fleet(config, jobs=2, checkpoint_dir=ckpt,
                            checkpoint_every=1, resume=True)
        assert resumed.completed and resumed.resumed_shards == 2
        baseline = run_fleet(config)
        assert resumed.registry_json() == baseline.registry_json()
        assert resumed.sessions == baseline.sessions

    def test_checkpoint_file_is_atomic_json(self, tmp_path):
        config = small_fleet()
        ckpt = str(tmp_path / "ckpt")
        run_fleet(config, checkpoint_dir=ckpt, checkpoint_every=1)
        path = checkpoint_path(ckpt)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["fleet_key"] == fleet_key(config)
        assert payload["shards_done"] == config.total_shards
        assert not [name for name in os.listdir(ckpt) if ".tmp." in name]

    def test_foreign_checkpoint_is_a_hard_error(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_fleet(small_fleet(), checkpoint_dir=ckpt, stop_after=1)
        with pytest.raises(ValueError):
            run_fleet(small_fleet(seed=8), checkpoint_dir=ckpt,
                      resume=True)

    def test_missing_or_corrupt_checkpoint_starts_fresh(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "nope.json"), "k") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_checkpoint(str(bad), "k") is None
        result = run_fleet(small_fleet(),
                           checkpoint_dir=str(tmp_path / "empty"),
                           resume=True)
        assert result.completed and result.resumed_shards == 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_fleet(small_fleet(), jobs=0)
        with pytest.raises(ValueError):
            run_fleet(small_fleet(), checkpoint_every=0)
        with pytest.raises(ValueError):
            run_fleet(small_fleet(), stop_after=0)
        with pytest.raises(ValueError):
            run_fleet(small_fleet(), retries=-1)
        with pytest.raises(ValueError):
            run_fleet(small_fleet(), resume=True)  # no checkpoint_dir


class TestFaultIsolation:
    def test_session_failures_do_not_void_the_shard(self):
        config = small_fleet(wifi_only_fraction=0.5)
        result = run_fleet(config, runner=fail_wifi_only_runner)
        assert result.completed
        assert 0 < result.failures < 8
        assert result.sessions + result.failures == 8
        assert any("no cellular plan" in sample
                   for sample in result.errors)
        failure_counter = result.registry.get(
            "repro_fleet_session_failures_total")
        assert failure_counter is not None
        assert failure_counter.value == result.failures

    def test_error_samples_are_bounded(self):
        config = small_fleet(sessions=60, shard_size=10,
                             wifi_only_fraction=1.0)
        result = run_fleet(config, runner=fail_wifi_only_runner)
        assert result.failures == 60 and result.sessions == 0
        assert len(result.errors) <= 20

    def test_error_total_counts_beyond_the_sample(self):
        # Each shard ships at most 5 samples and the parent keeps at
        # most 20, but the true failure count must never be silent.
        config = small_fleet(sessions=60, shard_size=10,
                             wifi_only_fraction=1.0)
        result = run_fleet(config, runner=fail_wifi_only_runner)
        assert result.error_total == 60
        assert result.errors_dropped == 60 - len(result.errors)
        assert result.errors_dropped > 0
        table = fleet_table(result)
        assert f"(+{result.errors_dropped} more)" in table
        payload = result.to_dict()
        assert payload["error_total"] == 60
        assert payload["errors_dropped"] == result.errors_dropped

    def test_error_total_equals_failures_when_nothing_dropped(self):
        config = small_fleet(wifi_only_fraction=0.5)
        result = run_fleet(config, runner=fail_wifi_only_runner)
        assert result.error_total == result.failures
        assert result.errors_dropped == 0
        assert "error samples" not in fleet_table(result)

    def test_error_total_survives_checkpoint_resume(self, tmp_path):
        config = small_fleet(sessions=60, shard_size=10,
                             wifi_only_fraction=1.0)
        ckpt = str(tmp_path / "ckpt")
        run_fleet(config, runner=fail_wifi_only_runner,
                  checkpoint_dir=ckpt, checkpoint_every=1, stop_after=3)
        resumed = run_fleet(config, runner=fail_wifi_only_runner,
                            checkpoint_dir=ckpt, checkpoint_every=1,
                            resume=True)
        straight = run_fleet(config, runner=fail_wifi_only_runner)
        assert resumed.error_total == straight.error_total == 60

    def test_all_failed_fleet_has_wellformed_outputs(self):
        # Zero successful sessions: stats pipeline must degrade to
        # empty-population output, not divide-by-zero or raise.
        config = small_fleet(wifi_only_fraction=1.0)
        result = run_fleet(config, runner=fail_wifi_only_runner)
        assert result.completed
        assert result.sessions == 0 and result.failures == 8
        population = result.population()
        assert population["sessions"] == 0
        assert population["bitrate_p50_mbps"] is None
        assert population["stalled_session_fraction"] is None
        assert population["sim_seconds"] == 0.0
        table = fleet_table(result)
        assert "sessions simulated" in table and "fleet: complete" in table
        html = fleet_report_html(result)
        ET.fromstring(html)
        assert "no sessions folded yet" in html
        json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"),
                    reason="needs SIGKILL (POSIX)")
class TestBrokenPoolRecovery:
    def test_worker_death_retries_and_stays_deterministic(self, tmp_path,
                                                          monkeypatch):
        marker = tmp_path / "killed"
        monkeypatch.setenv("REPRO_FLEET_KILL_MARKER", str(marker))
        config = small_fleet()
        survived = run_fleet(config, jobs=2, retries=2,
                             runner=kill_once_shard_runner)
        assert marker.exists()
        assert survived.completed
        assert survived.registry_json() == \
            run_fleet(config).registry_json()

    def test_exhausted_retries_raise(self):
        with pytest.raises(RuntimeError):
            run_fleet(small_fleet(), jobs=2, retries=0,
                      runner=always_kill_shard_runner)


class TestFleetEvents:
    def test_lifecycle_events_published(self, tmp_path):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        config = small_fleet()
        run_fleet(config, checkpoint_dir=str(tmp_path / "ckpt"),
                  checkpoint_every=1, bus=bus)
        kinds = [type(e).__name__ for e in seen]
        assert kinds[0] == "FleetStarted" and kinds[-1] == "FleetCompleted"
        assert kinds.count("FleetShardCompleted") == config.total_shards
        assert kinds.count("FleetCheckpointSaved") == config.total_shards
        started = next(e for e in seen if isinstance(e, FleetStarted))
        assert started.sessions == 8 and started.shards == 3
        completed = seen[-1]
        assert isinstance(completed, FleetCompleted)
        assert completed.sessions == 8 and completed.failures == 0
        shard = next(e for e in seen
                     if isinstance(e, FleetShardCompleted))
        assert shard.shard == 0 and shard.sessions == 3
        saved = next(e for e in seen
                     if isinstance(e, FleetCheckpointSaved))
        assert saved.path.endswith("fleet-checkpoint.json")


class TestFleetOutputs:
    def test_population_summary(self):
        result = run_fleet(small_fleet(wifi_only_fraction=0.0))
        population = result.population()
        assert population["sessions"] == 8
        assert population["completed"] is True
        assert population["bitrate_p50_mbps"] > 0
        assert population["cellular_fraction_p50"] is not None
        assert 0.0 <= population["stalled_session_fraction"] <= 1.0

    def test_empty_population_has_no_quantiles(self):
        result = run_fleet(small_fleet(sessions=0))
        population = result.population()
        assert population["bitrate_p50_mbps"] is None
        assert population["stalled_session_fraction"] is None

    def test_to_dict_is_json_ready(self):
        result = run_fleet(small_fleet())
        payload = json.loads(json.dumps(result.to_dict(),
                                        sort_keys=True))
        assert payload["fleet_key"] == fleet_key(result.config)
        assert payload["registry"] == result.registry.to_dict()

    def test_fleet_table_renders(self):
        result = run_fleet(small_fleet())
        table = fleet_table(result)
        assert "sessions simulated" in table
        assert "fleet: complete" in table
        partial = run_fleet(small_fleet(), stop_after=1)
        assert "fleet: partial" in fleet_table(partial)

    def test_report_is_wellformed_html(self, tmp_path):
        result = run_fleet(small_fleet(wifi_only_fraction=0.25,
                                       seed=11))
        html = fleet_report_html(result)
        ET.fromstring(html)  # raises on malformed markup
        assert "MP-DASH fleet report" in html
        out = tmp_path / "fleet.html"
        result.export_report(str(out))
        assert out.stat().st_size > 1000

    def test_report_marks_partial_campaigns(self):
        partial = run_fleet(small_fleet(), stop_after=1)
        html = fleet_report_html(partial)
        ET.fromstring(html)
        assert "partial campaign" in html

    def test_report_renders_empty_campaign(self):
        # Every panel must fall back gracefully before any shard lands.
        result = run_fleet(small_fleet(sessions=0))
        html = fleet_report_html(result)
        ET.fromstring(html)
        assert "no sessions folded yet" in html
        assert "no multipath sessions folded yet" in html
        assert "no deadline observations" in html
        assert "no arrival observations yet" in html

    def test_report_renders_failures_panel(self):
        result = run_fleet(small_fleet(wifi_only_fraction=0.5),
                           runner=fail_wifi_only_runner)
        html = fleet_report_html(result)
        ET.fromstring(html)
        assert "no cellular plan" in html
