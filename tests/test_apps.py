"""Tests for the §8 delay-tolerant applications (music, navigation)."""

import pytest

from repro.apps import (MusicPrefetcher, NavigationPrefetcher,
                        PlaylistTrack, RouteTile)
from repro.core.policy import prefer_wifi
from repro.core.socket_api import MpDashSocket
from repro.mptcp.connection import MptcpConnection
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.units import megabytes


def make_transport(wifi=4.0, lte=4.0, mpdash=True):
    sim = Simulator()
    connection = MptcpConnection(sim, [wifi_path(bandwidth_mbps=wifi),
                                       cellular_path(bandwidth_mbps=lte)])
    socket = MpDashSocket(connection, prefer_wifi()) if mpdash else None
    return sim, connection, socket


def run(sim, app, cap=600.0):
    app.start()
    while not app.finished and sim.now < cap:
        sim.run(until=sim.now + 5.0)


PLAYLIST = [
    PlaylistTrack("intro", megabytes(4), 40.0),
    PlaylistTrack("song-a", megabytes(8), 60.0),
    PlaylistTrack("song-b", megabytes(7), 55.0),
    PlaylistTrack("outro", megabytes(5), 45.0),
]


class TestMusicPrefetcher:
    def test_plays_whole_playlist(self):
        sim, connection, socket = make_transport()
        app = MusicPrefetcher(sim, connection, socket, PLAYLIST)
        run(sim, app)
        assert app.finished
        assert len(app.results) == len(PLAYLIST)
        assert app.stall_time == 0.0

    def test_prefetches_arrive_on_time(self):
        sim, connection, socket = make_transport()
        app = MusicPrefetcher(sim, connection, socket, PLAYLIST)
        run(sim, app)
        assert app.prefetches_on_time() == len(PLAYLIST) - 1

    def test_mpdash_avoids_cellular_when_wifi_suffices(self):
        sim, connection, socket = make_transport(wifi=4.0, lte=4.0)
        app = MusicPrefetcher(sim, connection, socket, PLAYLIST)
        run(sim, app)
        baseline_sim, baseline_conn, _ = make_transport(mpdash=False)
        baseline = MusicPrefetcher(baseline_sim, baseline_conn, None,
                                   PLAYLIST)
        run(baseline_sim, baseline)
        # WiFi at 4 Mbps delivers an 8 MB track in ~16 s against a ~54 s
        # deadline: MP-DASH needs almost no cellular; vanilla splits ~50/50.
        assert app.cellular_bytes < 0.2 * baseline.cellular_bytes
        assert baseline.cellular_bytes > megabytes(5)

    def test_first_track_fetched_in_foreground(self):
        sim, connection, socket = make_transport()
        app = MusicPrefetcher(sim, connection, socket, PLAYLIST)
        run(sim, app)
        # Foreground fetch uses every path (no deadline to exploit).
        assert app.results[0].bytes_per_path.get("cellular", 0.0) > 0

    def test_slow_network_causes_stall_not_deadlock(self):
        sim, connection, socket = make_transport(wifi=0.4, lte=0.4)
        playlist = [PlaylistTrack("a", megabytes(3), 10.0),
                    PlaylistTrack("b", megabytes(6), 10.0)]
        app = MusicPrefetcher(sim, connection, socket, playlist)
        run(sim, app, cap=300.0)
        assert app.finished
        assert app.stall_time > 0

    def test_validation(self):
        sim, connection, socket = make_transport()
        with pytest.raises(ValueError):
            MusicPrefetcher(sim, connection, socket, [])
        with pytest.raises(ValueError):
            MusicPrefetcher(sim, connection, socket, PLAYLIST, safety=0.0)
        with pytest.raises(ValueError):
            PlaylistTrack("x", 0, 10.0)


ROUTE = [RouteTile(f"tile-{i}", megabytes(2), 400.0 * (i + 1))
         for i in range(8)]


class TestNavigationPrefetcher:
    def test_fetches_whole_route(self):
        sim, connection, socket = make_transport()
        app = NavigationPrefetcher(sim, connection, socket, ROUTE,
                                   speed=15.0)
        run(sim, app)
        assert app.finished
        assert len(app.results) == len(ROUTE)

    def test_tiles_arrive_before_vehicle(self):
        sim, connection, socket = make_transport()
        app = NavigationPrefetcher(sim, connection, socket, ROUTE,
                                   speed=15.0)
        run(sim, app)
        assert app.tiles_on_time() == len(ROUTE)
        assert not app.late_tiles()

    def test_mpdash_offloads_to_preferred_path(self):
        sim, connection, socket = make_transport()
        app = NavigationPrefetcher(sim, connection, socket, ROUTE,
                                   speed=15.0)
        run(sim, app)
        baseline_sim, baseline_conn, _ = make_transport(mpdash=False)
        baseline = NavigationPrefetcher(baseline_sim, baseline_conn, None,
                                        ROUTE, speed=15.0)
        run(baseline_sim, baseline)
        assert app.cellular_bytes < 0.3 * baseline.cellular_bytes

    def test_fast_vehicle_needs_cellular(self):
        """Outrunning WiFi: deadlines tighten and cellular kicks in."""
        slow_sim, slow_conn, slow_socket = make_transport(wifi=2.0, lte=8.0)
        relaxed = NavigationPrefetcher(slow_sim, slow_conn, slow_socket,
                                       ROUTE, speed=10.0)
        run(slow_sim, relaxed)
        fast_sim, fast_conn, fast_socket = make_transport(wifi=2.0, lte=8.0)
        rushed = NavigationPrefetcher(fast_sim, fast_conn, fast_socket,
                                      ROUTE, speed=40.0)
        run(fast_sim, rushed)
        assert rushed.cellular_bytes > relaxed.cellular_bytes

    def test_route_sorted_by_distance(self):
        sim, connection, socket = make_transport()
        shuffled = list(reversed(ROUTE))
        app = NavigationPrefetcher(sim, connection, socket, shuffled,
                                   speed=15.0)
        assert [t.distance for t in app.route] == sorted(
            t.distance for t in ROUTE)

    def test_validation(self):
        sim, connection, socket = make_transport()
        with pytest.raises(ValueError):
            NavigationPrefetcher(sim, connection, socket, [], speed=10.0)
        with pytest.raises(ValueError):
            NavigationPrefetcher(sim, connection, socket, ROUTE, speed=0.0)
        with pytest.raises(ValueError):
            NavigationPrefetcher(sim, connection, socket, ROUTE,
                                 speed=10.0, lookahead=-1.0)
        with pytest.raises(ValueError):
            RouteTile("x", -1.0, 100.0)
