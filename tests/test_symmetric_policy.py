"""Tests for the symmetric preference (§3.2): prefer cellular over WiFi.

The paper's prototype supports two policies; the common one (WiFi first)
is exercised everywhere else, so these tests pin the symmetric case — a
moving user who prefers the stable cellular link and wants WiFi used only
under deadline pressure.
"""

import pytest

from repro.core.policy import prefer_cellular
from repro.core.socket_api import MpDashSocket
from repro.dash.events import MPDASH_ARMED, MPDASH_SKIPPED
from repro.experiments import SessionConfig, run_session
from repro.mptcp.connection import MptcpConnection
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.units import megabytes


def make_connection(wifi=3.0, lte=3.8):
    sim = Simulator()
    connection = MptcpConnection(sim, [wifi_path(bandwidth_mbps=wifi),
                                       cellular_path(bandwidth_mbps=lte)])
    socket = MpDashSocket(connection, prefer_cellular())
    return sim, connection, socket


class TestPreferCellular:
    def test_primary_becomes_cellular(self):
        _sim, connection, _socket = make_connection()
        assert connection.primary.name == "cellular"

    def test_costs_inverted(self):
        _sim, connection, _socket = make_connection()
        assert connection.subflow("cellular").path.cost < \
            connection.subflow("wifi").path.cost

    def test_wifi_avoided_when_cellular_meets_deadline(self):
        sim, connection, socket = make_connection(wifi=3.0, lte=3.8)
        socket.mp_dash_enable(megabytes(2), 10.0)
        transfer = connection.start_transfer(megabytes(2))
        sim.run(until=30.0)
        assert transfer.complete
        assert transfer.per_path.get("wifi", 0.0) < megabytes(2) * 0.05

    def test_wifi_assists_under_tight_deadline(self):
        sim, connection, socket = make_connection(wifi=3.0, lte=3.8)
        # 5 MB over cellular alone needs ~10.5 s.
        socket.mp_dash_enable(megabytes(5), 8.0)
        transfer = connection.start_transfer(megabytes(5))
        sim.run(until=30.0)
        assert transfer.complete
        assert transfer.finished_at - transfer.started_at <= 8.5
        assert transfer.per_path["wifi"] > 0


class TestArmedEvents:
    def test_player_logs_armed_and_skipped(self):
        result = run_session(SessionConfig(
            video="big_buck_bunny", abr="festive", mpdash=True,
            deadline_mode="rate", wifi_mbps=6.0, lte_mbps=4.0,
            video_duration=80.0))
        log = result.player.log
        armed = log.of_kind(MPDASH_ARMED)
        skipped = log.of_kind(MPDASH_SKIPPED)
        assert len(armed) + len(skipped) == len(log.chunks)
        # Startup chunks are skipped, steady-state ones armed.
        assert skipped, "initial buffering should skip MP-DASH"
        assert len(armed) > len(skipped)
        # Armed events carry the deadline the adapter computed.
        assert all(e.detail["deadline"] > 0 for e in armed)

    def test_baseline_sessions_log_no_mpdash_events(self):
        result = run_session(SessionConfig(
            video="big_buck_bunny", abr="festive", mpdash=False,
            wifi_mbps=6.0, lte_mbps=4.0, video_duration=60.0))
        log = result.player.log
        assert not log.of_kind(MPDASH_ARMED)
        assert len(log.of_kind(MPDASH_SKIPPED)) == len(log.chunks)
