"""Tests for the cross-layer invariant monitor (repro.obs.check)."""

import pytest

from repro.core.scheduler import DeadlineAwareScheduler
from repro.experiments import SessionConfig, run_session
from repro.obs import (ERROR, INFO, WARNING, EventBus, check_trace,
                       dumps_jsonl, loads_jsonl, stock_checkers)
from repro.obs.check import (BufferOccupancyChecker, ByteConservationChecker,
                             Checker, CheckReport, ChunkSanityChecker,
                             DeadlineBudgetChecker, DeadlineLifecycleChecker,
                             HttpPairingChecker, InvariantMonitor,
                             MonotonicTimeChecker, PathControlChecker,
                             RadioStateChecker, StallBudgetChecker,
                             StallPairingChecker, SubflowStateChecker,
                             TransferLifecycleChecker, Violation)
from repro.obs.events import (RADIO_ACTIVE, RADIO_IDLE, RADIO_TAIL,
                              ChunkDownloaded, ChunkRequested, DeadlineArmed,
                              DeadlineDisarmed, DeadlineExtended,
                              DeadlineMissed, HttpRequestSent,
                              HttpResponseReceived, PacketSent,
                              PathStateRequested, QualitySwitched,
                              RadioStateChange, SchedulerActivated,
                              SessionClosed, StallEnd, StallStart,
                              SubflowStateChange, SweepStarted,
                              TransferCompleted, TransferStarted)


def short_config(**kwargs):
    defaults = dict(video="big_buck_bunny", abr="festive", mpdash=True,
                    deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
                    video_duration=80.0)
    defaults.update(kwargs)
    return SessionConfig(**defaults)


def run_events(events, checkers):
    """Drive ``events`` through a monitor holding only ``checkers``."""
    monitor = InvariantMonitor(checkers)
    for event in events:
        monitor.observe(event)
    monitor.finish()
    return monitor.report()


def chunk(time=10.0, index=0, level=2, size=1e6, duration=1.0,
          requested_at=None, throughput=1e6, bytes_per_path=None,
          deadline=4.0, buffer_at_request=5.0):
    if requested_at is None:
        requested_at = time - duration
    if bytes_per_path is None:
        bytes_per_path = {"wifi": size}
    return ChunkDownloaded(time, index, level, size, duration, requested_at,
                           throughput, bytes_per_path, deadline,
                           buffer_at_request)


class TestViolation:
    def test_to_dict(self):
        violation = Violation(checker="x", severity=ERROR, time=1.5,
                              message="boom", events=(3, 7),
                              details={"a": 1})
        assert violation.to_dict() == {
            "checker": "x", "severity": "error", "time": 1.5,
            "message": "boom", "events": [3, 7], "details": {"a": 1}}


class TestMonitorFramework:
    def test_unbound_checker_cannot_report(self):
        checker = StallPairingChecker()
        with pytest.raises(RuntimeError, match="not bound"):
            checker.violation(0.0, "nope")

    def test_violation_defaults_to_current_event_index(self):
        report = run_events(
            [StallStart(1.0), StallEnd(2.0), StallEnd(3.0)],
            [StallPairingChecker()])
        assert len(report.violations) == 1
        assert report.violations[0].events == (2,)

    def test_finish_runs_once(self):
        monitor = InvariantMonitor([StallBudgetChecker(max_stall_ratio=0.0)])
        monitor.observe(StallStart(0.0))
        monitor.observe(StallEnd(5.0))
        monitor.observe(SessionClosed(10.0))  # auto-finish
        monitor.finish()
        monitor.finish()
        assert len(monitor.report().violations) == 1

    def test_attaches_to_bus(self):
        bus = EventBus()
        monitor = InvariantMonitor([StallPairingChecker()], bus=bus)
        bus.publish(StallEnd(1.0))
        assert len(monitor.violations) == 1

    def test_report_counts(self):
        report = CheckReport(
            violations=[
                Violation("a", ERROR, 0.0, "x"),
                Violation("a", WARNING, 0.0, "y"),
                Violation("b", WARNING, 0.0, "z")],
            events=10, checkers=["a", "b"])
        assert not report.ok
        assert report.by_severity() == {INFO: 0, WARNING: 2, ERROR: 1}
        assert report.by_checker() == {"a": 2, "b": 1}
        assert "1 error(s), 2 warning(s)" in report.render()

    def test_clean_report_renders_all_hold(self):
        report = run_events([StallStart(1.0), StallEnd(2.0)],
                            [StallPairingChecker()])
        assert report.ok
        assert "all invariants hold" in report.render()

    def test_stock_battery_size_and_names_unique(self):
        battery = stock_checkers()
        names = [checker.name for checker in battery]
        assert len(battery) == 13
        assert len(set(names)) == len(names)

    def test_stock_battery_threshold_validation(self):
        with pytest.raises(ValueError):
            stock_checkers(max_miss_rate=1.5)
        with pytest.raises(ValueError):
            stock_checkers(max_stall_ratio=-0.1)


class TestMonotonicTime:
    def test_backwards_time_flagged(self):
        report = run_events(
            [StallStart(5.0), StallEnd(3.0)], [MonotonicTimeChecker()])
        assert [v.checker for v in report.violations] == ["monotonic-time"]

    def test_packet_sent_only_per_path_sorted(self):
        # wifi at t=2 then cellular at t=1 is legal (bins flush per path)
        # but wifi going backwards is not.
        clean = run_events(
            [PacketSent(2.0, "wifi", 10.0), PacketSent(1.0, "cellular", 5.0)],
            [MonotonicTimeChecker()])
        assert clean.ok and not clean.violations
        dirty = run_events(
            [PacketSent(2.0, "wifi", 10.0), PacketSent(1.0, "wifi", 5.0)],
            [MonotonicTimeChecker()])
        assert len(dirty.violations) == 1

    def test_sweep_events_exempt(self):
        report = run_events(
            [StallStart(100.0), SweepStarted(0.5, 4, 2)],
            [MonotonicTimeChecker()])
        assert not report.violations

    def test_nan_and_negative_times_flagged(self):
        report = run_events(
            [StallStart(float("nan")), StallEnd(-1.0)],
            [MonotonicTimeChecker()])
        assert len(report.violations) == 2


class TestDeadlineLifecycle:
    def test_legal_cycle_is_clean(self):
        report = run_events(
            [DeadlineArmed(0.0, 1e6, 4.0),
             TransferStarted(0.1, 1, "chunk", 1e6),
             SchedulerActivated(0.1, 1, 1e6, 4.0),
             TransferCompleted(2.0, 1, "chunk", 1e6, 2.0),
             DeadlineDisarmed(3.0)],
            [DeadlineLifecycleChecker()])
        assert not report.violations

    def test_activation_without_arm_is_error(self):
        report = run_events(
            [SchedulerActivated(1.0, 1, 1e6, 4.0)],
            [DeadlineLifecycleChecker()])
        assert [v.severity for v in report.violations] == [ERROR]

    def test_rearm_before_activation_is_warning(self):
        report = run_events(
            [DeadlineArmed(0.0, 1e6, 4.0), DeadlineArmed(1.0, 1e6, 4.0)],
            [DeadlineLifecycleChecker()])
        assert [v.severity for v in report.violations] == [WARNING]
        assert report.ok

    def test_miss_for_wrong_transfer_is_error(self):
        report = run_events(
            [DeadlineArmed(0.0, 1e6, 4.0),
             SchedulerActivated(0.1, 1, 1e6, 4.0),
             DeadlineMissed(4.1, 2)],
            [DeadlineLifecycleChecker()])
        assert len(report.violations) == 1
        assert "active deadline" in report.violations[0].message

    def test_disarm_while_idle_is_legal(self):
        # The adapter disarms defensively on every skipped chunk.
        report = run_events([DeadlineDisarmed(0.0), DeadlineDisarmed(1.0)],
                            [DeadlineLifecycleChecker()])
        assert not report.violations

    def test_illegal_arm_parameters(self):
        report = run_events([DeadlineArmed(0.0, 0.0, -1.0)],
                            [DeadlineLifecycleChecker()])
        assert not report.ok


class TestPathControl:
    def arm_and_disable_all(self):
        return [
            PathStateRequested(0.0, "cellular", False),  # learn cellular
            PacketSent(0.1, "wifi", 100.0),              # learn wifi
            DeadlineArmed(1.0, 1e6, 4.0),
            SchedulerActivated(1.1, 1, 1e6, 4.0),
            PathStateRequested(1.2, "wifi", False),
        ]

    def test_all_disabled_while_armed_is_error(self):
        report = run_events(self.arm_and_disable_all(),
                            [PathControlChecker()])
        assert [v.checker for v in report.violations] == ["path-control"]
        assert "Algorithm 1" in report.violations[0].message

    def test_all_disabled_while_idle_is_legal(self):
        events = self.arm_and_disable_all()
        events.insert(4, DeadlineDisarmed(1.15))
        report = run_events(events, [PathControlChecker()])
        assert not report.violations

    def test_single_known_path_never_fires(self):
        report = run_events(
            [DeadlineArmed(0.0, 1e6, 4.0),
             SchedulerActivated(0.1, 1, 1e6, 4.0),
             PathStateRequested(0.2, "wifi", False)],
            [PathControlChecker()])
        assert not report.violations

    def test_deactivated_by_completion(self):
        events = self.arm_and_disable_all()
        events.insert(4, TransferCompleted(1.15, 1, "chunk", 1e6, 1.0))
        report = run_events(events, [PathControlChecker()])
        assert not report.violations


class TestByteConservation:
    def test_balanced_session_is_clean(self):
        report = run_events(
            [TransferStarted(0.0, 1, "chunk", 1e6),
             PacketSent(0.5, "wifi", 6e5), PacketSent(0.6, "cellular", 4e5),
             TransferCompleted(1.0, 1, "chunk", 1e6, 1.0),
             chunk(size=1e6, bytes_per_path={"wifi": 6e5, "cellular": 4e5})],
            [ByteConservationChecker()])
        assert not report.violations

    def test_bytes_from_nowhere_flagged(self):
        report = run_events(
            [TransferStarted(0.0, 1, "chunk", 1e6),
             PacketSent(0.5, "wifi", 1e5),
             TransferCompleted(1.0, 1, "chunk", 1e6, 1.0)],
            [ByteConservationChecker()])
        assert len(report.violations) == 1
        assert "only delivered" in report.violations[0].message

    def test_unaccounted_delivery_flagged_when_no_open_transfer(self):
        report = run_events(
            [TransferStarted(0.0, 1, "chunk", 1e5),
             PacketSent(0.5, "wifi", 1e6),
             TransferCompleted(1.0, 1, "chunk", 1e5, 1.0)],
            [ByteConservationChecker()])
        assert len(report.violations) == 1
        assert "only account" in report.violations[0].message

    def test_open_transfer_excuses_excess_delivery(self):
        report = run_events(
            [TransferStarted(0.0, 1, "chunk", 1e5),
             TransferCompleted(1.0, 1, "chunk", 1e5, 1.0),
             TransferStarted(1.1, 2, "chunk", 1e6),
             PacketSent(1.5, "wifi", 5e5)],
            [ByteConservationChecker()])
        assert not report.violations

    def test_chunk_per_path_mismatch_flagged(self):
        report = run_events(
            [chunk(size=1e6, bytes_per_path={"wifi": 4e5})],
            [ByteConservationChecker()])
        assert len(report.violations) == 1


class TestPairings:
    def test_nested_stall_flagged(self):
        report = run_events([StallStart(1.0), StallStart(2.0)],
                            [StallPairingChecker()])
        assert len(report.violations) == 1

    def test_open_stall_at_close_is_legal(self):
        report = run_events([StallStart(1.0), SessionClosed(5.0)],
                            [StallPairingChecker()])
        assert not report.violations

    def test_http_clean_pairing(self):
        report = run_events(
            [HttpRequestSent(0.0, "/a", 1),
             HttpResponseReceived(1.0, "/a", 200, 100, 1)],
            [HttpPairingChecker()])
        assert not report.violations

    def test_http_unknown_response_flagged(self):
        report = run_events(
            [HttpResponseReceived(1.0, "/a", 200, 100, 9)],
            [HttpPairingChecker()])
        assert len(report.violations) == 1

    def test_http_url_mismatch_flagged(self):
        report = run_events(
            [HttpRequestSent(0.0, "/a", 1),
             HttpResponseReceived(1.0, "/b", 200, 100, 1)],
            [HttpPairingChecker()])
        assert len(report.violations) == 1
        assert report.violations[0].events == (0, 1)

    def test_http_reused_outstanding_id_flagged(self):
        report = run_events(
            [HttpRequestSent(0.0, "/a", 1), HttpRequestSent(0.5, "/b", 1)],
            [HttpPairingChecker()])
        assert len(report.violations) == 1


class TestBufferAndChunks:
    def test_negative_buffer_flagged_on_all_sources(self):
        report = run_events(
            [ChunkRequested(0.0, 0, 1, -0.5),
             chunk(buffer_at_request=-1.0),
             DeadlineExtended(2.0, 4.0, 6.0, -0.1)],
            [BufferOccupancyChecker()])
        assert len(report.violations) == 3

    def test_chunk_sanity_clean(self):
        report = run_events(
            [ChunkRequested(0.0, 0, 1, 0.0), chunk(index=0),
             ChunkRequested(1.0, 1, 2, 3.0), chunk(index=1),
             QualitySwitched(1.0, 1, 2)],
            [ChunkSanityChecker()])
        assert not report.violations

    def test_chunk_regression_is_warning(self):
        report = run_events(
            [ChunkRequested(0.0, 5, 1, 0.0), ChunkRequested(1.0, 4, 1, 0.0)],
            [ChunkSanityChecker()])
        assert [v.severity for v in report.violations] == [WARNING]

    def test_noop_quality_switch_flagged(self):
        report = run_events([QualitySwitched(1.0, 2, 2)],
                            [ChunkSanityChecker()])
        assert len(report.violations) == 1

    def test_download_before_request_flagged(self):
        report = run_events([chunk(time=1.0, requested_at=2.0)],
                            [ChunkSanityChecker()])
        assert len(report.violations) == 1


class TestRadioAndSubflows:
    def test_legal_radio_cycle(self):
        report = run_events(
            [RadioStateChange(0.0, "wifi", RADIO_ACTIVE),
             RadioStateChange(1.0, "wifi", RADIO_TAIL),
             RadioStateChange(2.0, "wifi", RADIO_ACTIVE),
             RadioStateChange(3.0, "wifi", RADIO_TAIL),
             RadioStateChange(4.0, "wifi", RADIO_IDLE),
             RadioStateChange(5.0, "wifi", RADIO_ACTIVE)],
            [RadioStateChecker()])
        assert not report.violations

    def test_idle_to_tail_flagged(self):
        report = run_events(
            [RadioStateChange(0.0, "cellular", RADIO_TAIL)],
            [RadioStateChecker()])
        assert len(report.violations) == 1

    def test_unknown_state_flagged(self):
        report = run_events(
            [RadioStateChange(0.0, "wifi", "warp")], [RadioStateChecker()])
        assert "unknown radio state" in report.violations[0].message

    def test_states_tracked_per_path(self):
        report = run_events(
            [RadioStateChange(0.0, "wifi", RADIO_ACTIVE),
             RadioStateChange(0.5, "cellular", RADIO_ACTIVE)],
            [RadioStateChecker()])
        assert not report.violations

    def test_redundant_subflow_change_flagged(self):
        report = run_events(
            [SubflowStateChange(0.0, "wifi", False),
             SubflowStateChange(1.0, "wifi", False)],
            [SubflowStateChecker()])
        assert len(report.violations) == 1

    def test_initial_enable_is_redundant(self):
        # Paths start enabled; a change *to* enabled without a prior
        # disable is not a flip.
        report = run_events([SubflowStateChange(0.0, "wifi", True)],
                            [SubflowStateChecker()])
        assert len(report.violations) == 1


class TestTransferLifecycle:
    def test_overlapping_transfers_flagged(self):
        report = run_events(
            [TransferStarted(0.0, 1, "a", 1e6),
             TransferStarted(0.5, 2, "b", 1e6)],
            [TransferLifecycleChecker()])
        assert len(report.violations) == 1

    def test_completion_without_start_flagged(self):
        report = run_events(
            [TransferCompleted(1.0, 7, "a", 1e6, 1.0)],
            [TransferLifecycleChecker()])
        assert "without starting" in report.violations[0].message

    def test_duration_must_cover_observed_window(self):
        report = run_events(
            [TransferStarted(0.0, 1, "a", 1e6),
             TransferCompleted(2.0, 1, "a", 1e6, 0.5)],
            [TransferLifecycleChecker()])
        assert len(report.violations) == 1
        # duration may exceed the window (request latency) but not
        # undercut it.
        clean = run_events(
            [TransferStarted(0.0, 1, "a", 1e6),
             TransferCompleted(2.0, 1, "a", 1e6, 2.5)],
            [TransferLifecycleChecker()])
        assert not clean.violations

    def test_size_mismatch_flagged(self):
        report = run_events(
            [TransferStarted(0.0, 1, "a", 1e6),
             TransferCompleted(2.0, 1, "a", 2e6, 2.0)],
            [TransferLifecycleChecker()])
        assert len(report.violations) == 1


class TestBudgets:
    def test_miss_rate_over_budget_warns(self):
        events = [DeadlineArmed(0.0, 1e6, 4.0),
                  SchedulerActivated(0.1, 1, 1e6, 4.0),
                  DeadlineMissed(4.0, 1),
                  SessionClosed(10.0)]
        report = run_events(events,
                            [DeadlineBudgetChecker(max_miss_rate=0.5)])
        assert [v.severity for v in report.violations] == [WARNING]
        assert report.ok

    def test_miss_rate_within_budget_clean(self):
        events = [SchedulerActivated(0.1, 1, 1e6, 4.0),
                  SchedulerActivated(5.0, 2, 1e6, 4.0),
                  SessionClosed(10.0)]
        report = run_events(events,
                            [DeadlineBudgetChecker(max_miss_rate=0.25)])
        assert not report.violations

    def test_stall_ratio_over_budget_warns(self):
        report = run_events(
            [StallStart(0.0), StallEnd(6.0), SessionClosed(10.0)],
            [StallBudgetChecker(max_stall_ratio=0.5)])
        assert [v.severity for v in report.violations] == [WARNING]

    def test_open_stall_counts_until_finish(self):
        report = run_events(
            [StallStart(4.0), SessionClosed(10.0)],
            [StallBudgetChecker(max_stall_ratio=0.5)])
        assert len(report.violations) == 1


class FaultySchedulers:
    """Context managers seeding contract violations into real sessions."""

    class disable_all_paths_while_armed:
        """Algorithm 1 broken: every path requested off on activation."""

        def __enter__(self):
            self._orig = DeadlineAwareScheduler.on_transfer_start
            orig = self._orig

            def faulty(scheduler, now, transfer, conn):
                orig(scheduler, now, transfer, conn)
                if scheduler.active:
                    for name in conn.path_names():
                        conn.request_path_state(name, False)

            DeadlineAwareScheduler.on_transfer_start = faulty
            return self

        def __exit__(self, *exc):
            DeadlineAwareScheduler.on_transfer_start = self._orig
            return False


class TestLiveSessions:
    @pytest.mark.parametrize("kwargs", [
        dict(),
        dict(mpdash=False),
        dict(deadline_mode="duration"),
        dict(abr="bba"),
        dict(mptcp_scheduler="roundrobin"),
    ])
    def test_default_runs_have_zero_violations(self, kwargs):
        result = run_session(short_config(**kwargs), check=True)
        report = result.check_report
        assert report.ok
        assert report.violations == []
        assert report.events > 0

    def test_check_off_by_default(self):
        result = run_session(short_config())
        assert result.check_report is None

    def test_custom_checkers_list(self):
        result = run_session(short_config(),
                             checkers=[StallPairingChecker()])
        assert result.check_report.checkers == ["stall-pairing"]

    def test_seeded_path_fault_caught_live(self):
        with FaultySchedulers.disable_all_paths_while_armed():
            result = run_session(short_config(), check=True)
        report = result.check_report
        assert not report.ok
        assert set(report.by_checker()) == {"path-control"}
        assert all(v.severity == ERROR for v in report.violations)

    def test_seeded_fault_violations_link_to_events(self):
        with FaultySchedulers.disable_all_paths_while_armed():
            result = run_session(short_config(record_trace=True),
                                 check=True)
        for violation in result.check_report.violations:
            for index in violation.events:
                event = result.events[index]
                assert isinstance(event, PathStateRequested)
                assert not event.enabled


class TestOfflineEqualsLive:
    def test_clean_trace_identical_verdicts(self):
        result = run_session(short_config(record_trace=True), check=True)
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        offline = check_trace(trace)
        assert offline.events == result.check_report.events
        assert [v.to_dict() for v in offline.violations] == \
            [v.to_dict() for v in result.check_report.violations]

    def test_truncated_trace_runs_finish(self):
        result = run_session(short_config(record_trace=True))
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        # Drop the SessionClosed terminator: finish() must still run (at
        # the last event's time) instead of silently skipping
        # whole-session verdicts.
        truncated = type(trace)(meta=trace.meta, events=trace.events[:-1])
        report = check_trace(truncated,
                             [StallBudgetChecker(max_stall_ratio=0.0)])
        assert report.events == len(truncated.events)

    def test_custom_checkers_offline(self):
        result = run_session(short_config(record_trace=True))
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        report = check_trace(trace, [MonotonicTimeChecker()])
        assert report.checkers == ["monotonic-time"]
        assert report.ok
