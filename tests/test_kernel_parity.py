"""Tick-vs-fast kernel parity: same story, different clocks.

The event-driven kernel replaces the 10 ms tick loop with predicted
decision points and closed-form span advancement.  Both kernels
integrate the same fluid TCP model, so every outcome the paper's
figures are built from must agree.  The tolerance contract:

* **Exact** — discrete outcomes: chunk count, per-chunk quality levels
  (and therefore mean bitrate and switch count), stall count, deadline
  misses, and invariant verdicts.  A kernel that changed any of these
  would change the paper's conclusions.
* **O(tick_interval)** — continuous quantities: the tick kernel
  quantizes completions to 10 ms grid points while the fast kernel
  resolves them exactly, so event timestamps differ by a few ticks and
  anything integrated from them inherits that error.  Startup delay
  and stall time agree within 50 ms, byte split (cellular fraction)
  within 0.05 absolute, energy within 5 % relative.

The grid below deliberately sits away from ABR/scheduler decision
boundaries: at a knife edge a few milliseconds of completion-time
difference can legitimately flip a discrete decision, after which the
two runs tell different (both valid) stories.  That is a property of
the feedback loop, not a kernel bug.

Scheduler *flip counts* (enable/disable events) are intentionally not
compared: the tick kernel re-evaluates Algorithm 1 every 10 ms and
may oscillate around the threshold, while the fast kernel evaluates
only at predicted crossings.  The resulting byte split and deadline
outcomes — the quantities the paper reports — are asserted instead.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import SessionConfig, run_session
from repro.experiments.configs import FileDownloadConfig
from repro.experiments.runner import run_file_download
from repro.net.trace import BandwidthTrace, mbps

#: Documented tolerances (see module docstring).
STARTUP_TOL = 0.05       # seconds, O(tick_interval) completion skew
STALL_TIME_TOL = 0.05    # seconds
CELLULAR_FRAC_TOL = 0.05  # absolute fraction of bytes
ENERGY_REL_TOL = 0.05    # relative
DURATION_TOL = 0.5       # seconds of session wall-clock


def _grid():
    wander = BandwidthTrace.random_walk(mean_bytes_per_s=mbps(4.0),
                                        sigma_fraction=0.3, duration=200.0,
                                        interval=1.0, seed=7)
    return [
        ("vanilla-mptcp", dict(mpdash=False, wifi_mbps=3.8, lte_mbps=3.0)),
        ("mpdash-rate", dict(mpdash=True, deadline_mode="rate",
                             wifi_mbps=3.8, lte_mbps=3.0)),
        ("mpdash-duration", dict(mpdash=True, deadline_mode="duration",
                                 wifi_mbps=3.8, lte_mbps=3.0)),
        ("bba-abr", dict(abr="bba", mpdash=True, deadline_mode="rate",
                         wifi_mbps=3.8, lte_mbps=3.0)),
        ("wandering-wifi", dict(mpdash=True, deadline_mode="rate",
                                wifi_trace=wander, lte_mbps=3.0)),
        ("scarce-bandwidth", dict(mpdash=True, deadline_mode="rate",
                                  wifi_mbps=1.2, lte_mbps=1.0)),
        ("subflow-reestablish", dict(mpdash=True, deadline_mode="rate",
                                     wifi_mbps=3.8, lte_mbps=3.0,
                                     subflow_reestablish=True)),
        ("mpc-wifi-only", dict(abr="mpc", mpdash=False, wifi_mbps=2.8,
                               wifi_only=True)),
    ]


def _run(kernel: str, **overrides):
    base = dict(video="big_buck_bunny", abr="festive", video_duration=80.0)
    base.update(overrides)
    return run_session(SessionConfig(kernel=kernel, **base), check=True)


def _pair(**overrides):
    return _run("tick", **overrides), _run("fast", **overrides)


class TestSessionParity:
    @pytest.mark.parametrize("name,overrides",
                             _grid(), ids=[n for n, _ in _grid()])
    def test_qoe_and_energy_agree(self, name, overrides):
        tick, fast = _pair(**overrides)
        mt, mf = tick.metrics, fast.metrics

        # Exact discrete outcomes.
        assert mf.chunk_count == mt.chunk_count
        assert mf.levels == mt.levels
        assert mf.quality_switches == mt.quality_switches
        assert mf.mean_bitrate == pytest.approx(mt.mean_bitrate)
        assert mf.stall_count == mt.stall_count

        # O(tick_interval) continuous quantities.
        assert mf.total_stall_time == pytest.approx(
            mt.total_stall_time, abs=STALL_TIME_TOL)
        assert mf.startup_delay == pytest.approx(
            mt.startup_delay, abs=STARTUP_TOL)
        assert fast.session_duration == pytest.approx(
            tick.session_duration, abs=DURATION_TOL)
        assert mf.cellular_fraction == pytest.approx(
            mt.cellular_fraction, abs=CELLULAR_FRAC_TOL)
        assert mf.energy_total == pytest.approx(
            mt.energy_total, rel=ENERGY_REL_TOL)

    @pytest.mark.parametrize("name,overrides",
                             _grid(), ids=[n for n, _ in _grid()])
    def test_deadline_misses_agree(self, name, overrides):
        tick, fast = _pair(**overrides)
        st, sf = tick.scheduler_stats, fast.scheduler_stats
        assert sf.get("deadline_misses") == st.get("deadline_misses")

    @pytest.mark.parametrize("name,overrides",
                             _grid(), ids=[n for n, _ in _grid()])
    def test_invariant_verdicts_agree(self, name, overrides):
        tick, fast = _pair(**overrides)
        assert tick.check_report.ok
        assert fast.check_report.ok
        assert set(fast.check_report.by_checker()) == \
            set(tick.check_report.by_checker())


class TestSeededFaultParity:
    """The monitor must flag a broken scheduler identically under both
    kernels — same fault pattern as test_determinism's seeded trace."""

    def _faulty_run(self, kernel: str):
        from repro.core.scheduler import DeadlineAwareScheduler

        orig = DeadlineAwareScheduler.on_transfer_start

        def faulty(scheduler, now, transfer, conn):
            orig(scheduler, now, transfer, conn)
            if scheduler.active:  # Algorithm 1 broken: everything off
                for name in conn.path_names():
                    conn.request_path_state(name, False)

        DeadlineAwareScheduler.on_transfer_start = faulty
        try:
            return _run(kernel, mpdash=True, deadline_mode="rate",
                        wifi_mbps=3.8, lte_mbps=3.0)
        finally:
            DeadlineAwareScheduler.on_transfer_start = orig

    def test_both_kernels_flag_path_control(self):
        tick = self._faulty_run("tick")
        fast = self._faulty_run("fast")
        assert not tick.check_report.ok
        assert not fast.check_report.ok
        assert set(tick.check_report.by_checker()) == {"path-control"}
        assert set(fast.check_report.by_checker()) == {"path-control"}


class TestFileDownloadParity:
    @pytest.mark.parametrize("size,deadline", [
        (8e6, 30.0),   # comfortable: WiFi alone meets it
        (20e6, 10.0),  # impossible: both paths flat out, still missed
    ])
    def test_download_outcomes_agree(self, size, deadline):
        results = {}
        for kernel in ("tick", "fast"):
            results[kernel] = run_file_download(
                FileDownloadConfig(size=size, deadline=deadline,
                                   kernel=kernel))
        tick, fast = results["tick"], results["fast"]
        assert fast.missed_deadline == tick.missed_deadline
        assert fast.duration == pytest.approx(tick.duration, abs=0.1)
        assert fast.cellular_fraction == pytest.approx(
            tick.cellular_fraction, abs=CELLULAR_FRAC_TOL)


class TestFastIsDefault:
    """Acceptance: the parity suite passes with ``kernel="fast"`` as the
    default — so the default had better be "fast"."""

    def test_session_config_default(self):
        config = SessionConfig(video="big_buck_bunny", abr="festive",
                               wifi_mbps=3.8, lte_mbps=3.0)
        assert config.kernel == "fast"

    def test_file_download_config_default(self):
        config = FileDownloadConfig(size=1e6, deadline=10.0)
        assert config.kernel == "fast"

    def test_explicit_kernel_matches_default(self):
        overrides = dict(mpdash=True, deadline_mode="rate",
                         wifi_mbps=3.8, lte_mbps=3.0)
        default = _run("fast", **overrides)
        base = dict(video="big_buck_bunny", abr="festive",
                    video_duration=80.0)
        base.update(overrides)
        implicit = run_session(SessionConfig(**base), check=True)
        assert implicit.metrics.levels == default.metrics.levels
        assert dataclasses.asdict(implicit.metrics) == \
            dataclasses.asdict(default.metrics)
