"""Determinism and conservation invariants across the whole stack.

The paper's energy methodology depends on determinism: "given the same
network condition, MP-DASH incurs deterministic traffic pattern, which
allows us to replay the trace under different power models".  These tests
pin that property for the reproduction, plus byte-conservation invariants
that must hold for any configuration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import GALAXY_NOTE, GALAXY_S3, session_energy
from repro.experiments import SessionConfig, run_session
from repro.net.link import CELLULAR, WIFI


def short_config(**kwargs):
    defaults = dict(video="big_buck_bunny", abr="festive", mpdash=True,
                    deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
                    video_duration=80.0)
    defaults.update(kwargs)
    return SessionConfig(**defaults)


class TestDeterminism:
    def test_identical_runs_identical_traffic(self):
        a = run_session(short_config())
        b = run_session(short_config())
        assert a.metrics.cellular_bytes == b.metrics.cellular_bytes
        assert a.metrics.wifi_bytes == b.metrics.wifi_bytes
        assert [c.level for c in a.player.log.chunks] == \
            [c.level for c in b.player.log.chunks]
        assert a.session_duration == b.session_duration

    def test_trace_replay_under_different_power_models(self):
        """The same session re-costed for another device — the paper's
        replay methodology — needs only the activity log."""
        result = run_session(short_config())
        note = session_energy(result.connection.activity, GALAXY_NOTE,
                              result.session_duration)
        s3 = session_energy(result.connection.activity, GALAXY_S3,
                            result.session_duration)
        assert note["total"].total != s3["total"].total
        assert s3["total"].total == pytest.approx(note["total"].total,
                                                  rel=0.3)

    def test_device_choice_does_not_change_traffic(self):
        a = run_session(short_config(device="galaxy_note"))
        b = run_session(short_config(device="galaxy_s3"))
        assert a.metrics.cellular_bytes == b.metrics.cellular_bytes
        assert a.metrics.radio_energy != b.metrics.radio_energy


class TestConservation:
    @pytest.mark.parametrize("kwargs", [
        dict(),
        dict(mpdash=False),
        dict(abr="bba", deadline_mode="duration"),
        dict(abr="mpc"),
        dict(mptcp_scheduler="roundrobin"),
    ])
    def test_bytes_conserved_end_to_end(self, kwargs):
        """Chunk sizes == per-chunk path bytes == transport totals =="""
        result = run_session(short_config(**kwargs))
        chunks = result.player.log.chunks
        chunk_total = sum(c.size for c in chunks)
        per_path_total = sum(sum(c.bytes_per_path.values()) for c in chunks)
        transport_total = sum(sf.total_bytes
                              for sf in result.connection.subflows)
        activity_total = sum(
            result.connection.activity.total_bytes(p)
            for p in result.connection.activity.paths())
        assert per_path_total == pytest.approx(chunk_total, rel=1e-3)
        assert transport_total == pytest.approx(chunk_total, rel=1e-3)
        assert activity_total == pytest.approx(transport_total, rel=1e-6)

    def test_playback_conserved(self):
        result = run_session(short_config())
        assert result.player.buffer.total_played == pytest.approx(
            result.config.video_duration, abs=0.5)

    def test_metrics_paths_are_known_interfaces(self):
        result = run_session(short_config())
        assert set(result.metrics.bytes_per_path) <= {WIFI, CELLULAR}


class TestConfigSweepTermination:
    @given(wifi=st.floats(min_value=1.0, max_value=30.0),
           lte=st.floats(min_value=0.5, max_value=20.0),
           alpha=st.floats(min_value=0.2, max_value=1.0))
    @settings(max_examples=8, deadline=None)
    def test_any_reasonable_config_terminates_cleanly(self, wifi, lte,
                                                      alpha):
        result = run_session(short_config(
            wifi_mbps=round(wifi, 2), lte_mbps=round(lte, 2),
            alpha=round(alpha, 2), video_duration=40.0))
        assert result.finished
        assert result.metrics.total_bytes > 0
        assert result.metrics.radio_energy > 0


class TestTraceDeterminism:
    def test_same_config_byte_identical_trace(self):
        """Two runs of the same configuration export byte-identical JSONL
        traces — the property cross-run trace diffing rests on."""
        from repro.obs import dumps_jsonl

        a = run_session(short_config(record_trace=True))
        b = run_session(short_config(record_trace=True))
        text_a = dumps_jsonl(a.events, a.trace_meta)
        text_b = dumps_jsonl(b.events, b.trace_meta)
        assert text_a == text_b

    def test_different_config_different_trace(self):
        from repro.obs import dumps_jsonl

        a = run_session(short_config(record_trace=True))
        b = run_session(short_config(record_trace=True, mpdash=False))
        assert dumps_jsonl(a.events, a.trace_meta) != \
            dumps_jsonl(b.events, b.trace_meta)

    def test_recording_does_not_perturb_the_run(self):
        """Attaching the wildcard recorder must not change behaviour."""
        a = run_session(short_config(record_trace=True))
        b = run_session(short_config())
        assert a.metrics == b.metrics


class TestObservabilityDeterminism:
    """The derived views are pure functions of the event stream: replaying
    an exported JSONL trace through fresh subscribers must reproduce the
    live collectors' results exactly."""

    def test_offline_metrics_and_spans_equal_live(self):
        from repro.obs import (dumps_jsonl, loads_jsonl, registry_from_trace,
                               spans_from_trace)

        result = run_session(short_config(
            record_trace=True, collect_metrics=True, collect_spans=True))
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        assert registry_from_trace(trace).to_dict() == \
            result.metrics_registry.to_dict()
        assert spans_from_trace(trace) == result.spans

    def test_collectors_do_not_perturb_the_trace(self):
        """The metrics/span subscribers only consume events; the recorded
        transport/player stream must be unaffected.  (The PathSampler's
        PathSampled events are part of the stream by design, so compare
        with metrics collection on in both runs.)"""
        from repro.obs import dumps_jsonl

        a = run_session(short_config(record_trace=True,
                                     collect_metrics=True))
        b = run_session(short_config(record_trace=True, collect_metrics=True,
                                     collect_spans=True))
        assert dumps_jsonl(a.events, a.trace_meta) == \
            dumps_jsonl(b.events, b.trace_meta)


class TestCheckerDeterminism:
    """Invariant verdicts are a pure function of the event stream, like
    every other derived view: checking the live bus and replaying the
    exported JSONL trace must yield identical violations — including for
    a faulty scheduler, so that a violation caught in production can be
    reproduced exactly from its trace."""

    def test_clean_run_offline_verdicts_equal_live(self):
        from repro.obs import check_trace, dumps_jsonl, loads_jsonl

        result = run_session(short_config(record_trace=True), check=True)
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        offline = check_trace(trace)
        assert result.check_report.violations == []
        assert offline.events == result.check_report.events
        assert [v.to_dict() for v in offline.violations] == []

    def test_seeded_fault_offline_verdicts_equal_live(self):
        from repro.core.scheduler import DeadlineAwareScheduler
        from repro.obs import check_trace, dumps_jsonl, loads_jsonl

        orig = DeadlineAwareScheduler.on_transfer_start

        def faulty(scheduler, now, transfer, conn):
            orig(scheduler, now, transfer, conn)
            if scheduler.active:  # Algorithm 1 broken: everything off
                for name in conn.path_names():
                    conn.request_path_state(name, False)

        DeadlineAwareScheduler.on_transfer_start = faulty
        try:
            result = run_session(short_config(record_trace=True),
                                 check=True)
        finally:
            DeadlineAwareScheduler.on_transfer_start = orig
        live = result.check_report
        assert not live.ok
        assert set(live.by_checker()) == {"path-control"}
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        offline = check_trace(trace)
        assert [v.to_dict() for v in offline.violations] == \
            [v.to_dict() for v in live.violations]
        assert offline.events == live.events

    def test_checking_does_not_perturb_the_trace(self):
        """The monitor only consumes events; the recorded stream with and
        without checking must be byte-identical."""
        from repro.obs import dumps_jsonl

        a = run_session(short_config(record_trace=True), check=True)
        b = run_session(short_config(record_trace=True))
        assert dumps_jsonl(a.events, a.trace_meta) == \
            dumps_jsonl(b.events, b.trace_meta)


class TestReportDeterminism:
    """The HTML session report is a pure function of the trace: the file
    a live ``run_session(report=...)`` writes and the one rendered
    offline from the exported JSONL must be byte-identical."""

    def test_live_report_equals_offline_render(self, tmp_path):
        from repro.obs import dumps_jsonl, loads_jsonl, session_report_html

        out = tmp_path / "live.html"
        result = run_session(short_config(collect_metrics=True,
                                          collect_spans=True),
                             report=str(out))
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        assert out.read_text() == session_report_html(trace)

    def test_same_config_byte_identical_report(self):
        from repro.obs import Trace, session_report_html

        def render():
            result = run_session(short_config(record_trace=True,
                                              collect_metrics=True,
                                              collect_spans=True))
            return session_report_html(Trace(meta=result.trace_meta,
                                             events=result.events))

        assert render() == render()

    def test_seeded_fault_trace_renders_all_panels(self):
        """Acceptance: the seeded scheduler-fault session renders every
        figure panel, including a populated invariant-violations table."""
        from repro.core.scheduler import DeadlineAwareScheduler
        from repro.obs import (Trace, dumps_jsonl, loads_jsonl,
                               session_report_html)

        orig = DeadlineAwareScheduler.on_transfer_start

        def faulty(scheduler, now, transfer, conn):
            orig(scheduler, now, transfer, conn)
            if scheduler.active:  # Algorithm 1 broken: everything off
                for name in conn.path_names():
                    conn.request_path_state(name, False)

        DeadlineAwareScheduler.on_transfer_start = faulty
        try:
            result = run_session(short_config(record_trace=True,
                                              collect_metrics=True,
                                              collect_spans=True))
        finally:
            DeadlineAwareScheduler.on_transfer_start = orig
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        html = session_report_html(trace)
        assert html == session_report_html(
            Trace(meta=result.trace_meta, events=result.events))
        for panel in ("Chunk downloads (Figure 8)", "Path timelines",
                      "Buffer occupancy", "Deadline slack",
                      "Radio states and energy", "Invariant verdicts"):
            assert panel in html, panel
        assert "path-control" in html  # the seeded fault's verdicts


class TestObservabilityOverhead:
    """The collectors' absolute cost is kernel-independent, so the 10%
    relative bound is stated against the reference tick kernel — the
    denominator it was calibrated on.  The event-driven kernel makes the
    *simulation* several times cheaper, which mechanically inflates the
    collectors' relative share without a byte of the observability layer
    changing; its guard is absolute instead: turning observability on
    must never cost more than the kernel switch won."""

    @staticmethod
    def _timed(**kwargs):
        import gc
        from time import perf_counter

        gc.collect()
        gc.disable()
        try:
            started = perf_counter()
            run_session(short_config(**kwargs))
            return perf_counter() - started
        finally:
            gc.enable()

    @staticmethod
    def _skip_under_tracer():
        import sys

        if sys.gettrace() is not None or "coverage" in sys.modules:
            # A line tracer (coverage, debugger) charges its per-line cost
            # to whichever modules it instruments — under --cov=repro.obs
            # that is exactly the collectors, so the bound is meaningless.
            pytest.skip("wall-clock bound not measurable under a tracer")

    def test_collectors_within_ten_percent_of_bare_bus(self):
        """Acceptance: metrics + spans subscribers cost <= 10% wall clock
        on a seeded tick-kernel session.  Each sample is a back-to-back
        bare / instrumented pair with the collector run first and GC
        parked, and the *best* pair ratio is bounded — CPU-frequency
        drift and GC pauses then inflate individual pairs without
        poisoning them all."""
        self._skip_under_tracer()
        self._timed(kernel="tick")  # warm caches (imports, manifests)
        self._timed(kernel="tick", collect_metrics=True, collect_spans=True)
        ratios = []
        for _ in range(10):
            bare = self._timed(kernel="tick")
            instrumented = self._timed(kernel="tick", collect_metrics=True,
                                       collect_spans=True)
            ratios.append(instrumented / bare)
        assert min(ratios) <= 1.10, \
            f"observability overhead too high: best pair ratio " \
            f"{min(ratios):.3f} (all: {[f'{r:.3f}' for r in ratios]})"

    def test_instrumented_fast_kernel_beats_bare_tick(self):
        """Observability never eats the kernel win: a fully instrumented
        fast-kernel session must still be faster than the same session
        bare on the tick kernel (best-of-pairs, same discipline)."""
        self._skip_under_tracer()
        self._timed(kernel="tick")  # warm caches
        self._timed(collect_metrics=True, collect_spans=True)
        ratios = []
        for _ in range(10):
            tick_bare = self._timed(kernel="tick")
            fast_instrumented = self._timed(collect_metrics=True,
                                            collect_spans=True)
            ratios.append(fast_instrumented / tick_bare)
        assert min(ratios) <= 1.0, \
            f"instrumented fast kernel slower than bare tick: best " \
            f"ratio {min(ratios):.3f} (all: {[f'{r:.3f}' for r in ratios]})"


class TestAttributionDeterminism:
    """Attribution verdicts are a pure function of the trace: the live
    event stream, a ``--load`` round-trip of the export, and the flight
    recorder's captured artifact must yield byte-identical verdicts —
    the property that lets a root cause debugged offline be trusted as
    the root cause of the production run."""

    @staticmethod
    def _verdict_bytes(attributions):
        import json

        return json.dumps([a.to_dict() for a in attributions],
                          sort_keys=True).encode()

    @staticmethod
    def _faulty_result(**kwargs):
        """One session under the seeded scheduler fault (Algorithm 1
        broken: every path disabled once armed)."""
        from repro.core.scheduler import DeadlineAwareScheduler

        orig = DeadlineAwareScheduler.on_transfer_start

        def faulty(scheduler, now, transfer, conn):
            orig(scheduler, now, transfer, conn)
            if scheduler.active:
                for name in conn.path_names():
                    conn.request_path_state(name, False)

        DeadlineAwareScheduler.on_transfer_start = faulty
        try:
            return run_session(short_config(record_trace=True, **kwargs))
        finally:
            DeadlineAwareScheduler.on_transfer_start = orig

    def test_clean_run_attributes_nothing_everywhere(self):
        from repro.obs import (Trace, attributions_from_trace,
                               dumps_jsonl, loads_jsonl)

        result = run_session(short_config(record_trace=True))
        live = Trace(meta=result.trace_meta, events=list(result.events))
        loaded = loads_jsonl(dumps_jsonl(result.events,
                                         result.trace_meta))
        assert attributions_from_trace(live) == []
        assert attributions_from_trace(loaded) == []

    def test_seeded_fault_live_offline_and_recorded_agree(self, tmp_path):
        import os

        from repro.obs import (RecorderConfig, ShardRecorder, Trace,
                               attributions_from_trace, dumps_jsonl,
                               load_jsonl, loads_jsonl,
                               summarize_attributions)

        result = self._faulty_result()
        live_trace = Trace(meta=result.trace_meta,
                           events=list(result.events))
        live = attributions_from_trace(live_trace)
        assert live, "the seeded fault must produce anomalies"
        summary = summarize_attributions(live)
        assert summary["top_layer"] == "scheduler"
        assert summary["top_cause"] == "path-control-violation"

        # --load path: export and re-parse.
        offline = attributions_from_trace(
            loads_jsonl(dumps_jsonl(result.events, result.trace_meta)))

        # Recorder path: observe captures the artifact and returns the
        # same verdicts it folded into the shard's registry.
        recorder = ShardRecorder(
            RecorderConfig(artifact_dir=str(tmp_path / "records")),
            "deadbeefcafe", 0)
        observed = recorder.observe(123, result)
        recorder.flush()
        (record,) = recorder.records
        recorded = attributions_from_trace(load_jsonl(
            os.path.join(str(tmp_path / "records"),
                         record["artifact"])))

        live_bytes = self._verdict_bytes(live)
        assert self._verdict_bytes(offline) == live_bytes
        assert self._verdict_bytes(observed) == live_bytes
        assert self._verdict_bytes(recorded) == live_bytes
        assert record["attribution"] == summary

    def test_attribution_within_ten_percent_of_offline_check(self):
        """Acceptance: on the anomaly-free offline check path, adding
        attribution costs <= 10% (the cheap probe short-circuits the
        walk).  Best-of-pairs, same discipline as the collector bound."""
        import gc
        from time import perf_counter

        from repro.obs import (attributions_from_trace, check_trace,
                               dumps_jsonl, loads_jsonl)

        TestObservabilityOverhead._skip_under_tracer()
        result = run_session(short_config(record_trace=True))
        trace = loads_jsonl(dumps_jsonl(result.events,
                                        result.trace_meta))
        assert attributions_from_trace(trace) == []  # warm + sanity

        def timed(with_attribution):
            gc.collect()
            gc.disable()
            try:
                started = perf_counter()
                report = check_trace(trace)
                if with_attribution:
                    attributions_from_trace(trace, report)
                return perf_counter() - started
            finally:
                gc.enable()

        ratios = []
        for _ in range(10):
            bare = timed(False)
            instrumented = timed(True)
            ratios.append(instrumented / bare)
        assert min(ratios) <= 1.10, \
            f"attribution overhead too high: best pair ratio " \
            f"{min(ratios):.3f} (all: {[f'{r:.3f}' for r in ratios]})"
