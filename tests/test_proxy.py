"""Tests for the TCP-splitting proxy (§8 server transparency)."""

import pytest

from repro.core.policy import prefer_wifi
from repro.core.socket_api import MpDashSocket
from repro.mptcp.connection import MptcpConnection
from repro.mptcp.proxy import SplittingProxy
from repro.net.link import Path, cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps, megabytes


def origin(rate_mbps=20.0, rtt=0.02):
    return Path("origin", BandwidthTrace.constant(mbps(rate_mbps)), rtt=rtt)


def make_setup(origin_mbps=20.0, wifi=3.8, lte=3.0, mpdash=False):
    sim = Simulator()
    client_leg = MptcpConnection(sim, [wifi_path(bandwidth_mbps=wifi),
                                       cellular_path(bandwidth_mbps=lte)])
    socket = MpDashSocket(client_leg, prefer_wifi()) if mpdash else None
    proxy = SplittingProxy(sim, origin(origin_mbps), client_leg)
    return sim, client_leg, proxy, socket


class TestRelay:
    def test_transfer_completes_through_proxy(self):
        sim, _leg, proxy, _socket = make_setup()
        done = []
        proxy.fetch(megabytes(2), on_complete=lambda t: done.append(sim.now))
        sim.run(until=60.0)
        assert len(done) == 1
        assert proxy.origin_bytes == pytest.approx(megabytes(2), rel=1e-6)

    def test_fast_origin_client_leg_limits(self):
        """Origin at 20 Mbps, client leg ~6.8 Mbps: the multipath leg is
        the bottleneck and the duration matches the direct case."""
        sim, _leg, proxy, _socket = make_setup(origin_mbps=20.0)
        transfer = proxy.fetch(megabytes(5))
        sim.run(until=60.0)
        assert transfer.complete
        assert 5.5 <= transfer.duration() <= 8.0

    def test_slow_origin_limits_end_to_end(self):
        """Origin at 1 Mbps: no amount of multipath can beat the source."""
        sim, _leg, proxy, _socket = make_setup(origin_mbps=1.0)
        transfer = proxy.fetch(megabytes(2))
        sim.run(until=120.0)
        assert transfer.complete
        # 2 MB at 1 Mbps is 16 s.
        assert transfer.duration() >= 15.0

    def test_cut_through_not_store_and_forward(self):
        """The client leg starts receiving before the origin finishes."""
        sim, _leg, proxy, _socket = make_setup(origin_mbps=4.0)
        transfer = proxy.fetch(megabytes(4))
        sim.run(until=3.0)
        assert 0 < transfer.bytes_done < megabytes(4)
        assert transfer.available < megabytes(4)

    def test_sequential_fetches(self):
        sim, _leg, proxy, _socket = make_setup()
        order = []
        proxy.fetch(megabytes(1), tag="a",
                    on_complete=lambda t: order.append(t.tag))
        proxy.fetch(megabytes(1), tag="b",
                    on_complete=lambda t: order.append(t.tag))
        sim.run(until=60.0)
        assert order == ["a", "b"]

    def test_invalid_size_rejected(self):
        _sim, _leg, proxy, _socket = make_setup()
        with pytest.raises(ValueError):
            proxy.fetch(0)

    def test_close_stops_ticking(self):
        sim, leg, proxy, _socket = make_setup()
        proxy.close()
        leg.close()
        assert sim.pending_events() == 0


class TestMpDashThroughProxy:
    def test_mpdash_preference_works_unchanged(self):
        """The whole point of §8: MP-DASH on the client leg needs no origin
        cooperation — cellular stays off when WiFi meets the deadline."""
        sim, leg, proxy, socket = make_setup(origin_mbps=20.0, wifi=3.8,
                                             lte=3.0, mpdash=True)
        socket.mp_dash_enable(megabytes(2), 12.0)
        transfer = proxy.fetch(megabytes(2))
        sim.run(until=60.0)
        assert transfer.complete
        assert transfer.duration() <= 12.0
        assert transfer.per_path.get("cellular", 0.0) < megabytes(2) * 0.08

    def test_mpdash_tight_deadline_uses_cellular_through_proxy(self):
        sim, leg, proxy, socket = make_setup(origin_mbps=20.0, wifi=3.8,
                                             lte=3.0, mpdash=True)
        socket.mp_dash_enable(megabytes(5), 8.0)
        transfer = proxy.fetch(megabytes(5))
        sim.run(until=60.0)
        assert transfer.complete
        assert transfer.duration() <= 8.5
        assert transfer.per_path["cellular"] > 0

    def test_origin_is_single_path(self):
        """The origin leg is one vanilla TCP flow: all origin bytes arrive
        over exactly one path (the server needs no MPTCP, no MP-DASH)."""
        sim, _leg, proxy, _socket = make_setup()
        proxy.fetch(megabytes(2))
        sim.run(until=60.0)
        assert proxy.origin_bytes == pytest.approx(megabytes(2), rel=1e-6)
        assert proxy.origin_path.name == "origin"


class TestStreamingThroughProxy:
    def test_full_dash_session_behind_proxy(self):
        """End-to-end §8 story: a DASH player streams through the splitting
        proxy with MP-DASH on the client leg; the origin server is an
        unmodified single-path DashServer."""
        from repro.abr import Festive
        from repro.core.adapter import MpDashAdapter
        from repro.dash.http import HttpClient
        from repro.dash.player import DashPlayer
        from repro.dash.server import DashServer
        from repro.workloads import video_asset

        sim = Simulator()
        client_leg = MptcpConnection(sim, [wifi_path(bandwidth_mbps=3.8),
                                           cellular_path(bandwidth_mbps=3.0)])
        socket = MpDashSocket(client_leg, prefer_wifi())
        adapter = MpDashAdapter(socket, deadline_mode="rate")
        proxy = SplittingProxy(sim, origin(30.0), client_leg)

        server = DashServer()
        server.host(video_asset("big_buck_bunny", duration=120.0))
        client = HttpClient(client_leg, server.resolve, fetcher=proxy.fetch)
        player = DashPlayer(sim, client, server.manifest("big_buck_bunny"),
                            Festive(), addon=adapter)
        player.start()
        while not player.finished and sim.now < 400.0:
            sim.run(until=sim.now + 5.0)
        assert player.finished
        assert player.log.stall_count == 0
        # The origin leg carried every byte exactly once, single path.
        total = sum(c.size for c in player.log.chunks)
        assert proxy.origin_bytes == pytest.approx(total, rel=1e-6)
        # MP-DASH still avoided the cellular path on the client leg.
        cellular = client_leg.subflow("cellular").total_bytes
        assert cellular < 0.25 * total
