"""Tests for the MP-DASH socket-option API."""

import pytest

from repro.core.policy import prefer_cellular, prefer_wifi
from repro.core.socket_api import MpDashSocket
from repro.mptcp.connection import MptcpConnection
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.units import megabytes


def make(preference=None, signaling_delay=0.0):
    sim = Simulator()
    paths = [wifi_path(bandwidth_mbps=8.0),
             cellular_path(bandwidth_mbps=8.0)]
    conn = MptcpConnection(sim, paths, signaling_delay=signaling_delay)
    socket = MpDashSocket(conn, preference or prefer_wifi())
    return sim, conn, socket


class TestInstallation:
    def test_installs_controller(self):
        _sim, conn, socket = make()
        assert conn.controller is socket.scheduler

    def test_sets_primary_to_preferred(self):
        _sim, conn, _socket = make(prefer_cellular())
        assert conn.primary.name == "cellular"

    def test_stamps_costs_on_paths(self):
        _sim, conn, _socket = make()
        assert conn.subflow("wifi").path.cost == 0.0
        assert conn.subflow("cellular").path.cost == 1.0

    def test_double_install_rejected(self):
        sim = Simulator()
        paths = [wifi_path(bandwidth_mbps=1.0),
                 cellular_path(bandwidth_mbps=1.0)]
        conn = MptcpConnection(sim, paths)
        MpDashSocket(conn, prefer_wifi())
        with pytest.raises(RuntimeError):
            MpDashSocket(conn, prefer_wifi())


class TestSocketOptions:
    def test_enable_then_transfer_controls_paths(self):
        sim, conn, socket = make()
        socket.mp_dash_enable(megabytes(2), 10.0)
        transfer = conn.start_transfer(megabytes(2))
        sim.run(until=30.0)
        assert transfer.complete
        assert transfer.per_path.get("cellular", 0.0) < megabytes(2) * 0.05

    def test_disable_reverts_to_vanilla(self):
        sim, conn, socket = make()
        socket.mp_dash_enable(megabytes(2), 30.0)
        socket.mp_dash_disable()
        transfer = conn.start_transfer(megabytes(2))
        sim.run(until=30.0)
        assert transfer.per_path["cellular"] > 0

    def test_disable_mid_transfer_restores_cellular(self):
        """§3.1: a deactivated connection is vanilla MPTCP — disabling
        mid-activation must request the costlier paths back on, not leave
        the connection wedged on whatever subset was last requested."""
        sim, conn, socket = make()
        # Generous deadline: the scheduler keeps cellular switched off.
        socket.mp_dash_enable(megabytes(8), 30.0)
        conn.start_transfer(megabytes(8))
        sim.run(until=1.0)
        assert conn.path_state("cellular") is False
        socket.mp_dash_disable()
        assert conn.path_state("cellular") is True
        assert conn.path_state("wifi") is True
        assert not socket.active

    def test_active_reflects_activation(self):
        sim, conn, socket = make()
        assert not socket.active
        socket.mp_dash_enable(megabytes(1), 10.0)
        conn.start_transfer(megabytes(1))
        sim.run(until=0.2)
        assert socket.active
        sim.run(until=30.0)
        assert not socket.active

    def test_enable_validates(self):
        _sim, _conn, socket = make()
        with pytest.raises(ValueError):
            socket.mp_dash_enable(0, 10.0)


class TestCrossLayerReads:
    def test_aggregate_throughput_exposed(self):
        sim, conn, socket = make()
        conn.start_transfer(megabytes(5))
        sim.run(until=10.0)
        aggregate = socket.aggregate_throughput()
        assert aggregate is not None
        assert aggregate == pytest.approx(
            conn.aggregate_throughput_estimate())

    def test_path_throughput_exposed(self):
        sim, conn, socket = make()
        conn.start_transfer(megabytes(5))
        sim.run(until=10.0)
        assert socket.path_throughput("wifi") == pytest.approx(
            conn.throughput_estimate("wifi"))
