"""End-to-end tests for the DASH player (no MP-DASH involved)."""

import pytest

from repro.abr import Gpac, make_abr
from repro.dash.events import PLAY_START, PLAYBACK_END, STALL_START
from repro.dash.http import HttpClient
from repro.dash.media import VideoAsset
from repro.dash.player import DashPlayer
from repro.dash.server import DashServer
from repro.mptcp.connection import MptcpConnection
from repro.net.link import cellular_path, wifi_path
from repro.net.simulator import Simulator


def make_session(wifi_mbps=8.0, lte_mbps=8.0, duration=60.0, abr=None,
                 bitrates=(1.0, 2.0, 4.0), buffer_capacity=24.0):
    sim = Simulator()
    conn = MptcpConnection(sim, [wifi_path(bandwidth_mbps=wifi_mbps),
                                 cellular_path(bandwidth_mbps=lte_mbps)])
    server = DashServer()
    server.host(VideoAsset.generate("movie", 4.0, duration,
                                    list(bitrates), seed=0))
    client = HttpClient(conn, server.resolve)
    player = DashPlayer(sim, client, server.manifest("movie"),
                        abr or Gpac(), buffer_capacity=buffer_capacity)
    return sim, conn, player


def run_to_end(sim, player, cap=600.0):
    while not player.finished and sim.now < cap:
        sim.run(until=sim.now + 5.0)


class TestHappyPath:
    def test_downloads_all_chunks(self):
        sim, _conn, player = make_session()
        player.start()
        run_to_end(sim, player)
        assert player.finished
        assert len(player.log.chunks) == player.manifest.num_chunks

    def test_no_stalls_on_fast_network(self):
        sim, _conn, player = make_session(wifi_mbps=20.0, lte_mbps=20.0)
        player.start()
        run_to_end(sim, player)
        assert player.log.stall_count == 0

    def test_playback_events_ordered(self):
        sim, _conn, player = make_session()
        player.start()
        run_to_end(sim, player)
        play = player.log.of_kind(PLAY_START)
        end = player.log.of_kind(PLAYBACK_END)
        assert len(play) == 1 and len(end) == 1
        assert play[0].time < end[0].time

    def test_plays_whole_video(self):
        sim, _conn, player = make_session(duration=40.0)
        player.start()
        run_to_end(sim, player)
        assert player.buffer.total_played == pytest.approx(40.0, abs=0.5)

    def test_reaches_top_level_on_fast_network(self):
        sim, _conn, player = make_session(wifi_mbps=20.0, lte_mbps=20.0,
                                          duration=120.0)
        player.start()
        run_to_end(sim, player)
        assert player.log.chunks[-1].level == 2

    def test_buffer_never_exceeds_capacity(self):
        sim, _conn, player = make_session(duration=120.0)
        player.start()
        run_to_end(sim, player)
        assert all(level <= player.buffer.capacity + 1e-9
                   for _t, level in player.buffer_samples)

    def test_chunk_records_carry_path_bytes(self):
        sim, _conn, player = make_session()
        player.start()
        run_to_end(sim, player)
        assert all(sum(c.bytes_per_path.values()) == pytest.approx(
            c.size, rel=0.01) for c in player.log.chunks)


class TestAdversity:
    def test_stalls_when_network_too_slow(self):
        """0.5 Mbps cannot sustain even the 1 Mbps lowest level."""
        sim, _conn, player = make_session(wifi_mbps=0.3, lte_mbps=0.3,
                                          duration=40.0)
        player.start()
        run_to_end(sim, player, cap=400.0)
        assert player.log.of_kind(STALL_START)

    def test_drops_to_lowest_level_when_starved(self):
        sim, _conn, player = make_session(wifi_mbps=0.8, lte_mbps=0.5,
                                          duration=60.0)
        player.start()
        run_to_end(sim, player, cap=400.0)
        tail_levels = [c.level for c in player.log.chunks[3:]]
        assert all(level == 0 for level in tail_levels)


class TestLifecycle:
    def test_double_start_rejected(self):
        sim, _conn, player = make_session()
        player.start()
        with pytest.raises(RuntimeError):
            player.start()

    def test_buffer_capacity_must_hold_two_chunks(self):
        sim = Simulator()
        conn = MptcpConnection(sim, [wifi_path(bandwidth_mbps=1.0)])
        server = DashServer()
        server.host(VideoAsset.generate("m", 4.0, 20.0, [1.0], seed=0))
        client = HttpClient(conn, server.resolve)
        with pytest.raises(ValueError):
            DashPlayer(sim, client, server.manifest("m"), Gpac(),
                       buffer_capacity=6.0)

    def test_all_abr_algorithms_complete_a_session(self):
        for name in ("gpac", "festive", "bba", "bba-c", "mpc"):
            sim, _conn, player = make_session(abr=make_abr(name),
                                              duration=60.0)
            player.start()
            run_to_end(sim, player)
            assert player.finished, name
