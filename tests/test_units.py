"""Tests for unit conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import units


def test_mbps_to_bytes():
    assert units.mbps(8.0) == pytest.approx(1e6)


def test_kbps_to_bytes():
    assert units.kbps(8.0) == pytest.approx(1e3)


def test_megabytes():
    assert units.megabytes(5) == 5_000_000


def test_milliseconds():
    assert units.milliseconds(50) == pytest.approx(0.05)


def test_to_megabytes():
    assert units.to_megabytes(2_500_000) == pytest.approx(2.5)


@given(st.floats(min_value=0.0, max_value=1e6))
def test_mbps_roundtrip(value):
    assert units.to_mbps(units.mbps(value)) == pytest.approx(value)


@given(st.floats(min_value=0.0, max_value=1e9))
def test_to_mbps_inverse(bytes_per_s):
    assert units.mbps(units.to_mbps(bytes_per_s)) == pytest.approx(
        bytes_per_s)


def test_packet_size_is_mtu_scale():
    assert 1000 < units.PACKET_SIZE <= 1500
