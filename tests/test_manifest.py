"""Tests for the DASH manifest."""

import pytest

from repro.dash.manifest import Manifest
from repro.dash.media import VideoAsset


@pytest.fixture
def asset():
    return VideoAsset.generate("movie", 4.0, 40.0, [1.0, 2.0, 4.0], seed=0)


class TestManifest:
    def test_describes_ladder(self, asset):
        manifest = Manifest(asset)
        assert manifest.num_levels == 3
        assert manifest.num_chunks == 10
        assert manifest.chunk_duration == 4.0
        assert manifest.bitrates() == asset.bitrates()

    def test_chunk_urls_unique(self, asset):
        manifest = Manifest(asset)
        urls = {manifest.chunk_url(level, i)
                for level in range(3) for i in range(10)}
        assert len(urls) == 30

    def test_chunk_url_format(self, asset):
        manifest = Manifest(asset)
        assert manifest.chunk_url(2, 7) == "/movie/level2/chunk7"

    def test_out_of_range_chunk_rejected(self, asset):
        manifest = Manifest(asset)
        with pytest.raises(IndexError):
            manifest.chunk_url(0, 10)
        with pytest.raises(IndexError):
            manifest.level(3)

    def test_sizes_excluded_by_default(self, asset):
        """Chunk size is not a mandatory MPD field (§5.1): the client must
        read Content-Length instead."""
        manifest = Manifest(asset)
        assert not manifest.sizes_included
        with pytest.raises(LookupError):
            manifest.chunk_size(0, 0)

    def test_sizes_included_when_requested(self, asset):
        manifest = Manifest(asset, sizes_included=True)
        assert manifest.chunk_size(1, 2) == asset.chunk_size(1, 2)
