"""Tests for transfer availability (proxy watermark) and rate sampling."""

import pytest

from repro.mptcp.connection import MptcpConnection, Transfer
from repro.mptcp.subflow import Subflow
from repro.net.link import Path, cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps, megabytes


class TestSendable:
    def test_defaults_to_remaining(self):
        transfer = Transfer(1000.0)
        assert transfer.sendable == 1000.0
        transfer.add("wifi", 400.0)
        assert transfer.sendable == 600.0

    def test_available_caps_sendable(self):
        transfer = Transfer(1000.0)
        transfer.available = 300.0
        assert transfer.sendable == 300.0
        transfer.add("wifi", 300.0)
        assert transfer.sendable == 0.0
        transfer.available = 1000.0
        assert transfer.sendable == 700.0

    def test_available_never_negative(self):
        transfer = Transfer(1000.0)
        transfer.available = 100.0
        transfer.add("wifi", 150.0)  # relay raced slightly ahead
        assert transfer.sendable == 0.0

    def test_connection_respects_watermark(self):
        """A transfer with a frozen watermark stops at it."""
        sim = Simulator()
        conn = MptcpConnection(sim, [wifi_path(bandwidth_mbps=8.0),
                                     cellular_path(bandwidth_mbps=8.0)])
        transfer = conn.start_transfer(megabytes(2))
        transfer.available = 500_000.0
        sim.run(until=20.0)
        assert not transfer.complete
        assert transfer.bytes_done == pytest.approx(500_000.0, abs=5_000)
        # Raising the watermark lets it finish.
        transfer.available = None
        sim.run(until=40.0)
        assert transfer.complete


class TestAppLimitedSampling:
    def make_subflow(self):
        return Subflow(Path("wifi", BandwidthTrace.constant(mbps(8.0)),
                            rtt=0.05))

    def test_network_limited_samples_feed_estimator(self):
        sf = self.make_subflow()
        for _ in range(10):
            sf.account(10_000.0, 0.01, budget=10_000.0)
        assert sf.throughput_estimate() == pytest.approx(1e6, rel=0.01)

    def test_app_limited_crumbs_excluded(self):
        """A tiny delivery against a big budget is application-limited and
        must not poison the estimate (the last sliver of a chunk)."""
        sf = self.make_subflow()
        for _ in range(10):
            sf.account(10_000.0, 0.01, budget=10_000.0)
        before = sf.throughput_estimate()
        for _ in range(20):
            sf.account(50.0, 0.01, budget=10_000.0)  # 0.5% of budget
        assert sf.throughput_estimate() == before

    def test_no_budget_means_always_sampled(self):
        sf = self.make_subflow()
        for _ in range(10):
            sf.account(5_000.0, 0.01)
        assert sf.throughput_estimate() == pytest.approx(5e5, rel=0.01)

    def test_total_bytes_counted_regardless(self):
        sf = self.make_subflow()
        sf.account(50.0, 0.01, budget=10_000.0)
        assert sf.total_bytes == 50.0
