"""Tests for the persistent run ledger (repro.obs.ledger)."""

import dataclasses
import json
import multiprocessing

import pytest

from repro.experiments import SessionConfig, run_session
from repro.experiments.fleet import FleetConfig, fleet_key, run_fleet
from repro.experiments.sweep import config_key, run_sweep
from repro.obs.bench import BenchReport, BenchResult
from repro.obs.ledger import (ENTRY_KINDS, LEDGER_SCHEMA, LedgerEntry,
                              RunLedger, bench_entry, canonical_json,
                              environment_fingerprint, fleet_entry,
                              registry_digest, session_entry, sweep_entry)


def short_config(**overrides):
    defaults = dict(video_duration=10.0, wifi_mbps=8.0, lte_mbps=8.0)
    defaults.update(overrides)
    return SessionConfig(**defaults)


def entry(**overrides):
    defaults = dict(kind="session", key="abc123", label="t",
                    environment={"python": "3.11"},
                    metrics={"qoe": 1.5, "stall_seconds": 0.0})
    defaults.update(overrides)
    return LedgerEntry(**defaults)


class TestCanonicalPieces:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_environment_fingerprint_shape(self):
        env = environment_fingerprint()
        assert sorted(env) == ["machine", "platform", "python"]
        assert all(isinstance(v, str) and v for v in env.values())

    def test_registry_digest_is_content_addressed(self):
        class Fake:
            def __init__(self, payload):
                self.payload = payload

            def to_dict(self):
                return self.payload

        a = registry_digest(Fake({"x": 1}))
        assert a == registry_digest(Fake({"x": 1}))
        assert a != registry_digest(Fake({"x": 2}))
        assert len(a) == 24


class TestLedgerEntry:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown ledger entry kind"):
            entry(kind="cron")

    def test_rejects_future_schema(self):
        with pytest.raises(ValueError, match="newer than this reader"):
            entry(schema=LEDGER_SCHEMA + 1)

    def test_rejects_non_finite_metric(self):
        with pytest.raises(ValueError, match="must be finite"):
            entry(metrics={"qoe": float("nan")})
        with pytest.raises(ValueError, match="must be finite"):
            entry(metrics={"qoe": float("inf")})

    def test_normalizes_metrics_to_floats(self):
        e = entry(metrics={"runs": 3, "qoe": 1.5})
        assert e.metrics == {"qoe": 1.5, "runs": 3.0}
        assert all(isinstance(v, float) for v in e.metrics.values())

    def test_entry_id_is_deterministic_content_address(self):
        assert entry().entry_id == entry().entry_id
        assert entry().entry_id != entry(metrics={"qoe": 2.0}).entry_id
        assert len(entry().entry_id) == 24

    def test_round_trips_through_dict(self):
        e = entry()
        payload = e.to_dict()
        assert payload["entry_id"] == e.entry_id
        back = LedgerEntry.from_dict(payload)
        assert back == e
        assert back.entry_id == e.entry_id

    def test_round_trip_survives_json(self):
        e = entry(registry_digest="d" * 24)
        back = LedgerEntry.from_dict(json.loads(canonical_json(e.to_dict())))
        assert back == e

    def test_from_dict_detects_tampering(self):
        payload = entry().to_dict()
        payload["metrics"]["qoe"] = 99.0
        with pytest.raises(ValueError, match="entry id mismatch"):
            LedgerEntry.from_dict(payload)

    def test_from_dict_defaults_optional_fields(self):
        back = LedgerEntry.from_dict({"kind": "bench", "key": "k"})
        assert back.label == "" and back.metrics == {}
        assert back.registry_digest is None
        assert back.schema == LEDGER_SCHEMA

    def test_entry_kinds_cover_every_entry_point(self):
        assert ENTRY_KINDS == ("session", "sweep", "fleet", "bench")


class TestRunLedger:
    def test_append_load_round_trip_in_order(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        first = entry(metrics={"qoe": 1.0})
        second = entry(metrics={"qoe": 2.0})
        assert ledger.append(first) == first.entry_id
        ledger.append(second)
        load = ledger.load()
        assert load.warnings == ()
        assert [e.entry_id for e in load.entries] == [first.entry_id,
                                                      second.entry_id]
        assert ledger.entries() == load.entries

    def test_missing_file_loads_empty(self, tmp_path):
        load = RunLedger(str(tmp_path / "never.jsonl")).load()
        assert load.entries == () and load.warnings == ()

    def test_truncated_tail_warns_but_keeps_prefix(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger = RunLedger(path)
        keep = entry()
        ledger.append(keep)
        whole = (canonical_json(entry(metrics={"qoe": 7.0}).to_dict())
                 + "\n")
        with open(path, "a") as handle:
            handle.write(whole[:len(whole) // 2])  # crash mid-append
        load = ledger.load()
        assert [e.entry_id for e in load.entries] == [keep.entry_id]
        assert len(load.warnings) == 1
        assert "skipped unreadable ledger line" in load.warnings[0]
        assert ":2:" in load.warnings[0]

    def test_corrupt_middle_line_skipped_with_warning(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger = RunLedger(path)
        first = entry(metrics={"qoe": 1.0})
        last = entry(metrics={"qoe": 2.0})
        ledger.append(first)
        with open(path, "a") as handle:
            handle.write("{not json}\n")
            handle.write('["a","json","array"]\n')
        ledger.append(last)
        load = ledger.load()
        assert [e.entry_id for e in load.entries] == [first.entry_id,
                                                      last.entry_id]
        assert len(load.warnings) == 2
        assert "not a JSON object" in load.warnings[1]

    def test_tampered_line_is_a_warning_not_a_crash(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        payload = entry().to_dict()
        payload["metrics"]["qoe"] = -1.0  # id no longer matches
        with open(path, "w") as handle:
            handle.write(canonical_json(payload) + "\n")
        load = RunLedger(path).load()
        assert load.entries == ()
        assert "entry id mismatch" in load.warnings[0]

    def test_blank_lines_are_ignored(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger = RunLedger(path)
        ledger.append(entry())
        with open(path, "a") as handle:
            handle.write("\n   \n")
        ledger.append(entry(metrics={"qoe": 3.0}))
        load = ledger.load()
        assert len(load.entries) == 2 and load.warnings == ()

    def test_repr_names_the_path(self, tmp_path):
        assert "runs.jsonl" in repr(RunLedger(str(tmp_path / "runs.jsonl")))


def _append_batch(path, worker, count):
    ledger = RunLedger(path)
    for i in range(count):
        ledger.append(LedgerEntry(
            kind="session", key=f"worker{worker}",
            metrics={"qoe": float(i), "worker": float(worker)}))


class TestConcurrentAppends:
    def test_two_processes_never_interleave_records(self, tmp_path):
        path = str(tmp_path / "shared.jsonl")
        count = 200
        ctx = multiprocessing.get_context("spawn")
        workers = [ctx.Process(target=_append_batch, args=(path, w, count))
                   for w in (1, 2)]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join()
            assert proc.exitcode == 0
        load = RunLedger(path).load()
        assert load.warnings == ()  # no torn lines, every entry readable
        assert len(load.entries) == 2 * count
        for worker in (1, 2):
            seen = [e.metrics["qoe"] for e in load.entries
                    if e.key == f"worker{worker}"]
            assert seen == [float(i) for i in range(count)]


class TestSessionEntry:
    def test_headline_metrics_from_a_real_run(self):
        config = short_config()
        result = run_session(config)
        e = session_entry(result, label="smoke", wall_clock=0.5)
        assert e.kind == "session"
        assert e.key == config_key(config)
        assert e.label == "smoke"
        for name in ("qoe", "bitrate_mbps", "stall_seconds", "stall_count",
                     "startup_seconds", "cellular_mbytes",
                     "cellular_fraction", "energy_joules",
                     "deadline_misses", "finished", "wall_clock_seconds",
                     "sim_per_wall"):
            assert name in e.metrics, name
        assert e.metrics["finished"] == 1.0
        assert e.metrics["sim_per_wall"] == pytest.approx(
            result.session_duration / 0.5)
        assert e.environment == environment_fingerprint()

    def test_checked_run_records_violations(self):
        result = run_session(short_config(), check=True)
        e = session_entry(result)
        assert "violations" in e.metrics

    def test_profiled_run_carries_registry_digest(self):
        result = run_session(short_config())
        e = session_entry(result)
        if result.metrics_registry is not None:
            assert e.registry_digest == registry_digest(
                result.metrics_registry)


class TestSweepEntry:
    def test_key_ignores_run_order(self):
        a, b = short_config(), short_config(wifi_mbps=4.0)
        forward = sweep_entry(run_sweep([a, b]))
        backward = sweep_entry(run_sweep([b, a]))
        assert forward.key == backward.key
        assert forward.kind == "sweep"

    def test_aggregates_session_headlines(self):
        e = sweep_entry(run_sweep([short_config()]), label="grid")
        assert e.metrics["runs"] == 1.0
        assert e.metrics["failures"] == 0.0
        for name in ("qoe", "bitrate_mbps", "stall_seconds",
                     "cellular_mbytes", "energy_joules",
                     "deadline_misses", "cache_hits"):
            assert name in e.metrics, name


class TestFleetEntry:
    def test_population_quantiles_and_registry_digest(self):
        result = run_fleet(FleetConfig(sessions=6, shard_size=3,
                                       video_duration=6.0, seed=7))
        e = fleet_entry(result, label="nightly")
        assert e.kind == "fleet"
        assert e.key == fleet_key(result.config)
        assert e.metrics["sessions"] == 6.0
        for name in ("deadline_misses", "unfinished_sessions",
                     "bitrate_p50_mbps", "stalled_session_fraction"):
            assert name in e.metrics, name
        assert e.registry_digest == registry_digest(result.registry)
        # No recorder armed: no anomaly series is fabricated.
        if result.recorder is None:
            assert "anomalies" not in e.metrics


class TestBenchEntry:
    def report(self):
        results = [BenchResult(scenario="single", wall_clock=2.0,
                               sim_seconds=300.0, sim_per_wall=150.0,
                               events=1000, events_per_sec=500.0,
                               peak_rss_kb=50000, repeats=1),
                   BenchResult(scenario="sweep16", wall_clock=4.0,
                               sim_seconds=600.0, sim_per_wall=150.0,
                               events=None, events_per_sec=None,
                               peak_rss_kb=None, repeats=1)]
        return BenchReport(label="nightly", results=results,
                           meta={"python": "3.11", "platform": "linux",
                                 "machine": "x86_64"})

    def test_flattens_per_scenario_series(self):
        e = bench_entry(self.report())
        assert e.kind == "bench" and e.key == "nightly"
        assert e.metrics["single.wall_clock"] == 2.0
        assert e.metrics["single.events_per_sec"] == 500.0
        assert e.metrics["single.peak_rss_kb"] == 50000.0
        assert e.metrics["sweep16.sim_per_wall"] == 150.0
        assert "sweep16.events_per_sec" not in e.metrics
        assert "sweep16.peak_rss_kb" not in e.metrics
        assert e.environment == {"python": "3.11", "platform": "linux",
                                 "machine": "x86_64"}

    def test_label_defaults_to_report_label(self):
        assert bench_entry(self.report()).label == "nightly"
        assert bench_entry(self.report(), label="x").label == "x"

    def test_round_trips_like_every_other_kind(self):
        e = bench_entry(self.report())
        assert LedgerEntry.from_dict(e.to_dict()) == e


class TestEntryPointOptIn:
    def test_run_session_ledger_flag_appends(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        run_session(short_config(), ledger=path)
        entries = RunLedger(path).entries()
        assert len(entries) == 1 and entries[0].kind == "session"
        assert "wall_clock_seconds" in entries[0].metrics

    def test_run_sweep_ledger_flag_appends(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        run_sweep([short_config()], ledger=path)
        entries = RunLedger(path).entries()
        assert len(entries) == 1 and entries[0].kind == "sweep"

    def test_run_fleet_ledger_flag_appends(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        run_fleet(FleetConfig(sessions=4, shard_size=2,
                              video_duration=6.0, seed=7), ledger=path)
        entries = RunLedger(path).entries()
        assert len(entries) == 1 and entries[0].kind == "fleet"

    def test_ledger_never_changes_the_run(self, tmp_path):
        config = short_config()
        plain = run_session(config)
        recorded = run_session(config, ledger=str(tmp_path / "l.jsonl"))
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            recorded.metrics)
