"""Tests for throughput estimators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import Ewma, HarmonicMean, HoltWinters


class TestHoltWinters:
    def test_cold_start_predicts_none(self):
        assert HoltWinters().predict() is None

    def test_predict_or_uses_default_when_cold(self):
        assert HoltWinters().predict_or(42.0) == 42.0

    def test_converges_on_constant_series(self):
        hw = HoltWinters()
        for _ in range(50):
            hw.update(100.0)
        assert hw.predict() == pytest.approx(100.0, rel=1e-6)

    def test_tracks_linear_trend(self):
        hw = HoltWinters()
        for i in range(100):
            hw.update(100.0 + 10.0 * i)
        # One-step-ahead forecast should anticipate the next increment.
        assert hw.predict() == pytest.approx(100.0 + 10.0 * 100, rel=0.02)

    def test_multi_step_forecast_extrapolates(self):
        hw = HoltWinters()
        for i in range(100):
            hw.update(float(i))
        assert hw.predict(horizon=10) > hw.predict(horizon=1)

    def test_prediction_never_negative(self):
        hw = HoltWinters()
        for value in [100.0, 50.0, 10.0, 1.0, 0.0, 0.0]:
            hw.update(value)
        assert hw.predict() >= 0.0

    def test_reset(self):
        hw = HoltWinters()
        hw.update(5.0)
        hw.reset()
        assert hw.predict() is None
        assert hw.observations == 0

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            HoltWinters().update(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HoltWinters(alpha=0.0)
        with pytest.raises(ValueError):
            HoltWinters(beta=1.5)

    def test_reacts_faster_than_ewma_on_sustained_drop(self):
        """The trend term is why the paper prefers HW over EWMA."""
        hw = HoltWinters()
        ewma = Ewma(alpha=0.4)
        for _ in range(20):
            hw.update(100.0)
            ewma.update(100.0)
        for step in range(10):
            value = 100.0 - 10.0 * (step + 1)
            hw.update(value)
            ewma.update(value)
        # True next value is ~ -10 below the last observation; HW should be
        # closer to the falling series than EWMA.
        assert hw.predict() < ewma.predict()


class TestEwma:
    def test_first_observation_is_estimate(self):
        e = Ewma()
        e.update(10.0)
        assert e.predict() == 10.0

    def test_smooths_toward_new_values(self):
        e = Ewma(alpha=0.5)
        e.update(0.0)
        e.update(100.0)
        assert e.predict() == pytest.approx(50.0)

    def test_reset(self):
        e = Ewma()
        e.update(1.0)
        e.reset()
        assert e.predict() is None

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ewma(alpha=2.0)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            Ewma().update(-0.1)


class TestHarmonicMean:
    def test_single_sample(self):
        h = HarmonicMean()
        h.update(10.0)
        assert h.predict() == pytest.approx(10.0)

    def test_known_harmonic_mean(self):
        h = HarmonicMean(window=2)
        h.update(2.0)
        h.update(6.0)
        assert h.predict() == pytest.approx(3.0)

    def test_window_slides(self):
        h = HarmonicMean(window=2)
        for value in [1.0, 100.0, 100.0]:
            h.update(value)
        assert h.predict() == pytest.approx(100.0)

    def test_zero_sample_does_not_poison_forever(self):
        h = HarmonicMean(window=3)
        h.update(0.0)
        h.update(10.0)
        h.update(10.0)
        assert h.predict() > 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            HarmonicMean(window=0)

    def test_reset(self):
        h = HarmonicMean()
        h.update(1.0)
        h.reset()
        assert h.predict() is None
        assert h.sample_count == 0

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_harmonic_le_arithmetic(self, values):
        h = HarmonicMean(window=len(values))
        for v in values:
            h.update(v)
        arithmetic = sum(values) / len(values)
        assert h.predict() <= arithmetic + 1e-6

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_harmonic_within_min_max(self, values):
        h = HarmonicMean(window=len(values))
        for v in values:
            h.update(v)
        assert min(values) - 1e-6 <= h.predict() <= max(values) + 1e-6
