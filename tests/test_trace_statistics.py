"""Statistical properties of the synthetic trace generators.

The field-study substitution (DESIGN.md) rests on the generators having
the right *texture*, not just the right mean: open WiFi wanders with
temporal correlation, mobility follows the walking loop, dropouts floor
the rate.  These tests quantify those properties.
"""

import numpy as np
import pytest

from repro.net.trace import BandwidthTrace
from repro.net.units import mbps


def autocorrelation(samples, lag):
    x = np.asarray(samples, dtype=float)
    x = x - x.mean()
    denominator = float(np.dot(x, x))
    if denominator == 0:
        return 0.0
    return float(np.dot(x[:-lag], x[lag:]) / denominator)


class TestTexture:
    def test_random_walk_is_temporally_correlated(self):
        """AR(1) wandering: adjacent samples correlate strongly."""
        walk = BandwidthTrace.random_walk(mbps(5.0), 0.3, 600.0, 0.5,
                                          seed=1)
        samples = walk.samples(0.5, 600.0)
        assert autocorrelation(samples, 1) > 0.5

    def test_gaussian_is_white(self):
        """Independent Gaussian samples: negligible lag-1 correlation."""
        gauss = BandwidthTrace.gaussian(mbps(5.0), 0.3, 600.0, 0.5, seed=1)
        samples = gauss.samples(0.5, 600.0)
        assert abs(autocorrelation(samples, 1)) < 0.15

    def test_random_walk_smoother_than_gaussian(self):
        """Step-to-step movement is smaller for the walk at equal sigma."""
        walk = BandwidthTrace.random_walk(mbps(5.0), 0.3, 600.0, 0.5,
                                          seed=2)
        gauss = BandwidthTrace.gaussian(mbps(5.0), 0.3, 600.0, 0.5, seed=2)

        def mean_step(trace):
            samples = trace.samples(0.5, 600.0)
            return float(np.mean(np.abs(np.diff(samples))))

        assert mean_step(walk) < mean_step(gauss)

    def test_sigma_controls_spread(self):
        calm = BandwidthTrace.gaussian(mbps(5.0), 0.1, 600.0, 0.5, seed=3)
        wild = BandwidthTrace.gaussian(mbps(5.0), 0.4, 600.0, 0.5, seed=3)
        assert np.std(wild.samples(0.5, 600.0)) > \
            2 * np.std(calm.samples(0.5, 600.0))


class TestMobilityTexture:
    def test_loop_period_visible_in_autocorrelation(self):
        """The walk's loop period shows as a correlation peak at one
        period and a trough at half a period."""
        trace = BandwidthTrace.mobility_walk(mbps(5.0), mbps(1.0),
                                             period=60.0, duration=600.0,
                                             seed=4)
        samples = trace.samples(1.0, 600.0)
        at_period = autocorrelation(samples, 60)
        at_half = autocorrelation(samples, 30)
        assert at_period > 0.5
        assert at_half < -0.3

    def test_floor_and_peak_respected(self):
        trace = BandwidthTrace.mobility_walk(mbps(5.0), mbps(1.0),
                                             period=60.0, duration=300.0,
                                             seed=5, jitter_fraction=0.0)
        samples = trace.samples(0.5, 300.0)
        assert min(samples) >= mbps(1.0) * 0.9
        assert max(samples) <= mbps(5.0) * 1.1


class TestDropoutTexture:
    def test_dropout_floors_rate_inside_window_only(self):
        base = BandwidthTrace.random_walk(mbps(6.0), 0.2, 100.0, 0.5,
                                          seed=6)
        trace = BandwidthTrace.with_dropouts(base, [(30.0, 40.0)],
                                             floor_bytes_per_s=mbps(0.5))
        inside = trace.samples(0.5, 100.0)[60:80]
        outside = trace.samples(0.5, 100.0)[:60]
        assert all(s == mbps(0.5) for s in inside)
        assert np.mean(outside) > mbps(3.0)

    def test_multiple_dropouts(self):
        base = BandwidthTrace.constant(mbps(5.0))
        base.duration = 100.0
        trace = BandwidthTrace.with_dropouts(
            base, [(10.0, 15.0), (50.0, 60.0)], floor_bytes_per_s=0.0)
        assert trace.bandwidth_at(12.0) == 0.0
        assert trace.bandwidth_at(55.0) == 0.0
        assert trace.bandwidth_at(30.0) == mbps(5.0)
