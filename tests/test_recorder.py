"""Tests for the flight recorder and anomaly triage pipeline."""

import gzip
import hashlib
import json
import os

import pytest

from repro.experiments.fleet import FleetConfig, fleet_key, run_fleet
from repro.obs import (EventBus, FleetSessionCaptured, FleetWorkerHeartbeat,
                       RecorderConfig, ShardRecorder, find_manifests,
                       load_jsonl, load_manifest, rank_anomalies,
                       render_anomaly_reports, replay_anomaly, save_manifest,
                       triage_table)
from repro.obs.events import StallStart
from repro.obs.recorder import (REASON_ORDER, artifact_name, empty_stats,
                                key_dir, merge_stats)
from repro.obs.trace_export import TraceMeta, dumps_jsonl, gzip_bytes


class FakeMetrics:
    def __init__(self, bitrate=2.0, stall_time=0.0, stalls=0):
        self.mean_bitrate_mbps = bitrate
        self.total_stall_time = stall_time
        self.stall_count = stalls


class FakeResult:
    """Duck-typed SessionResult surface the recorder observes."""

    def __init__(self, bitrate=2.0, stall_time=0.0, stalls=0, misses=0,
                 events=(), finished=True, duration=10.0, traced=True):
        self.metrics = FakeMetrics(bitrate, stall_time, stalls)
        self.scheduler_stats = {"deadline_misses": misses}
        self.finished = finished
        self.session_duration = duration
        self.events = list(events) if traced else None
        self.trace_meta = TraceMeta(session_duration=duration)


def recorder(tmp_path, **overrides):
    defaults = dict(artifact_dir=str(tmp_path / "records"), check=False,
                    bottom_k=0)
    defaults.update(overrides)
    return ShardRecorder(RecorderConfig(**defaults), "deadbeefcafe", 0)


def tree_digest(root):
    """Stable digest of every file under ``root`` (path + bytes)."""
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


class TestRecorderConfig:
    def test_requires_artifact_dir(self):
        with pytest.raises(ValueError):
            RecorderConfig(artifact_dir="")

    def test_rejects_negative_knobs(self):
        for field in ("head_every", "miss_threshold", "stall_threshold",
                      "bottom_k", "max_events"):
            with pytest.raises(ValueError):
                RecorderConfig(artifact_dir="x", **{field: -1})

    def test_defaults_are_valid(self):
        config = RecorderConfig(artifact_dir="x")
        assert config.check and config.capture_failures
        assert config.head_every == 0


class TestShardRecorder:
    def test_quiet_sessions_leave_no_records(self, tmp_path):
        rec = recorder(tmp_path)
        for index in range(5):
            rec.observe(index, FakeResult())
        rec.flush()
        assert rec.records == []
        assert rec.stats["sessions"] == 5
        assert rec.stats["captured"] == 0
        assert not os.path.exists(rec.directory)

    def test_untraced_sessions_are_counted(self, tmp_path):
        rec = recorder(tmp_path)
        rec.observe(0, FakeResult(traced=False, misses=99))
        rec.flush()
        assert rec.stats["untraced"] == 1
        assert rec.records == []  # never judged, never captured

    def test_miss_threshold_triggers_capture(self, tmp_path):
        rec = recorder(tmp_path, miss_threshold=5)
        rec.observe(3, FakeResult(misses=7))
        rec.flush()
        (record,) = rec.records
        assert record["reason"] == "deadline_miss"
        assert record["score"] == 7.0
        assert record["index"] == 3 and record["shard"] == 0
        artifact = os.path.join(str(tmp_path / "records"),
                                record["artifact"])
        assert os.path.isfile(artifact)
        assert load_jsonl(artifact).meta.session_duration == 10.0

    def test_stall_threshold_triggers_capture(self, tmp_path):
        rec = recorder(tmp_path, stall_threshold=2)
        rec.observe(1, FakeResult(stalls=4, stall_time=3.0))
        rec.flush()
        (record,) = rec.records
        assert record["reason"] == "stall" and record["score"] == 4.0

    def test_most_severe_reason_wins(self, tmp_path):
        rec = recorder(tmp_path, miss_threshold=1, stall_threshold=1)
        rec.observe(0, FakeResult(misses=2, stalls=2))
        rec.flush()
        (record,) = rec.records
        assert record["reason"] == "deadline_miss"
        assert record["reasons"] == ["deadline_miss", "stall"]
        assert rec.stats["by_reason"]["deadline_miss"] == 1
        assert rec.stats["by_reason"]["stall"] == 0

    def test_zero_thresholds_disable_their_triggers(self, tmp_path):
        rec = recorder(tmp_path, miss_threshold=0, stall_threshold=0)
        rec.observe(0, FakeResult(misses=50, stalls=50))
        rec.flush()
        assert rec.records == []

    def test_head_sampling_is_deterministic(self, tmp_path):
        rec = recorder(tmp_path, head_every=3)
        for index in range(7):
            rec.observe(index, FakeResult())
        rec.flush()
        assert [r["index"] for r in rec.records] == [0, 3, 6]
        assert all(r["reason"] == "head_sample" for r in rec.records)

    def test_bottom_k_reservoir_keeps_the_worst(self, tmp_path):
        rec = recorder(tmp_path, bottom_k=2)
        qoes = {0: 5.0, 1: 1.0, 2: 3.0, 3: 0.5, 4: 4.0}
        for index, qoe in qoes.items():
            rec.observe(index, FakeResult(bitrate=qoe))
        rec.flush()
        assert [r["index"] for r in rec.records] == [1, 3]
        assert all(r["reason"] == "bottom_qoe" for r in rec.records)
        worst = min(rec.records, key=lambda r: r["qoe"])
        assert worst["index"] == 3
        assert worst["score"] == pytest.approx(-0.5)  # -qoe

    def test_qoe_proxy_penalizes_stall_ratio(self, tmp_path):
        rec = recorder(tmp_path, bottom_k=1)
        rec.observe(0, FakeResult(bitrate=3.0))
        rec.observe(1, FakeResult(bitrate=3.0, stall_time=5.0,
                                  duration=10.0))
        rec.flush()
        (record,) = rec.records
        assert record["index"] == 1  # 3.0 - 8.0 * 0.5 < 3.0

    def test_triggered_sessions_stay_out_of_the_reservoir(self, tmp_path):
        rec = recorder(tmp_path, bottom_k=1, miss_threshold=1)
        rec.observe(0, FakeResult(bitrate=0.1, misses=3))
        rec.observe(1, FakeResult(bitrate=9.0))
        rec.flush()
        reasons = {r["index"]: r["reason"] for r in rec.records}
        assert reasons == {0: "deadline_miss", 1: "bottom_qoe"}

    def test_oversized_traces_counted_not_written(self, tmp_path):
        rec = recorder(tmp_path, miss_threshold=1, max_events=1)
        events = [StallStart(0.1), StallStart(0.2)]
        rec.observe(0, FakeResult(misses=5, events=events))
        rec.flush()
        (record,) = rec.records
        assert record["artifact"] is None and record["events"] == 2
        assert rec.stats["oversized"] == 1
        assert rec.stats["captured"] == 1
        assert rec.stats["bytes_written"] == 0

    def test_record_failure(self, tmp_path):
        rec = recorder(tmp_path)
        rec.record_failure(4, "ValueError: boom")
        rec.flush()
        (record,) = rec.records
        assert record["reason"] == "failure" and record["score"] == 1.0
        assert record["artifact"] is None
        assert record["error"] == "ValueError: boom"
        assert rec.stats["by_reason"]["failure"] == 1

    def test_capture_failures_can_be_disabled(self, tmp_path):
        rec = recorder(tmp_path, capture_failures=False)
        rec.record_failure(4, "ValueError: boom")
        rec.flush()
        assert rec.records == [] and rec.stats["captured"] == 0
        assert rec.stats["sessions"] == 1

    def test_records_sorted_by_index_after_flush(self, tmp_path):
        rec = recorder(tmp_path, miss_threshold=1, bottom_k=1)
        rec.observe(2, FakeResult(misses=5))
        rec.record_failure(0, "boom")
        rec.observe(1, FakeResult(bitrate=0.1))
        rec.flush()
        assert [r["index"] for r in rec.records] == [0, 1, 2]

    def test_artifacts_are_byte_identical_across_recorders(self, tmp_path):
        blobs = []
        for attempt in ("one", "two"):
            rec = ShardRecorder(
                RecorderConfig(artifact_dir=str(tmp_path / attempt),
                               check=False, bottom_k=0, miss_threshold=1),
                "deadbeefcafe", 0)
            rec.observe(7, FakeResult(misses=2, events=[StallStart(0.5)]))
            rec.flush()
            path = os.path.join(str(tmp_path / attempt),
                                rec.records[0]["artifact"])
            with open(path, "rb") as handle:
                blobs.append(handle.read())
        assert blobs[0] == blobs[1]

    def test_no_temp_files_left_behind(self, tmp_path):
        rec = recorder(tmp_path, head_every=1)
        for index in range(4):
            rec.observe(index, FakeResult())
        rec.flush()
        leftovers = [name for name in os.listdir(rec.directory)
                     if ".tmp." in name]
        assert leftovers == []

    def test_payload_is_json_ready(self, tmp_path):
        rec = recorder(tmp_path, miss_threshold=1)
        rec.observe(0, FakeResult(misses=3))
        rec.record_failure(1, "boom")
        rec.flush()
        payload = json.loads(json.dumps(rec.payload(), sort_keys=True))
        assert payload["stats"]["captured"] == 2
        assert len(payload["records"]) == 2


class TestStatsHelpers:
    def test_empty_stats_covers_every_reason(self):
        stats = empty_stats()
        assert set(stats["by_reason"]) == set(REASON_ORDER)
        assert stats["captured"] == 0

    def test_merge_stats_accumulates(self):
        total = empty_stats()
        part = empty_stats()
        part["sessions"] = 5
        part["captured"] = 2
        part["bytes_written"] = 100
        part["by_reason"]["violation"] = 2
        merge_stats(total, part)
        merge_stats(total, part)
        assert total["sessions"] == 10 and total["captured"] == 4
        assert total["bytes_written"] == 200
        assert total["by_reason"]["violation"] == 4


class TestManifest:
    def test_round_trip(self, tmp_path):
        stats = empty_stats()
        records = [{"index": 3, "reason": "stall", "score": 2.0}]
        path = save_manifest(str(tmp_path), "deadbeefcafe", stats, records)
        payload = load_manifest(path)
        assert payload["fleet_key"] == "deadbeefcafe"
        assert payload["records"] == records
        assert payload["version"] == 1

    def test_find_manifests_from_root_and_campaign_dir(self, tmp_path):
        save_manifest(str(tmp_path), "aaaa11112222", empty_stats(), [])
        save_manifest(str(tmp_path), "bbbb33334444", empty_stats(), [])
        from_root = find_manifests(str(tmp_path))
        assert len(from_root) == 2
        campaign = key_dir(str(tmp_path), "aaaa11112222")
        assert find_manifests(campaign) == from_root[:1]

    def test_find_manifests_missing_dir_is_empty(self, tmp_path):
        assert find_manifests(str(tmp_path / "nope")) == []

    def test_load_manifest_rejects_non_manifest_json(self, tmp_path):
        bad = tmp_path / "anomalies.json"
        bad.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_manifest(str(bad))


class TestRankAnomalies:
    RECORDS = [
        {"index": 9, "reason": "head_sample", "score": 0.0},
        {"index": 2, "reason": "stall", "score": 3.0},
        {"index": 5, "reason": "violation", "score": 1.0},
        {"index": 1, "reason": "stall", "score": 7.0},
        {"index": 0, "reason": "failure", "score": 1.0},
        {"index": 4, "reason": "stall", "score": 7.0},
    ]

    def test_orders_by_reason_then_score_then_index(self):
        ranked = rank_anomalies(self.RECORDS)
        assert [r["index"] for r in ranked] == [5, 0, 1, 4, 2, 9]

    def test_top_bounds_the_list(self):
        assert len(rank_anomalies(self.RECORDS, top=2)) == 2
        assert rank_anomalies(self.RECORDS, top=2)[0]["index"] == 5

    def test_unknown_reason_sorts_last(self):
        records = [{"index": 0, "reason": "mystery", "score": 9.0},
                   {"index": 1, "reason": "head_sample", "score": 0.0}]
        assert rank_anomalies(records)[0]["index"] == 1


class TestReplayAnomaly:
    def test_traceless_record_degrades(self, tmp_path):
        verdict = replay_anomaly(str(tmp_path), {"artifact": None})
        assert verdict["replayed"] is False
        assert "trace-less" in verdict["error"]

    def test_missing_artifact_degrades(self, tmp_path):
        verdict = replay_anomaly(str(tmp_path),
                                 {"artifact": "gone/nope.jsonl.gz"})
        assert verdict["replayed"] is False and verdict["error"]

    def test_corrupt_artifact_degrades(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        path.write_bytes(gzip_bytes(b"not a trace"))
        verdict = replay_anomaly(str(tmp_path), {"artifact": "bad.jsonl.gz"})
        assert verdict["replayed"] is False and verdict["error"]

    def test_replays_a_real_artifact(self, tmp_path):
        text = dumps_jsonl([], TraceMeta(session_duration=1.0))
        path = tmp_path / artifact_name(3)
        path.write_bytes(gzip_bytes(text.encode("utf-8")))
        verdict = replay_anomaly(str(tmp_path),
                                 {"artifact": artifact_name(3),
                                  "violations": None})
        assert verdict["replayed"] is True and verdict["events"] == 0
        assert verdict["matches_recorded"] is True

    def test_mismatched_recorded_verdicts_flagged(self, tmp_path):
        text = dumps_jsonl([], TraceMeta(session_duration=1.0))
        path = tmp_path / artifact_name(3)
        path.write_bytes(gzip_bytes(text.encode("utf-8")))
        verdict = replay_anomaly(str(tmp_path),
                                 {"artifact": artifact_name(3),
                                  "violations": {"error": 7}})
        assert verdict["replayed"] is True
        assert verdict["matches_recorded"] is False


class TestTriageTable:
    def test_renders_with_sparse_fields(self):
        records = [
            {"index": 3, "shard": 0, "reason": "violation", "score": 2.0,
             "qoe": 1.5, "misses": 4, "stalls": 1,
             "artifact": "abc/session-00000003.jsonl.gz"},
            {"index": 9, "shard": 1, "reason": "failure", "score": 1.0,
             "qoe": None, "misses": None, "stalls": None,
             "artifact": None},
        ]
        table = triage_table(records)
        assert "2 anomaly record(s)" in table
        assert "violation" in table and "failure" in table
        assert "session-00000003.jsonl.gz" in table

    def test_empty_records(self):
        assert "0 anomaly record(s)" in triage_table([])


def fleet_config(**overrides):
    defaults = dict(sessions=8, shard_size=3, video_duration=6.0, seed=7)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def rec_config(tmp_path, name="records", **overrides):
    defaults = dict(artifact_dir=str(tmp_path / name))
    defaults.update(overrides)
    return RecorderConfig(**defaults)


class TestFleetRecorderIntegration:
    def test_recording_never_changes_the_population(self, tmp_path):
        config = fleet_config()
        plain = run_fleet(config)
        recorded = run_fleet(config, recorder=rec_config(tmp_path))
        assert recorded.registry_json() == plain.registry_json()
        assert plain.recorder is None and plain.anomalies == []
        assert recorded.recorder is not None
        assert recorded.recorder["sessions"] == 8
        assert recorded.record_dir == str(tmp_path / "records")

    def test_seeded_fault_is_captured_and_ranked_first(self, tmp_path):
        config = fleet_config(fault_session=5)
        result = run_fleet(config, recorder=rec_config(tmp_path))
        faulted = [r for r in result.anomalies if r["index"] == 5]
        assert faulted and faulted[0]["reason"] == "violation"
        assert faulted[0]["violations"]["error"] > 0
        ranked = result.triage(3)
        assert ranked[0]["index"] == 5
        verdict = replay_anomaly(result.record_dir, ranked[0])
        assert verdict["replayed"] and verdict["matches_recorded"]

    def test_fault_session_changes_fleet_key(self):
        assert fleet_key(fleet_config(fault_session=5)) != \
            fleet_key(fleet_config())

    def test_captures_identical_across_worker_counts(self, tmp_path):
        config = fleet_config(sessions=12, shard_size=3, fault_session=4)
        serial = run_fleet(config, recorder=rec_config(tmp_path, "serial"))
        pooled = run_fleet(config, jobs=3,
                           recorder=rec_config(tmp_path, "pooled"))
        assert [r["index"] for r in serial.anomalies] == \
            [r["index"] for r in pooled.anomalies]
        assert serial.anomalies == pooled.anomalies
        assert tree_digest(str(tmp_path / "serial")) == \
            tree_digest(str(tmp_path / "pooled"))
        assert serial.registry_json() == pooled.registry_json()

    def test_kill_and_resume_preserves_captures(self, tmp_path):
        config = fleet_config(sessions=12, shard_size=3, fault_session=1)
        straight = run_fleet(config,
                             recorder=rec_config(tmp_path, "straight"))
        ckpt = str(tmp_path / "ckpt")
        resumed_rec = rec_config(tmp_path, "resumed")
        partial = run_fleet(config, checkpoint_dir=ckpt,
                            checkpoint_every=1, stop_after=2,
                            recorder=resumed_rec)
        assert not partial.completed
        resumed = run_fleet(config, jobs=2, checkpoint_dir=ckpt,
                            checkpoint_every=1, resume=True,
                            recorder=resumed_rec)
        assert resumed.completed
        assert resumed.anomalies == straight.anomalies
        assert resumed.recorder == straight.recorder
        assert tree_digest(str(tmp_path / "resumed")) == \
            tree_digest(str(tmp_path / "straight"))
        assert resumed.registry_json() == straight.registry_json()

    def test_manifest_written_and_loadable(self, tmp_path):
        config = fleet_config(fault_session=2)
        result = run_fleet(config, recorder=rec_config(tmp_path))
        (path,) = find_manifests(str(tmp_path / "records"))
        payload = load_manifest(path)
        assert payload["fleet_key"] == fleet_key(config)
        assert payload["stats"] == result.recorder
        assert payload["records"] == result.anomalies

    def test_heartbeat_and_capture_events_published(self, tmp_path):
        bus = EventBus()
        beats, captures = [], []
        bus.subscribe(FleetWorkerHeartbeat, beats.append)
        bus.subscribe(FleetSessionCaptured, captures.append)
        config = fleet_config(fault_session=0)
        result = run_fleet(config, bus=bus,
                           recorder=rec_config(tmp_path))
        assert len(beats) == config.total_shards
        assert all(beat.worker == os.getpid() for beat in beats)
        assert beats[0].last_index == 2 and beats[-1].last_index == 7
        assert sum(beat.captured for beat in beats) == \
            result.recorder["captured"]
        assert {c.session for c in captures} == \
            {r["index"] for r in result.anomalies}
        faulted = next(c for c in captures if c.session == 0)
        assert faulted.reason == "violation" and faulted.artifact

    def test_heartbeats_flow_without_a_recorder(self):
        bus = EventBus()
        beats = []
        bus.subscribe(FleetWorkerHeartbeat, beats.append)
        run_fleet(fleet_config(), bus=bus)
        assert len(beats) == fleet_config().total_shards
        assert all(beat.captured == 0 for beat in beats)

    def test_triage_and_export_report(self, tmp_path):
        config = fleet_config(fault_session=3)
        result = run_fleet(config, recorder=rec_config(tmp_path))
        out = tmp_path / "out" / "fleet.html"
        out.parent.mkdir()
        result.export_report(str(out), triage_top=2)
        html = out.read_text()
        assert "anomal" in html.lower()
        mini = tmp_path / "out" / "anomaly-00000003.html"
        assert mini.is_file()
        assert "anomaly-00000003.html" in html

    def test_render_anomaly_reports_skips_traceless(self, tmp_path):
        records = [{"index": 1, "artifact": None},
                   {"index": 2, "artifact": "missing/file.jsonl.gz"}]
        links = render_anomaly_reports(str(tmp_path), records,
                                       str(tmp_path / "out"))
        assert links == {}

    def test_to_dict_carries_recorder_fields(self, tmp_path):
        result = run_fleet(fleet_config(fault_session=1),
                           recorder=rec_config(tmp_path))
        payload = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        assert payload["recorder"]["captured"] >= 1
        assert any(r["index"] == 1 for r in payload["anomalies"])
        assert payload["error_total"] == 0
