"""Tests for repro.obs.metrics: primitives, registry, session collector."""

import json
import pickle

import pytest

from repro.experiments import SessionConfig, run_session
from repro.obs import EventBus, dumps_jsonl, loads_jsonl
from repro.obs.events import (ChunkDownloaded, ChunkRequested, DeadlineArmed,
                              DeadlineMissed, PacketSent, PathSampled,
                              QualitySwitched, RadioStateChange,
                              SchedulerActivated, SessionClosed, StallEnd,
                              StallStart, TransferCompleted, TransferStarted)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               SessionMetricsCollector, Timeseries,
                               collector_from_trace, exponential_buckets,
                               linear_buckets, metric_from_dict,
                               registry_from_trace)


def short_config(**kwargs):
    defaults = dict(video="big_buck_bunny", abr="festive", mpdash=True,
                    deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
                    video_duration=60.0)
    defaults.update(kwargs)
    return SessionConfig(**defaults)


class TestCounter:
    def test_increments(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("hits"), Counter("hits")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("level")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_merge_is_additive(self):
        a, b = Gauge("residency"), Gauge("residency")
        a.add(10.0)
        b.add(5.0)
        a.merge(b)
        assert a.value == 15.0


class TestBucketBuilders:
    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]

    def test_linear(self):
        assert linear_buckets(0.0, 0.5, 3) == [0.0, 0.5, 1.0]

    @pytest.mark.parametrize("call", [
        lambda: exponential_buckets(0.0, 2.0, 3),
        lambda: exponential_buckets(1.0, 1.0, 3),
        lambda: exponential_buckets(1.0, 2.0, 0),
        lambda: linear_buckets(0.0, 0.0, 3),
        lambda: linear_buckets(0.0, 1.0, 0),
    ])
    def test_invalid_parameters(self, call):
        with pytest.raises(ValueError):
            call()


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram("lat", [1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 3.0, 99.0):
            histogram.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 99.0
        assert histogram.mean == pytest.approx(21.0)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", [1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("bad", [2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("bad", [])
        with pytest.raises(ValueError):
            Histogram("bad", [1.0, float("inf")])

    def test_quantile(self):
        histogram = Histogram("lat", linear_buckets(1.0, 1.0, 10))
        for value in range(1, 101):
            histogram.observe(value / 10.0)
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)
        assert histogram.quantile(0.5) == pytest.approx(5.0, abs=1.0)
        assert histogram.quantile(1.0) == histogram.max
        assert Histogram("empty", [1.0]).quantile(0.5) is None
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_quantile_overflow_bucket_reports_max(self):
        histogram = Histogram("lat", [1.0])
        histogram.observe(50.0)
        histogram.observe(70.0)
        assert histogram.quantile(0.99) == 70.0

    def test_merge(self):
        a = Histogram("lat", [1.0, 2.0])
        b = Histogram("lat", [1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.min == 0.5
        assert a.max == 9.0

    def test_merge_rejects_different_bounds(self):
        a = Histogram("lat", [1.0])
        b = Histogram("lat", [2.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_error_names_both_layouts(self):
        a = Histogram("slack_a", [1.0, 2.0])
        b = Histogram("slack_b", [1.0, 5.0])
        with pytest.raises(ValueError,
                           match="mismatched bucket layouts") as excinfo:
            a.merge(b)
        message = str(excinfo.value)
        assert "slack_a" in message and "[1.0, 2.0]" in message
        assert "slack_b" in message and "[1.0, 5.0]" in message

    def test_merge_rejects_mismatched_bucket_counts(self):
        a = Histogram("lat", [1.0, 2.0])
        b = Histogram("lat", [1.0, 2.0])
        b.counts = [0, 0]  # corrupted payload: one bucket short
        with pytest.raises(ValueError, match="lat"):
            a.merge(b)

    def test_from_dict_rejects_inconsistent_counts(self):
        payload = Histogram("lat", [1.0, 2.0]).to_dict()
        payload["counts"] = [0, 0]  # 2 bounds need 3 buckets
        with pytest.raises(ValueError, match="payload is inconsistent"):
            Histogram.from_dict(payload)

    def test_dict_round_trip(self):
        histogram = Histogram("lat", [1.0, 2.0], {"path": "wifi"})
        histogram.observe(0.5)
        histogram.observe(3.0)
        revived = Histogram.from_dict(histogram.to_dict())
        assert revived.to_dict() == histogram.to_dict()


class TestTimeseries:
    def test_samples_and_last(self):
        series = Timeseries("tput")
        assert series.last is None
        series.sample(0.0, 10.0)
        series.sample(1.0, 20.0)
        assert series.last == 20.0
        assert series.samples == [(0.0, 10.0), (1.0, 20.0)]

    def test_merge_sorts(self):
        a, b = Timeseries("tput"), Timeseries("tput")
        a.sample(2.0, 1.0)
        b.sample(1.0, 2.0)
        a.merge(b)
        assert a.samples == [(1.0, 2.0), (2.0, 1.0)]


class TestMetricsRegistry:
    def test_accessors_create_once(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        assert (registry.counter("hits", {"path": "wifi"})
                is not registry.counter("hits"))
        assert len(registry) == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        registry.histogram("h", [1.0])
        with pytest.raises(TypeError):
            registry.counter("h")
        with pytest.raises(TypeError):
            registry.histogram("x", [1.0])

    def test_merge_combines_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(1)
        b.counter("hits").inc(2)
        b.histogram("lat", [1.0]).observe(0.5)
        a.merge(b)
        assert a.counter("hits").value == 3
        assert a.histogram("lat", [1.0]).count == 1
        # The donor registry is untouched.
        assert b.counter("hits").value == 2

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", {"path": "wifi"}).inc(3)
        histogram = registry.histogram("repro_lat_seconds", [1.0, 2.0])
        histogram.observe(0.5)
        histogram.observe(5.0)
        registry.timeseries("repro_tput").sample(1.0, 42.0)
        text = registry.render_prometheus()
        assert '# TYPE repro_hits_total counter' in text
        assert 'repro_hits_total{path="wifi"} 3' in text
        assert '# TYPE repro_lat_seconds histogram' in text
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert 'repro_lat_seconds_sum 5.5' in text
        assert 'repro_lat_seconds_count 2' in text
        assert 'repro_tput 42' in text
        assert text.endswith("\n")

    def test_prometheus_label_values_escaped(self):
        registry = MetricsRegistry()
        raw = 'dip "mid\\day"\nrun'
        registry.counter("repro_runs_total", {"note": raw}).inc()
        text = registry.render_prometheus()
        line = next(l for l in text.splitlines()
                    if l.startswith("repro_runs_total{"))
        # Exposition format: backslash, quote, and newline are escaped,
        # so the sample stays a single parseable line.
        assert line == \
            'repro_runs_total{note="dip \\"mid\\\\day\\"\\nrun"} 1'
        # Round-trip: a standard left-to-right unescape restores raw.
        value = line.split('note="', 1)[1].rsplit('"}', 1)[0]
        unescaped, i = [], 0
        while i < len(value):
            if value[i] == "\\" and i + 1 < len(value):
                unescaped.append(
                    {"n": "\n", '"': '"', "\\": "\\"}[value[i + 1]])
                i += 2
            else:
                unescaped.append(value[i])
                i += 1
        assert "".join(unescaped) == raw

    def test_json_dump_is_ordered(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        names = [m["name"] for m in registry.to_dict()["metrics"]]
        assert names == ["a", "b"]

    def test_registry_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.histogram("lat", [1.0]).observe(0.4)
        registry.timeseries("tput").sample(0.0, 1.0)
        revived = pickle.loads(pickle.dumps(registry))
        assert revived.to_dict() == registry.to_dict()


class TestSessionMetricsCollector:
    def _chunk(self, time, index, level=1, size=1e6, duration=0.5):
        return ChunkDownloaded(time, index, level, size, duration,
                               time - duration, size / duration, {}, None,
                               10.0)

    def test_counters_from_synthetic_stream(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus)
        bus.publish(ChunkRequested(0.0, 0, 1, 5.0))
        bus.publish(QualitySwitched(0.1, 1, 2))
        bus.publish(DeadlineArmed(0.2, 1e6, 4.0))
        bus.publish(self._chunk(0.5, 0))
        bus.publish(SessionClosed(1.0))
        registry = collector.registry
        assert registry.get("repro_chunks_requested_total").value == 1
        assert registry.get("repro_chunks_downloaded_total").value == 1
        assert registry.get("repro_quality_switches_total").value == 1
        assert registry.get("repro_deadline_armed_total").value == 1
        assert registry.get("repro_session_duration_seconds").value == 1.0
        assert registry.get("repro_chunk_download_seconds").count == 1
        assert registry.get("repro_chunk_level_total",
                            {"level": "1"}).value == 1

    def test_deadline_slack_from_transfer_pairing(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus)
        bus.publish(TransferStarted(1.0, 7, "/c1", 1e6))
        bus.publish(SchedulerActivated(1.0, 7, 1e6, 4.0))
        bus.publish(TransferCompleted(3.0, 7, "/c1", 1e6, 2.0))
        slack = collector.registry.get("repro_deadline_slack_seconds")
        assert slack.count == 1
        # deadline at 5.0, completed at 3.0 -> slack 2.0
        assert slack.sum == pytest.approx(2.0)

    def test_deadline_miss_records_negative_slack(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus)
        bus.publish(TransferStarted(1.0, 7, "/c1", 1e6))
        bus.publish(SchedulerActivated(1.0, 7, 1e6, 2.0))
        bus.publish(DeadlineMissed(3.5, 7))
        registry = collector.registry
        assert registry.get("repro_deadline_misses_total").value == 1
        slack = registry.get("repro_deadline_slack_seconds")
        assert slack.count == 1
        assert slack.sum == pytest.approx(-0.5)
        # Completion after the miss must not double-count the slack.
        bus.publish(TransferCompleted(4.0, 7, "/c1", 1e6, 3.0))
        assert slack.count == 1

    def test_stall_durations_and_open_stall_closed_at_session_end(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus)
        bus.publish(StallStart(1.0))
        bus.publish(StallEnd(2.5))
        bus.publish(StallStart(8.0))
        bus.publish(SessionClosed(10.0))
        stalls = collector.registry.get("repro_stall_seconds")
        assert stalls.count == 2
        assert stalls.sum == pytest.approx(1.5 + 2.0)

    def test_path_sampled_feeds_timeseries(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus)
        bus.publish(PathSampled(1.0, "wifi", 14600.0, 0.05, 5e5))
        bus.publish(PathSampled(2.0, "wifi", 29200.0, 0.05, 6e5))
        registry = collector.registry
        cwnd = registry.get("repro_path_cwnd_bytes", {"path": "wifi"})
        assert [v for _, v in cwnd.samples] == [14600.0, 29200.0]
        rtt = registry.get("repro_path_rtt_seconds", {"path": "wifi"})
        assert rtt.last == 0.05

    def test_packet_sent_builds_bytes_and_throughput(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus, activity_bin=0.1)
        bus.publish(PacketSent(0.0, "wifi", 1000.0))
        bus.publish(PacketSent(0.1, "wifi", 3000.0))
        registry = collector.registry
        assert registry.get("repro_path_bytes_total",
                            {"path": "wifi"}).value == 4000.0
        series = registry.get("repro_path_throughput_bytes_per_second",
                              {"path": "wifi"})
        assert series.samples == [(0.0, 10000.0), (0.1, 30000.0)]

    def test_radio_residency_derived_at_close(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus, activity_bin=0.1,
                                            device="galaxy_note")
        bus.publish(PacketSent(0.0, "cellular", 1000.0))
        bus.publish(SessionClosed(30.0))
        registry = collector.registry
        active = registry.get("repro_radio_residency_seconds",
                              {"path": "cellular", "state": "active"})
        tail = registry.get("repro_radio_residency_seconds",
                            {"path": "cellular", "state": "tail"})
        idle = registry.get("repro_radio_residency_seconds",
                            {"path": "cellular", "state": "idle"})
        assert active is not None and tail is not None and idle is not None
        total = active.value + tail.value + idle.value
        assert total == pytest.approx(30.0)
        # Galaxy Note LTE tail is 11.576s.
        assert tail.value == pytest.approx(11.576)

    def test_explicit_radio_events_preempt_derivation(self):
        bus = EventBus()
        collector = SessionMetricsCollector(bus)
        bus.publish(RadioStateChange(0.0, "cellular", "active"))
        bus.publish(RadioStateChange(5.0, "cellular", "tail"))
        bus.publish(SessionClosed(8.0))
        registry = collector.registry
        active = registry.get("repro_radio_residency_seconds",
                              {"path": "cellular", "state": "active"})
        tail = registry.get("repro_radio_residency_seconds",
                            {"path": "cellular", "state": "tail"})
        assert active.value == 5.0
        assert tail.value == 3.0


class TestLiveSession:
    def test_collector_attached_via_config(self):
        result = run_session(short_config(collect_metrics=True))
        registry = result.metrics_registry
        assert registry is not None
        assert registry.get("repro_chunks_downloaded_total").value > 0
        assert registry.get("repro_deadline_slack_seconds").count > 0
        # The PathSampler gives per-path cwnd/RTT series.
        assert registry.get("repro_path_cwnd_bytes",
                            {"path": "wifi"}).samples
        assert registry.get("repro_path_rtt_seconds",
                            {"path": "cellular"}).samples
        # Residency covers the whole session per path.
        for path in ("wifi", "cellular"):
            total = sum(
                m.value for m in registry
                if m.name == "repro_radio_residency_seconds"
                and dict(m.labels).get("path") == path)
            assert total == pytest.approx(result.session_duration)

    def test_off_by_default(self):
        result = run_session(short_config())
        assert result.metrics_registry is None
        assert result.spans is None
        assert result.profile is None

    def test_offline_registry_equals_live(self):
        result = run_session(short_config(collect_metrics=True,
                                          record_trace=True))
        trace = loads_jsonl(dumps_jsonl(result.events, result.trace_meta))
        offline = collector_from_trace(trace).registry
        assert offline.to_dict() == result.metrics_registry.to_dict()
        assert (registry_from_trace(trace).to_dict()
                == result.metrics_registry.to_dict())

    def test_collectors_do_not_change_simulation_outcomes(self):
        bare = run_session(short_config())
        instrumented = run_session(short_config(collect_metrics=True,
                                                collect_spans=True))
        assert (bare.metrics.cellular_bytes
                == instrumented.metrics.cellular_bytes)
        assert bare.session_duration == instrumented.session_duration
        assert ([c.level for c in bare.player.log.chunks]
                == [c.level for c in instrumented.player.log.chunks])


class TestMetricSerialization:
    """to_dict/from_dict round-trips: the fleet shard wire format."""

    def test_counter_round_trip(self):
        counter = Counter("hits", {"path": "wifi"})
        counter.inc(3)
        again = metric_from_dict(counter.to_dict())
        assert isinstance(again, Counter)
        assert again.to_dict() == counter.to_dict()

    def test_gauge_round_trip(self):
        gauge = Gauge("level")
        gauge.set(2.0)
        gauge.add(0.5)
        again = metric_from_dict(gauge.to_dict())
        assert isinstance(again, Gauge)
        assert again.to_dict() == gauge.to_dict()

    def test_histogram_round_trip(self):
        histogram = Histogram("lat", linear_buckets(1.0, 1.0, 4))
        for value in (0.5, 1.5, 3.5, 99.0):
            histogram.observe(value)
        again = metric_from_dict(histogram.to_dict())
        assert isinstance(again, Histogram)
        assert again.to_dict() == histogram.to_dict()
        assert again.quantile(0.5) == histogram.quantile(0.5)

    def test_timeseries_round_trip(self):
        series = Timeseries("buffer")
        series.sample(0.0, 1.0)
        series.sample(1.0, 2.5)
        again = metric_from_dict(series.to_dict())
        assert isinstance(again, Timeseries)
        assert again.to_dict() == series.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            metric_from_dict({"kind": "sketch", "name": "x"})

    def test_registry_round_trip_is_exact(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.counter("a", {"path": "lte"}).inc()
        registry.gauge("b").add(1.25)
        registry.histogram("c", linear_buckets(1.0, 1.0, 3)).observe(2.0)
        registry.timeseries("d").sample(0.5, 1.0)
        payload = registry.to_dict()
        again = MetricsRegistry.from_dict(payload)
        assert again.to_dict() == payload
        # And the round-trip is stable as canonical JSON (byte identity).
        assert json.dumps(again.to_dict(), sort_keys=True) == \
            json.dumps(payload, sort_keys=True)

    def test_round_tripped_registry_merges_like_the_original(self):
        one = MetricsRegistry()
        one.counter("a").inc(2)
        one.histogram("c", linear_buckets(1.0, 1.0, 3)).observe(2.0)
        two = MetricsRegistry()
        two.counter("a").inc(3)
        two.histogram("c", linear_buckets(1.0, 1.0, 3)).observe(0.5)
        direct = MetricsRegistry()
        direct.merge(one)
        direct.merge(two)
        shipped = MetricsRegistry()
        shipped.merge(MetricsRegistry.from_dict(one.to_dict()))
        shipped.merge(MetricsRegistry.from_dict(two.to_dict()))
        assert shipped.to_dict() == direct.to_dict()
