"""Tests for the HTML reports and the live sweep dashboard."""

import io
import xml.etree.ElementTree as ET

import pytest

from repro.experiments import SessionConfig, run_session, run_sweep
from repro.experiments.sweep import expand_grid
from repro.obs import (BenchReport, EventBus, FleetCheckpointSaved,
                       FleetCompleted, FleetDashboard, FleetSessionCaptured,
                       FleetShardCompleted, FleetStarted,
                       FleetWorkerHeartbeat, SweepCompleted,
                       SweepDashboard, SweepRunFailed, SweepRunFinished,
                       SweepRunStarted, SweepRunSummarized, SweepStarted,
                       Trace, bench_report_html, dumps_jsonl, loads_jsonl,
                       session_report_html, sweep_report_html,
                       triage_report_html, write_report)
from repro.obs.bench import BenchResult
from repro.obs.trace_export import TraceMeta

#: Markers of external references a self-contained report must not have.
_EXTERNAL = ("http://", "https://", "<script src", "<link", "<img",
             "url(", "@import")


def parse_document(html: str) -> ET.Element:
    """The report is XHTML-style well-formed (minus the DOCTYPE line)."""
    assert html.startswith("<!DOCTYPE html>\n")
    return ET.fromstring(html.split("\n", 1)[1])


def assert_self_contained(html: str) -> None:
    for marker in _EXTERNAL:
        assert marker not in html, f"external reference: {marker!r}"


@pytest.fixture(scope="module")
def session_trace():
    result = run_session(SessionConfig(
        video="big_buck_bunny", abr="festive", mpdash=True,
        deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
        video_duration=60.0, record_trace=True, collect_metrics=True,
        collect_spans=True))
    return Trace(meta=result.trace_meta, events=result.events)


@pytest.fixture(scope="module")
def session_html(session_trace):
    return session_report_html(session_trace)


@pytest.fixture(scope="module")
def sweep_result():
    base = SessionConfig(video="big_buck_bunny", abr="festive",
                         wifi_mbps=8.0, lte_mbps=8.0, video_duration=20.0)
    return run_sweep(expand_grid(base, {"scheme": ["baseline", "rate"]}))


def bench_report(label="t", wall=1.0):
    return BenchReport(label=label, results=[
        BenchResult(scenario="single", wall_clock=wall, sim_seconds=60.0,
                    sim_per_wall=60.0 / wall, events=1000,
                    events_per_sec=1000 / wall, peak_rss_kb=50_000,
                    repeats=1)], meta={"python": "3.x"})


class TestSessionReport:
    def test_well_formed_and_self_contained(self, session_html):
        parse_document(session_html)
        assert_self_contained(session_html)

    def test_all_panels_present(self, session_html):
        for panel in ("Session overview", "Chunk downloads (Figure 8)",
                      "Path timelines", "Buffer occupancy",
                      "Deadline slack", "Radio states and energy",
                      "Invariant verdicts", "Causal spans"):
            assert panel in session_html, panel

    def test_pure_function_of_trace(self, session_trace, session_html):
        assert session_report_html(session_trace) == session_html

    def test_jsonl_round_trip_same_bytes(self, session_trace,
                                         session_html):
        round_tripped = loads_jsonl(dumps_jsonl(
            session_trace.events, session_trace.meta))
        assert session_report_html(round_tripped) == session_html

    def test_dark_mode_styles_present(self, session_html):
        assert "prefers-color-scheme" in session_html

    def test_empty_trace_renders_fallbacks(self):
        html = session_report_html(Trace(
            meta=TraceMeta(session_duration=0.0), events=[]))
        parse_document(html)
        assert_self_contained(html)
        assert "no chunks" in html

    def test_write_report(self, tmp_path, session_html):
        out = tmp_path / "r.html"
        write_report(str(out), session_html)
        assert out.read_text() == session_html


class TestSweepReport:
    def test_well_formed_and_self_contained(self, sweep_result):
        html = sweep_report_html(sweep_result)
        parse_document(html)
        assert_self_contained(html)

    def test_panels_present(self, sweep_result):
        html = sweep_report_html(sweep_result)
        for panel in ("Sweep overview", "Scheme comparison",
                      "Merged distributions", "Runs"):
            assert panel in html, panel
        assert "baseline" in html and "mpdash-rate" in html

    def test_no_failures_no_failure_panel(self, sweep_result):
        assert not sweep_result.failures
        assert "Failures" not in sweep_report_html(sweep_result)

    def test_bench_trajectory_panel(self, sweep_result):
        html = sweep_report_html(
            sweep_result,
            bench_reports=[bench_report("a", 1.0), bench_report("b", 1.1)],
            baseline=bench_report("base", 1.0))
        parse_document(html)
        assert "Benchmarks" in html
        assert "bus events per second" in html

    def test_export_report_method(self, sweep_result, tmp_path):
        out = tmp_path / "sweep.html"
        sweep_result.export_report(str(out))
        assert out.read_text() == sweep_report_html(sweep_result)

    def test_failures_panel_rendered(self):
        from repro.experiments.sweep import run_sweep as sweep

        def crash(config):
            raise RuntimeError("injected crash")

        result = sweep([SessionConfig(video="big_buck_bunny",
                                      abr="festive", video_duration=20.0)],
                       runner=crash)
        html = sweep_report_html(result)
        parse_document(html)
        assert "Failures" in html
        assert "injected crash" in html

    def test_download_runs_tabulated_without_qoe(self):
        from repro.experiments import FileDownloadConfig

        result = run_sweep([FileDownloadConfig(
            size=1e6, deadline=10.0, wifi_mbps=8.0, lte_mbps=8.0)])
        html = sweep_report_html(result)
        parse_document(html)
        assert "Runs" in html
        # Download summaries carry no session QoE: no scheme panel data.
        assert "means over" not in html


class TestBenchReportHtml:
    def test_renders_and_validates(self):
        html = bench_report_html([bench_report()])
        parse_document(html)
        assert_self_contained(html)
        assert "Benchmarks" in html

    def test_regression_verdict_shown(self):
        html = bench_report_html([bench_report("now", wall=10.0)],
                                 baseline=bench_report("base", wall=1.0),
                                 threshold=0.25)
        assert "regression" in html.lower()

    def test_no_reports_fallback(self):
        html = bench_report_html([])
        parse_document(html)
        assert "no bench reports supplied" in html


def drive_dashboard(dashboard):
    """Publish a canned sweep event sequence through an attached bus."""
    bus = EventBus()
    dashboard.attach(bus)
    bus.publish(SweepStarted(0.0, total=3, jobs=2))
    bus.publish(SweepRunStarted(0.1, "aaaa1111", 0, attempt=1))
    bus.publish(SweepRunStarted(0.2, "bbbb2222", 1, attempt=1))
    bus.publish(SweepRunFinished(1.0, "aaaa1111", 0, elapsed=0.9,
                                 cached=False))
    bus.publish(SweepRunSummarized(1.0, "aaaa1111", 0, finished=True,
                                   mean_bitrate=5e5, stall_count=1,
                                   cellular_bytes=2e6, radio_energy=9.0,
                                   violations=2))
    bus.publish(SweepRunFailed(1.5, "bbbb2222", 1, kind="error",
                               error="boom", attempts=1))
    bus.publish(SweepCompleted(2.0, total=3, succeeded=2, failed=1,
                               cache_hits=1))
    return bus


class TestSweepDashboard:
    def test_disabled_subscribes_nothing(self):
        bus = EventBus()
        before = bus.subscriber_count()
        SweepDashboard(stream=io.StringIO(), enabled=False).attach(bus)
        assert bus.subscriber_count() == before

    def test_auto_disables_off_tty(self, capsys):
        # Test streams are not TTYs, so auto-detection must say off.
        assert not SweepDashboard(stream=io.StringIO()).enabled

    def test_render_lines_content(self):
        dashboard = SweepDashboard(stream=io.StringIO(), enabled=True)
        drive_dashboard(dashboard)
        lines = dashboard.render_lines()
        assert "3/3" in lines[0]
        assert "failed 1" in lines[0]
        assert "active -" in lines[1]
        assert "stalls 1" in lines[2]
        assert "violations 2" in lines[2]

    def test_active_runs_listed_mid_sweep(self):
        dashboard = SweepDashboard(stream=io.StringIO(), enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(SweepStarted(0.0, total=2, jobs=1))
        bus.publish(SweepRunStarted(0.1, "cafecafe9999", 0, attempt=1))
        assert "#0:cafecafe" in "\n".join(dashboard.render_lines())

    def test_draws_only_to_its_stream(self, capsys):
        stream = io.StringIO()
        drive_dashboard(SweepDashboard(stream=stream, enabled=True))
        captured = capsys.readouterr()
        assert captured.out == ""  # stdout contract untouched
        assert stream.getvalue() != ""

    def test_throttles_by_event_time(self):
        stream = io.StringIO()
        dashboard = SweepDashboard(stream=stream, enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(SweepStarted(0.0, total=100, jobs=1))
        first = stream.getvalue()
        # Within the throttle window: finishes do not redraw.
        bus.publish(SweepRunFinished(0.05, "k", 0, elapsed=0.05,
                                     cached=False))
        assert stream.getvalue() == first
        bus.publish(SweepRunFinished(5.0, "k", 1, elapsed=0.1,
                                     cached=False))
        assert stream.getvalue() != first

    def test_closed_stream_disables_quietly(self):
        stream = io.StringIO()
        dashboard = SweepDashboard(stream=stream, enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        stream.close()
        bus.publish(SweepStarted(0.0, total=1, jobs=1))
        assert not dashboard.enabled

    def test_live_sweep_emits_summarized_events(self):
        seen = []
        bus = EventBus()
        bus.subscribe(SweepRunSummarized, seen.append)
        run_sweep([SessionConfig(video="big_buck_bunny", abr="festive",
                                 wifi_mbps=8.0, lte_mbps=8.0,
                                 video_duration=20.0)], bus=bus)
        assert len(seen) == 1
        assert seen[0].mean_bitrate > 0

    def test_zero_run_sweep_renders_without_dividing(self):
        stream = io.StringIO()
        dashboard = SweepDashboard(stream=stream, enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(SweepStarted(0.0, total=0, jobs=1))
        bus.publish(SweepCompleted(0.0, total=0, succeeded=0, failed=0,
                                   cache_hits=0))
        lines = dashboard.render_lines()
        assert "0/0" in lines[0] and "(0%)" in lines[0]
        assert stream.getvalue() != ""

    def test_cache_hit_only_sweep(self):
        # Every run cached: no summaries ever arrive, the QoE line must
        # stay a placeholder and the counters must still balance.
        dashboard = SweepDashboard(stream=io.StringIO(), enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(SweepStarted(0.0, total=2, jobs=1))
        for index in range(2):
            bus.publish(SweepRunFinished(1.0 + index, "k", index,
                                         elapsed=0.0, cached=True))
        bus.publish(SweepCompleted(3.0, total=2, succeeded=2, failed=0,
                                   cache_hits=2))
        lines = dashboard.render_lines()
        assert "2/2" in lines[0] and "cached 2" in lines[0]
        assert lines[2] == "qoe    -"

    def test_final_redraw_is_forced_and_resets_repaint(self):
        stream = io.StringIO()
        dashboard = SweepDashboard(stream=stream, enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(SweepStarted(0.0, total=1, jobs=1))
        before = stream.getvalue()
        # Inside the throttle window, but completion must draw anyway —
        # and leave the cursor below the frame (no pending repaint).
        bus.publish(SweepCompleted(0.01, total=1, succeeded=1, failed=0,
                                   cache_hits=0))
        assert stream.getvalue() != before
        assert dashboard._drawn_lines == 0


def drive_fleet_dashboard(dashboard):
    """Publish a canned fleet event sequence through an attached bus."""
    bus = EventBus()
    dashboard.attach(bus)
    bus.publish(FleetStarted(0.0, sessions=9, shards=3, jobs=2))
    bus.publish(FleetShardCompleted(1.0, shard=0, sessions=3, failures=1,
                                    elapsed=0.9))
    bus.publish(FleetWorkerHeartbeat(1.0, worker=111, shard=0, sessions=3,
                                     failures=1, sim_seconds=18.0,
                                     elapsed=0.9, peak_rss_kb=204800,
                                     last_index=2, captured=1))
    bus.publish(FleetSessionCaptured(
        1.1, session=1, shard=0, reason="violation", score=4.0,
        artifact="ab/session-00000001.jsonl.gz"))
    bus.publish(FleetCheckpointSaved(1.2, shards_done=1, path="ckpt"))
    return bus


class TestFleetDashboard:
    def test_disabled_subscribes_nothing(self):
        bus = EventBus()
        before = bus.subscriber_count()
        FleetDashboard(stream=io.StringIO(), enabled=False).attach(bus)
        assert bus.subscriber_count() == before

    def test_auto_disables_off_tty(self):
        assert not FleetDashboard(stream=io.StringIO()).enabled

    def test_render_lines_content(self):
        dashboard = FleetDashboard(stream=io.StringIO(), enabled=True)
        drive_fleet_dashboard(dashboard)
        text = "\n".join(dashboard.render_lines())
        assert "1/3 shards" in text and "sessions 3" in text
        assert "failed 1" in text and "workers 2" in text
        assert "w111" in text and "rss 200 MB" in text
        assert "last #2" in text
        assert "captured 1" in text
        assert "#1 violation (score 4.00)" in text
        assert "ckpt @1" in text

    def test_eta_appears_once_commits_land(self):
        dashboard = FleetDashboard(stream=io.StringIO(), enabled=True)
        drive_fleet_dashboard(dashboard)
        assert "eta ~" in dashboard.render_lines()[0]

    def test_no_workers_placeholder(self):
        dashboard = FleetDashboard(stream=io.StringIO(), enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(FleetStarted(0.0, sessions=9, shards=3, jobs=2))
        assert "  workers -" in dashboard.render_lines()

    def test_capture_forces_redraw_inside_throttle_window(self):
        stream = io.StringIO()
        dashboard = FleetDashboard(stream=stream, enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(FleetStarted(0.0, sessions=9, shards=3, jobs=1))
        before = stream.getvalue()
        bus.publish(FleetSessionCaptured(0.01, session=4, shard=1,
                                         reason="stall", score=3.0,
                                         artifact=""))
        assert stream.getvalue() != before

    def test_straggler_flagged_against_median(self):
        dashboard = FleetDashboard(stream=io.StringIO(), enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        bus.publish(FleetStarted(0.0, sessions=50, shards=10, jobs=2))
        for shard in range(4):
            bus.publish(FleetShardCompleted(float(shard + 1), shard=shard,
                                            sessions=5, failures=0,
                                            elapsed=1.0))
        bus.publish(FleetShardCompleted(9.0, shard=4, sessions=5,
                                        failures=0, elapsed=5.0))
        bus.publish(FleetWorkerHeartbeat(9.0, worker=7, shard=4,
                                         sessions=5, failures=0,
                                         sim_seconds=1.0, elapsed=5.0,
                                         peak_rss_kb=0, last_index=24,
                                         captured=0))
        text = "\n".join(dashboard.render_lines())
        assert "** straggler" in text

    def test_completed_forces_final_redraw(self):
        stream = io.StringIO()
        dashboard = FleetDashboard(stream=stream, enabled=True)
        bus = drive_fleet_dashboard(dashboard)
        before = stream.getvalue()
        bus.publish(FleetCompleted(1.21, sessions=9, failures=1, shards=3))
        assert stream.getvalue() != before
        assert dashboard._drawn_lines == 0
        assert dashboard.shards_done == 3 and dashboard.sessions == 9

    def test_draws_only_to_its_stream(self, capsys):
        stream = io.StringIO()
        drive_fleet_dashboard(FleetDashboard(stream=stream, enabled=True))
        captured = capsys.readouterr()
        assert captured.out == ""
        assert stream.getvalue() != ""

    def test_closed_stream_disables_quietly(self):
        stream = io.StringIO()
        dashboard = FleetDashboard(stream=stream, enabled=True)
        bus = EventBus()
        dashboard.attach(bus)
        stream.close()
        bus.publish(FleetStarted(0.0, sessions=1, shards=1, jobs=1))
        assert not dashboard.enabled


class TestTriageReportHtml:
    RECORDS = [
        {"index": 5, "shard": 1, "reason": "violation", "score": 4.0,
         "qoe": 0.2, "misses": 2, "stalls": 0,
         "artifact": "ab/session-00000005.jsonl.gz"},
        {"index": 9, "shard": 2, "reason": "failure", "score": 1.0,
         "qoe": None, "misses": None, "stalls": None, "artifact": None},
    ]

    def test_well_formed_and_self_contained(self):
        html = triage_report_html(self.RECORDS, fleet_key="deadbeefcafe")
        parse_document(html)
        assert_self_contained(html)
        assert "deadbeefcafe" in html
        assert "violation" in html and "failure" in html

    def test_links_and_replay_verdicts_rendered(self):
        html = triage_report_html(
            self.RECORDS, fleet_key="deadbeefcafe",
            links={5: "anomaly-00000005.html"},
            replays={5: {"replayed": True, "matches_recorded": True,
                         "violations": {"error": 4, "warning": 1}},
                     9: {"replayed": False, "error": "no artifact"}})
        parse_document(html)
        assert 'href="anomaly-00000005.html"' in html
        assert "4 error / 1 warning (identical)" in html
        assert "no artifact" in html

    def test_mismatch_is_loud(self):
        html = triage_report_html(
            self.RECORDS[:1],
            replays={5: {"replayed": True, "matches_recorded": False,
                         "violations": {"error": 0, "warning": 0}}})
        assert "MISMATCH" in html

    def test_empty_records_fallback(self):
        html = triage_report_html([])
        parse_document(html)
        assert "no captured anomalies" in html


class TestHistoryReportHtml:
    def entries(self, misses=(0.0, 0.0, 0.0, 50.0)):
        from repro.obs.ledger import LedgerEntry

        return [LedgerEntry(kind="fleet", key="grid", label=f"run{i}",
                            environment={"python": "3.11"},
                            metrics={"deadline_misses": value,
                                     "qoe": 5.0})
                for i, value in enumerate(misses)]

    def test_well_formed_and_self_contained(self):
        from repro.obs import history_report_html

        html = history_report_html(self.entries())
        parse_document(html)
        assert_self_contained(html)
        assert "MP-DASH run history" in html
        assert "deadline_misses" in html

    def test_drift_findings_annotate_the_report(self):
        from repro.obs import history_report_html

        html = history_report_html(self.entries())
        assert "gate" in html.lower()
        assert "error" in html.lower()  # the adverse spike gates

    def test_stable_history_reports_clean_gate(self):
        from repro.obs import history_report_html

        html = history_report_html(self.entries(misses=(0.0, 0.0, 0.0)))
        parse_document(html)
        assert "no drift detected" in html

    def test_empty_ledger_renders(self):
        from repro.obs import history_report_html

        html = history_report_html([])
        parse_document(html)
        assert "0 ledger entries" in html

    def test_bench_trajectory_section_included(self):
        from repro.obs import history_report_html

        html = history_report_html(
            self.entries(), bench_reports=[bench_report("a"),
                                           bench_report("b", wall=1.1)])
        parse_document(html)
        assert "single" in html  # the bench scenario row

    def test_load_warnings_are_surfaced(self):
        from repro.obs import history_report_html

        html = history_report_html(
            self.entries(),
            warnings=("runs.jsonl:9: skipped unreadable ledger line",))
        parse_document(html)
        assert "skipped unreadable ledger line" in html

    def test_byte_deterministic_for_same_entries(self):
        from repro.obs import history_report_html

        entries = self.entries()
        assert history_report_html(entries) == history_report_html(
            list(entries))
