"""Tests for the multipath video analyzer."""

import pytest

from repro.analysis.analyzer import MultipathVideoAnalyzer
from repro.dash.events import ChunkRecord, PlayerEventLog
from repro.mptcp.activity import ActivityLog


def make_inputs():
    activity = ActivityLog(0.5)
    log = PlayerEventLog()
    # Two chunks: one pure WiFi, one mixed.
    for t in (0.0, 0.5, 1.0):
        activity.record(t, "wifi", 500_000.0)
    for t in (10.0, 10.5):
        activity.record(t, "wifi", 400_000.0)
        activity.record(t, "cellular", 100_000.0)
    log.record_chunk(ChunkRecord(
        index=0, level=4, size=1_500_000, duration=4.0, requested_at=0.0,
        completed_at=1.5, throughput=1e6,
        bytes_per_path={"wifi": 1_500_000.0}))
    log.record_chunk(ChunkRecord(
        index=1, level=3, size=1_000_000, duration=4.0, requested_at=10.0,
        completed_at=11.0, throughput=1e6,
        bytes_per_path={"wifi": 800_000.0, "cellular": 200_000.0}))
    return activity, log


class TestAnalyzer:
    def test_chunk_views_carry_cellular_fraction(self):
        activity, log = make_inputs()
        analyzer = MultipathVideoAnalyzer(activity, log, 20.0)
        views = analyzer.chunk_views()
        assert len(views) == 2
        assert views[0].cellular_fraction == 0.0
        assert views[1].cellular_fraction == pytest.approx(0.2)
        assert views[1].level == 3

    def test_idle_gaps_found(self):
        activity, log = make_inputs()
        analyzer = MultipathVideoAnalyzer(activity, log, 20.0)
        gaps = analyzer.idle_gaps(min_duration=1.0)
        # Idle between ~1.5 and 10, and from 11 to 20.
        assert len(gaps) == 2
        assert gaps[0].start == pytest.approx(1.5, abs=0.5)
        assert gaps[0].end == pytest.approx(10.0, abs=0.5)
        assert gaps[1].end == 20.0

    def test_idle_gap_entire_session_when_no_traffic(self):
        analyzer = MultipathVideoAnalyzer(ActivityLog(), PlayerEventLog(),
                                          30.0)
        gaps = analyzer.idle_gaps()
        assert len(gaps) == 1
        assert gaps[0].duration == 30.0

    def test_utilization_per_path(self):
        activity, log = make_inputs()
        analyzer = MultipathVideoAnalyzer(activity, log, 20.0)
        utilization = analyzer.utilization()
        assert utilization["wifi"] > utilization["cellular"]

    def test_throughput_timeline(self):
        activity, log = make_inputs()
        analyzer = MultipathVideoAnalyzer(activity, log, 20.0)
        times, rates = analyzer.throughput_timeline("wifi")
        assert len(times) == len(rates)
        assert max(rates) == pytest.approx(1_000_000.0)

    def test_aggregate_timeline_sums_paths(self):
        activity, log = make_inputs()
        analyzer = MultipathVideoAnalyzer(activity, log, 20.0)
        _t, aggregate = analyzer.aggregate_timeline()
        _t, wifi = analyzer.throughput_timeline("wifi")
        _t, cellular = analyzer.throughput_timeline("cellular")
        assert aggregate[20] == pytest.approx(wifi[20] + cellular[20])

    def test_metrics_round_trip(self):
        activity, log = make_inputs()
        analyzer = MultipathVideoAnalyzer(activity, log, 20.0)
        metrics = analyzer.metrics()
        assert metrics.cellular_bytes == pytest.approx(200_000.0)
        assert metrics.radio_energy > 0

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            MultipathVideoAnalyzer(ActivityLog(), PlayerEventLog(), 0.0)
