"""Tests for the subflow wrapper."""

import pytest

from repro.estimators import Ewma
from repro.mptcp.subflow import Subflow
from repro.net.link import Path
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps


def _path(enabled=True, bw=mbps(8.0)):
    return Path("wifi", BandwidthTrace.constant(bw), rtt=0.05,
                enabled=enabled)


class TestDelivery:
    def test_disabled_path_delivers_nothing(self):
        sf = Subflow(_path(enabled=False))
        assert sf.deliverable(0.0, 0.01) == 0.0
        assert sf.advance(0.0, 0.01, sending=True) == 0.0

    def test_enabled_path_delivers(self):
        sf = Subflow(_path())
        assert sf.advance(0.0, 0.01, sending=True) > 0.0

    def test_account_accumulates_total(self):
        sf = Subflow(_path())
        sf.account(100.0, 0.01)
        sf.account(50.0, 0.01)
        assert sf.total_bytes == 150.0


class TestEstimation:
    def test_estimate_cold_before_samples(self):
        sf = Subflow(_path())
        assert sf.throughput_estimate() is None

    def test_estimate_warms_after_enough_busy_time(self):
        sf = Subflow(_path())
        # Feed one full sample interval of activity at 1 MB/s.
        for _ in range(10):
            sf.account(10_000.0, 0.01)
        assert sf.throughput_estimate() == pytest.approx(1e6, rel=0.01)

    def test_custom_estimator_used(self):
        sf = Subflow(_path(), estimator=Ewma(alpha=1.0))
        for _ in range(10):
            sf.account(5_000.0, 0.01)
        assert sf.throughput_estimate() == pytest.approx(5e5, rel=0.01)

    def test_idle_ticks_do_not_feed_estimator(self):
        sf = Subflow(_path())
        sf.account(0.0, 0.01)
        assert sf.throughput_estimate() is None

    def test_reset_tcp(self):
        sf = Subflow(_path())
        sf.advance(0.0, 1.0, sending=True)
        sf.reset_tcp()
        assert sf.tcp.cwnd == pytest.approx(sf.tcp.cwnd)
        assert sf.tcp.last_send_time is None
