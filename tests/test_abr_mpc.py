"""Tests for the MPC hybrid ABR (the §5.2.3 extension)."""

import pytest

from repro.abr import HYBRID, Mpc, make_abr, abr_names
from repro.abr.base import AbrContext
from repro.dash.events import ChunkRecord
from repro.dash.manifest import Manifest
from repro.dash.media import VideoAsset
from repro.net.units import mbps


@pytest.fixture
def manifest():
    asset = VideoAsset.generate("m", 4.0, 600.0,
                                [0.58, 1.01, 1.47, 2.41, 3.94], seed=0)
    return Manifest(asset)


def ctx(manifest, current_level, buffer_level, override=None,
        measured=None, index=10):
    return AbrContext(manifest=manifest, buffer_level=buffer_level,
                      buffer_capacity=40.0, next_chunk_index=index,
                      current_level=current_level,
                      measured_throughput=measured,
                      override_throughput=override, in_startup=False)


def feed(abr, throughput, n=5):
    for _ in range(n):
        abr.on_chunk_downloaded(ChunkRecord(
            index=0, level=0, size=1e6, duration=4.0, requested_at=0.0,
            completed_at=1.0, throughput=throughput))


class TestMpc:
    def test_category(self):
        assert Mpc.category == HYBRID

    def test_registered_in_factory(self):
        assert "mpc" in abr_names()
        assert isinstance(make_abr("mpc"), Mpc)

    def test_high_throughput_high_buffer_goes_up(self, manifest):
        abr = Mpc()
        feed(abr, mbps(10.0))
        level = abr.choose_level(ctx(manifest, 2, 30.0))
        assert level > 2

    def test_low_throughput_low_buffer_goes_down(self, manifest):
        abr = Mpc()
        feed(abr, mbps(0.6))
        level = abr.choose_level(ctx(manifest, 3, 5.0))
        assert level < 3

    def test_rebuffer_penalty_dominates(self, manifest):
        """Nearly empty buffer and weak throughput: MPC must not gamble on
        a high level even if quality terms would like it."""
        abr = Mpc(rebuffer_penalty=40.0)
        feed(abr, mbps(1.2))
        level = abr.choose_level(ctx(manifest, 4, 1.0))
        assert level <= 2

    def test_switch_penalty_discourages_thrash(self, manifest):
        smooth = Mpc(switch_penalty=50.0)
        feed(smooth, mbps(2.5))
        level = smooth.choose_level(ctx(manifest, 2, 20.0))
        assert abs(level - 2) <= 1

    def test_no_prediction_holds_level(self, manifest):
        abr = Mpc()
        assert abr.choose_level(ctx(manifest, 2, 20.0)) == 2

    def test_override_used_as_prediction(self, manifest):
        abr = Mpc()
        feed(abr, mbps(0.3))
        up = abr.choose_level(ctx(manifest, 2, 30.0, override=mbps(10.0)))
        assert up > 2

    def test_horizon_shrinks_near_video_end(self, manifest):
        abr = Mpc(horizon=5)
        feed(abr, mbps(5.0))
        # Last chunk: horizon collapses to 1; must still return a level.
        level = abr.choose_level(ctx(manifest, 2, 20.0,
                                     index=manifest.num_chunks - 1))
        assert 0 <= level < manifest.num_levels

    def test_required_throughput(self, manifest):
        abr = Mpc()
        context = ctx(manifest, 2, 20.0)
        assert abr.required_throughput(context, 4) == \
            manifest.bitrates()[4]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Mpc(horizon=0)
        with pytest.raises(ValueError):
            Mpc(max_step=0)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_abr("nope")
