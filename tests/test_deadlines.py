"""Tests for deadline computation and extension."""

import pytest

from repro.core.deadlines import (DURATION_BASED, RATE_BASED,
                                  compute_deadline, duration_based_deadline,
                                  extend_deadline, rate_based_deadline)
from repro.net.units import mbps


class TestDurationBased:
    def test_equals_chunk_duration(self):
        assert duration_based_deadline(4.0) == 4.0

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            duration_based_deadline(0.0)


class TestRateBased:
    def test_paper_example(self):
        """A 1 MB chunk at a 4 Mbps level gets 1*8/4 = 2 seconds."""
        assert rate_based_deadline(1_000_000, mbps(4.0)) == pytest.approx(2.0)

    def test_bigger_chunk_longer_deadline(self):
        assert rate_based_deadline(2e6, mbps(4.0)) > rate_based_deadline(
            1e6, mbps(4.0))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            rate_based_deadline(0.0, mbps(4.0))
        with pytest.raises(ValueError):
            rate_based_deadline(1e6, 0.0)


class TestDispatch:
    def test_duration_mode(self):
        assert compute_deadline(DURATION_BASED, 1e6, 4.0, mbps(4.0)) == 4.0

    def test_rate_mode(self):
        assert compute_deadline(RATE_BASED, 1e6, 4.0,
                                mbps(4.0)) == pytest.approx(2.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            compute_deadline("bogus", 1e6, 4.0, mbps(4.0))

    def test_rate_based_budgets_big_chunks_proportionally(self):
        """Average chunks get D=duration under both; a 2x chunk gets 2x the
        window under rate-based but only 1x under duration-based — the
        mechanism behind Figure 8's comparison."""
        nominal = mbps(4.0)
        average_size = nominal * 4.0
        big_size = 2 * average_size
        assert compute_deadline(RATE_BASED, average_size, 4.0,
                                nominal) == pytest.approx(4.0)
        assert compute_deadline(RATE_BASED, big_size, 4.0,
                                nominal) == pytest.approx(8.0)
        assert compute_deadline(DURATION_BASED, big_size, 4.0,
                                nominal) == 4.0


class TestExtension:
    def test_no_extension_below_phi(self):
        assert extend_deadline(4.0, buffer_level=10.0, phi=32.0) == 4.0

    def test_extension_above_phi(self):
        assert extend_deadline(4.0, buffer_level=36.0,
                               phi=32.0) == pytest.approx(8.0)

    def test_extension_exactly_at_phi(self):
        assert extend_deadline(4.0, buffer_level=32.0, phi=32.0) == 4.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            extend_deadline(0.0, 10.0, 32.0)
        with pytest.raises(ValueError):
            extend_deadline(4.0, 10.0, -1.0)
