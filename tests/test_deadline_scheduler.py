"""Tests for the deadline-aware scheduler (Algorithm 1)."""

import pytest

from repro.core.policy import Preference, prefer_wifi
from repro.core.scheduler import DeadlineAwareScheduler
from repro.mptcp.connection import MptcpConnection
from repro.net.link import Path, cellular_path, wifi_path
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps, megabytes


def make_setup(wifi=8.0, lte=8.0, alpha=1.0, signaling_delay=0.0):
    sim = Simulator()
    paths = [wifi_path(bandwidth_mbps=wifi),
             cellular_path(bandwidth_mbps=lte)]
    conn = MptcpConnection(sim, paths, signaling_delay=signaling_delay)
    scheduler = DeadlineAwareScheduler(prefer_wifi(), alpha=alpha)
    conn.controller = scheduler
    return sim, conn, scheduler


class TestValidation:
    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            DeadlineAwareScheduler(prefer_wifi(), alpha=0.0)
        with pytest.raises(ValueError):
            DeadlineAwareScheduler(prefer_wifi(), alpha=1.5)

    def test_arm_validates_inputs(self):
        scheduler = DeadlineAwareScheduler(prefer_wifi())
        with pytest.raises(ValueError):
            scheduler.arm(0, 1.0)
        with pytest.raises(ValueError):
            scheduler.arm(100, 0)

    def test_unknown_connection_path_rejected(self):
        sim = Simulator()
        paths = [Path("satellite", BandwidthTrace.constant(1e6), rtt=0.3)]
        conn = MptcpConnection(sim, paths)
        scheduler = DeadlineAwareScheduler(prefer_wifi())
        conn.controller = scheduler
        scheduler.arm(megabytes(1), 10.0)
        conn.start_transfer(megabytes(1))
        with pytest.raises(KeyError):
            sim.run(until=10.0)


class TestCellularAvoidance:
    def test_cellular_unused_when_wifi_sufficient(self):
        """Generous deadline: the whole file fits on WiFi alone."""
        sim, conn, scheduler = make_setup(wifi=8.0, lte=8.0)
        scheduler.arm(megabytes(2), 10.0)
        transfer = conn.start_transfer(megabytes(2))
        sim.run(until=30.0)
        assert transfer.complete
        # A tiny sliver may pass before the first disable decision.
        assert transfer.per_path.get("cellular", 0.0) < megabytes(2) * 0.05
        assert scheduler.deadline_misses == 0

    def test_cellular_used_when_wifi_insufficient(self):
        """Tight deadline: WiFi alone cannot make it."""
        sim, conn, scheduler = make_setup(wifi=3.8, lte=3.0)
        # 5 MB over 3.8 Mbps alone needs ~10.5s; deadline 8s.
        scheduler.arm(megabytes(5), 8.0)
        transfer = conn.start_transfer(megabytes(5))
        sim.run(until=30.0)
        assert transfer.complete
        assert transfer.per_path["cellular"] > 0
        assert transfer.finished_at - transfer.started_at <= 8.5

    def test_longer_deadline_less_cellular(self):
        used = {}
        for deadline in (8.0, 10.0):
            sim, conn, scheduler = make_setup(wifi=3.8, lte=3.0)
            scheduler.arm(megabytes(5), deadline)
            transfer = conn.start_transfer(megabytes(5))
            sim.run(until=40.0)
            used[deadline] = transfer.per_path.get("cellular", 0.0)
        assert used[10.0] < used[8.0]

    def test_smaller_alpha_more_cellular(self):
        used = {}
        for alpha in (0.8, 1.0):
            sim, conn, scheduler = make_setup(wifi=3.8, lte=3.0, alpha=alpha)
            scheduler.arm(megabytes(5), 10.0)
            transfer = conn.start_transfer(megabytes(5))
            sim.run(until=40.0)
            used[alpha] = transfer.per_path.get("cellular", 0.0)
        assert used[0.8] > used[1.0]

    def test_cellular_reenabled_on_wifi_collapse(self):
        """WiFi drops mid-transfer; the scheduler brings cellular back."""
        sim = Simulator()
        wifi_trace = BandwidthTrace.from_samples(
            [mbps(8.0)] * 20 + [mbps(0.5)] * 200, 0.1, loop=False)
        paths = [wifi_path(trace=wifi_trace),
                 cellular_path(bandwidth_mbps=8.0)]
        conn = MptcpConnection(sim, paths, signaling_delay=0.0)
        scheduler = DeadlineAwareScheduler(prefer_wifi())
        conn.controller = scheduler
        scheduler.arm(megabytes(5), 8.0)
        transfer = conn.start_transfer(megabytes(5))
        sim.run(until=30.0)
        assert transfer.complete
        assert transfer.per_path["cellular"] > megabytes(1)


class TestLifecycle:
    def test_deactivates_after_transfer(self):
        sim, conn, scheduler = make_setup()
        scheduler.arm(megabytes(1), 10.0)
        conn.start_transfer(megabytes(1))
        sim.run(until=30.0)
        assert not scheduler.active
        assert scheduler.activations == 1

    def test_deadline_miss_deactivates_and_opens_paths(self):
        sim, conn, scheduler = make_setup(wifi=0.8, lte=0.8)
        # 5 MB over 1.6 Mbps combined takes ~25s; deadline 2s must be missed.
        scheduler.arm(megabytes(5), 2.0)
        transfer = conn.start_transfer(megabytes(5))
        sim.run(until=60.0)
        assert transfer.complete
        assert scheduler.deadline_misses == 1
        assert not scheduler.active
        assert conn.path_state("cellular") is True

    def test_disarm_cancels_pending(self):
        sim, conn, scheduler = make_setup()
        scheduler.arm(megabytes(1), 10.0)
        scheduler.disarm()
        conn.start_transfer(megabytes(1))
        sim.run(until=30.0)
        assert scheduler.activations == 0

    def test_disarm_restores_all_paths(self):
        """disarm() must re-enable every path (vanilla MPTCP fallback),
        matching on_transfer_complete — not leave the last requested
        subset stuck."""
        sim, conn, scheduler = make_setup(wifi=8.0, lte=8.0)
        scheduler.arm(megabytes(8), 30.0)
        conn.start_transfer(megabytes(8))
        sim.run(until=1.0)
        assert conn.path_state("cellular") is False
        scheduler.disarm()
        assert conn.path_state("cellular") is True
        assert conn.path_state("wifi") is True
        assert not scheduler.active

    def test_deadline_miss_counts_enable_flips(self):
        """The forced all-paths-enable on a miss is an enable event like
        any other: enable_events must agree with the PathStateRequested
        stream."""
        from repro.obs.events import PathStateRequested

        sim, conn, scheduler = make_setup(wifi=8.0, lte=8.0)
        enables = []
        conn.bus.subscribe(
            PathStateRequested,
            lambda e: enables.append(e.path) if e.enabled else None)
        # Generous deadline: cellular is off while the transfer runs.
        scheduler.arm(megabytes(8), 30.0)
        transfer = conn.start_transfer(megabytes(8))
        sim.run(until=1.0)
        assert conn.path_state("cellular") is False
        assert scheduler.enable_events == len(enables) == 0
        # The deadline passes mid-transfer: the miss branch re-enables
        # every path, and that flip must be counted.
        deadline = scheduler._activation.deadline()
        desired = scheduler.on_tick(deadline + 0.1, transfer, conn)
        assert desired == {"wifi": True, "cellular": True}
        assert scheduler.deadline_misses == 1
        assert scheduler.enable_events == 1
        for name, enabled in desired.items():
            conn.request_path_state(name, enabled)
        assert enables == ["cellular"]
        assert scheduler.enable_events == len(enables)

    def test_only_armed_transfers_are_controlled(self):
        sim, conn, scheduler = make_setup(wifi=8.0, lte=8.0)
        transfer = conn.start_transfer(megabytes(2))  # never armed
        sim.run(until=30.0)
        assert transfer.per_path["cellular"] > 0  # vanilla MPTCP behaviour

    def test_arm_applies_to_next_transfer_only(self):
        sim, conn, scheduler = make_setup(wifi=8.0, lte=8.0)
        scheduler.arm(megabytes(2), 20.0)
        first = conn.start_transfer(megabytes(2))
        second = conn.start_transfer(megabytes(2))
        sim.run(until=60.0)
        assert first.per_path.get("cellular", 0.0) < megabytes(2) * 0.05
        assert second.per_path.get("cellular", 0.0) > 0


class TestNPathGeneralization:
    def test_three_paths_filled_in_cost_order(self):
        sim = Simulator()
        paths = [
            Path("wifi", BandwidthTrace.constant(mbps(2.0)), rtt=0.05),
            Path("cellular", BandwidthTrace.constant(mbps(2.0)), rtt=0.055),
            Path("satellite", BandwidthTrace.constant(mbps(10.0)), rtt=0.3),
        ]
        conn = MptcpConnection(sim, paths, signaling_delay=0.0)
        pref = Preference(["wifi", "cellular", "satellite"],
                          {"wifi": 0.0, "cellular": 1.0, "satellite": 10.0})
        scheduler = DeadlineAwareScheduler(pref)
        conn.controller = scheduler
        # 4 MB in 12s: WiFi alone (2 Mbps -> 3 MB) is short, WiFi+cellular
        # (4 Mbps -> 6 MB) suffices, satellite should stay off.
        scheduler.arm(megabytes(4), 12.0)
        transfer = conn.start_transfer(megabytes(4))
        sim.run(until=40.0)
        assert transfer.complete
        assert transfer.per_path["cellular"] > 0
        assert transfer.per_path.get("satellite", 0.0) < megabytes(4) * 0.05

    def test_costliest_path_used_when_needed(self):
        sim = Simulator()
        paths = [
            Path("wifi", BandwidthTrace.constant(mbps(1.0)), rtt=0.05),
            Path("cellular", BandwidthTrace.constant(mbps(1.0)), rtt=0.055),
            Path("satellite", BandwidthTrace.constant(mbps(20.0)), rtt=0.3),
        ]
        conn = MptcpConnection(sim, paths, signaling_delay=0.0)
        pref = Preference(["wifi", "cellular", "satellite"])
        scheduler = DeadlineAwareScheduler(pref)
        conn.controller = scheduler
        # 8 MB in 5s needs ~12.8 Mbps: only satellite provides that.
        scheduler.arm(megabytes(8), 5.0)
        transfer = conn.start_transfer(megabytes(8))
        sim.run(until=60.0)
        assert transfer.complete
        assert transfer.per_path["satellite"] > megabytes(4)
