"""Tests for table formatting helpers."""

import pytest

from repro.experiments.tables import (format_table, joules, mb, mbps_str,
                                      pct)


class TestFormatTable:
    def test_aligned_output(self):
        text = format_table(["name", "value"],
                            [["wifi", 1.5], ["cellular", 20.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text


class TestFormatters:
    def test_pct(self):
        assert pct(0.593) == "59.3%"
        assert pct(-0.05) == "-5.0%"

    def test_mb(self):
        assert mb(2_500_000) == "2.50MB"

    def test_joules(self):
        assert joules(123.456) == "123.5J"

    def test_mbps(self):
        assert mbps_str(1e6) == "8.00Mbps"
