"""Tests for the drift sentinel (repro.obs.drift)."""

import pytest

from repro.obs.check import ERROR, INFO, WARNING
from repro.obs.drift import (CUSUM, EWMA, DriftFinding, control_track,
                             detect_drift, drift_table, gate_ok,
                             metric_direction, metric_series,
                             trend_document)
from repro.obs.ledger import LedgerEntry


def entries_for(metric, values, kind="fleet"):
    """One single-metric ledger timeline, in order."""
    return [LedgerEntry(kind=kind, key="k", metrics={metric: value})
            for value in values]


class TestMetricDirection:
    def test_higher_is_better_metrics(self):
        for name in ("qoe", "bitrate_p50_mbps", "single.sim_per_wall",
                     "finished", "cache_hits", "single.events_per_sec"):
            assert metric_direction(name) == "higher", name

    def test_lower_is_better_metrics(self):
        for name in ("deadline_misses", "stall_seconds_p95",
                     "startup_seconds", "cellular_mbytes",
                     "energy_joules", "violations", "failures",
                     "unfinished_sessions", "single.wall_clock",
                     "single.peak_rss_kb"):
            assert metric_direction(name) == "lower", name

    def test_unknown_metric_has_no_direction(self):
        assert metric_direction("sessions") is None

    def test_only_the_leaf_component_is_matched(self):
        # The scenario prefix must not leak into direction lookup.
        assert metric_direction("stall_heavy.wall_clock") == "lower"


class TestMetricSeries:
    def test_groups_by_kind_and_metric(self):
        entries = (entries_for("qoe", [1.0, 2.0], kind="session")
                   + entries_for("qoe", [3.0], kind="fleet"))
        series = metric_series(entries)
        assert set(series) == {("session", "qoe"), ("fleet", "qoe")}
        positions = [p for p, _, _ in series[("session", "qoe")]]
        assert positions == [0, 1]  # global file positions
        assert series[("fleet", "qoe")][0][0] == 2

    def test_points_carry_entry_ids(self):
        entries = entries_for("qoe", [1.0, 2.0])
        series = metric_series(entries)
        ids = [eid for _, eid, _ in series[("fleet", "qoe")]]
        assert ids == [e.entry_id for e in entries]


class TestControlTrack:
    def test_first_point_is_its_own_expectation(self):
        means, stds = control_track([10.0, 10.0, 10.0])
        assert means == [10.0, 10.0, 10.0]
        assert stds[0] == pytest.approx(0.5)  # rel_floor * |10|

    def test_point_never_absorbs_itself_before_judgment(self):
        means, _ = control_track([10.0, 20.0], alpha=0.5)
        # The expectation for point 1 is formed from point 0 only.
        assert means[1] == 10.0

    def test_band_floors(self):
        _, stds = control_track([0.0, 0.0, 0.0])
        assert all(s == pytest.approx(1e-9) for s in stds)
        _, stds = control_track([100.0, 100.0], rel_floor=0.1)
        assert stds[1] == pytest.approx(10.0)

    def test_variance_tracks_noise(self):
        noisy = [10.0, 12.0, 8.0, 11.0, 9.0, 12.0, 8.0]
        _, stds = control_track(noisy)
        assert stds[-1] > 1.0  # learned spread, not just the floor


class TestDetectDrift:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            detect_drift([], alpha=0.0)
        with pytest.raises(ValueError, match="warn_sigma"):
            detect_drift([], warn_sigma=3.0, error_sigma=2.0)
        with pytest.raises(ValueError, match="min_history"):
            detect_drift([], min_history=0)

    def test_stable_history_is_clean(self):
        entries = entries_for("qoe", [1.0] * 6)
        assert detect_drift(entries) == []
        assert gate_ok([])

    def test_min_history_suppresses_early_judgments(self):
        # A wild second point is not judged: history is too short.
        entries = entries_for("deadline_misses", [0.0, 1000.0])
        assert detect_drift(entries) == []

    def test_adverse_spike_is_an_error(self):
        entries = entries_for("deadline_misses", [0.0, 0.0, 0.0, 50.0])
        findings = detect_drift(entries)
        ewma = [f for f in findings if f.detector == EWMA]
        assert len(ewma) == 1
        f = ewma[0]
        assert f.severity == ERROR and f.direction == "up"
        assert f.position == 3
        assert f.entry_id == entries[3].entry_id
        assert f.value == 50.0
        assert not gate_ok(findings)

    def test_improvement_is_info_not_gating(self):
        entries = entries_for("deadline_misses", [50.0, 50.0, 50.0, 0.0])
        findings = detect_drift(entries)
        assert findings and all(f.severity == INFO for f in findings)
        assert gate_ok(findings)

    def test_qoe_drop_gates_qoe_rise_does_not(self):
        drop = detect_drift(entries_for("qoe", [5.0, 5.0, 5.0, 0.5]))
        rise = detect_drift(entries_for("qoe", [5.0, 5.0, 5.0, 9.5]))
        assert any(f.severity == ERROR for f in drop)
        assert all(f.severity == INFO for f in rise)

    def test_unknown_direction_gates_both_ways(self):
        up = detect_drift(entries_for("sessions", [8.0, 8.0, 8.0, 16.0]))
        down = detect_drift(entries_for("sessions", [8.0, 8.0, 8.0, 4.0]))
        assert any(f.severity == ERROR for f in up)
        assert any(f.severity == ERROR for f in down)

    def test_moderate_deviation_is_a_warning(self):
        # Noisy history, then a point ~2.5 sigma out: WARNING not ERROR.
        values = [10.0, 11.0, 9.0, 10.5, 9.5, 10.0, 11.0, 9.0]
        _, stds = control_track(values + [0.0])
        sigma = stds[len(values)]
        mean = control_track(values + [0.0])[0][len(values)]
        probe = mean + 2.5 * sigma
        findings = detect_drift(
            entries_for("deadline_misses", values + [probe]))
        ewma = [f for f in findings if f.detector == EWMA
                and f.position == len(values)]
        assert len(ewma) == 1 and ewma[0].severity == WARNING

    def test_cusum_catches_sustained_small_shift(self):
        # Each +1.2-sigma step stays inside the EWMA warn band, but the
        # run of them accumulates past the CUSUM threshold.
        values = [10.0] * 4
        for _ in range(10):
            values.append(values[-1] * 1.06)
        findings = detect_drift(
            entries_for("cellular_mbytes", values),
            warn_sigma=10.0, error_sigma=10.0)  # silence EWMA
        cusum = [f for f in findings if f.detector == CUSUM]
        assert cusum and all(f.severity == WARNING for f in cusum)
        assert all(f.direction == "up" for f in cusum)
        assert gate_ok(findings)  # CUSUM warns, never gates

    def test_evidence_cites_recent_baseline_ids(self):
        entries = entries_for("deadline_misses",
                              [0.0, 0.0, 0.0, 0.0, 50.0])
        finding = [f for f in detect_drift(entries)
                   if f.detector == EWMA][0]
        assert finding.evidence == tuple(
            e.entry_id for e in entries[:4])

    def test_evidence_is_capped(self):
        entries = entries_for("deadline_misses", [0.0] * 20 + [50.0])
        finding = [f for f in detect_drift(entries)
                   if f.detector == EWMA][0]
        assert len(finding.evidence) == 8
        assert finding.evidence[-1] == entries[19].entry_id

    def test_findings_are_deterministically_ordered(self):
        entries = (entries_for("qoe", [5.0, 5.0, 5.0, 0.5])
                   + entries_for("deadline_misses",
                                 [0.0, 0.0, 0.0, 50.0]))
        first = detect_drift(entries)
        second = detect_drift(list(entries))
        assert [f.to_dict() for f in first] == [f.to_dict()
                                               for f in second]
        keys = [(f.kind, f.metric, f.position, f.detector)
                for f in first]
        assert keys == sorted(keys)

    def test_finding_round_trips_to_dict(self):
        entries = entries_for("deadline_misses", [0.0, 0.0, 0.0, 50.0])
        payload = [f for f in detect_drift(entries)
                   if f.detector == EWMA][0].to_dict()
        assert payload["severity"] == ERROR
        assert payload["metric"] == "deadline_misses"
        assert isinstance(payload["evidence"], list)
        assert "sigma" in payload["message"]


class TestTrendDocument:
    def test_shape_and_gate(self):
        entries = entries_for("deadline_misses", [0.0, 0.0, 0.0, 50.0])
        document = trend_document(entries)
        assert document["entries"] == 4
        assert document["kinds"] == ["fleet"]
        assert document["gate_ok"] is False
        [series] = document["series"]
        assert series["metric"] == "deadline_misses"
        assert series["direction"] == "lower"
        assert len(series["points"]) == len(series["ewma"]) == 4
        assert {f["detector"] for f in document["findings"]} >= {EWMA}

    def test_accepts_precomputed_findings(self):
        entries = entries_for("qoe", [1.0] * 3)
        document = trend_document(entries, findings=[])
        assert document["findings"] == [] and document["gate_ok"] is True

    def test_empty_ledger(self):
        document = trend_document([])
        assert document == {"entries": 0, "kinds": [], "series": [],
                            "findings": [], "gate_ok": True}


class TestDriftTable:
    def test_counts_and_lines(self):
        entries = (entries_for("deadline_misses", [0.0, 0.0, 0.0, 50.0])
                   + entries_for("qoe", [5.0, 5.0, 5.0, 9.5]))
        findings = detect_drift(entries)
        text = drift_table(findings)
        # One EWMA ERROR + CUSUM WARNING for the miss spike; the QoE
        # improvement lands as INFO from both detectors.
        assert text.startswith("drift: 1 error(s), 1 warning(s), 2 info")
        assert "[ERROR" in text and "[INFO" in text
        assert "deadline_misses" in text

    def test_empty(self):
        assert drift_table([]) == "drift: 0 error(s), 0 warning(s), 0 info"
