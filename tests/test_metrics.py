"""Tests for session metrics."""

import pytest

from repro.analysis.metrics import (SessionMetrics, bitrate_reduction,
                                    compute_metrics, path_utilization,
                                    savings)
from repro.dash.events import (ChunkRecord, PLAY_START, PlayerEventLog,
                               STALL_END, STALL_START)
from repro.energy.model import EnergyBreakdown
from repro.mptcp.activity import ActivityLog


def chunk(index, level=2, wifi=800_000.0, cellular=200_000.0):
    size = wifi + cellular
    return ChunkRecord(index=index, level=level, size=size, duration=4.0,
                       requested_at=index * 4.0,
                       completed_at=index * 4.0 + 2.0,
                       throughput=size / 2.0,
                       bytes_per_path={"wifi": wifi, "cellular": cellular})


def make_log(num_chunks=10):
    log = PlayerEventLog()
    log.record(2.0, PLAY_START)
    for i in range(num_chunks):
        log.record_chunk(chunk(i, level=i % 3))
    return log


ENERGY = {"wifi": EnergyBreakdown(active=10.0),
          "cellular": EnergyBreakdown(active=30.0, tail=10.0),
          "total": EnergyBreakdown(active=40.0, tail=10.0)}


class TestComputeMetrics:
    def test_bytes_aggregated_per_path(self):
        metrics = compute_metrics(make_log(), ENERGY, 60.0)
        assert metrics.wifi_bytes == pytest.approx(8_000_000)
        assert metrics.cellular_bytes == pytest.approx(2_000_000)
        assert metrics.cellular_fraction == pytest.approx(0.2)

    def test_energy_extracted(self):
        metrics = compute_metrics(make_log(), ENERGY, 60.0)
        assert metrics.radio_energy == pytest.approx(50.0)
        assert metrics.cellular_energy == pytest.approx(40.0)

    def test_steady_state_skips_head(self):
        metrics = compute_metrics(make_log(10), ENERGY, 60.0,
                                  steady_state_fraction=0.2)
        assert metrics.chunk_count == 8

    def test_mean_bitrate_from_sizes(self):
        metrics = compute_metrics(make_log(), ENERGY, 60.0)
        assert metrics.mean_bitrate == pytest.approx(1_000_000 / 4.0)
        assert metrics.mean_bitrate_mbps == pytest.approx(2.0)

    def test_startup_delay(self):
        metrics = compute_metrics(make_log(), ENERGY, 60.0)
        assert metrics.startup_delay == pytest.approx(2.0)

    def test_stall_accounting(self):
        log = make_log()
        log.record(10.0, STALL_START)
        log.record(12.5, STALL_END)
        metrics = compute_metrics(log, ENERGY, 60.0)
        assert metrics.stall_count == 1
        assert metrics.total_stall_time == pytest.approx(2.5)

    def test_quality_switches_counted_on_kept_chunks(self):
        metrics = compute_metrics(make_log(6), ENERGY, 60.0)
        # Levels cycle 0,1,2,0,1,2: five switches.
        assert metrics.quality_switches == 5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(make_log(), ENERGY, 60.0,
                            steady_state_fraction=1.0)

    def test_empty_log(self):
        metrics = compute_metrics(PlayerEventLog(), ENERGY, 60.0)
        assert metrics.total_bytes == 0.0
        assert metrics.mean_bitrate == 0.0
        assert metrics.startup_delay is None


class TestDerived:
    def test_savings(self):
        assert savings(100.0, 25.0) == pytest.approx(0.75)
        assert savings(100.0, 150.0) == pytest.approx(-0.5)
        assert savings(0.0, 10.0) == 0.0

    def test_bitrate_reduction(self):
        base = SessionMetrics(mean_bitrate=1000.0)
        worse = SessionMetrics(mean_bitrate=900.0)
        better = SessionMetrics(mean_bitrate=1100.0)
        assert bitrate_reduction(base, worse) == pytest.approx(0.1)
        assert bitrate_reduction(base, better) == pytest.approx(-0.1)

    def test_path_utilization(self):
        log = ActivityLog(1.0)
        for t in (0.5, 1.5, 2.5):
            log.record(t, "wifi", 100.0)
        assert path_utilization(log, "wifi", 10.0) == pytest.approx(0.3)

    def test_path_utilization_validates(self):
        with pytest.raises(ValueError):
            path_utilization(ActivityLog(), "wifi", 0.0)
