"""Music prefetching and navigation tiles over MP-DASH (§8).

The deadline-aware scheduler is a general building block: the §8 examples
— a music app prefetching the next song, a navigation app prefetching map
tiles ahead of the vehicle — run here over the same MP_DASH_ENABLE socket
API the video adapter uses.

Run with:  python examples/delay_tolerant_apps.py
"""

from repro.apps import (MusicPrefetcher, NavigationPrefetcher,
                        PlaylistTrack, RouteTile)
from repro.core.policy import prefer_wifi
from repro.core.socket_api import MpDashSocket
from repro.experiments.tables import format_table, pct
from repro.mptcp import MptcpConnection
from repro.net import Simulator, cellular_path, wifi_path
from repro.net.units import megabytes


def make_transport(mpdash: bool):
    sim = Simulator()
    connection = MptcpConnection(sim, [wifi_path(bandwidth_mbps=4.0),
                                       cellular_path(bandwidth_mbps=6.0)])
    socket = MpDashSocket(connection, prefer_wifi()) if mpdash else None
    return sim, connection, socket


def drive(sim, app, cap=900.0):
    app.start()
    while not app.finished and sim.now < cap:
        sim.run(until=sim.now + 5.0)


def music_demo() -> None:
    playlist = [
        PlaylistTrack("opening theme", megabytes(4), 45.0),
        PlaylistTrack("acoustic set", megabytes(9), 70.0),
        PlaylistTrack("interview", megabytes(6), 55.0),
        PlaylistTrack("encore", megabytes(8), 60.0),
    ]
    rows = []
    for label, mpdash in (("vanilla MPTCP", False), ("MP-DASH", True)):
        sim, connection, socket = make_transport(mpdash)
        app = MusicPrefetcher(sim, connection, socket, playlist)
        drive(sim, app)
        rows.append([label, f"{app.cellular_bytes / 1e6:.1f}",
                     f"{app.prefetches_on_time()}/{len(playlist) - 1}",
                     f"{app.stall_time:.1f}"])
    print(format_table(
        ["transport", "cellular MB", "prefetches on time", "silence s"],
        rows, title="Music prefetching (WiFi 4 / LTE 6 Mbps)"))


def navigation_demo() -> None:
    route = [RouteTile(f"tile-{i:02d}", megabytes(2), 350.0 * (i + 1))
             for i in range(10)]
    rows = []
    for label, mpdash in (("vanilla MPTCP", False), ("MP-DASH", True)):
        sim, connection, socket = make_transport(mpdash)
        app = NavigationPrefetcher(sim, connection, socket, route,
                                   speed=14.0)
        drive(sim, app)
        rows.append([label, f"{app.cellular_bytes / 1e6:.1f}",
                     f"{app.tiles_on_time()}/{len(route)}"])
    print()
    print(format_table(
        ["transport", "cellular MB", "tiles before vehicle"],
        rows, title="Navigation tile prefetching (14 m/s drive)"))


def main() -> None:
    music_demo()
    navigation_demo()
    print("\nSame QoE, a fraction of the cellular data — the deadline is "
          "the only thing the app had to declare.")


if __name__ == "__main__":
    main()
