"""Field study: MP-DASH at public WiFi locations.

Streams the same video at a handful of catalog locations — a hotel with
weak WiFi, a flaky coffeehouse, a library with ample WiFi — and shows how
MP-DASH's savings scale with WiFi quality, reproducing the §7.3.3 story in
miniature (run the full 33-location version with
``pytest benchmarks/bench_field_study.py --benchmark-only``).

Run with:  python examples/field_study.py
"""

from repro import SessionConfig, run_schemes
from repro.experiments import RATE
from repro.experiments.tables import format_table, pct
from repro.workloads import location_by_name

LOCATIONS = ("hotel_hi", "coffeehouse", "library")
VIDEO_SECONDS = 240.0


def location_config(location) -> SessionConfig:
    wifi, lte = location.paths(duration=2 * VIDEO_SECONDS + 200)
    return SessionConfig(
        video="big_buck_bunny", abr="festive",
        wifi_trace=wifi.trace, lte_trace=lte.trace,
        wifi_mbps=None, lte_mbps=None,
        wifi_rtt_ms=location.wifi_rtt_ms,
        lte_rtt_ms=location.lte_rtt_ms,
        video_duration=VIDEO_SECONDS,
    )


def main() -> None:
    rows = []
    for name in LOCATIONS:
        location = location_by_name(name)
        print(f"Streaming at {name} "
              f"(WiFi {location.wifi_mbps} Mbps, LTE {location.lte_mbps} "
              f"Mbps)…")
        comparison = run_schemes(location_config(location),
                                 schemes=("baseline", RATE))
        treated = comparison.results[RATE].metrics
        rows.append([
            name, location.wifi_mbps,
            f"{comparison.baseline.metrics.cellular_bytes / 1e6:.1f}",
            f"{treated.cellular_bytes / 1e6:.1f}",
            pct(comparison.cellular_savings(RATE)),
            pct(comparison.cellular_energy_savings(RATE)),
            treated.stall_count,
        ])
    print()
    print(format_table(
        ["location", "wifi Mbps", "baseline cell MB", "mp-dash cell MB",
         "cell saved", "LTE energy saved", "stalls"], rows,
        title="MP-DASH savings grow with WiFi quality"))


if __name__ == "__main__":
    main()
