"""Plugging a custom rate-adaptation algorithm into MP-DASH.

The §5 adapter was designed so off-the-shelf DASH algorithms become
multipath-friendly with a few lines of change.  This example writes a tiny
custom throughput-based ABR from scratch, registers nothing anywhere —
just hands the instance to the player — and runs it with and without
MP-DASH.  The only MP-DASH-awareness the algorithm needs is using
``ctx.effective_throughput()`` (which prefers the transport's aggregate
estimate when the adapter supplies it) instead of its own measurement.

Run with:  python examples/custom_abr.py
"""

from repro.abr.base import THROUGHPUT_BASED, AbrAlgorithm, AbrContext
from repro.core.adapter import MpDashAdapter
from repro.core.policy import prefer_wifi
from repro.core.socket_api import MpDashSocket
from repro.dash import DashPlayer, DashServer, HttpClient
from repro.experiments.tables import pct
from repro.mptcp import MptcpConnection
from repro.net import Simulator, cellular_path, wifi_path
from repro.workloads import video_asset


class TwoSpeedAbr(AbrAlgorithm):
    """A deliberately simple ABR: top level when throughput comfortably
    exceeds it, lowest level otherwise, with one mid step between."""

    name = "two-speed"
    category = THROUGHPUT_BASED

    def __init__(self, headroom: float = 1.2):
        self.headroom = headroom

    def choose_level(self, ctx: AbrContext) -> int:
        throughput = ctx.effective_throughput()
        if throughput is None:
            return 0
        bitrates = ctx.manifest.bitrates()
        if throughput > self.headroom * bitrates[-1]:
            return len(bitrates) - 1
        if throughput > self.headroom * bitrates[len(bitrates) // 2]:
            return len(bitrates) // 2
        return 0


def run_session(mpdash: bool):
    sim = Simulator()
    connection = MptcpConnection(sim, [wifi_path(bandwidth_mbps=6.0),
                                       cellular_path(bandwidth_mbps=4.0)])
    server = DashServer()
    server.host(video_asset("big_buck_bunny", duration=240.0))
    client = HttpClient(connection, server.resolve)

    addon = None
    if mpdash:
        socket = MpDashSocket(connection, prefer_wifi())
        addon = MpDashAdapter(socket, deadline_mode="rate")

    player = DashPlayer(sim, client, server.manifest("big_buck_bunny"),
                        TwoSpeedAbr(), addon=addon)
    player.start()
    while not player.finished and sim.now < 600.0:
        sim.run(until=sim.now + 5.0)
    connection.close()
    cellular = connection.subflow("cellular").total_bytes
    levels = [c.level for c in player.log.chunks]
    return cellular, levels, player.log.stall_count


def main() -> None:
    base_cell, base_levels, base_stalls = run_session(mpdash=False)
    dash_cell, dash_levels, dash_stalls = run_session(mpdash=True)
    print("Custom two-speed ABR over WiFi 6 / LTE 4 Mbps")
    print(f"  vanilla MPTCP: {base_cell / 1e6:6.1f} MB cellular, "
          f"mean level {sum(base_levels) / len(base_levels) + 1:.2f}, "
          f"{base_stalls} stalls")
    print(f"  with MP-DASH:  {dash_cell / 1e6:6.1f} MB cellular, "
          f"mean level {sum(dash_levels) / len(dash_levels) + 1:.2f}, "
          f"{dash_stalls} stalls")
    print(f"  cellular saved: {pct(1 - dash_cell / base_cell)}")


if __name__ == "__main__":
    main()
