"""Quickstart: stream one video over preference-aware multipath.

Runs the paper's motivating scenario — WiFi 3.8 Mbps, LTE 3.0 Mbps, a
1080p DASH video whose top bitrate is 3.94 Mbps — three ways: vanilla
MPTCP, then MP-DASH with rate-based and duration-based deadlines, and
prints what the user cares about: cellular data, radio energy, and QoE.

Run with:  python examples/quickstart.py
"""

from repro import SessionConfig, run_schemes
from repro.experiments import BASELINE, DURATION, RATE
from repro.experiments.tables import format_table, pct


def main() -> None:
    config = SessionConfig(
        video="big_buck_bunny",
        abr="festive",
        wifi_mbps=3.8,
        lte_mbps=3.0,
        video_duration=300.0,
    )
    print("Streaming Big Buck Bunny (FESTIVE) over WiFi 3.8 / LTE 3.0 Mbps")
    print("Running baseline MPTCP and MP-DASH (rate & duration deadlines)…\n")

    comparison = run_schemes(config)

    rows = []
    for scheme in (BASELINE, DURATION, RATE):
        metrics = comparison.results[scheme].metrics
        rows.append([
            scheme,
            f"{metrics.cellular_bytes / 1e6:.1f}",
            pct(metrics.cellular_fraction),
            f"{metrics.radio_energy:.0f}",
            f"{metrics.mean_bitrate_mbps:.2f}",
            metrics.stall_count,
        ])
    print(format_table(
        ["scheme", "cellular MB", "cellular %", "energy J",
         "bitrate Mbps", "stalls"], rows))

    print()
    for scheme in (DURATION, RATE):
        print(f"MP-DASH ({scheme}): saves "
              f"{pct(comparison.cellular_savings(scheme))} of cellular data "
              f"and {pct(comparison.cellular_energy_savings(scheme))} of "
              f"LTE radio energy, with "
              f"{pct(abs(comparison.bitrate_reduction(scheme)))} bitrate "
              f"change and {comparison.stalls(scheme)} stalls.")


if __name__ == "__main__":
    main()
