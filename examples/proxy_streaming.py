"""Streaming through a TCP-splitting proxy (§8 deployability).

The paper's deployment story: almost all MP-DASH logic is client-side, and
with a standard TCP-splitting proxy even the server's MPTCP support becomes
unnecessary — the origin sees one vanilla TCP connection, while the
proxy↔client leg runs MP-DASH-enabled MPTCP.

This example streams a full DASH session that way and shows (a) every byte
crossed the origin leg exactly once on a single path, and (b) the client
leg's cellular avoidance worked exactly as in the direct setup.

Run with:  python examples/proxy_streaming.py
"""

from repro.abr import Festive
from repro.core.adapter import MpDashAdapter
from repro.core.policy import prefer_wifi
from repro.core.socket_api import MpDashSocket
from repro.dash import DashPlayer, DashServer, HttpClient
from repro.experiments.tables import format_table, pct
from repro.mptcp import MptcpConnection, SplittingProxy
from repro.net import BandwidthTrace, Path, Simulator, cellular_path, \
    mbps, wifi_path
from repro.workloads import video_asset

VIDEO_SECONDS = 240.0


def run(mpdash: bool):
    sim = Simulator()
    client_leg = MptcpConnection(sim, [wifi_path(bandwidth_mbps=3.8),
                                       cellular_path(bandwidth_mbps=3.0)])
    addon = None
    if mpdash:
        socket = MpDashSocket(client_leg, prefer_wifi())
        addon = MpDashAdapter(socket, deadline_mode="rate")
    origin_leg = Path("origin", BandwidthTrace.constant(mbps(40.0)),
                      rtt=0.02)
    proxy = SplittingProxy(sim, origin_leg, client_leg)

    server = DashServer()  # the unmodified origin
    server.host(video_asset("big_buck_bunny", duration=VIDEO_SECONDS))
    client = HttpClient(client_leg, server.resolve, fetcher=proxy.fetch)
    player = DashPlayer(sim, client, server.manifest("big_buck_bunny"),
                        Festive(), addon=addon)
    player.start()
    while not player.finished and sim.now < 3 * VIDEO_SECONDS:
        sim.run(until=sim.now + 5.0)
    return player, client_leg, proxy


def main() -> None:
    rows = []
    for label, mpdash in (("proxy, vanilla MPTCP", False),
                          ("proxy + MP-DASH", True)):
        player, client_leg, proxy = run(mpdash)
        total = sum(c.size for c in player.log.chunks)
        cellular = client_leg.subflow("cellular").total_bytes
        rows.append([
            label,
            f"{proxy.origin_bytes / 1e6:.1f}",
            f"{cellular / 1e6:.1f}",
            pct(cellular / total),
            player.log.stall_count,
        ])
    print(format_table(
        ["setup", "origin MB (single path)", "cellular MB",
         "cellular share", "stalls"], rows,
        title="DASH through a TCP-splitting proxy (origin unmodified)"))
    print("\nThe origin server never saw MPTCP, let alone MP-DASH — the "
          "preference enforcement happened entirely on the proxy-client "
          "leg.")


if __name__ == "__main__":
    main()
