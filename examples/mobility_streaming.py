"""Mobility: streaming while walking around a WiFi access point.

Reproduces §7.3.4 interactively: WiFi throughput swings with distance from
the AP while LTE stays steady.  MP-DASH taps cellular only in the WiFi
troughs; vanilla MPTCP rides LTE at full blast the whole time.  The script
prints the per-path traffic patterns (the Figure-11 view) and the savings.

Run with:  python examples/mobility_streaming.py
"""

from repro import SessionConfig, run_session
from repro.analysis.visualize import throughput_plot
from repro.experiments.tables import pct
from repro.workloads import MobilityScenario

VIDEO_SECONDS = 240.0


def run(scenario: MobilityScenario, mpdash: bool):
    wifi, lte = scenario.paths(2 * VIDEO_SECONDS + 200)
    config = SessionConfig(
        video="big_buck_bunny", abr="festive", mpdash=mpdash,
        deadline_mode="rate",
        wifi_trace=wifi.trace, lte_trace=lte.trace,
        wifi_mbps=None, lte_mbps=None,
        wifi_rtt_ms=scenario.wifi_rtt_ms, lte_rtt_ms=scenario.lte_rtt_ms,
        video_duration=VIDEO_SECONDS,
    )
    return run_session(config)


def show_patterns(label: str, result) -> None:
    analyzer = result.analyzer
    start = int(60.0 / analyzer.activity.bin_width)
    end = int(180.0 / analyzer.activity.bin_width)
    _t, wifi = analyzer.throughput_timeline("wifi", until=180.0)
    _t, lte = analyzer.throughput_timeline("cellular", until=180.0)
    print(f"\n[{label}] 60s..180s of the walk:")
    print(throughput_plot([("WiFi", wifi[start:end]),
                           ("LTE", lte[start:end])],
                          interval=analyzer.activity.bin_width))


def main() -> None:
    scenario = MobilityScenario()
    print(f"Walking a {scenario.loop_period:.0f}s loop around the AP "
          f"(WiFi {scenario.floor_wifi_mbps}-{scenario.peak_wifi_mbps} "
          f"Mbps, LTE ~{scenario.lte_mbps} Mbps)…")

    mpdash = run(scenario, mpdash=True)
    default = run(scenario, mpdash=False)

    show_patterns("MP-DASH", mpdash)
    show_patterns("default MPTCP", default)

    cell_saving = 1 - (mpdash.metrics.cellular_bytes
                       / default.metrics.cellular_bytes)
    energy_saving = 1 - (mpdash.metrics.radio_energy
                         / default.metrics.radio_energy)
    print(f"\nMP-DASH under mobility: {pct(cell_saving)} less cellular "
          f"data, {pct(energy_saving)} less radio energy, "
          f"{mpdash.metrics.stall_count} stalls "
          f"(bitrate {mpdash.metrics.mean_bitrate_mbps:.2f} vs "
          f"{default.metrics.mean_bitrate_mbps:.2f} Mbps).")


if __name__ == "__main__":
    main()
