"""Deadline-aware transfers beyond video (§8's generalization).

The MP-DASH scheduler is a general building block for delay-tolerant
transfers: anything that must arrive *by* a deadline rather than *as fast
as possible* — the next song in a music app, the next map tile in
turn-by-turn navigation — can ride the preferred path and touch cellular
only when the deadline is at risk.

This example downloads a playlist of "songs" back to back.  Each song must
finish downloading before the current one ends (its deadline), exactly the
Pandora-style prefetch the paper describes.

Run with:  python examples/deadline_file_transfer.py
"""

from repro import FileDownloadConfig, run_file_download
from repro.experiments.tables import format_table, pct
from repro.net.units import megabytes

#: A playlist: (title, size, seconds of playback left when prefetch
#: starts — the deadline).
PLAYLIST = [
    ("song-1 (320kbps)", megabytes(9), 30.0),
    ("song-2 (320kbps)", megabytes(8), 25.0),
    ("podcast episode", megabytes(28), 90.0),
    ("song-3 (live set)", megabytes(14), 40.0),
]


def main() -> None:
    print("Prefetching a playlist over WiFi 3.8 / LTE 3.0 Mbps\n")
    rows = []
    totals = {"baseline": 0.0, "mp-dash": 0.0}
    for title, size, deadline in PLAYLIST:
        baseline = run_file_download(FileDownloadConfig(
            size=size, deadline=deadline, mpdash=False,
            wifi_mbps=3.8, lte_mbps=3.0))
        mpdash = run_file_download(FileDownloadConfig(
            size=size, deadline=deadline, wifi_mbps=3.8, lte_mbps=3.0))
        totals["baseline"] += baseline.cellular_bytes
        totals["mp-dash"] += mpdash.cellular_bytes
        rows.append([
            title, f"{size / 1e6:.0f}", f"{deadline:.0f}",
            f"{baseline.cellular_bytes / 1e6:.2f}",
            f"{mpdash.cellular_bytes / 1e6:.2f}",
            f"{mpdash.duration:.1f}",
            "late!" if mpdash.missed_deadline else "on time",
        ])
    print(format_table(
        ["item", "MB", "deadline s", "baseline cell MB",
         "mp-dash cell MB", "finished at", "deadline"], rows))
    saving = 1 - totals["mp-dash"] / totals["baseline"]
    print(f"\nPlaylist cellular usage: "
          f"{totals['baseline'] / 1e6:.1f} MB -> "
          f"{totals['mp-dash'] / 1e6:.1f} MB ({pct(saving)} saved), "
          f"every item on time.")


if __name__ == "__main__":
    main()
