"""Figure 1: vanilla MPTCP nearly saturates LTE while streaming DASH.

The motivating controlled experiment (§2.3): WiFi 3.8 Mbps, LTE 3.0 Mbps,
a DASH video whose top bitrate is ~4.0 Mbps, unmodified MPTCP.  The paper
observes the LTE link almost fully utilized even though only ~0.2 Mbps of
it is actually needed.
"""

import pytest

from repro.analysis.visualize import throughput_plot
from repro.experiments import SessionConfig, run_session
from repro.net.units import to_mbps


def run():
    config = SessionConfig(video="big_buck_bunny", abr="gpac", mpdash=False,
                           wifi_mbps=3.8, lte_mbps=3.0,
                           video_duration=180.0)
    return run_session(config)


@pytest.mark.benchmark(group="fig01")
def test_fig01_mptcp_overuses_lte(benchmark, emit):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    analyzer = result.analyzer

    # Steady-state 60-second window, as the paper plots.
    start, end = 60.0, 120.0
    times, wifi = analyzer.throughput_timeline("wifi", until=end)
    _t, lte = analyzer.throughput_timeline("cellular", until=end)
    _t, total = analyzer.aggregate_timeline(until=end)
    first = int(start / analyzer.activity.bin_width)
    plot = throughput_plot(
        [("MPTCP", total[first:]), ("WiFi", wifi[first:]),
         ("LTE", lte[first:])],
        interval=analyzer.activity.bin_width)

    metrics = result.metrics
    lte_busy = [v for v in lte[first:] if v > 0]
    lte_mean_busy = to_mbps(sum(lte_busy) / len(lte_busy)) if lte_busy else 0
    summary = (
        f"\nsteady-state LTE throughput while downloading: "
        f"{lte_mean_busy:.2f} Mbps of 3.0 available\n"
        f"cellular share of session bytes: "
        f"{metrics.cellular_fraction * 100:.1f}% "
        f"(paper: 'more than half of data ... over LTE')\n"
        f"playback bitrate: {metrics.mean_bitrate_mbps:.2f} Mbps, "
        f"stalls: {metrics.stall_count}")
    emit("fig01_motivation", plot + summary)

    assert metrics.cellular_fraction > 0.35
    assert lte_mean_busy > 2.0  # LTE close to fully utilized when active
    assert metrics.stall_count == 0
