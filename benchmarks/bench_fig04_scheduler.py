"""Figure 4: the MP-DASH scheduler on a single 5 MB file download.

§7.2.1's workload: WiFi 3.8 Mbps, LTE 3.0 Mbps (Dummynet-pinned), 5 MB
file.  WiFi alone needs ~10.5 s, MPTCP ~6 s; deadlines of 8, 9, and 10 s
are evaluated against vanilla MPTCP for both the default (minRTT) and
round-robin schedulers.  The paper reports large LTE-byte and radio-energy
savings that grow with the deadline (68% data / 44% energy at D=10 s), and
an α=0.8 sensitivity point (28% / 15%).
"""

import pytest

from repro.experiments import FileDownloadConfig, run_file_download
from repro.experiments.tables import format_table, pct
from repro.net.units import megabytes

SIZE = megabytes(5)


def run_grid():
    results = {}
    for scheduler in ("minrtt", "roundrobin"):
        baseline = run_file_download(FileDownloadConfig(
            size=SIZE, deadline=10.0, mpdash=False, wifi_mbps=3.8,
            lte_mbps=3.0, mptcp_scheduler=scheduler))
        results[(scheduler, "baseline")] = baseline
        for deadline in (8.0, 9.0, 10.0):
            results[(scheduler, deadline)] = run_file_download(
                FileDownloadConfig(size=SIZE, deadline=deadline,
                                   wifi_mbps=3.8, lte_mbps=3.0,
                                   mptcp_scheduler=scheduler))
    # The alpha sensitivity point at D=10.
    results[("minrtt", "alpha0.8")] = run_file_download(FileDownloadConfig(
        size=SIZE, deadline=10.0, alpha=0.8, wifi_mbps=3.8, lte_mbps=3.0))
    return results


@pytest.mark.benchmark(group="fig04")
def test_fig04_file_download_grid(benchmark, emit):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for (scheduler, case), result in results.items():
        rows.append([scheduler, str(case),
                     result.cellular_bytes / 1e6,
                     result.radio_energy,
                     result.duration,
                     "MISS" if result.missed_deadline else "ok"])
    table = format_table(
        ["scheduler", "deadline", "LTE MB", "energy J", "finish s", "met?"],
        rows, title="Figure 4: 5MB download, WiFi 3.8 / LTE 3.0 Mbps")

    base = results[("minrtt", "baseline")]
    d10 = results[("minrtt", 10.0)]
    alpha = results[("minrtt", "alpha0.8")]
    data_saving = 1 - d10.cellular_bytes / base.cellular_bytes
    energy_saving = 1 - d10.radio_energy / base.radio_energy
    alpha_saving = 1 - alpha.cellular_bytes / base.cellular_bytes
    summary = (f"\nD=10s savings vs baseline: data {pct(data_saving)} "
               f"(paper 68%), energy {pct(energy_saving)} (paper 44%)\n"
               f"alpha=0.8 at D=10s: data saving {pct(alpha_saving)} "
               f"(paper 28%)")
    emit("fig04_scheduler", table + summary)

    # Shape assertions.
    for scheduler in ("minrtt", "roundrobin"):
        previous = None
        for deadline in (8.0, 9.0, 10.0):
            result = results[(scheduler, deadline)]
            assert not result.missed_deadline
            assert result.cellular_bytes < \
                results[(scheduler, "baseline")].cellular_bytes
            if previous is not None:
                assert result.cellular_bytes <= previous.cellular_bytes + 1e4
            previous = result
    assert data_saving > 0.5
    assert energy_saving > 0.15
    # Smaller alpha is more conservative: more cellular than alpha=1 but
    # still a clear saving over the baseline.
    assert alpha.cellular_bytes >= d10.cellular_bytes
    assert alpha_saving > 0.15
