"""Figure 5: bandwidth traces and their Holt-Winters predictions.

The paper plots the FastFood and Coffeehouse WiFi traces alongside the
non-seasonal Holt-Winters forecasts to argue the predictor tracks
fluctuating open-WiFi bandwidth well (and §6 argues it beats EWMA on
non-stationary series).  This bench renders both series and quantifies the
one-step prediction error of Holt-Winters against an EWMA baseline.
"""

import pytest

from repro.analysis.visualize import throughput_plot
from repro.estimators import Ewma, HoltWinters
from repro.workloads import coffeehouse_profile, fast_food_profile

SLOT = 0.25
HORIZON = 35.0  # the figure shows ~35 s


def prediction_errors(samples, estimator):
    """Mean absolute percentage error of one-step-ahead forecasts."""
    errors = []
    for actual in samples:
        predicted = estimator.predict()
        if predicted is not None and actual > 0:
            errors.append(abs(predicted - actual) / actual)
        estimator.update(actual)
    return sum(errors) / len(errors)


def run():
    output = {}
    for profile in (fast_food_profile(), coffeehouse_profile()):
        samples = profile.wifi.samples(SLOT, HORIZON)
        hw = HoltWinters()
        predictions = []
        for actual in samples:
            predictions.append(hw.predict_or(actual))
            hw.update(actual)
        output[profile.name] = {
            "samples": samples,
            "predictions": predictions,
            "hw_mape": prediction_errors(samples, HoltWinters()),
            "ewma_mape": prediction_errors(samples, Ewma(alpha=0.25)),
        }
    return output


@pytest.mark.benchmark(group="fig05")
def test_fig05_holt_winters_prediction(benchmark, emit):
    output = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = []
    for name, data in output.items():
        plot = throughput_plot(
            [(name[:10], data["samples"]),
             ("HW pred", data["predictions"])], interval=SLOT)
        sections.append(
            f"{plot}\n{name}: HW one-step MAPE "
            f"{data['hw_mape'] * 100:.1f}%  vs  EWMA "
            f"{data['ewma_mape'] * 100:.1f}%")
    emit("fig05_hw_prediction", "\n\n".join(sections))

    for name, data in output.items():
        # The predictor must track the trace usefully...
        assert data["hw_mape"] < 0.30, name
        # ...and not be grossly worse than EWMA (it typically wins on
        # trending segments; on mean-reverting noise they are comparable).
        assert data["hw_mape"] < data["ewma_mape"] * 1.3, name
