"""Figure 7 (a/b/c): controlled experiments across network conditions.

The §7.3.2 grid: {FESTIVE, GPAC, BBA, BBA-C} × three WiFi/LTE bandwidth
combinations × {baseline, MP-DASH duration, MP-DASH rate}.  Conditions
follow the paper: W3.8/L3.0 and W2.8/L3.0 can sustain the 3.94 Mbps top
level over MPTCP; W2.2/L1.2 cannot.  As in the testbed (real radios behind
a Dummynet shaper), links carry a small fluctuation around the pinned
rate.

Shapes to reproduce:
* MP-DASH saves substantial cellular data for every throughput-based
  algorithm under every condition, with zero stalls.
* Savings shrink from W3.8 to W2.8 (more cellular genuinely needed).
* BBA saves less than FESTIVE (it is more aggressive), and at W2.2/L1.2
  original BBA oscillates and yields little or no saving, while BBA-C
  restores the saving at the cost of locking one level lower.
"""

import pytest

from repro.experiments import (BASELINE, DURATION, RATE, SessionConfig,
                               run_schemes)
from repro.experiments.tables import format_table, pct
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps

CONDITIONS = [("W3.8/L3.0", 3.8, 3.0), ("W2.8/L3.0", 2.8, 3.0),
              ("W2.2/L1.2", 2.2, 1.2)]
ALGORITHMS = ("festive", "gpac", "bba", "bba-c")
VIDEO_SECONDS = 300.0
#: Testbed links are shaped but still jitter a little.
JITTER = 0.05


def make_config(abr, wifi, lte, seed):
    wifi_trace = BandwidthTrace.gaussian(mbps(wifi), JITTER, 120.0, 0.5,
                                         seed=seed)
    lte_trace = BandwidthTrace.gaussian(mbps(lte), JITTER, 120.0, 0.5,
                                        seed=seed + 1)
    return SessionConfig(video="big_buck_bunny", abr=abr,
                         wifi_trace=wifi_trace, lte_trace=lte_trace,
                         wifi_mbps=None, lte_mbps=None,
                         video_duration=VIDEO_SECONDS)


def run_grid():
    grid = {}
    seed = 100
    for abr in ALGORITHMS:
        for label, wifi, lte in CONDITIONS:
            seed += 2
            grid[(abr, label)] = run_schemes(
                make_config(abr, wifi, lte, seed))
    return grid


@pytest.mark.benchmark(group="fig07")
def test_fig07_controlled_grid(benchmark, emit):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for (abr, condition), comparison in grid.items():
        base = comparison.baseline.metrics
        for scheme in (BASELINE, DURATION, RATE):
            m = comparison.results[scheme].metrics
            rows.append([
                abr, condition, scheme, m.cellular_bytes / 1e6,
                m.radio_energy, m.mean_bitrate_mbps, m.stall_count,
                pct(comparison.cellular_savings(scheme))
                if scheme != BASELINE else "-",
                pct(comparison.cellular_energy_savings(scheme))
                if scheme != BASELINE else "-",
            ])
    table = format_table(
        ["abr", "condition", "scheme", "LTE MB", "energy J",
         "bitrate Mbps", "stalls", "cell saved", "LTE-energy saved"],
        rows, title="Figure 7: controlled experiments")
    emit("fig07_controlled", table)

    for (abr, condition), comparison in grid.items():
        for scheme in (DURATION, RATE):
            assert comparison.stalls(scheme) == 0, (abr, condition)

    # Throughput-based algorithms: savings everywhere, no bitrate loss.
    for abr in ("festive", "gpac"):
        for condition, _w, _l in CONDITIONS:
            comparison = grid[(abr, condition)]
            assert comparison.cellular_savings(RATE) > 0.3, (abr, condition)
            assert comparison.cellular_energy_savings(RATE) > 0.05
            assert abs(comparison.bitrate_reduction(RATE)) < 0.1

    # Savings shrink when WiFi drops from 3.8 to 2.8 (more LTE needed).
    assert grid[("festive", "W3.8/L3.0")].results[RATE].metrics \
        .cellular_bytes < grid[("festive", "W2.8/L3.0")] \
        .results[RATE].metrics.cellular_bytes

    # BBA leaves less room for MP-DASH than FESTIVE under W3.8/L3.0.
    assert grid[("bba", "W3.8/L3.0")].cellular_savings(RATE) <= \
        grid[("festive", "W3.8/L3.0")].cellular_savings(RATE) + 0.05

    # W2.2/L1.2: BBA-C (locked one level down) saves clearly; original BBA
    # saves little or nothing while oscillating to a higher avg bitrate.
    bba = grid[("bba", "W2.2/L1.2")]
    bba_c = grid[("bba-c", "W2.2/L1.2")]
    assert bba_c.cellular_savings(RATE) > 0.3
    assert bba_c.cellular_savings(RATE) > bba.cellular_savings(RATE)
    assert bba.baseline.metrics.mean_bitrate > \
        bba_c.results[RATE].metrics.mean_bitrate
