"""Figure 8: the multipath video analysis tool's chunk visualization.

Three FESTIVE sessions — default MPTCP, MP-DASH rate-based, MP-DASH
duration-based — rendered as the tool's chunk strip (level glyph +
cellular-tenths digit per chunk).  The paper's reading of the figure:
default MPTCP blackens a large share of every chunk (heavy cellular);
MP-DASH leaves most chunks cellular-free; and the duration-based setting
pays more cellular than rate-based on larger-than-average chunks, because
it budgets every chunk the same window regardless of size.
"""

import pytest

from repro.analysis.visualize import chunk_timeline
from repro.experiments import SessionConfig, run_session
from repro.net.link import CELLULAR
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps

VIDEO_SECONDS = 300.0


def make_config(scheme):
    wifi = BandwidthTrace.gaussian(mbps(3.8), 0.05, 120.0, 0.5, seed=42)
    lte = BandwidthTrace.gaussian(mbps(3.0), 0.05, 120.0, 0.5, seed=43)
    config = SessionConfig(video="big_buck_bunny", abr="festive",
                           wifi_trace=wifi, lte_trace=lte,
                           wifi_mbps=None, lte_mbps=None,
                           video_duration=VIDEO_SECONDS)
    return config.with_scheme(scheme)


def run_all():
    return {scheme: run_session(make_config(scheme))
            for scheme in ("baseline", "rate", "duration")}


@pytest.mark.benchmark(group="fig08")
def test_fig08_chunk_visualization(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    panels = []
    for scheme, result in results.items():
        strip = chunk_timeline(result.analyzer.chunk_views(), width=120)
        m = result.metrics
        panels.append(f"[{scheme}] cellular {m.cellular_bytes / 1e6:.1f}MB "
                      f"({m.cellular_fraction * 100:.1f}%)\n{strip}")
    emit("fig08_analysis_tool", "\n\n".join(panels))

    baseline = results["baseline"]
    rate = results["rate"]
    duration = results["duration"]

    def mean_cellular_fraction(result):
        views = result.analyzer.chunk_views()
        steady = views[len(views) // 5:]
        return sum(v.cellular_fraction for v in steady) / len(steady)

    # Default MPTCP blackens a large share of every chunk; under MP-DASH
    # the black (cellular) share collapses to a small top-up.
    assert mean_cellular_fraction(baseline) > 0.3
    assert mean_cellular_fraction(rate) < \
        0.35 * mean_cellular_fraction(baseline)
    assert mean_cellular_fraction(duration) < \
        0.35 * mean_cellular_fraction(baseline)

    # "MP-DASH eliminates most of the idle gaps appearing in the default
    # MPTCP case": the network stays busy longer (chunks stretch toward
    # their deadlines on the cheap path).
    def idle_time(result):
        return sum(g.duration for g in result.analyzer.idle_gaps(0.5))

    assert idle_time(rate) < idle_time(baseline)

    # Duration-based pays more cellular than rate-based on big chunks:
    # compare the cellular share of above-average-size chunks.
    def big_chunk_cellular(result):
        chunks = result.player.log.chunks
        steady = chunks[len(chunks) // 5:]
        mean_size = sum(c.size for c in steady) / len(steady)
        big = [c for c in steady if c.size > 1.1 * mean_size]
        total = sum(sum(c.bytes_per_path.values()) for c in big)
        cell = sum(c.bytes_per_path.get(CELLULAR, 0.0) for c in big)
        return cell / total if total else 0.0

    assert big_chunk_cellular(duration) >= big_chunk_cellular(rate) - 0.01
