"""Table 6: HD video (Tears of Steel HD, 10 Mbps top bitrate).

§7.3.5's stress case: even WiFi+LTE combined cannot sustain the 10 Mbps
top level, so the video plays mostly at levels 3 & 4 — exactly where
BBA-C's capacity cap matters.  At the paper's supermarket-like location,
MP-DASH still saved ~40% (FESTIVE) and ~37% (BBA-C vs unmodified BBA) of
cellular data; FESTIVE's playback bitrate counter-intuitively *increased*
under MP-DASH (transport-layer estimation beats application-layer).
"""

import pytest

from repro.experiments import (BASELINE, RATE, SessionConfig, run_schemes,
                               run_session)
from repro.experiments.tables import format_table, pct
from repro.net.trace import BandwidthTrace
from repro.net.units import mbps

VIDEO_SECONDS = 300.0


def supermarket_config(abr):
    # Aggregate ~7 Mbps: below the 10 Mbps top level, around levels 3-4.
    wifi = BandwidthTrace.random_walk(mbps(4.2), 0.18, 700.0, 0.5, seed=88)
    lte = BandwidthTrace.random_walk(mbps(2.8), 0.12, 700.0, 0.5, seed=89)
    return SessionConfig(video="tears_of_steel_hd", abr=abr,
                         wifi_trace=wifi, lte_trace=lte,
                         wifi_mbps=None, lte_mbps=None,
                         video_duration=VIDEO_SECONDS)


def run_all():
    festive = run_schemes(supermarket_config("festive"),
                          schemes=(BASELINE, RATE))
    bba_baseline = run_session(
        supermarket_config("bba").with_scheme(BASELINE))
    bba_c = run_session(supermarket_config("bba-c").with_scheme(RATE))
    return festive, bba_baseline, bba_c


@pytest.mark.benchmark(group="table6")
def test_table6_hd_video(benchmark, emit):
    festive, bba_baseline, bba_c = benchmark.pedantic(run_all, rounds=1,
                                                      iterations=1)
    fest_base = festive.baseline.metrics
    fest_rate = festive.results[RATE].metrics
    bba_m = bba_baseline.metrics
    bba_c_m = bba_c.metrics

    fest_cell_saving = 1 - fest_rate.cellular_bytes / fest_base.cellular_bytes
    bba_c_cell_saving = 1 - bba_c_m.cellular_bytes / bba_m.cellular_bytes
    fest_bitrate_delta = (fest_rate.mean_bitrate / fest_base.mean_bitrate
                          - 1.0)
    bba_c_bitrate_delta = bba_c_m.mean_bitrate / bba_m.mean_bitrate - 1.0

    rows = [
        ["festive baseline", fest_base.cellular_bytes / 1e6,
         fest_base.mean_bitrate_mbps, fest_base.radio_energy,
         fest_base.stall_count],
        ["festive mp-dash", fest_rate.cellular_bytes / 1e6,
         fest_rate.mean_bitrate_mbps, fest_rate.radio_energy,
         fest_rate.stall_count],
        ["bba baseline", bba_m.cellular_bytes / 1e6,
         bba_m.mean_bitrate_mbps, bba_m.radio_energy, bba_m.stall_count],
        ["bba-c mp-dash", bba_c_m.cellular_bytes / 1e6,
         bba_c_m.mean_bitrate_mbps, bba_c_m.radio_energy,
         bba_c_m.stall_count],
    ]
    table = format_table(
        ["config", "cell MB", "bitrate Mbps", "energy J", "stalls"], rows,
        title="Table 6: Tears of Steel HD at a supermarket-like location")
    summary = (f"\nFESTIVE: cellular saving {pct(fest_cell_saving)} "
               f"(paper 39.9%), bitrate change "
               f"{pct(fest_bitrate_delta)} (paper +20.9%)\n"
               f"BBA-C vs BBA: cellular saving {pct(bba_c_cell_saving)} "
               f"(paper 37.5%), bitrate change {pct(bba_c_bitrate_delta)} "
               f"(paper -3.0%)")
    emit("table6_hd", table + summary)

    # The top 10 Mbps level is out of reach: playback sits in the middle
    # of the ladder.
    assert fest_base.mean_bitrate_mbps < 8.0
    # MP-DASH still yields substantial cellular savings.
    assert fest_cell_saving > 0.25
    assert bba_c_cell_saving > 0.25
    # BBA-C's cap keeps the bitrate within a few percent of BBA's while
    # saving cellular data (the paper saw -3.0%).
    assert abs(bba_c_bitrate_delta) < 0.15
    # No stalls anywhere.
    assert fest_rate.stall_count == 0
    assert bba_c_m.stall_count == 0
