"""Figure 11 + §7.3.4: MP-DASH under mobility.

Walking a loop around the WiFi AP while streaming with FESTIVE: WiFi
throughput swings between ~5 Mbps and near zero each loop, LTE holds
around 5 Mbps.  The paper's observations: MP-DASH taps cellular only when
the WiFi throughput drops on the far side of the loop; default MPTCP
drives cellular at full blast regardless; WiFi-only cannot sustain the top
bitrate for more than half the chunks.  Reported savings: 81% cellular
data and 47% radio energy with no bitrate reduction.
"""

import pytest

from repro.analysis.visualize import throughput_plot
from repro.experiments import SessionConfig, run_session
from repro.workloads import MobilityScenario

VIDEO_SECONDS = 300.0


def run_all():
    scenario = MobilityScenario()
    horizon = VIDEO_SECONDS * 2 + 200
    results = {}
    for label, mpdash, wifi_only in (("mp-dash", True, False),
                                     ("default", False, False),
                                     ("wifi-only", False, True)):
        wifi, *rest = (scenario.paths(horizon) if not wifi_only
                       else scenario.wifi_only_paths(horizon))
        config = SessionConfig(
            video="big_buck_bunny", abr="festive", mpdash=mpdash,
            deadline_mode="rate", wifi_trace=wifi.trace,
            lte_trace=rest[0].trace if rest else None,
            wifi_mbps=None, lte_mbps=None if rest else None,
            wifi_rtt_ms=scenario.wifi_rtt_ms,
            lte_rtt_ms=scenario.lte_rtt_ms,
            wifi_only=wifi_only, video_duration=VIDEO_SECONDS)
        results[label] = run_session(config)
    return results


@pytest.mark.benchmark(group="fig11")
def test_fig11_mobility(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    panels = []
    for label, result in results.items():
        analyzer = result.analyzer
        start = int(60.0 / analyzer.activity.bin_width)
        end = int(180.0 / analyzer.activity.bin_width)
        series = [("WiFi",
                   analyzer.throughput_timeline("wifi", until=180.0)[1]
                   [start:end])]
        if "cellular" in analyzer.activity.paths():
            series.append(
                ("LTE",
                 analyzer.throughput_timeline("cellular", until=180.0)[1]
                 [start:end]))
        m = result.metrics
        panels.append(
            f"[{label}] cellular {m.cellular_bytes / 1e6:.1f}MB, "
            f"energy {m.radio_energy:.0f}J, "
            f"bitrate {m.mean_bitrate_mbps:.2f}Mbps, "
            f"stalls {m.stall_count}\n"
            + throughput_plot(series, interval=analyzer.activity.bin_width))
    emit("fig11_mobility", "\n\n".join(panels))

    mpdash = results["mp-dash"].metrics
    default = results["default"].metrics
    wifi_only = results["wifi-only"].metrics

    cell_saving = 1 - mpdash.cellular_bytes / default.cellular_bytes
    assert cell_saving > 0.4, cell_saving
    assert mpdash.radio_energy < default.radio_energy
    # QoE holds: MP-DASH stays within a few percent of the default's
    # playback bitrate (the paper reports no reduction; our conservative
    # slow-start model under-estimates cellular bursts slightly, costing a
    # handful of one-level-down chunks in the deepest troughs).
    assert mpdash.mean_bitrate >= 0.90 * default.mean_bitrate
    assert mpdash.stall_count == 0
    # ...while WiFi alone cannot sustain it for a large share of chunks.
    top = max(c.level for c in results["default"].player.log.chunks)
    below = sum(1 for c in results["wifi-only"].player.log.chunks
                if c.level < top)
    assert below / len(results["wifi-only"].player.log.chunks) > 0.3
