"""Table 2: the online scheduler vs the offline optimum, trace-driven.

§7.2.2's methodology reproduced end to end: five bandwidth profiles
(Table 1), slot length of one RTT (50 ms), Holt-Winters prediction for the
online algorithm (α=1), and the perfect-knowledge oracle for the optimal
column.  The paper's findings to preserve: (1) the online algorithm is
conservative — estimation error shows up as extra cellular data, not
missed deadlines; (2) the extra cellular usage stays under ~10% of the
transfer; (3) longer deadlines mean lower cellular fractions.
"""

import pytest

from repro.core import simulate_online, simulate_oracle
from repro.experiments.tables import format_table, pct
from repro.workloads import table1_profiles

SLOT = 0.05


def run_table():
    rows = []
    for name, profile in table1_profiles().items():
        for deadline in profile.deadlines:
            wifi, cell = profile.slot_series(SLOT, deadline * 4 + 30)
            oracle = simulate_oracle(wifi, cell, SLOT, profile.file_size,
                                     deadline)
            online = simulate_online(wifi, cell, SLOT, profile.file_size,
                                     deadline)
            rows.append({
                "profile": name,
                "deadline": deadline,
                "optimal": oracle.fraction_on("cellular"),
                "online": online.fraction_on("cellular"),
                "diff": (online.fraction_on("cellular")
                         - oracle.fraction_on("cellular")),
                "miss": online.missed,
                "miss_by": online.miss_by,
            })
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_online_vs_optimal(benchmark, emit):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    table = format_table(
        ["profile", "D/L s", "Cell% optimal", "Cell% online", "diff",
         "miss?"],
        [[r["profile"], r["deadline"], pct(r["optimal"]),
          pct(r["online"]), pct(r["diff"]),
          f"{r['miss_by'] * 1000:.0f}ms" if r["miss"] else "No"]
         for r in rows],
        title="Table 2: online MP-DASH vs offline optimal (trace-driven)")
    emit("table2_online_vs_optimal", table)

    misses = [r for r in rows if r["miss"]]
    # Paper: at most one marginal miss (10 ms) across the whole grid.
    assert len(misses) <= 1
    if misses:
        assert misses[0]["miss_by"] < 0.2

    # Conservatism: online uses at least as much cellular as optimal, and
    # the difference stays small (paper: < 10% of the transfer; our
    # synthetic stand-in traces are somewhat more volatile than the
    # authors' captures, so the per-row bound is looser while the mean
    # stays paper-scale).
    for r in rows:
        assert r["diff"] >= -0.02, r
        assert r["diff"] <= 0.25, r
    mean_diff = sum(r["diff"] for r in rows) / len(rows)
    assert mean_diff <= 0.10

    # Longer deadlines monotonically reduce the optimal cellular fraction.
    by_profile = {}
    for r in rows:
        by_profile.setdefault(r["profile"], []).append(r)
    for profile_rows in by_profile.values():
        fractions = [r["optimal"] for r in profile_rows]
        assert fractions == sorted(fractions, reverse=True)
