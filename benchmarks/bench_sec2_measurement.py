"""§2.2 measurement study: can WiFi alone stream the top bitrate?

Reproduces the motivating field measurement: at each of the 33 locations,
classify whether WiFi alone (1) never, (2) sometimes, or (3) almost always
sustains the highest 1080p bitrate (3.94 Mbps), and verify that the
combined WiFi+LTE capacity sustains it everywhere.  The paper reports a
64% / 15% / 21% split and MPTCP sufficing at all locations.
"""

import pytest

from repro.experiments.tables import format_table, pct
from repro.net.units import mbps
from repro.workloads import TOP_BITRATE_MBPS, field_study_locations

WINDOW = 4.0  # one chunk duration
HORIZON = 600.0


def classify(location):
    """Fraction of chunk-length windows whose mean WiFi bandwidth covers
    the top bitrate, and the derived scenario."""
    trace = location.wifi_trace(HORIZON + WINDOW)
    target = mbps(TOP_BITRATE_MBPS)
    covered = 0
    windows = int(HORIZON / WINDOW)
    for i in range(windows):
        samples = [trace.bandwidth_at(i * WINDOW + o)
                   for o in (0.5, 1.5, 2.5, 3.5)]
        if sum(samples) / len(samples) >= target:
            covered += 1
    fraction = covered / windows
    if fraction < 0.10:
        scenario = 1
    elif fraction < 0.90:
        scenario = 2
    else:
        scenario = 3
    return fraction, scenario


def mptcp_sufficient(location):
    wifi = location.wifi_trace(HORIZON)
    lte = location.lte_trace(HORIZON)
    target = mbps(TOP_BITRATE_MBPS)
    samples = [wifi.bandwidth_at(t) + lte.bandwidth_at(t)
               for t in range(0, int(HORIZON), 2)]
    # "Sustain at all locations": combined capacity covers the top bitrate
    # on average and in nearly every sample.
    mean_ok = sum(samples) / len(samples) >= target
    stable_ok = sum(1 for s in samples if s >= target) / len(samples) >= 0.95
    return mean_ok and stable_ok


def run_study():
    rows = []
    derived_counts = {1: 0, 2: 0, 3: 0}
    mptcp_ok = 0
    for location in field_study_locations():
        fraction, derived = classify(location)
        derived_counts[derived] += 1
        sufficient = mptcp_sufficient(location)
        mptcp_ok += int(sufficient)
        rows.append([location.name, location.wifi_mbps, location.lte_mbps,
                     pct(fraction), derived, location.scenario,
                     "yes" if sufficient else "NO"])
    return rows, derived_counts, mptcp_ok


@pytest.mark.benchmark(group="sec2")
def test_sec2_wifi_scenarios(benchmark, emit):
    rows, counts, mptcp_ok = benchmark.pedantic(run_study, rounds=1,
                                                iterations=1)
    total = sum(counts.values())
    table = format_table(
        ["location", "wifi_mbps", "lte_mbps", "top-rate windows",
         "derived", "catalog", "mptcp ok"],
        rows, title="Sec 2.2: per-location WiFi sufficiency")
    summary = (f"\nderived split: scenario1={counts[1]}/{total} "
               f"({pct(counts[1] / total)}), "
               f"scenario2={counts[2]}/{total} ({pct(counts[2] / total)}), "
               f"scenario3={counts[3]}/{total} ({pct(counts[3] / total)})\n"
               f"paper:          64% / 15% / 21%\n"
               f"MPTCP sustains top bitrate at {mptcp_ok}/{total} locations "
               f"(paper: all)")
    emit("sec2_measurement", table + summary)

    # Shape assertions: the derived split matches the catalog split within
    # a couple of locations, and MPTCP suffices (nearly) everywhere.
    assert abs(counts[1] - 21) <= 3
    assert abs(counts[3] - 7) <= 3
    assert mptcp_ok >= 31
