"""Cross-validation: fluid transport vs packet-granularity transport.

Not a paper table — a soundness check for the reproduction itself.  The
Figure-4 grid (5 MB download, WiFi 3.8 / LTE 3.0, deadlines 8/9/10 s plus
the unscheduled baseline) is executed by both transport models; the
quantities every headline result rests on — per-path byte split, deadline
verdicts, the monotone deadline/cellular trade — must agree.
"""

import pytest

from repro.experiments import FileDownloadConfig, run_file_download
from repro.experiments.tables import format_table, pct
from repro.mptcp.packet_level import run_packet_download
from repro.net.link import cellular_path, wifi_path
from repro.net.units import megabytes

SIZE = megabytes(5)


def fresh_paths():
    return [wifi_path(bandwidth_mbps=3.8), cellular_path(bandwidth_mbps=3.0)]


def run_grid():
    rows = []
    for deadline in (None, 8.0, 9.0, 10.0):
        packet = run_packet_download(fresh_paths(), SIZE, deadline=deadline)
        fluid = run_file_download(FileDownloadConfig(
            size=SIZE, deadline=deadline if deadline else 10.0,
            mpdash=deadline is not None, wifi_mbps=3.8, lte_mbps=3.0))
        rows.append({
            "deadline": deadline,
            "packet": packet,
            "fluid": fluid,
        })
    return rows


@pytest.mark.benchmark(group="validation")
def test_fluid_vs_packet_transport(benchmark, emit):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = format_table(
        ["deadline", "model", "duration s", "cell MB", "cell %", "met?"],
        [entry for row in rows for entry in (
            [str(row["deadline"] or "bulk"), "packet",
             row["packet"].duration,
             row["packet"].bytes_per_path["cellular"] / 1e6,
             pct(row["packet"].fraction_on("cellular")),
             "MISS" if row["packet"].missed_deadline else "ok"],
            [str(row["deadline"] or "bulk"), "fluid",
             row["fluid"].duration,
             row["fluid"].cellular_bytes / 1e6,
             pct(row["fluid"].cellular_fraction),
             "MISS" if row["fluid"].missed_deadline else "ok"],
        )],
        title="Transport cross-validation (5MB, W3.8/L3.0)")
    emit("validation_transport", table)

    bulk = rows[0]
    # Unscheduled split agrees closely (the capacity ratio dominates).
    assert bulk["packet"].fraction_on("cellular") == pytest.approx(
        bulk["fluid"].cellular_fraction, abs=0.05)
    # Fluid is the loss-free lower bound on duration.
    assert bulk["fluid"].duration <= bulk["packet"].duration \
        <= bulk["fluid"].duration * 1.35

    cellular_by_deadline = []
    for row in rows[1:]:
        assert row["packet"].missed_deadline == \
            row["fluid"].missed_deadline == False  # noqa: E712
        cellular_by_deadline.append(
            row["packet"].bytes_per_path["cellular"])
        # Both models save vs their bulk runs (the tightest deadline, 8 s,
        # barely has slack, so the bound is soft there).
        assert row["packet"].bytes_per_path["cellular"] < \
            0.9 * bulk["packet"].bytes_per_path["cellular"]
    # The deadline/cellular trade is monotone in both models.
    assert cellular_by_deadline == sorted(cellular_by_deadline,
                                          reverse=True)
