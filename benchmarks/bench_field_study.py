"""Figures 9 & 10 and Table 5: the 33-location field study (§7.3.3).

At every location in the catalog, stream the Big Buck Bunny video with
FESTIVE and BBA under vanilla MPTCP and MP-DASH (rate- and duration-based
deadlines), then aggregate:

* Figure 9 — CDF of cellular-data savings.  Paper quartiles: 48% / 59% /
  82%, with FESTIVE saving more than BBA.
* Figure 10 — CDF of playback-bitrate reduction.  Paper: no reduction for
  ~83% of experiments; mean reduction of the rest only 2.5%.
* Table 5 — per-location savings for the seven named locations, showing
  savings grow with WiFi throughput.

Sessions are shortened from the paper's 10 minutes unless REPRO_FULL=1;
the aggregate statistics are insensitive to the cut.
"""

import pytest

from conftest import full_runs

from repro.analysis.cdf import fraction_at_most, quartile_summary
from repro.experiments import (BASELINE, DURATION, RATE, SessionConfig,
                               run_schemes)
from repro.experiments.tables import format_table, pct
from repro.workloads import TABLE5_LOCATIONS, field_study_locations

ALGORITHMS = ("festive", "bba")


def location_config(location, abr, video_seconds):
    wifi, lte = location.paths(duration=2 * video_seconds + 200)
    return SessionConfig(video="big_buck_bunny", abr=abr,
                         wifi_trace=wifi.trace, lte_trace=lte.trace,
                         wifi_mbps=None, lte_mbps=None,
                         wifi_rtt_ms=location.wifi_rtt_ms,
                         lte_rtt_ms=location.lte_rtt_ms,
                         video_duration=video_seconds,
                         tick_interval=0.025)


def run_study():
    video_seconds = 600.0 if full_runs() else 240.0
    records = []
    for location in field_study_locations():
        for abr in ALGORITHMS:
            comparison = run_schemes(
                location_config(location, abr, video_seconds))
            for scheme in (RATE, DURATION):
                records.append({
                    "location": location.name,
                    "scenario": location.scenario,
                    "abr": abr,
                    "scheme": scheme,
                    "cell_saving": comparison.cellular_savings(scheme),
                    "energy_saving": comparison.energy_savings(scheme),
                    "lte_energy_saving":
                        comparison.cellular_energy_savings(scheme),
                    "bitrate_reduction":
                        comparison.bitrate_reduction(scheme),
                    "stalls": comparison.stalls(scheme),
                })
    return records


@pytest.mark.benchmark(group="field")
def test_field_study(benchmark, emit):
    records = benchmark.pedantic(run_study, rounds=1, iterations=1)

    savings = [r["cell_saving"] for r in records]
    q25, q50, q75 = quartile_summary(savings)
    reductions = [r["bitrate_reduction"] for r in records]
    no_reduction = fraction_at_most(reductions, 0.005)
    nonzero = [r for r in reductions if r > 0.005]
    mean_reduction = sum(nonzero) / len(nonzero) if nonzero else 0.0

    lines = [
        "Figure 9 (cellular savings CDF):",
        f"  quartiles 25/50/75: {pct(q25)} / {pct(q50)} / {pct(q75)}"
        f"   (paper: 48% / 59% / 82%)",
        "",
        "Figure 10 (bitrate reduction):",
        f"  experiments with no reduction: {pct(no_reduction)} "
        f"(paper: 82.65%)",
        f"  mean reduction among the rest: {pct(mean_reduction)} "
        f"(paper: 2.5%)",
        "",
    ]

    per_abr = {}
    for r in records:
        per_abr.setdefault(r["abr"], []).append(r["cell_saving"])
    for abr, values in per_abr.items():
        lines.append(f"  median cellular saving, {abr}: "
                     f"{pct(sorted(values)[len(values) // 2])}")

    named = {loc.name for loc in TABLE5_LOCATIONS}
    rows = []
    for r in records:
        if r["location"] in named:
            rows.append([r["location"], r["abr"], r["scheme"],
                         pct(r["cell_saving"]),
                         pct(r["lte_energy_saving"]),
                         pct(r["bitrate_reduction"]), r["stalls"]])
    table = format_table(
        ["location", "abr", "scheme", "cell saved", "LTE-energy saved",
         "bitrate loss", "stalls"],
        rows, title="Table 5 (named locations)")
    emit("field_study", "\n".join(lines) + "\n" + table)

    # Figure 9 shape: strong savings with the paper's ordering.
    assert q50 > 0.45
    assert q75 > 0.70
    assert q25 > 0.25
    festive_median = sorted(per_abr["festive"])[
        len(per_abr["festive"]) // 2]
    bba_median = sorted(per_abr["bba"])[len(per_abr["bba"]) // 2]
    assert festive_median >= bba_median - 0.05

    # Figure 10 shape: bitrate essentially untouched.
    assert no_reduction > 0.6
    assert mean_reduction < 0.08

    # QoE: no stalls anywhere.
    assert all(r["stalls"] == 0 for r in records)

    # Table 5 trend: scenario-3 locations (ample WiFi) save the most.
    by_scenario = {}
    for r in records:
        by_scenario.setdefault(r["scenario"], []).append(r["cell_saving"])
    mean = {s: sum(v) / len(v) for s, v in by_scenario.items()}
    assert mean[3] > mean[1]
    assert mean[3] > 0.9
