"""Ablations of MP-DASH's design choices.

The paper discusses several knobs without sweeping all of them; these
benches quantify each one on the reproduction:

* **α** (Algorithm 1's safety factor) — smaller α finishes earlier and
  spends more cellular data (§7.2.1 evaluates α=0.8).
* **Deadline extension** (Φ) — disabling it forfeits a large share of the
  savings; sweeping Φ trades cellular bytes against slack.
* **Signaling latency** — the reserved-DSS-bit design costs one RTT per
  decision; this sweep shows the scheduler tolerates even exaggerated
  delays.
* **Throughput estimator** — Holt-Winters vs EWMA in the trace-driven
  scheduler (§6 motivates HW's trend term).
* **Offline solvers** — the DP optimum vs the sort-by-cost greedy
  heuristic of the N-path generalization.
"""

import numpy as np
import pytest

from repro.core import simulate_online, solve_greedy, solve_offline
from repro.estimators import Ewma
from repro.experiments import (FileDownloadConfig, SessionConfig,
                               run_file_download, run_schemes, run_session)
from repro.experiments.tables import format_table, pct
from repro.net.units import mbps, megabytes
from repro.workloads import fast_food_profile

VIDEO_SECONDS = 240.0


def streaming_config(**overrides):
    base = dict(video="big_buck_bunny", abr="festive", mpdash=True,
                deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
                video_duration=VIDEO_SECONDS)
    base.update(overrides)
    return SessionConfig(**base)


@pytest.mark.benchmark(group="ablation")
def test_ablation_alpha_sweep(benchmark, emit):
    def run():
        return {alpha: run_file_download(FileDownloadConfig(
            size=megabytes(5), deadline=10.0, alpha=alpha,
            wifi_mbps=3.8, lte_mbps=3.0))
            for alpha in (0.6, 0.8, 1.0)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[alpha, r.cellular_bytes / 1e6, r.duration,
             "MISS" if r.missed_deadline else "ok"]
            for alpha, r in results.items()]
    emit("ablation_alpha", format_table(
        ["alpha", "LTE MB", "finish s", "deadline"], rows,
        title="Ablation: alpha (5MB, D=10s, W3.8/L3.0)"))

    cellular = [results[a].cellular_bytes for a in (0.6, 0.8, 1.0)]
    finishes = [results[a].duration for a in (0.6, 0.8, 1.0)]
    # Smaller alpha: earlier finish, more cellular.
    assert cellular == sorted(cellular, reverse=True)
    assert finishes == sorted(finishes)
    assert not any(r.missed_deadline for r in results.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_deadline_extension(benchmark, emit):
    """Extension matters on *fluctuating* links: buffer headroom above Φ
    absorbs WiFi dips that would otherwise trigger cellular top-ups.  (On
    perfectly constant links the buffer equilibrates exactly at Φ and the
    extension is a no-op — a corner worth knowing about.)"""
    from repro.net.trace import BandwidthTrace

    def fluctuating(**overrides):
        wifi = BandwidthTrace.gaussian(mbps(3.8), 0.25, 120.0, 0.5, seed=7)
        lte = BandwidthTrace.gaussian(mbps(3.0), 0.15, 120.0, 0.5, seed=8)
        return streaming_config(wifi_trace=wifi, lte_trace=lte,
                                wifi_mbps=None, lte_mbps=None, **overrides)

    def run():
        out = {"extension-on": run_session(fluctuating()),
               "extension-off": run_session(
                   fluctuating(extension_enabled=False))}
        for phi in (0.6, 0.9):
            out[f"phi={phi:.1f}"] = run_session(
                fluctuating(phi_fraction=phi))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, r.metrics.cellular_bytes / 1e6, r.metrics.radio_energy,
             r.metrics.stall_count] for name, r in results.items()]
    emit("ablation_extension", format_table(
        ["config", "LTE MB", "energy J", "stalls"], rows,
        title="Ablation: deadline extension and the phi threshold"))

    # Extension saves cellular data; a lower phi extends more and saves
    # more; nothing stalls.
    assert results["extension-on"].metrics.cellular_bytes < \
        results["extension-off"].metrics.cellular_bytes
    assert results["phi=0.6"].metrics.cellular_bytes <= \
        results["phi=0.9"].metrics.cellular_bytes + 1e5
    assert all(r.metrics.stall_count == 0 for r in results.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_signaling_latency(benchmark, emit):
    def run():
        return {delay: run_session(streaming_config(signaling_delay=delay))
                for delay in (0.0, 0.05, 0.2)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{delay * 1000:.0f}ms", r.metrics.cellular_bytes / 1e6,
             r.metrics.stall_count,
             r.socket.scheduler.deadline_misses]
            for delay, r in results.items()]
    emit("ablation_signaling", format_table(
        ["DSS delay", "LTE MB", "stalls", "deadline misses"], rows,
        title="Ablation: decision signaling latency"))

    for r in results.values():
        assert r.metrics.stall_count == 0
        assert r.socket.scheduler.deadline_misses == 0
    # Instant signaling is a mild lower bound on cellular usage.
    assert results[0.0].metrics.cellular_bytes <= \
        results[0.2].metrics.cellular_bytes * 1.2 + 1e5


@pytest.mark.benchmark(group="ablation")
def test_ablation_estimator_choice(benchmark, emit):
    profile = fast_food_profile()
    slot = 0.05

    def run():
        wifi, cell = profile.slot_series(slot, 120.0)
        out = {}
        for name, factory in (("holt-winters", None),
                              ("ewma", lambda: Ewma(alpha=0.25))):
            out[name] = {
                deadline: simulate_online(
                    wifi, cell, slot, profile.file_size, deadline,
                    estimator_factory=factory)
                for deadline in profile.deadlines
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, per_deadline in results.items():
        for deadline, r in per_deadline.items():
            rows.append([name, deadline, pct(r.fraction_on("cellular")),
                         "MISS" if r.missed else "ok"])
    emit("ablation_estimator", format_table(
        ["estimator", "deadline", "cell %", "met?"], rows,
        title="Ablation: Holt-Winters vs EWMA (FastFood trace)"))

    # Both meet deadlines on this trace; neither blows up.
    for per_deadline in results.values():
        assert not any(r.missed for r in per_deadline.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_subflow_reestablish(benchmark, emit):
    """§6 design choice: skip the disabled subflow in the scheduler (MP-DASH)
    vs tearing it down and re-adding it (handshake + congestion restart per
    re-enable).  Skip semantics should match or beat teardown on cellular
    usage and never miss deadlines."""

    def run():
        return {
            "skip (mp-dash)": run_session(streaming_config()),
            "teardown/re-add": run_session(
                streaming_config(subflow_reestablish=True)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        reconnects = result.connection.subflow("cellular").reconnects
        rows.append([name, result.metrics.cellular_bytes / 1e6,
                     result.metrics.stall_count,
                     result.socket.scheduler.deadline_misses, reconnects])
    emit("ablation_reestablish", format_table(
        ["semantics", "LTE MB", "stalls", "deadline misses", "reconnects"],
        rows, title="Ablation: skip-in-scheduler vs subflow re-establish"))

    skip = results["skip (mp-dash)"]
    teardown = results["teardown/re-add"]
    assert skip.metrics.stall_count == 0
    assert teardown.metrics.stall_count == 0
    assert teardown.connection.subflow("cellular").reconnects > 0
    assert skip.connection.subflow("cellular").reconnects == 0


@pytest.mark.benchmark(group="ablation")
def test_ablation_offline_solvers(benchmark, emit):
    rng = np.random.default_rng(5)
    bandwidths = {"wifi": list(rng.uniform(mbps(2.0), mbps(6.0), 100)),
                  "cellular": list(rng.uniform(mbps(2.0), mbps(4.0), 100))}
    costs = {"wifi": 0.0, "cellular": 1.0}
    # 100 slots of 0.1 s at ~4 + ~3 Mbps hold ~8.7 MB; demand most of it
    # so the cellular tier is genuinely needed.
    size = megabytes(6)

    def run():
        dp = solve_offline(bandwidths, costs, 0.1, size)
        greedy = solve_greedy(bandwidths, costs, 0.1, size)
        return dp, greedy

    dp, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_offline", format_table(
        ["solver", "cost (cell MB)", "covers size"],
        [["dynamic programming", dp.cost / 1e6, dp.total_bytes >= size],
         ["greedy (cost-sorted)", greedy.cost / 1e6,
          greedy.total_bytes >= size]],
        title="Ablation: offline DP vs greedy heuristic"))

    assert dp.feasible and greedy.feasible
    # DP is optimal up to discretization; greedy may only be worse.
    resolution = size / 4000.0
    assert dp.cost <= greedy.cost + resolution * len(dp.selected)
