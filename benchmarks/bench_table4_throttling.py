"""Table 4 + Figure 6: cellular throughput throttling vs MP-DASH.

The §7.3.1 alternative: instead of deadline-aware scheduling, just cap the
cellular path (Dummynet at 700 kbps / 1000 kbps).  The paper shows
throttling does cut cellular bytes but pays for it twice — lower-quality
chunks (>22% of chunks below the top level at tight caps) and *higher*
radio energy, because the LTE radio "dribbles" for the whole session.
MP-DASH beats every configuration on both cellular bytes and energy.
Figure 6 is the traffic-pattern visualization of the same three runs.
"""

import pytest

from repro.analysis.visualize import throughput_plot
from repro.experiments import SessionConfig, run_session
from repro.experiments.tables import format_table, pct
from repro.net.units import kbps

VIDEO_SECONDS = 300.0


def run_all():
    results = {}
    base = dict(video="big_buck_bunny", abr="gpac",
                wifi_mbps=3.8, lte_mbps=3.0, video_duration=VIDEO_SECONDS)
    results["default"] = run_session(SessionConfig(mpdash=False, **base))
    results["throttle700k"] = run_session(SessionConfig(
        mpdash=False, lte_throttle=kbps(700), **base))
    results["throttle1000k"] = run_session(SessionConfig(
        mpdash=False, lte_throttle=kbps(1000), **base))
    results["mp-dash"] = run_session(SessionConfig(
        mpdash=True, deadline_mode="rate", **base))
    return results


@pytest.mark.benchmark(group="table4")
def test_table4_throttling_vs_mpdash(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        m = result.metrics
        top = max(c.level for c in result.player.log.chunks)
        below_top = sum(1 for c in result.player.log.chunks
                        if c.level < top) / len(result.player.log.chunks)
        rows.append([name, m.cellular_bytes / 1e6,
                     pct(m.cellular_fraction), m.radio_energy,
                     pct(below_top), m.stall_count])
    table = format_table(
        ["config", "cell MB", "cell %", "energy J", "chunks<top", "stalls"],
        rows, title="Table 4: throttling vs MP-DASH (GPAC, W3.8/L3.0)")

    # Figure 6: traffic patterns of throttle-700k, MP-DASH, and default.
    window = 60.0
    panels = []
    for name in ("throttle700k", "mp-dash", "default"):
        analyzer = results[name].analyzer
        start = int(120.0 / analyzer.activity.bin_width)
        end = int((120.0 + window) / analyzer.activity.bin_width)
        _t, wifi = analyzer.throughput_timeline("wifi", until=240.0)
        _t, lte = analyzer.throughput_timeline("cellular", until=240.0)
        panels.append(name + ":\n" + throughput_plot(
            [("WiFi", wifi[start:end]), ("LTE", lte[start:end])],
            interval=analyzer.activity.bin_width))
    emit("table4_fig6_throttling", table + "\n\nFigure 6 patterns:\n"
         + "\n\n".join(panels))

    default = results["default"].metrics
    mpdash = results["mp-dash"].metrics
    for cap in ("throttle700k", "throttle1000k"):
        throttled = results[cap].metrics
        # Throttling cuts cellular bytes vs default...
        assert throttled.cellular_bytes < default.cellular_bytes
        # ...but pays a radio-energy penalty (the dribbling effect).
        assert throttled.radio_energy > default.radio_energy
        # MP-DASH dominates it on both axes.
        assert mpdash.cellular_bytes < throttled.cellular_bytes
        assert mpdash.radio_energy < throttled.radio_energy
    assert mpdash.radio_energy < default.radio_energy
