"""Figure 3: bitrate oscillation of the original BBA algorithm.

When the network capacity R falls strictly between two ladder rungs
(r1 < R < r2), buffer-based adaptation oscillates: at r1 the buffer grows
until the map crosses r2, at r2 it drains back.  The paper plots this for
a capacity of ~3.4 Mbps between the 2.41 and 3.94 Mbps rungs, and fixes it
with BBA-C's throughput cap (§5.2.2).
"""

import pytest

from repro.experiments import SessionConfig, run_session


def run(abr):
    # W2.2/L1.2: MPTCP capacity ~3.4 Mbps sits between rungs 4 and 5.
    config = SessionConfig(video="big_buck_bunny", abr=abr, mpdash=False,
                           wifi_mbps=2.2, lte_mbps=1.2,
                           video_duration=400.0)
    return run_session(config)


def oscillations(levels):
    """Direction changes in the level series (an up-down-up counts two)."""
    changes = [b - a for a, b in zip(levels, levels[1:]) if b != a]
    flips = sum(1 for a, b in zip(changes, changes[1:]) if a * b < 0)
    return flips


@pytest.mark.benchmark(group="fig03")
def test_fig03_bba_oscillates_bba_c_does_not(benchmark, emit):
    bba = benchmark.pedantic(run, args=("bba",), rounds=1, iterations=1)
    bba_c = run("bba-c")

    bba_levels = [c.level + 1 for c in bba.player.log.chunks]
    bba_c_levels = [c.level + 1 for c in bba_c.player.log.chunks]
    steady = len(bba_levels) // 4  # skip startup ramp

    text = (
        "BBA   levels: " + "".join(str(l) for l in bba_levels) + "\n"
        "BBA-C levels: " + "".join(str(l) for l in bba_c_levels) + "\n\n"
        f"BBA   switches={bba.metrics.quality_switches} "
        f"oscillation flips={oscillations(bba_levels[steady:])} "
        f"mean bitrate={bba.metrics.mean_bitrate_mbps:.2f} Mbps\n"
        f"BBA-C switches={bba_c.metrics.quality_switches} "
        f"oscillation flips={oscillations(bba_c_levels[steady:])} "
        f"mean bitrate={bba_c.metrics.mean_bitrate_mbps:.2f} Mbps\n"
        "paper: BBA oscillates between levels 4 and 5; BBA-C locks level 4")
    emit("fig03_bba_oscillation", text)

    bba_flips = oscillations(bba_levels[steady:])
    bba_c_flips = oscillations(bba_c_levels[steady:])
    assert bba_flips >= 4, "BBA should oscillate between adjacent rungs"
    assert bba_c_flips <= bba_flips / 2, "BBA-C should suppress oscillation"
    # BBA's oscillation reaches the top rung; BBA-C stays at the
    # sustainable one.
    assert max(bba_levels[steady:]) == 5
    assert max(bba_c_levels[steady:]) <= 4
