"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs the
experiment inside pytest-benchmark (so the harness also tracks runtime),
prints the resulting rows/series, and persists them under
``benchmarks/results/`` so the output survives pytest's capture.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a labelled artifact and persist it to results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===")
        print(text)

    return _emit


def full_runs() -> bool:
    """Whether to run field-study benches at full paper scale.

    Set REPRO_FULL=1 for full 10-minute videos everywhere; the default
    uses shorter sessions that preserve every qualitative shape.
    """
    return os.environ.get("REPRO_FULL", "") == "1"
