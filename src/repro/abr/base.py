"""Rate-adaptation (ABR) algorithm interface.

DASH rate adaptation falls into two main categories (§5): throughput-based
(FESTIVE, GPAC) and buffer-based (BBA), plus hybrids (MPC).  Every
algorithm here implements one method — pick the quality level of the next
chunk — against a context snapshot of what a real player would know.

The ``override_throughput`` field is the MP-DASH cross-layer hook: a player
under MP-DASH may have its cellular path disabled, so its own throughput
measurement under-estimates the network.  The MP-DASH adapter fills the
override with the transport's aggregate estimate, and throughput-based
algorithms must prefer it (§5.2.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from ..dash.events import ChunkRecord
from ..dash.manifest import Manifest

#: Algorithm categories; the MP-DASH adapter dispatches its Φ/Ω rules on
#: these (§5.2).
THROUGHPUT_BASED = "throughput"
BUFFER_BASED = "buffer"
HYBRID = "hybrid"


@dataclass
class AbrContext:
    """What the player knows when choosing the next chunk's level."""

    manifest: Manifest
    buffer_level: float
    buffer_capacity: float
    next_chunk_index: int
    #: Level of the previously fetched chunk; None before the first chunk.
    current_level: Optional[int] = None
    #: The player's own throughput measurement (bytes/second; None before
    #: the first chunk completes).
    measured_throughput: Optional[float] = None
    #: Transport-level aggregate estimate injected by the MP-DASH adapter;
    #: overrides the player's own measurement when present.
    override_throughput: Optional[float] = None
    history: List[ChunkRecord] = field(default_factory=list)
    #: True until the player has begun steady-state playback.
    in_startup: bool = True

    def effective_throughput(self) -> Optional[float]:
        """The throughput a throughput-based algorithm should use."""
        if self.override_throughput is not None:
            return self.override_throughput
        return self.measured_throughput


class AbrAlgorithm(ABC):
    """Chooses the encoding level of each chunk."""

    #: Short name used in results tables.
    name: str = "abr"
    #: One of THROUGHPUT_BASED, BUFFER_BASED, HYBRID.
    category: str = THROUGHPUT_BASED

    def initial_level(self, manifest: Manifest) -> int:
        """Level for the very first chunk; conservative default: lowest."""
        return 0

    @abstractmethod
    def choose_level(self, ctx: AbrContext) -> int:
        """Level index for chunk ``ctx.next_chunk_index``."""

    def on_chunk_downloaded(self, record: ChunkRecord) -> None:
        """Hook for algorithms keeping internal state (e.g. FESTIVE)."""

    def reset(self) -> None:
        """Discard internal state (start of a new session)."""

    def _clamp(self, level: int, manifest: Manifest) -> int:
        return max(0, min(manifest.num_levels - 1, level))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
