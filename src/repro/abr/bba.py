"""Buffer-Based Adaptation — BBA-2 (Huang et al., SIGCOMM 2014).

BBA is the paper's representative *buffer-based* algorithm: the quality
level is a function of buffer occupancy alone, because at steady state the
buffer level implicitly encodes the relation between network capacity and
the selected bitrate.

The rate map ``f(B)`` is linear across a cushion between a lower
*reservoir* (below it: minimum rate — the buffer is too close to a stall)
and an upper knee (above it: maximum rate).  The chunk-by-chunk selection
uses the BBA hysteresis rule: stay at the current rate while ``f(B)`` sits
between the adjacent ladder rungs, jump only when it crosses one.

BBA-2's startup phase is reproduced in simplified form: while the buffer
map still outputs less than the current rate, the player steps up one level
whenever the previous chunk downloaded clearly faster than real time
(download time below ``startup_speedup × chunk duration``), and exits
startup once ``f(B)`` catches up with the chosen rate.

The known pathology the paper leans on (Figure 3): when the network
capacity ``R`` falls strictly between two ladder rungs r1 < R < r2, BBA
oscillates — at r1 the buffer grows until ``f(B)`` crosses r2, at r2 the
buffer drains until ``f(B)`` falls back.  ``repro.abr.bba_c`` removes the
oscillation by capping the level at the measured throughput.
"""

from __future__ import annotations

from typing import Tuple

from .base import BUFFER_BASED, AbrAlgorithm, AbrContext


class Bba(AbrAlgorithm):
    """BBA-2: buffer-mapped rate selection with a startup ramp."""

    name = "bba"
    category = BUFFER_BASED

    def __init__(self, reservoir_fraction: float = 0.25,
                 upper_fraction: float = 0.85,
                 startup_speedup: float = 0.5):
        if not 0 < reservoir_fraction < upper_fraction <= 1:
            raise ValueError(
                f"need 0 < reservoir < upper <= 1, got "
                f"{reservoir_fraction!r}, {upper_fraction!r}")
        if not 0 < startup_speedup < 1:
            raise ValueError(
                f"startup_speedup must be in (0, 1): {startup_speedup!r}")
        self.reservoir_fraction = reservoir_fraction
        self.upper_fraction = upper_fraction
        self.startup_speedup = startup_speedup
        self._in_startup_phase = True

    def reset(self) -> None:
        self._in_startup_phase = True

    # ------------------------------------------------------------------
    # The rate map and its inverse
    # ------------------------------------------------------------------
    def rate_map(self, buffer_level: float, capacity: float,
                 bitrates) -> float:
        """``f(B)``: linear from R_min at the reservoir to R_max at the
        upper knee (bytes/second)."""
        reservoir = self.reservoir_fraction * capacity
        upper = self.upper_fraction * capacity
        r_min, r_max = bitrates[0], bitrates[-1]
        if buffer_level <= reservoir:
            return r_min
        if buffer_level >= upper:
            return r_max
        slope = (r_max - r_min) / (upper - reservoir)
        return r_min + slope * (buffer_level - reservoir)

    def level_buffer_range(self, level: int, capacity: float,
                           bitrates) -> Tuple[float, float]:
        """Buffer interval [el, eh] over which ``f(B)`` maps to ``level``.

        ``el`` is where ``f`` first reaches the level's bitrate and ``eh``
        where it reaches the next level's (capacity for the top level).
        The MP-DASH adapter derives its low-buffer threshold Ω from ``el``
        (§5.2.2).
        """
        if not 0 <= level < len(bitrates):
            raise IndexError(f"level {level} out of range")
        reservoir = self.reservoir_fraction * capacity
        upper = self.upper_fraction * capacity
        r_min, r_max = bitrates[0], bitrates[-1]
        if r_max == r_min:
            return (reservoir, capacity)

        def inverse(rate: float) -> float:
            fraction = (rate - r_min) / (r_max - r_min)
            return reservoir + fraction * (upper - reservoir)

        el = inverse(bitrates[level])
        eh = inverse(bitrates[level + 1]) if level + 1 < len(bitrates) \
            else capacity
        return (el, eh)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def choose_level(self, ctx: AbrContext) -> int:
        bitrates = ctx.manifest.bitrates()
        current = ctx.current_level
        if current is None:
            return self.initial_level(ctx.manifest)

        f_value = self.rate_map(ctx.buffer_level, ctx.buffer_capacity,
                                bitrates)
        if self._in_startup_phase:
            # Exit startup once the buffer map overtakes the startup-chosen
            # rate (strictly — at the reservoir f equals the lowest rate,
            # which must not end startup for a level-0 player).
            if f_value > bitrates[current]:
                self._in_startup_phase = False
            else:
                return self._startup_level(ctx, current)

        return self._steady_level(ctx, current, f_value, bitrates)

    def _startup_level(self, ctx: AbrContext, current: int) -> int:
        """BBA-2 startup: ride the download-speed ramp one level at a time."""
        last = ctx.history[-1] if ctx.history else None
        if last is None:
            return current
        chunk_duration = ctx.manifest.chunk_duration
        if last.download_time < self.startup_speedup * chunk_duration:
            return self._clamp(current + 1, ctx.manifest)
        if last.download_time > chunk_duration:
            # Falling behind real time during startup: back off.
            return self._clamp(current - 1, ctx.manifest)
        return current

    def _steady_level(self, ctx: AbrContext, current: int, f_value: float,
                      bitrates) -> int:
        rate_up = (bitrates[current + 1] if current + 1 < len(bitrates)
                   else float("inf"))
        rate_down = bitrates[current - 1] if current > 0 else 0.0
        if f_value >= bitrates[-1]:
            # Buffer at/above the cushion top: the map saturates at R_max.
            return len(bitrates) - 1
        if f_value >= rate_up:
            # Highest level strictly below f(B).
            level = current
            for index, bitrate in enumerate(bitrates):
                if bitrate < f_value:
                    level = index
            return level
        if f_value <= rate_down:
            # Lowest level at or above f(B) — one notch under the map.
            for index, bitrate in enumerate(bitrates):
                if bitrate >= f_value:
                    return index
            return len(bitrates) - 1
        return current
