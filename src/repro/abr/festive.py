"""FESTIVE rate adaptation (Jiang, Sekar, Zhang — CoNEXT 2012).

FESTIVE is the paper's representative *throughput-based* algorithm, chosen
for its robustness, fairness, and stability.  The pieces reproduced here
are the ones that shape MP-DASH's behaviour:

* **Harmonic-mean estimation** over the last ``window`` chunks' throughputs
  — robust to transient spikes (a single fast chunk barely moves it).
* **Efficiency factor**: the target bitrate is the highest level below
  ``efficiency × estimate`` (FESTIVE's p = 0.85), leaving headroom so the
  selected rate is sustainable.
* **Gradual switching**: levels move one rung at a time.
* **Delayed upswitch**: a switch up to level *k* happens only after the
  target has stayed above the current level for ``k`` consecutive chunks —
  higher levels require more evidence, FESTIVE's stability mechanism.
  Downswitches are immediate (falling behind risks stalls).

Under MP-DASH, the context's ``override_throughput`` (the transport's
aggregate multipath estimate) replaces the harmonic mean entirely, per
§5.2.1: the player's own samples under-estimate capacity whenever the
scheduler has the cellular path disabled.
"""

from __future__ import annotations

from ..dash.events import ChunkRecord
from ..estimators import HarmonicMean
from .base import THROUGHPUT_BASED, AbrAlgorithm, AbrContext


class Festive(AbrAlgorithm):
    """Throughput-based adaptation with harmonic-mean smoothing."""

    name = "festive"
    category = THROUGHPUT_BASED

    def __init__(self, window: int = 5, efficiency: float = 0.85):
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1]: {efficiency!r}")
        self.window = window
        self.efficiency = efficiency
        self._estimator = HarmonicMean(window)
        self._chunks_above_current = 0

    def reset(self) -> None:
        self._estimator.reset()
        self._chunks_above_current = 0

    def on_chunk_downloaded(self, record: ChunkRecord) -> None:
        self._estimator.update(record.throughput)

    def _estimate(self, ctx: AbrContext) -> float:
        if ctx.override_throughput is not None:
            return ctx.override_throughput
        value = self._estimator.predict()
        if value is not None:
            return value
        if ctx.measured_throughput is not None:
            return ctx.measured_throughput
        return 0.0

    def _target_level(self, ctx: AbrContext) -> int:
        usable = self.efficiency * self._estimate(ctx)
        level = 0
        for index, bitrate in enumerate(ctx.manifest.bitrates()):
            if bitrate <= usable:
                level = index
        return level

    def choose_level(self, ctx: AbrContext) -> int:
        current = ctx.current_level
        if current is None:
            return self.initial_level(ctx.manifest)
        target = self._target_level(ctx)
        if target > current:
            self._chunks_above_current += 1
            # Evidence requirement scales with the level being entered.
            if self._chunks_above_current >= current + 1:
                self._chunks_above_current = 0
                return current + 1
            return current
        self._chunks_above_current = 0
        if target < current:
            return current - 1  # gradual downswitch, immediate
        return current
