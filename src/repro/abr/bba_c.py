"""BBA-C: the cellular-friendly BBA variant introduced by the paper (§5.2.2).

The original BBA aggressively probes for the highest rate the buffer can
justify, which makes it oscillate between the two rungs around the true
network capacity (Figure 3) — degrading QoE and, worse for MP-DASH, burning
cellular data to sustain the unsustainable upper rung.  BBA-C is BBA-2 with
one added constraint: *the selected bitrate may not exceed the measured
MPTCP throughput.*

The throughput used for the cap is the MP-DASH cross-layer estimate when
available (the transport sees all paths), otherwise a harmonic mean of the
player's recent chunk throughputs.
"""

from __future__ import annotations

from ..dash.events import ChunkRecord
from ..estimators import HarmonicMean
from .base import AbrContext
from .bba import Bba


class BbaC(Bba):
    """BBA-2 with the selected rate capped at measured network capacity."""

    name = "bba-c"

    def __init__(self, window: int = 5, **bba_kwargs):
        super().__init__(**bba_kwargs)
        self._estimator = HarmonicMean(window)

    def reset(self) -> None:
        super().reset()
        self._estimator.reset()

    def on_chunk_downloaded(self, record: ChunkRecord) -> None:
        self._estimator.update(record.throughput)

    def _capacity(self, ctx: AbrContext):
        if ctx.override_throughput is not None:
            return ctx.override_throughput
        return self._estimator.predict()

    def choose_level(self, ctx: AbrContext) -> int:
        level = super().choose_level(ctx)
        capacity = self._capacity(ctx)
        if capacity is None:
            return level
        bitrates = ctx.manifest.bitrates()
        while level > 0 and bitrates[level] > capacity:
            level -= 1
        return level
