"""MPC rate adaptation (Yin et al., SIGCOMM 2015) — the §5.2.3 extension.

MPC is the *hybrid* category: it combines a throughput prediction with the
buffer occupancy by solving, at each chunk boundary, a small finite-horizon
optimization — pick the level sequence over the next ``horizon`` chunks
maximizing a QoE objective (average quality, minus switching penalty, minus
a large rebuffering penalty), then apply only the first decision and
re-solve at the next chunk (receding horizon).

The paper leaves MP-DASH + MPC as future work but sketches the design: the
chunk deadline becomes the chunk size over the minimum throughput the
chosen level requires, and the Φ/Ω machinery is reused from the
throughput-based rules.  This module implements the algorithm so that the
sketch is runnable; the adapter treats HYBRID like THROUGHPUT_BASED.

The implementation brute-forces the level tree with one pruning rule
(consecutive levels may differ by at most ``max_step``), which keeps the
search exact for the paper-scale 5-level ladders while bounding cost.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dash.events import ChunkRecord
from ..estimators import HarmonicMean
from .base import HYBRID, AbrAlgorithm, AbrContext


class Mpc(AbrAlgorithm):
    """Receding-horizon QoE optimization over predicted throughput."""

    name = "mpc"
    category = HYBRID

    def __init__(self, horizon: int = 4, switch_penalty: float = 1.0,
                 rebuffer_penalty: float = 40.0, window: int = 5,
                 max_step: int = 2, robust: bool = False):
        """``robust`` enables RobustMPC's error discounting: the prediction
        is divided by ``1 + max recent relative error``, so a predictor
        that has been over-optimistic lately gets trusted less."""
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1: {horizon!r}")
        if max_step < 1:
            raise ValueError(f"max_step must be >= 1: {max_step!r}")
        self.horizon = horizon
        self.switch_penalty = switch_penalty
        self.rebuffer_penalty = rebuffer_penalty
        self.max_step = max_step
        self.robust = robust
        self._estimator = HarmonicMean(window)
        self._recent_errors: List[float] = []
        self._error_window = window
        self._last_prediction: Optional[float] = None

    def reset(self) -> None:
        self._estimator.reset()
        self._recent_errors = []
        self._last_prediction = None

    def on_chunk_downloaded(self, record: ChunkRecord) -> None:
        if self._last_prediction is not None and record.throughput > 0:
            # Relative over-prediction; under-predictions are harmless.
            error = max(0.0, (self._last_prediction - record.throughput)
                        / record.throughput)
            self._recent_errors.append(error)
            if len(self._recent_errors) > self._error_window:
                self._recent_errors.pop(0)
        self._estimator.update(record.throughput)

    def _prediction(self, ctx: AbrContext) -> Optional[float]:
        if ctx.override_throughput is not None:
            value = ctx.override_throughput
        else:
            value = self._estimator.predict()
            if value is None:
                value = ctx.measured_throughput
        if value is None:
            return None
        self._last_prediction = value
        if self.robust and self._recent_errors:
            value = value / (1.0 + max(self._recent_errors))
        return value

    def choose_level(self, ctx: AbrContext) -> int:
        current = ctx.current_level
        if current is None:
            return self.initial_level(ctx.manifest)
        prediction = self._prediction(ctx)
        if prediction is None or prediction <= 0:
            return current

        bitrates = ctx.manifest.bitrates()
        chunk_duration = ctx.manifest.chunk_duration
        chunks_left = ctx.manifest.num_chunks - ctx.next_chunk_index
        steps = min(self.horizon, max(1, chunks_left))
        # With fewer samples than the smoothing window wants, a single fast
        # chunk would let the optimizer leap several rungs and stall a thin
        # startup buffer; move one rung at a time until the estimate is
        # grounded.
        max_step = self.max_step
        if self._estimator.sample_count < 3:
            max_step = 1
        return self._argmax_first(ctx, prediction, bitrates, chunk_duration,
                                  steps, current, max_step)

    # ------------------------------------------------------------------
    # Receding-horizon search
    # ------------------------------------------------------------------
    def _argmax_first(self, ctx: AbrContext, prediction: float,
                      bitrates, chunk_duration: float, steps: int,
                      current: int, max_step: Optional[int] = None) -> int:
        if max_step is None:
            max_step = self.max_step
        best = (-float("inf"), current)

        def recurse(depth: int, buffer_level: float, qoe: float,
                    previous: int, first: Optional[int]) -> None:
            nonlocal best
            if depth == steps:
                if qoe > best[0]:
                    best = (qoe, first if first is not None else current)
                return
            for level in self._neighbors(previous, len(bitrates), max_step):
                new_qoe, new_buffer = self._step(
                    qoe, buffer_level, previous, level, bitrates,
                    chunk_duration, prediction, ctx.buffer_capacity,
                    ctx.next_chunk_index + depth, ctx)
                recurse(depth + 1, new_buffer, new_qoe, level,
                        level if first is None else first)

        recurse(0, ctx.buffer_level, 0.0, current, None)
        return best[1]

    def _neighbors(self, level: int, num_levels: int,
                   max_step: Optional[int] = None) -> range:
        if max_step is None:
            max_step = self.max_step
        low = max(0, level - max_step)
        high = min(num_levels - 1, level + max_step)
        return range(low, high + 1)

    def _step(self, qoe: float, buffer_level: float, previous: int,
              level: int, bitrates, chunk_duration: float, prediction: float,
              capacity: float, chunk_index: int, ctx: AbrContext
              ) -> Tuple[float, float]:
        """Simulate downloading one chunk at ``level``; return updated QoE
        and buffer."""
        size = self._chunk_size(ctx, level, chunk_index, bitrates,
                                chunk_duration)
        download_time = size / prediction
        rebuffer = max(0.0, download_time - buffer_level)
        buffer_level = max(0.0, buffer_level - download_time)
        buffer_level = min(capacity, buffer_level + chunk_duration)
        quality = bitrates[level] * 8.0 / 1e6  # Mbps, the MPC q() choice
        previous_quality = bitrates[previous] * 8.0 / 1e6
        qoe += (quality
                - self.switch_penalty * abs(quality - previous_quality)
                - self.rebuffer_penalty * rebuffer)
        return qoe, buffer_level

    def _chunk_size(self, ctx: AbrContext, level: int, chunk_index: int,
                    bitrates, chunk_duration: float) -> float:
        """Future chunk size: nominal bitrate × duration (the manifest does
        not expose future VBR sizes to the player)."""
        return bitrates[level] * chunk_duration

    def required_throughput(self, ctx: AbrContext, level: int) -> float:
        """Minimum throughput the chosen bitrate requires (bytes/second) —
        the quantity the paper's MP-DASH+MPC sketch uses for deadlines."""
        return ctx.manifest.bitrates()[level]
