"""DASH rate-adaptation algorithms: GPAC, FESTIVE, BBA-2, BBA-C, MPC."""

from typing import List

from .base import (BUFFER_BASED, HYBRID, THROUGHPUT_BASED, AbrAlgorithm,
                   AbrContext)
from .bba import Bba
from .bba_c import BbaC
from .festive import Festive
from .gpac import Gpac
from .mpc import Mpc

def _robust_mpc(**kwargs):
    kwargs.setdefault("robust", True)
    return Mpc(**kwargs)


_ALGORITHMS = {
    Gpac.name: Gpac,
    Festive.name: Festive,
    Bba.name: Bba,
    BbaC.name: BbaC,
    Mpc.name: Mpc,
    "robust-mpc": _robust_mpc,
}


def make_abr(name: str, **kwargs) -> AbrAlgorithm:
    """Instantiate an ABR algorithm by its table name."""
    try:
        return _ALGORITHMS[name](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_ALGORITHMS))
        raise ValueError(f"unknown ABR algorithm {name!r} "
                         f"(known: {known})") from None


def abr_names() -> List[str]:
    return sorted(_ALGORITHMS)


__all__ = [
    "AbrAlgorithm", "AbrContext", "BUFFER_BASED", "Bba", "BbaC", "Festive",
    "Gpac", "HYBRID", "Mpc", "THROUGHPUT_BASED", "abr_names", "make_abr",
]
