"""GPAC's built-in rate adaptation.

The open-source GPAC player (the paper's implementation base) ships a
simple throughput-based algorithm: estimate throughput from the download
time of the *last* chunk, then pick the highest encoding bitrate below the
estimate.  No smoothing, no hysteresis — which makes it the most reactive
(and least stable) of the throughput-based algorithms.
"""

from __future__ import annotations

from .base import THROUGHPUT_BASED, AbrAlgorithm, AbrContext


class Gpac(AbrAlgorithm):
    """Last-chunk-throughput rate selection (GPAC v0.5.2 behaviour)."""

    name = "gpac"
    category = THROUGHPUT_BASED

    def __init__(self, safety: float = 1.0):
        """``safety`` scales the estimate before level selection; GPAC uses
        the raw estimate (1.0)."""
        if not 0 < safety <= 1:
            raise ValueError(f"safety must be in (0, 1]: {safety!r}")
        self.safety = safety

    def choose_level(self, ctx: AbrContext) -> int:
        estimate = ctx.effective_throughput()
        if estimate is None:
            return self.initial_level(ctx.manifest)
        usable = estimate * self.safety
        level = 0
        for index, bitrate in enumerate(ctx.manifest.bitrates()):
            if bitrate <= usable:
                level = index
        return level
