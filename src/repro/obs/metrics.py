"""Streaming metrics derived from the bus: counters, gauges, histograms.

The paper's §7 evaluation is built on distributions — deadline slack,
per-path throughput, stall durations, radio-state residency — not on
single numbers.  This module computes them *online*, as bus subscribers,
with three properties the downstream tooling needs:

* **Mergeable.**  Every primitive supports ``merge``; a sweep can combine
  the histograms of a hundred runs into one distribution per grid axis.
* **Picklable / JSON-able.**  Primitives are plain attributes and
  round-trip through ``to_dict`` / ``from_dict``, so they cross the sweep
  engine's process boundary and live in its on-disk cache.
* **Offline-reconstructible.**  :class:`SessionMetricsCollector` consumes
  only bus events, so replaying a PR-1 JSONL trace through a fresh
  collector (:func:`collector_from_trace`) reproduces the live registry
  exactly — the determinism tests pin this.

The registry renders either as a Prometheus-style text exposition
(:meth:`MetricsRegistry.render_prometheus`) or as one JSON document
(:meth:`MetricsRegistry.to_dict`).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .bus import EventBus
from .events import (ChunkDownloaded, ChunkRequested, CwndRestarted,
                     DeadlineArmed, DeadlineDisarmed, DeadlineExtended,
                     DeadlineMissed, HttpRequestSent, HttpResponseReceived,
                     MpDashArmed, MpDashSkipped, PacketSent, PathSampled,
                     PathStateRequested, QualitySwitched, RadioStateChange,
                     SchedulerActivated, SessionClosed, StallEnd, StallStart,
                     SubflowStateChange, TransferCompleted, TransferStarted,
                     fast_ctor)

#: Label sets are small (path/state names), so labels are stored as sorted
#: tuples of (key, value) pairs — hashable registry keys with a canonical
#: rendering order.
Labels = Tuple[Tuple[str, str], ...]


def _labels(labels: Optional[Mapping[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote, and line feed (in that order, so an escape
    is never re-escaped)."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labels: Labels, extra: Optional[Tuple[str, str]] = None
                   ) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"'
                    for key, value in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels = _labels(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount!r}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Counter":
        counter = cls(payload["name"], payload.get("labels") or None)
        counter.value = payload["value"]
        return counter

    def __repr__(self) -> str:
        return f"<Counter {self.name}{_render_labels(self.labels)}={self.value}>"


class Gauge:
    """A value that can move both ways (buffer level, residency seconds)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels = _labels(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def merge(self, other: "Gauge") -> None:
        # Residency-style gauges are additive across runs; last-value
        # gauges rarely merge, and additive is the useful default.
        self.value += other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Gauge":
        gauge = cls(payload["name"], payload.get("labels") or None)
        gauge.value = payload["value"]
        return gauge

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{_render_labels(self.labels)}={self.value}>"


def exponential_buckets(start: float, factor: float, count: int
                        ) -> List[float]:
    """Log-spaced upper bounds: ``start * factor**i`` for i in [0, count)."""
    if start <= 0:
        raise ValueError(f"start must be positive: {start!r}")
    if factor <= 1:
        raise ValueError(f"factor must exceed 1: {factor!r}")
    if count < 1:
        raise ValueError(f"count must be positive: {count!r}")
    return [start * factor ** i for i in range(count)]


def linear_buckets(start: float, width: float, count: int) -> List[float]:
    """Fixed-width upper bounds: ``start + width*i`` for i in [0, count)."""
    if width <= 0:
        raise ValueError(f"width must be positive: {width!r}")
    if count < 1:
        raise ValueError(f"count must be positive: {count!r}")
    return [start + width * i for i in range(count)]


class Histogram:
    """A streaming histogram over fixed bucket bounds.

    ``bounds`` are finite upper edges in increasing order; an implicit
    +inf bucket catches overflow.  Construction cost is paid once; each
    ``observe`` is a binary search plus three adds.  Use
    :func:`linear_buckets` for fixed-width bounds and
    :func:`exponential_buckets` for log-spaced ones (latency-style data
    spanning decades).
    """

    kind = "histogram"

    def __init__(self, name: str, bounds: List[float],
                 labels: Optional[Mapping[str, str]] = None):
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        ordered = list(bounds)
        if any(b >= c for b, c in zip(ordered, ordered[1:])):
            raise ValueError(f"bounds must strictly increase: {bounds!r}")
        if any(math.isinf(b) or math.isnan(b) for b in ordered):
            raise ValueError(f"bounds must be finite: {bounds!r}")
        self.name = name
        self.labels = _labels(labels)
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)  # +1 = the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Approximate q-quantile by linear interpolation within a bucket.

        The overflow bucket reports the observed maximum; an underflowing
        first bucket interpolates from the observed minimum.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"q must be in [0, 1]: {q!r}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(self.bounds):
                    return self.max
                upper = self.bounds[index]
                lower = (self.bounds[index - 1] if index > 0
                         else min(self.min, upper))
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> None:
        # Name both layouts: "which two runs disagree and how" is the
        # whole diagnosis when a sweep folds mismatched histograms.
        if list(other.bounds) != list(self.bounds):
            raise ValueError(
                f"cannot merge histograms with mismatched bucket "
                f"layouts: {self.name} has bounds {list(self.bounds)} "
                f"but {other.name} has bounds {list(other.bounds)}")
        if len(other.counts) != len(self.counts):
            raise ValueError(
                f"cannot merge histograms with mismatched bucket "
                f"layouts: {self.name} has {len(self.counts)} buckets "
                f"but {other.name} has {len(other.counts)}")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        for value in (other.min, other.max):
            if value is None:
                continue
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "bounds": list(self.bounds),
                "counts": list(self.counts), "count": self.count,
                "sum": self.sum, "min": self.min, "max": self.max}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Histogram":
        histogram = cls(payload["name"], list(payload["bounds"]),
                        payload.get("labels") or None)
        counts = list(payload["counts"])
        if len(counts) != len(histogram.bounds) + 1:
            raise ValueError(
                f"histogram {histogram.name!r} payload is inconsistent: "
                f"{len(histogram.bounds)} bounds need "
                f"{len(histogram.bounds) + 1} buckets, got {len(counts)}")
        histogram.counts = counts
        histogram.count = payload["count"]
        histogram.sum = payload["sum"]
        histogram.min = payload["min"]
        histogram.max = payload["max"]
        return histogram

    def __repr__(self) -> str:
        return (f"<Histogram {self.name}{_render_labels(self.labels)} "
                f"n={self.count} mean={self.mean}>")


class Timeseries:
    """An append-only (time, value) series (per-path throughput, cwnd, …)."""

    kind = "timeseries"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels = _labels(labels)
        self.samples: List[Tuple[float, float]] = []

    def sample(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def merge(self, other: "Timeseries") -> None:
        self.samples = sorted(self.samples + other.samples)

    @property
    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels),
                "samples": [list(s) for s in self.samples]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Timeseries":
        series = cls(payload["name"], payload.get("labels") or None)
        series.samples = [(float(t), float(v))
                          for t, v in payload["samples"]]
        return series

    def __repr__(self) -> str:
        return (f"<Timeseries {self.name}{_render_labels(self.labels)} "
                f"n={len(self.samples)}>")


#: ``kind`` discriminator -> metric class, for :func:`metric_from_dict`.
_METRIC_KINDS = {"counter": Counter, "gauge": Gauge,
                 "histogram": Histogram, "timeseries": Timeseries}


def metric_from_dict(payload: Mapping[str, Any]) -> Any:
    """Revive any serialized metric via its ``kind`` discriminator."""
    kind = payload.get("kind")
    cls = _METRIC_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown metric kind {kind!r}")
    return cls.from_dict(payload)


class MetricsRegistry:
    """A named collection of metrics with a canonical exposition order.

    Metrics are keyed by ``(name, labels)``; accessors create on first
    use, so subscriber code stays one line per event.  The registry is
    picklable as long as its metrics are (they are — plain attributes).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], Any] = {}

    # -- accessors ----------------------------------------------------
    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: List[float],
                  labels: Optional[Mapping[str, str]] = None) -> Histogram:
        key = (name, _labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, bounds, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name} is a {metric.kind}, not a histogram")
        return metric

    def timeseries(self, name: str,
                   labels: Optional[Mapping[str, str]] = None) -> Timeseries:
        return self._get(Timeseries, name, labels)

    def _get(self, cls: type, name: str,
             labels: Optional[Mapping[str, str]]) -> Any:
        key = (name, _labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"{name} is a {metric.kind}, not a {cls.kind}")
        return metric

    # -- views --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._ordered())

    def _ordered(self) -> List[Any]:
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None
            ) -> Optional[Any]:
        return self._metrics.get((name, _labels(labels)))

    def histograms(self) -> List[Histogram]:
        return [m for m in self._ordered() if isinstance(m, Histogram)]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (sweep aggregation)."""
        for key, metric in sorted(other._metrics.items()):
            mine = self._metrics.get(key)
            if mine is None:
                if isinstance(metric, Histogram):
                    mine = Histogram(metric.name, metric.bounds,
                                     dict(metric.labels))
                else:
                    mine = type(metric)(metric.name, dict(metric.labels))
                self._metrics[key] = mine
            mine.merge(metric)

    # -- exposition ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """One JSON document: every metric in canonical order."""
        return {"metrics": [metric.to_dict() for metric in self._ordered()]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict` — the fleet checkpoint/shard path.

        ``registry.to_dict() -> from_dict -> to_dict`` is an exact
        round-trip, so merged registries stay byte-identical across
        process and checkpoint boundaries.
        """
        registry = cls()
        for record in payload.get("metrics", []):
            metric = metric_from_dict(record)
            registry._metrics[(metric.name, metric.labels)] = metric
        return registry

    def histograms_to_dict(self) -> List[Dict[str, Any]]:
        """Just the histograms — what a sweep summary carries."""
        return [h.to_dict() for h in self.histograms()]

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4 style).

        Histograms render cumulative ``_bucket{le=...}`` series plus
        ``_sum`` / ``_count``; timeseries expose their last value as a
        gauge (the full series is JSON-only).
        """
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for metric in self._ordered():
            prom_kind = ("gauge" if isinstance(metric, Timeseries)
                         else metric.kind)
            if seen_types.get(metric.name) != prom_kind:
                lines.append(f"# TYPE {metric.name} {prom_kind}")
                seen_types[metric.name] = prom_kind
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    label = _render_labels(metric.labels, ("le", f"{bound:g}"))
                    lines.append(
                        f"{metric.name}_bucket{label} {cumulative}")
                label = _render_labels(metric.labels, ("le", "+Inf"))
                lines.append(f"{metric.name}_bucket{label} {metric.count}")
                base = _render_labels(metric.labels)
                lines.append(f"{metric.name}_sum{base} {metric.sum:g}")
                lines.append(f"{metric.name}_count{base} {metric.count}")
            elif isinstance(metric, Timeseries):
                if metric.last is not None:
                    label = _render_labels(metric.labels)
                    lines.append(f"{metric.name}{label} {metric.last:g}")
            else:
                label = _render_labels(metric.labels)
                lines.append(f"{metric.name}{label} {metric.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self._metrics)}>"


# ----------------------------------------------------------------------
# Standard bucket layouts for the session registry
# ----------------------------------------------------------------------
#: Deadline slack straddles zero (negative = missed), so fixed-width
#: 0.5 s buckets over [-8 s, +24 s].
SLACK_BOUNDS = linear_buckets(-8.0, 0.5, 65)
#: Download / stall durations span decades: log buckets 50 ms … ~105 s.
DURATION_BOUNDS = exponential_buckets(0.05, 1.6, 17)
#: Chunk sizes, log buckets 50 kB … ~6.7 MB.
SIZE_BOUNDS = exponential_buckets(5e4, 1.5, 13)


class SessionMetricsCollector:
    """The standard registry of derived series, fed from bus events.

    Attach to a live session bus (or replay a JSONL trace through one) and
    read ``registry`` afterwards.  Everything is computed from events
    alone, so live and offline registries are identical for the same
    stream.  ``activity_bin`` and ``device`` mirror the trace metadata —
    they feed the radio-state residency computation, which replays the
    session's binned activity through the energy model's state machine at
    :class:`~repro.obs.events.SessionClosed` time.
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 activity_bin: float = 0.1, device: str = "galaxy_note"):
        self.registry = MetricsRegistry()
        self.activity_bin = activity_bin
        self.device = device
        self._bin_width = activity_bin
        # path -> {bin_index: bytes}; the residency replay input.
        self._activity: Dict[str, Dict[int, float]] = {}
        # Per-path metric-object caches for the hot handlers: registry
        # lookups build and sort a labels tuple per call, which at one
        # PacketSent per path per bin is the collector's dominant cost.
        self._packet_state: Dict[str, Tuple[Counter, Timeseries,
                                            Dict[int, float]]] = {}
        self._sample_state: Dict[str, Tuple[Timeseries, Timeseries,
                                            Timeseries]] = {}
        # Cache for labeled counters keyed by their event field values
        # (same rationale: skip label construction on repeat events).
        self._counters: Dict[Tuple[Any, ...], Counter] = {}
        # transfer id -> absolute deadline (armed via SchedulerActivated).
        self._deadlines: Dict[int, float] = {}
        # transfer id -> start time (for duration cross-checks).
        self._transfers: Dict[int, float] = {}
        self._open_stall: Optional[float] = None
        self._radio_state: Dict[str, Tuple[str, float]] = {}
        self._closed = False
        if bus is not None:
            self.attach(bus)

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "SessionMetricsCollector":
        """Subscribe every handler; returns self for chaining."""
        sub = bus.subscribe
        sub(PacketSent, self._on_packet)
        sub(PathSampled, self._on_path_sampled)
        sub(TransferStarted, self._on_transfer_started)
        sub(TransferCompleted, self._on_transfer_completed)
        sub(SchedulerActivated, self._on_scheduler_activated)
        sub(DeadlineMissed, self._on_deadline_missed)
        sub(DeadlineArmed, lambda e: self._count("repro_deadline_armed_total"))
        sub(DeadlineDisarmed,
            lambda e: self._count("repro_deadline_disarmed_total"))
        sub(DeadlineExtended, self._on_deadline_extended)
        sub(ChunkRequested, self._on_chunk_requested)
        sub(ChunkDownloaded, self._on_chunk_downloaded)
        sub(QualitySwitched,
            lambda e: self._count("repro_quality_switches_total"))
        sub(StallStart, self._on_stall_start)
        sub(StallEnd, self._on_stall_end)
        sub(CwndRestarted, lambda e: self._count(
            "repro_cwnd_restarts_total", {"path": e.path}))
        sub(SubflowStateChange, self._on_subflow_state)
        sub(PathStateRequested, self._on_path_state_requested)
        sub(MpDashArmed, lambda e: self._count("repro_mpdash_armed_total"))
        sub(MpDashSkipped,
            lambda e: self._count("repro_mpdash_skipped_total"))
        sub(HttpRequestSent,
            lambda e: self._count("repro_http_requests_total"))
        sub(HttpResponseReceived, self._on_http_response)
        sub(RadioStateChange, self._on_radio_state)
        sub(SessionClosed, self._on_session_closed)
        return self

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _count(self, name: str,
               labels: Optional[Mapping[str, str]] = None) -> None:
        self.registry.counter(name, labels).inc()

    def _cached_counter(self, key: Tuple[Any, ...], name: str,
                        labels: Mapping[str, str]) -> Counter:
        counter = self._counters.get(key)
        if counter is None:
            counter = self.registry.counter(name, labels)
            self._counters[key] = counter
        return counter

    def _on_packet(self, event: PacketSent) -> None:
        state = self._packet_state.get(event.path)
        if state is None:
            labels = {"path": event.path}
            state = (
                self.registry.counter("repro_path_bytes_total", labels),
                self.registry.timeseries(
                    "repro_path_throughput_bytes_per_second", labels),
                self._activity.setdefault(event.path, {}))
            self._packet_state[event.path] = state
        total, throughput, bins = state
        total.inc(event.num_bytes)
        throughput.samples.append(
            (event.time, event.num_bytes / self._bin_width))
        index = int(event.time / self._bin_width)
        bins[index] = bins.get(index, 0.0) + event.num_bytes

    def _on_path_sampled(self, event: PathSampled) -> None:
        state = self._sample_state.get(event.path)
        if state is None:
            labels = {"path": event.path}
            state = (
                self.registry.timeseries("repro_path_cwnd_bytes", labels),
                self.registry.timeseries("repro_path_rtt_seconds", labels),
                self.registry.timeseries(
                    "repro_path_estimated_throughput_bytes_per_second",
                    labels))
            self._sample_state[event.path] = state
        cwnd, rtt, throughput = state
        cwnd.samples.append((event.time, event.cwnd))
        rtt.samples.append((event.time, event.rtt))
        if event.throughput > 0:
            throughput.samples.append((event.time, event.throughput))

    def _on_transfer_started(self, event: TransferStarted) -> None:
        self._transfers[event.transfer] = event.time
        self._count("repro_transfers_total")

    def _on_transfer_completed(self, event: TransferCompleted) -> None:
        self._transfers.pop(event.transfer, None)
        deadline = self._deadlines.pop(event.transfer, None)
        if deadline is not None:
            self.registry.histogram("repro_deadline_slack_seconds",
                                    SLACK_BOUNDS).observe(
                                        deadline - event.time)

    def _on_scheduler_activated(self, event: SchedulerActivated) -> None:
        self._deadlines[event.transfer] = event.time + event.window
        self._count("repro_scheduler_activations_total")

    def _on_deadline_missed(self, event: DeadlineMissed) -> None:
        self._count("repro_deadline_misses_total")
        deadline = self._deadlines.pop(event.transfer, None)
        if deadline is not None:
            # The transfer is late by definition; record the (negative)
            # slack at miss time so the histogram still sees the chunk.
            self.registry.histogram("repro_deadline_slack_seconds",
                                    SLACK_BOUNDS).observe(
                                        deadline - event.time)

    def _on_deadline_extended(self, event: DeadlineExtended) -> None:
        self._count("repro_deadline_extensions_total")
        self.registry.histogram(
            "repro_deadline_extension_seconds", DURATION_BOUNDS).observe(
                max(event.extended - event.base, 0.0))

    def _on_chunk_requested(self, event: ChunkRequested) -> None:
        self._count("repro_chunks_requested_total")
        self.registry.timeseries("repro_buffer_level_seconds").sample(
            event.time, event.buffer_level)

    def _on_chunk_downloaded(self, event: ChunkDownloaded) -> None:
        self._count("repro_chunks_downloaded_total")
        self._cached_counter(
            ("level", event.level), "repro_chunk_level_total",
            {"level": str(event.level)}).inc()
        self.registry.histogram(
            "repro_chunk_download_seconds", DURATION_BOUNDS).observe(
                event.duration)
        self.registry.histogram("repro_chunk_size_bytes",
                                SIZE_BOUNDS).observe(event.size)

    def _on_stall_start(self, event: StallStart) -> None:
        self._count("repro_stalls_total")
        self._open_stall = event.time

    def _on_stall_end(self, event: StallEnd) -> None:
        if self._open_stall is not None:
            self.registry.histogram(
                "repro_stall_seconds", DURATION_BOUNDS).observe(
                    event.time - self._open_stall)
            self._open_stall = None

    def _on_subflow_state(self, event: SubflowStateChange) -> None:
        self._cached_counter(
            ("subflow", event.path, event.enabled),
            "repro_subflow_state_changes_total",
            {"path": event.path,
             "enabled": str(event.enabled).lower()}).inc()

    def _on_path_state_requested(self, event: PathStateRequested) -> None:
        self._cached_counter(
            ("path_state", event.path, event.enabled),
            "repro_path_state_requests_total",
            {"path": event.path,
             "enabled": str(event.enabled).lower()}).inc()

    def _on_http_response(self, event: HttpResponseReceived) -> None:
        self._cached_counter(
            ("http", event.status), "repro_http_responses_total",
            {"status": str(event.status)}).inc()

    def _on_radio_state(self, event: RadioStateChange) -> None:
        """Residency from explicitly published radio events (offline
        replays of energy-model streams); the live path derives the same
        numbers from the activity bins at session close."""
        previous = self._radio_state.get(event.path)
        if previous is not None:
            state, since = previous
            self.registry.gauge(
                "repro_radio_residency_seconds",
                {"path": event.path, "state": state}).add(event.time - since)
        self._radio_state[event.path] = (event.state, event.time)

    def _on_session_closed(self, event: SessionClosed) -> None:
        if self._closed:
            return
        self._closed = True
        if self._open_stall is not None:
            self._on_stall_end(StallEnd(event.time))
        for path, (state, since) in sorted(self._radio_state.items()):
            self.registry.gauge(
                "repro_radio_residency_seconds",
                {"path": path, "state": state}).add(event.time - since)
        self._radio_state.clear()
        self.registry.gauge("repro_session_duration_seconds").set(event.time)
        if not self._radio_events_seen():
            self._derive_radio_residency(event.time)

    def _radio_events_seen(self) -> bool:
        # Any residency gauge already present means explicit
        # RadioStateChange events were consumed; don't double-count.
        return any(m.name == "repro_radio_residency_seconds"
                   for m in self.registry)

    def _derive_radio_residency(self, session_end: float) -> None:
        """Replay the binned activity through the radio state machine."""
        if session_end <= 0 or not self._activity:
            return
        from ..energy.devices import DEVICES
        from ..energy.model import radio_state_events
        from ..mptcp.activity import ActivityLog

        device = DEVICES.get(self.device)
        if device is None:
            return
        # _activity already has ActivityLog's internal shape (path ->
        # {bin_index: bytes}); hand it over instead of replaying hundreds
        # of record() calls at session close.
        activity = ActivityLog(self._bin_width)
        activity._bins = {path: dict(bins)
                          for path, bins in self._activity.items()}
        from .events import RADIO_IDLE
        for path in activity.paths():
            events = radio_state_events(activity, path,
                                        device.for_interface(path),
                                        session_end)
            state, since = RADIO_IDLE, 0.0
            for change in events:
                self.registry.gauge(
                    "repro_radio_residency_seconds",
                    {"path": path, "state": state}).add(change.time - since)
                state, since = change.state, change.time
            self.registry.gauge(
                "repro_radio_residency_seconds",
                {"path": path, "state": state}).add(session_end - since)


#: Sampling at 1 Hz per subflow makes PathSampled warm enough to bypass
#: the frozen-dataclass construction path (see :func:`fast_ctor`).
_new_path_sampled = fast_ctor(PathSampled)


class PathSampler:
    """Publishes a 1 Hz :class:`~repro.obs.events.PathSampled` snapshot
    per subflow.

    No existing transport event carries cwnd or RTT (per-tick events were
    deliberately traded away for bin-aggregated ``PacketSent``), so the
    cwnd/RTT/throughput timeseries need a source.  The sampler only
    *reads* subflow state and publishes, so attaching it cannot change
    simulation physics; it does add events to a recorded trace, which is
    exactly what makes the offline registry equal the live one.
    """

    def __init__(self, sim, connection, interval: float = 1.0):
        self._sim = sim
        self._connection = connection
        self.process = sim.call_every(interval, self._sample)

    def _sample(self) -> None:
        sim = self._sim
        connection = self._connection
        # Deliberately reads without advancing the connection: under the
        # event-driven kernel the snapshot is the state as of the last
        # decision point (at most one quiescent span stale — exact
        # whenever a transfer is in flight).  Forcing an advance here
        # would split analytic spans at sampling instants and perturb the
        # simulation at float precision, breaking the attach-a-collector-
        # changes-nothing guarantee.
        bus = sim.bus
        now = sim.now
        for subflow in connection.subflows:
            tcp = subflow.tcp
            estimate = subflow.throughput_estimate()
            bus.publish(_new_path_sampled(
                now, subflow.name, tcp.cwnd, tcp.rtt,
                estimate if estimate is not None else 0.0, connection.id))

    def stop(self) -> None:
        self.process.stop()


def collector_from_trace(trace) -> SessionMetricsCollector:
    """Rebuild the session registry offline from a loaded JSONL trace.

    Identical to the live collector's registry for the same stream — the
    metrics half of the capture-then-analyze workflow.
    """
    from .trace_export import replay

    bus = EventBus()
    collector = SessionMetricsCollector(
        bus, activity_bin=trace.meta.activity_bin, device=trace.meta.device)
    replay(trace.events, bus)
    return collector


def registry_from_trace(trace) -> MetricsRegistry:
    """Shorthand: the offline registry itself."""
    return collector_from_trace(trace).registry
