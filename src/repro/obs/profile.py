"""Opt-in wall-clock attribution for the bus and the simulator loop.

Before optimizing a hot path you need to know where a 10k-chunk sweep
actually spends its time: which event types dominate the bus, which
subscriber handlers burn the milliseconds, and which scheduled callbacks
the simulator loop dispatches most.  This module answers all three with
one :class:`Profiler` fed from two hooks:

* :class:`ProfiledBus` — a drop-in :class:`~repro.obs.bus.EventBus`
  subclass whose ``publish`` times each delivery, per event type and per
  handler.  Event times are *inclusive*: a handler that publishes nested
  events is charged for their dispatch too (depth-first delivery).
* ``Simulator.profiler`` — when set, the run loop times every scheduled
  callback (see :meth:`~repro.net.simulator.Simulator.run`).

Profiling is strictly opt-in because the ``perf_counter`` pair per
delivery is real overhead on a bus that publishes one event per path per
activity bin; the default session path never pays it.  The rendered
:meth:`Profiler.report` is the ``repro profile`` CLI output.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from .bus import EventBus
from .events import TraceEvent


class Stat:
    """Call count and accumulated wall-clock seconds for one name."""

    __slots__ = ("calls", "total")

    def __init__(self) -> None:
        self.calls = 0
        self.total = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total += elapsed

    @property
    def mean(self) -> float:
        return self.total / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"calls": self.calls, "total": self.total}

    def __repr__(self) -> str:
        return f"<Stat calls={self.calls} total={self.total:.6f}s>"


def _callable_name(handler: Callable[..., Any]) -> str:
    qualname = getattr(handler, "__qualname__", None)
    if qualname is not None:
        module = getattr(handler, "__module__", "") or ""
        short = module.rsplit(".", 1)[-1]
        return f"{short}.{qualname}" if short else qualname
    # functools.partial, callable instances, …
    inner = getattr(handler, "func", None)
    if inner is not None:
        return f"partial({_callable_name(inner)})"
    return type(handler).__name__


class Profiler:
    """Accumulates per-event-type, per-handler, and per-callback timings."""

    def __init__(self) -> None:
        #: event class name -> Stat (inclusive dispatch time).
        self.events: Dict[str, Stat] = {}
        #: "EventType handler_qualname" -> Stat.
        self.handlers: Dict[str, Stat] = {}
        #: simulator callback qualname -> Stat.
        self.callbacks: Dict[str, Stat] = {}
        #: wall-clock of the profiled region (set by the session runner).
        self.wall_clock: Optional[float] = None
        self._handler_names: Dict[int, str] = {}

    # -- recording hooks (hot; keep them small) ------------------------
    def record_event(self, cls: type, elapsed: float) -> None:
        name = cls.__name__
        stat = self.events.get(name)
        if stat is None:
            stat = self.events[name] = Stat()
        stat.add(elapsed)

    def record_handler(self, cls: type, handler: Callable[..., Any],
                       elapsed: float) -> None:
        key = id(handler)
        name = self._handler_names.get(key)
        if name is None:
            name = self._handler_names[key] = (
                f"{cls.__name__} → {_callable_name(handler)}")
        stat = self.handlers.get(name)
        if stat is None:
            stat = self.handlers[name] = Stat()
        stat.add(elapsed)

    def record_callback(self, callback: Callable[..., Any],
                        elapsed: float) -> None:
        key = id(callback)
        name = self._handler_names.get(key)
        if name is None:
            name = self._handler_names[key] = _callable_name(callback)
        stat = self.callbacks.get(name)
        if stat is None:
            stat = self.callbacks[name] = Stat()
        stat.add(elapsed)

    # -- views ---------------------------------------------------------
    def top(self, table: Dict[str, Stat], count: int = 20
            ) -> List[Tuple[str, Stat]]:
        """The ``count`` heaviest rows of one table, by total time."""
        ordered = sorted(table.items(),
                         key=lambda item: (-item[1].total, item[0]))
        return ordered[:count]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_clock": self.wall_clock,
            "events": {k: v.to_dict() for k, v in sorted(self.events.items())},
            "handlers": {k: v.to_dict()
                         for k, v in sorted(self.handlers.items())},
            "callbacks": {k: v.to_dict()
                          for k, v in sorted(self.callbacks.items())},
        }

    def report(self, top: int = 15) -> str:
        """The rendered hot-path report (``repro profile``)."""
        sections = [
            ("Bus events (inclusive dispatch time)", self.events),
            ("Subscriber handlers", self.handlers),
            ("Simulator callbacks", self.callbacks),
        ]
        lines: List[str] = []
        if self.wall_clock is not None:
            lines.append(f"profiled wall clock: {self.wall_clock:.3f}s")
            lines.append("")
        for title, table in sections:
            lines.append(title)
            lines.append("-" * len(title))
            rows = self.top(table, top)
            if not rows:
                lines.append("  (no samples)")
                lines.append("")
                continue
            name_width = max(len(name) for name, _ in rows)
            header = (f"  {'name'.ljust(name_width)}  {'calls':>8}  "
                      f"{'total ms':>10}  {'mean µs':>9}")
            lines.append(header)
            for name, stat in rows:
                lines.append(
                    f"  {name.ljust(name_width)}  {stat.calls:>8}  "
                    f"{stat.total * 1e3:>10.3f}  {stat.mean * 1e6:>9.2f}")
            dropped = len(table) - len(rows)
            if dropped > 0:
                lines.append(f"  … {dropped} more")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def __repr__(self) -> str:
        return (f"<Profiler events={len(self.events)} "
                f"handlers={len(self.handlers)} "
                f"callbacks={len(self.callbacks)}>")


class ProfiledBus(EventBus):
    """An :class:`EventBus` whose publishes are timed into a profiler.

    Swap it in wherever a bus is constructed (``Simulator(bus=...)``);
    subscribers cannot tell the difference.  Delivery semantics are
    identical to the base class — same ordering, same cached dispatch
    lists — only bracketed by ``perf_counter`` reads.
    """

    __slots__ = ("profiler",)

    def __init__(self, profiler: Optional[Profiler] = None) -> None:
        super().__init__()
        self.profiler = profiler if profiler is not None else Profiler()

    def publish(self, event: TraceEvent) -> None:
        self.published += 1
        cls = event.__class__
        handlers = self._dispatch.get(cls)
        if handlers is None:
            handlers = self._by_type.get(cls, []) + self._all
            self._dispatch[cls] = handlers
        profiler = self.profiler
        started = perf_counter()
        for handler in handlers:
            handler_started = perf_counter()
            handler(event)
            profiler.record_handler(cls, handler,
                                    perf_counter() - handler_started)
        profiler.record_event(cls, perf_counter() - started)
