"""A typed, zero-dependency publish/subscribe bus.

Subscribers register for one event class (exact type, no subclass
dispatch — the taxonomy is flat) or for *every* event.  ``publish``
delivers synchronously, in subscription order, typed subscribers before
wildcard ones; since the simulator is single-threaded and events are
published in causal order, delivery order is fully deterministic — the
property the byte-identical trace-export guarantee rests on.

The publish hot path is one dict lookup plus the handler calls (the
typed-then-wildcard handler list is cached per event class), so an
unobserved layer costs almost nothing beyond constructing the event.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from .events import TraceEvent

Handler = Callable[[TraceEvent], None]


class EventBus:
    """Synchronous in-process event bus keyed by event class."""

    __slots__ = ("_by_type", "_all", "_dispatch", "published")

    def __init__(self) -> None:
        self._by_type: Dict[Type[TraceEvent], List[Handler]] = {}
        self._all: List[Handler] = []
        # Per-class combined (typed then wildcard) handler list, built
        # lazily on first publish and dropped on any subscription change.
        self._dispatch: Dict[Type[TraceEvent], List[Handler]] = {}
        #: Number of events published over the bus's lifetime.
        self.published = 0

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, event_type: Type[TraceEvent],
                  handler: Handler) -> Handler:
        """Call ``handler(event)`` for every published ``event_type``.

        Returns the handler so call sites can keep it for
        :meth:`unsubscribe`.
        """
        if not (isinstance(event_type, type)
                and issubclass(event_type, TraceEvent)):
            raise TypeError(
                f"event_type must be a TraceEvent subclass: {event_type!r}")
        self._by_type.setdefault(event_type, []).append(handler)
        self._dispatch.clear()
        return handler

    def subscribe_all(self, handler: Handler) -> Handler:
        """Call ``handler`` for every event, regardless of type."""
        self._all.append(handler)
        self._dispatch.clear()
        return handler

    def unsubscribe(self, event_type: Type[TraceEvent],
                    handler: Handler) -> None:
        """Remove a typed subscription.

        Unsubscribing a handler that was never registered (or was already
        removed) is a documented no-op, not an error — teardown paths may
        run more than once.
        """
        handlers = self._by_type.get(event_type)
        if handlers and handler in handlers:
            handlers.remove(handler)
            self._dispatch.clear()

    def unsubscribe_all(self, handler: Handler) -> None:
        """Remove a wildcard subscription; no-op if absent."""
        if handler in self._all:
            self._all.remove(handler)
            self._dispatch.clear()

    def subscriber_count(
            self, event_type: Optional[Type[TraceEvent]] = None) -> int:
        """Subscribers that would see an ``event_type`` event (or, with no
        argument, the total number of registrations)."""
        if event_type is None:
            return (sum(len(h) for h in self._by_type.values())
                    + len(self._all))
        return len(self._by_type.get(event_type, ())) + len(self._all)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self, event: TraceEvent) -> None:
        """Deliver ``event`` to typed then wildcard subscribers, in
        subscription order.  Handlers may publish further events (delivered
        depth-first) and may subscribe/unsubscribe, but such changes only
        affect publishes that have not started dispatching yet."""
        self.published += 1
        handlers = self._dispatch.get(event.__class__)
        if handlers is None:
            handlers = self._by_type.get(event.__class__, []) + self._all
            self._dispatch[event.__class__] = handlers
        for handler in handlers:
            handler(event)

    def __repr__(self) -> str:
        return (f"<EventBus subscribers={self.subscriber_count()} "
                f"published={self.published}>")
