"""JSONL trace export, loading, and offline replay.

The paper's §6 analysis tool consumes a packet trace plus a player event
log captured on a device.  This module is the reproduction's equivalent
capture format: every bus event serialized as one JSON object per line,
preceded by a metadata header.  A dumped trace round-trips exactly —
floats survive via ``repr`` — so replaying it through a fresh bus rebuilds
byte-identical :class:`~repro.mptcp.activity.ActivityLog` /
:class:`~repro.dash.events.PlayerEventLog` views and therefore identical
:class:`~repro.analysis.metrics.SessionMetrics`, enabling offline analysis
and cross-run diffing without re-simulating.

Determinism: events are written in publication order with sorted JSON
keys and compact separators, so two runs of the same seed configuration
produce byte-identical files.  Paths ending in ``.gz`` are transparently
gzip-compressed on write and decompressed on read; the gzip header is
pinned (``mtime=0``, no filename) so compressed traces are just as
byte-stable as plain ones — the property the fleet flight recorder's
re-run-captures-identical-artifacts contract rests on.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import asdict, dataclass, field
from typing import IO, Iterable, List, Union

from .bus import EventBus
from .events import TraceEvent, event_from_dict, event_to_dict

#: Current trace format version.
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceMeta:
    """Header line: everything a consumer needs to interpret the stream."""

    session_duration: float
    activity_bin: float = 0.1
    steady_state_fraction: float = 0.0
    device: str = "galaxy_note"
    version: int = TRACE_VERSION


@dataclass
class Trace:
    """A loaded trace: header plus the event stream in causal order."""

    meta: TraceMeta
    events: List[TraceEvent] = field(default_factory=list)

    def count_by_type(self) -> dict:
        counts: dict = {}
        for event in self.events:
            name = type(event).__name__
            counts[name] = counts.get(name, 0) + 1
        return counts


class TraceRecorder:
    """Wildcard subscriber that accumulates the full event stream."""

    def __init__(self, bus: EventBus):
        self.events: List[TraceEvent] = []
        bus.subscribe_all(self.events.append)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _dump_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def dumps_jsonl(events: Iterable[TraceEvent], meta: TraceMeta) -> str:
    """Serialize a trace to its canonical (byte-stable) JSONL text."""
    lines = [_dump_line({"meta": asdict(meta)})]
    lines.extend(_dump_line(event_to_dict(event)) for event in events)
    return "\n".join(lines) + "\n"


def _is_gzip_path(path: object) -> bool:
    return str(path).endswith(".gz")


def gzip_bytes(data: bytes) -> bytes:
    """Deterministic gzip: fixed compression level, ``mtime=0``, no
    embedded filename, so equal inputs compress to equal bytes."""
    buffer = io.BytesIO()
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
        handle.write(data)
    return buffer.getvalue()


def dump_jsonl(path_or_file: Union[str, IO[str]],
               events: Iterable[TraceEvent], meta: TraceMeta) -> None:
    """Write a JSONL trace to ``path_or_file`` (gzipped for ``.gz``)."""
    text = dumps_jsonl(events, meta)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    elif _is_gzip_path(path_or_file):
        with open(path_or_file, "wb") as handle:
            handle.write(gzip_bytes(text.encode("utf-8")))
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)


def loads_jsonl(text: str) -> Trace:
    """Parse the canonical JSONL text back into a :class:`Trace`."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = json.loads(lines[0])
    if "meta" not in header:
        raise ValueError("trace missing meta header line")
    meta_fields = dict(header["meta"])
    version = meta_fields.get("version", TRACE_VERSION)
    if version != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {version!r} "
                         f"(expected {TRACE_VERSION})")
    meta = TraceMeta(**meta_fields)
    events = [event_from_dict(json.loads(line)) for line in lines[1:]]
    return Trace(meta=meta, events=events)


def load_jsonl(path_or_file: Union[str, IO[str]]) -> Trace:
    """Read a JSONL trace from ``path_or_file`` (gunzipped for ``.gz``)."""
    if hasattr(path_or_file, "read"):
        return loads_jsonl(path_or_file.read())
    if _is_gzip_path(path_or_file):
        with gzip.open(path_or_file, "rt", encoding="utf-8") as handle:
            return loads_jsonl(handle.read())
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return loads_jsonl(handle.read())


# ----------------------------------------------------------------------
# Offline replay
# ----------------------------------------------------------------------
def replay(events: Iterable[TraceEvent], bus: EventBus) -> None:
    """Publish a recorded stream onto ``bus`` in its original order."""
    for event in events:
        bus.publish(event)


def analyzer_from_trace(trace: Trace, device=None):
    """Rebuild the §6 analysis tool from a trace, without a simulator.

    Replays the stream into fresh bus-subscribed ``ActivityLog`` /
    ``PlayerEventLog`` views and wraps them in a
    :class:`~repro.analysis.analyzer.MultipathVideoAnalyzer` — the offline
    half of the paper's capture-then-analyze workflow.
    """
    from ..analysis.analyzer import MultipathVideoAnalyzer
    from ..dash.events import PlayerEventLog
    from ..energy.devices import DEVICES
    from ..mptcp.activity import ActivityLog

    if device is None:
        device = DEVICES[trace.meta.device]
    bus = EventBus()
    activity = ActivityLog(trace.meta.activity_bin)
    activity.attach(bus)
    log = PlayerEventLog()
    log.attach(bus)
    replay(trace.events, bus)
    return MultipathVideoAnalyzer(activity, log,
                                  trace.meta.session_duration, device)


def metrics_from_trace(trace: Trace, device=None):
    """Offline :class:`~repro.analysis.metrics.SessionMetrics` — identical
    to the live run's when the trace came from ``SessionResult``."""
    analyzer = analyzer_from_trace(trace, device)
    return analyzer.metrics(trace.meta.steady_state_fraction)
