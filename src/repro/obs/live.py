"""Live terminal dashboard for parameter sweeps.

:class:`SweepDashboard` subscribes to the ``Sweep*`` events the sweep
engine already publishes and redraws a small plain-ANSI status block —
per-worker progress, cache hits, failures, and rolling QoE aggregates
from :class:`~repro.obs.events.SweepRunSummarized` — after every event
(throttled by the sweep clock).

Two contracts, both load-bearing:

* **The machine-parseable stdout contract is never touched.**  The
  dashboard draws exclusively on its ``stream`` (``sys.stderr`` by
  default); summary/JSON payloads on stdout stay clean even mid-redraw.
* **Zero overhead when disabled.**  When stdout or the stream is not a
  TTY (CI, pipes), :meth:`attach` subscribes nothing at all — the bus
  dispatch path is exactly as long as without a dashboard.
"""

from __future__ import annotations

import sys
from typing import IO, Dict, List, Optional

from .bus import EventBus
from .events import (SweepCompleted, SweepRunFailed, SweepRunFinished,
                     SweepRunStarted, SweepRunSummarized, SweepStarted)

#: Redraws are rate-limited to one per this many seconds of sweep-clock
#: time, except for start/fail/complete which always draw.
_MIN_INTERVAL = 0.2

_BAR_WIDTH = 26


class SweepDashboard:
    """Rolling sweep status on a terminal, fed by the sweep's own bus.

    Parameters
    ----------
    stream:
        Where to draw; defaults to ``sys.stderr``.  Never stdout.
    enabled:
        Force on/off.  ``None`` (the default) auto-detects: the dashboard
        only activates when **both** stdout and the draw stream are TTYs,
        so redirecting either (CI logs, ``> sweep.json``) silently
        disables it and the sweep behaves exactly as before.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 enabled: Optional[bool] = None) -> None:
        self.stream: IO[str] = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = self._isatty(sys.stdout) and self._isatty(self.stream)
        self.enabled = bool(enabled)
        self.total = 0
        self.jobs = 0
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.active: Dict[int, str] = {}  # run index -> config key
        self.summarized = 0
        self.bitrate_sum = 0.0
        self.stalls = 0
        self.cellular_bytes = 0.0
        self.violations = 0
        self._started_at = 0.0
        self._last_draw = float("-inf")
        self._drawn_lines = 0

    @staticmethod
    def _isatty(stream: object) -> bool:
        isatty = getattr(stream, "isatty", None)
        try:
            return bool(isatty()) if callable(isatty) else False
        except (ValueError, OSError):
            return False

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> None:
        """Subscribe to the sweep events — or to nothing when disabled."""
        if not self.enabled:
            return
        bus.subscribe(SweepStarted, self._on_started)
        bus.subscribe(SweepRunStarted, self._on_run_started)
        bus.subscribe(SweepRunFinished, self._on_run_finished)
        bus.subscribe(SweepRunSummarized, self._on_run_summarized)
        bus.subscribe(SweepRunFailed, self._on_run_failed)
        bus.subscribe(SweepCompleted, self._on_completed)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_started(self, event: SweepStarted) -> None:
        self.total = event.total
        self.jobs = event.jobs
        self._started_at = event.time
        self._draw(event.time, force=True)

    def _on_run_started(self, event: SweepRunStarted) -> None:
        self.active[event.index] = event.key
        self._draw(event.time)

    def _on_run_finished(self, event: SweepRunFinished) -> None:
        self.active.pop(event.index, None)
        self.done += 1
        if event.cached:
            self.cache_hits += 1
        self._draw(event.time)

    def _on_run_summarized(self, event: SweepRunSummarized) -> None:
        self.summarized += 1
        self.bitrate_sum += event.mean_bitrate
        self.stalls += event.stall_count
        self.cellular_bytes += event.cellular_bytes
        self.violations += event.violations
        self._draw(event.time)

    def _on_run_failed(self, event: SweepRunFailed) -> None:
        self.active.pop(event.index, None)
        self.done += 1
        self.failed += 1
        self._draw(event.time, force=True)

    def _on_completed(self, event: SweepCompleted) -> None:
        self.done = event.succeeded + event.failed
        self.failed = event.failed
        self.cache_hits = event.cache_hits
        self.active.clear()
        self._draw(event.time, force=True, final=True)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_lines(self) -> List[str]:
        """The current frame, as plain text lines (ANSI-free)."""
        fraction = self.done / self.total if self.total else 0.0
        filled = int(round(fraction * _BAR_WIDTH))
        bar = "#" * filled + "." * (_BAR_WIDTH - filled)
        lines = [
            f"sweep [{bar}] {self.done}/{self.total} "
            f"({fraction:.0%})  failed {self.failed}  "
            f"cached {self.cache_hits}  workers {self.jobs}",
        ]
        if self.active:
            shown = sorted(self.active)[:6]
            runs = "  ".join(f"#{i}:{self.active[i][:8]}" for i in shown)
            more = len(self.active) - len(shown)
            lines.append(f"active {runs}" + (f"  (+{more})" if more else ""))
        else:
            lines.append("active -")
        if self.summarized:
            mean_mbps = (self.bitrate_sum / self.summarized) * 8.0 / 1e6
            lines.append(
                f"qoe    bitrate {mean_mbps:.2f} Mbit/s  "
                f"stalls {self.stalls}  "
                f"cellular {self.cellular_bytes / 1e6:.1f} MB  "
                f"violations {self.violations}")
        else:
            lines.append("qoe    -")
        return lines

    def _draw(self, now: float, force: bool = False,
              final: bool = False) -> None:
        if not force and now - self._last_draw < _MIN_INTERVAL:
            return
        self._last_draw = now
        lines = self.render_lines()
        out: List[str] = []
        if self._drawn_lines:
            out.append(f"\x1b[{self._drawn_lines}F")  # up to first line
        for line in lines:
            out.append("\x1b[2K" + line + "\n")
        if final:
            self._drawn_lines = 0
        else:
            self._drawn_lines = len(lines)
        try:
            self.stream.write("".join(out))
            self.stream.flush()
        except (ValueError, OSError):
            self.enabled = False  # stream closed mid-sweep; go quiet
