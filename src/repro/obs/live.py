"""Live terminal dashboards for parameter sweeps and fleet campaigns.

:class:`SweepDashboard` subscribes to the ``Sweep*`` events the sweep
engine already publishes and redraws a small plain-ANSI status block —
per-worker progress, cache hits, failures, and rolling QoE aggregates
from :class:`~repro.obs.events.SweepRunSummarized` — after every event
(throttled by the sweep clock).  :class:`FleetDashboard` does the same
for fleet campaigns from the ``Fleet*`` stream: shard progress, per-
worker lanes fed by :class:`~repro.obs.events.FleetWorkerHeartbeat`
(throughput, peak RSS, straggler flagging), flight-recorder captures,
and an ETA.

Two contracts, both load-bearing and shared by both dashboards:

* **The machine-parseable stdout contract is never touched.**  A
  dashboard draws exclusively on its ``stream`` (``sys.stderr`` by
  default); summary/JSON payloads on stdout stay clean even mid-redraw.
* **Zero overhead when disabled.**  When stdout or the stream is not a
  TTY (CI, pipes), :meth:`attach` subscribes nothing at all — the bus
  dispatch path is exactly as long as without a dashboard.
"""

from __future__ import annotations

import sys
from typing import IO, Dict, List, Optional

from .bus import EventBus
from .events import (FleetCheckpointSaved, FleetCompleted,
                     FleetSessionCaptured, FleetShardCompleted,
                     FleetStarted, FleetWorkerHeartbeat, SweepCompleted,
                     SweepRunFailed, SweepRunFinished, SweepRunStarted,
                     SweepRunSummarized, SweepStarted)

#: Redraws are rate-limited to one per this many seconds of sweep-clock
#: time, except for start/fail/complete which always draw.
_MIN_INTERVAL = 0.2

_BAR_WIDTH = 26

#: A worker lane is flagged as a straggler when its latest shard took
#: more than this multiple of the median shard wall time.
_STRAGGLER_FACTOR = 2.0


class _LiveDashboard:
    """Shared redraw machinery: TTY detection, throttling, ANSI repaint.

    Subclasses implement :meth:`attach` (their event subscriptions) and
    :meth:`render_lines` (their frame); everything about *how* frames
    reach the terminal — and the two contracts in the module docstring —
    lives here, once.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 enabled: Optional[bool] = None) -> None:
        self.stream: IO[str] = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = self._isatty(sys.stdout) and self._isatty(self.stream)
        self.enabled = bool(enabled)
        self._last_draw = float("-inf")
        self._drawn_lines = 0

    @staticmethod
    def _isatty(stream: object) -> bool:
        isatty = getattr(stream, "isatty", None)
        try:
            return bool(isatty()) if callable(isatty) else False
        except (ValueError, OSError):
            return False

    def attach(self, bus: EventBus) -> None:
        raise NotImplementedError

    def render_lines(self) -> List[str]:
        """The current frame, as plain text lines (ANSI-free)."""
        raise NotImplementedError

    def _draw(self, now: float, force: bool = False,
              final: bool = False) -> None:
        if not force and now - self._last_draw < _MIN_INTERVAL:
            return
        self._last_draw = now
        lines = self.render_lines()
        out: List[str] = []
        if self._drawn_lines:
            out.append(f"\x1b[{self._drawn_lines}F")  # up to first line
        for line in lines:
            out.append("\x1b[2K" + line + "\n")
        if final:
            self._drawn_lines = 0
        else:
            self._drawn_lines = len(lines)
        try:
            self.stream.write("".join(out))
            self.stream.flush()
        except (ValueError, OSError):
            self.enabled = False  # stream closed mid-run; go quiet


class SweepDashboard(_LiveDashboard):
    """Rolling sweep status on a terminal, fed by the sweep's own bus.

    Parameters
    ----------
    stream:
        Where to draw; defaults to ``sys.stderr``.  Never stdout.
    enabled:
        Force on/off.  ``None`` (the default) auto-detects: the dashboard
        only activates when **both** stdout and the draw stream are TTYs,
        so redirecting either (CI logs, ``> sweep.json``) silently
        disables it and the sweep behaves exactly as before.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 enabled: Optional[bool] = None) -> None:
        super().__init__(stream, enabled)
        self.total = 0
        self.jobs = 0
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.active: Dict[int, str] = {}  # run index -> config key
        self.summarized = 0
        self.bitrate_sum = 0.0
        self.stalls = 0
        self.cellular_bytes = 0.0
        self.violations = 0
        self._started_at = 0.0

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> None:
        """Subscribe to the sweep events — or to nothing when disabled."""
        if not self.enabled:
            return
        bus.subscribe(SweepStarted, self._on_started)
        bus.subscribe(SweepRunStarted, self._on_run_started)
        bus.subscribe(SweepRunFinished, self._on_run_finished)
        bus.subscribe(SweepRunSummarized, self._on_run_summarized)
        bus.subscribe(SweepRunFailed, self._on_run_failed)
        bus.subscribe(SweepCompleted, self._on_completed)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_started(self, event: SweepStarted) -> None:
        self.total = event.total
        self.jobs = event.jobs
        self._started_at = event.time
        self._draw(event.time, force=True)

    def _on_run_started(self, event: SweepRunStarted) -> None:
        self.active[event.index] = event.key
        self._draw(event.time)

    def _on_run_finished(self, event: SweepRunFinished) -> None:
        self.active.pop(event.index, None)
        self.done += 1
        if event.cached:
            self.cache_hits += 1
        self._draw(event.time)

    def _on_run_summarized(self, event: SweepRunSummarized) -> None:
        self.summarized += 1
        self.bitrate_sum += event.mean_bitrate
        self.stalls += event.stall_count
        self.cellular_bytes += event.cellular_bytes
        self.violations += event.violations
        self._draw(event.time)

    def _on_run_failed(self, event: SweepRunFailed) -> None:
        self.active.pop(event.index, None)
        self.done += 1
        self.failed += 1
        self._draw(event.time, force=True)

    def _on_completed(self, event: SweepCompleted) -> None:
        self.done = event.succeeded + event.failed
        self.failed = event.failed
        self.cache_hits = event.cache_hits
        self.active.clear()
        self._draw(event.time, force=True, final=True)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_lines(self) -> List[str]:
        """The current frame, as plain text lines (ANSI-free)."""
        fraction = self.done / self.total if self.total else 0.0
        filled = int(round(fraction * _BAR_WIDTH))
        bar = "#" * filled + "." * (_BAR_WIDTH - filled)
        lines = [
            f"sweep [{bar}] {self.done}/{self.total} "
            f"({fraction:.0%})  failed {self.failed}  "
            f"cached {self.cache_hits}  workers {self.jobs}",
        ]
        if self.active:
            shown = sorted(self.active)[:6]
            runs = "  ".join(f"#{i}:{self.active[i][:8]}" for i in shown)
            more = len(self.active) - len(shown)
            lines.append(f"active {runs}" + (f"  (+{more})" if more else ""))
        else:
            lines.append("active -")
        if self.summarized:
            mean_mbps = (self.bitrate_sum / self.summarized) * 8.0 / 1e6
            lines.append(
                f"qoe    bitrate {mean_mbps:.2f} Mbit/s  "
                f"stalls {self.stalls}  "
                f"cellular {self.cellular_bytes / 1e6:.1f} MB  "
                f"violations {self.violations}")
        else:
            lines.append("qoe    -")
        return lines


class FleetDashboard(_LiveDashboard):
    """Rolling fleet-campaign status: shards, worker lanes, captures.

    Fed entirely by the parent-side ``Fleet*`` stream — one
    :class:`~repro.obs.events.FleetWorkerHeartbeat` per committed shard
    keeps a lane per worker process (shards done, simulated-seconds per
    wall-second, peak RSS, last session index), the latest
    :class:`~repro.obs.events.FleetSessionCaptured` is surfaced on the
    recorder line, and the ETA extrapolates from this run's commit rate.
    A worker whose latest shard took more than ``_STRAGGLER_FACTOR``
    times the median shard wall time is flagged ``straggler``.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 enabled: Optional[bool] = None) -> None:
        super().__init__(stream, enabled)
        self.total_sessions = 0
        self.total_shards = 0
        self.jobs = 0
        self.shards_done = 0
        self.sessions = 0
        self.failures = 0
        self.captured = 0
        self.checkpointed_shards = 0
        self.last_capture: Optional[str] = None
        #: worker pid -> lane state (shards, rate, RSS, last shard...).
        self.workers: Dict[int, Dict[str, float]] = {}
        self._elapsed: List[float] = []  # recent shard wall times
        self._started_at = 0.0
        self._committed_this_run = 0

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> None:
        """Subscribe to the fleet events — or to nothing when disabled."""
        if not self.enabled:
            return
        bus.subscribe(FleetStarted, self._on_started)
        bus.subscribe(FleetShardCompleted, self._on_shard)
        bus.subscribe(FleetWorkerHeartbeat, self._on_heartbeat)
        bus.subscribe(FleetSessionCaptured, self._on_captured)
        bus.subscribe(FleetCheckpointSaved, self._on_checkpoint)
        bus.subscribe(FleetCompleted, self._on_completed)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_started(self, event: FleetStarted) -> None:
        self.total_sessions = event.sessions
        self.total_shards = event.shards
        self.jobs = event.jobs
        self._started_at = event.time
        self._draw(event.time, force=True)

    def _on_shard(self, event: FleetShardCompleted) -> None:
        self.shards_done += 1
        self.sessions += event.sessions
        self.failures += event.failures
        self._committed_this_run += 1
        self._elapsed.append(event.elapsed)
        if len(self._elapsed) > 64:
            del self._elapsed[0]
        self._draw(event.time)

    def _on_heartbeat(self, event: FleetWorkerHeartbeat) -> None:
        self.captured += event.captured
        lane = self.workers.setdefault(event.worker, {
            "shards": 0, "sessions": 0, "sim_seconds": 0.0,
            "elapsed": 0.0, "peak_rss_kb": 0, "last_index": -1,
            "last_elapsed": 0.0})
        lane["shards"] += 1
        lane["sessions"] += event.sessions
        lane["sim_seconds"] += event.sim_seconds
        lane["elapsed"] += event.elapsed
        lane["peak_rss_kb"] = max(lane["peak_rss_kb"], event.peak_rss_kb)
        lane["last_index"] = event.last_index
        lane["last_elapsed"] = event.elapsed
        self._draw(event.time)

    def _on_captured(self, event: FleetSessionCaptured) -> None:
        self.last_capture = (f"#{event.session} {event.reason} "
                             f"(score {event.score:.2f})")
        self._draw(event.time, force=True)

    def _on_checkpoint(self, event: FleetCheckpointSaved) -> None:
        self.checkpointed_shards = event.shards_done
        self._draw(event.time)

    def _on_completed(self, event: FleetCompleted) -> None:
        self.shards_done = event.shards
        self.sessions = event.sessions
        self.failures = event.failures
        self._draw(event.time, force=True, final=True)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _median_elapsed(self) -> float:
        if not self._elapsed:
            return 0.0
        ordered = sorted(self._elapsed)
        return ordered[len(ordered) // 2]

    def _eta_seconds(self, now: float) -> Optional[float]:
        remaining = self.total_shards - self.shards_done
        span = now - self._started_at
        if remaining <= 0 or self._committed_this_run <= 0 or span <= 0:
            return None
        return remaining * span / self._committed_this_run

    def render_lines(self) -> List[str]:
        """The current frame, as plain text lines (ANSI-free)."""
        fraction = (self.shards_done / self.total_shards
                    if self.total_shards else 0.0)
        filled = int(round(fraction * _BAR_WIDTH))
        bar = "#" * filled + "." * (_BAR_WIDTH - filled)
        eta = self._eta_seconds(self._last_draw)
        lines = [
            f"fleet [{bar}] {self.shards_done}/{self.total_shards} "
            f"shards ({fraction:.0%})  sessions {self.sessions}  "
            f"failed {self.failures}  workers {self.jobs}"
            + (f"  eta ~{eta:.0f}s" if eta is not None else ""),
        ]
        median = self._median_elapsed()
        for pid in sorted(self.workers)[:8]:
            lane = self.workers[pid]
            rate = (lane["sim_seconds"] / lane["elapsed"]
                    if lane["elapsed"] > 0 else 0.0)
            straggler = (len(self._elapsed) >= 4 and median > 0 and
                         lane["last_elapsed"] > _STRAGGLER_FACTOR * median)
            lines.append(
                f"  w{pid}  shards {lane['shards']:.0f}  "
                f"{rate:.1f} sim-s/s  "
                f"rss {lane['peak_rss_kb'] / 1024:.0f} MB  "
                f"last #{lane['last_index']:.0f} "
                f"({lane['last_elapsed']:.1f}s)"
                + ("  ** straggler" if straggler else ""))
        if not self.workers:
            lines.append("  workers -")
        lines.append(
            f"rec    captured {self.captured}"
            + (f"  last {self.last_capture}" if self.last_capture else "")
            + (f"  ckpt @{self.checkpointed_shards}"
               if self.checkpointed_shards else ""))
        return lines
