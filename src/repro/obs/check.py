"""Declarative cross-layer invariant monitoring over the event bus.

The bus records what happened; this module *judges* it.  A
:class:`Checker` is a small state machine that subscribes to the typed
event stream and emits structured :class:`Violation` records whenever the
stream breaks one of the paper's semantic contracts — a scheduler
activation with no armed deadline, every path disabled while a deadline
is armed (the §3.1 / Algorithm 1 path-control contract), bytes appearing
from nowhere, an illegal radio-state transition.  The
:class:`InvariantMonitor` fans the stream out to a set of checkers (the
:func:`stock_checkers` encode the paper's semantics across every layer)
and collects their verdicts into a :class:`CheckReport`.

Like the other derived views (metrics, spans), checking is a pure
function of the event stream: attaching the monitor to a live session bus
or replaying that session's JSONL trace through :func:`check_trace`
yields *identical* verdicts — the determinism tests pin this.  Violations
carry the stream indices of their offending events, so a verdict links
back to the exact events (and therefore spans) that produced it.

Severities: ``ERROR`` marks a broken invariant (the ``repro check`` CLI
exits nonzero), ``WARNING`` marks a breached soft budget (SLO-style
deadline-miss / stall thresholds), ``INFO`` is advisory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple, Type)

from .bus import EventBus
from .events import (RADIO_ACTIVE, RADIO_IDLE, RADIO_TAIL, ChunkDownloaded,
                     ChunkRequested, CwndRestarted, DeadlineArmed,
                     DeadlineDisarmed, DeadlineExtended, DeadlineMissed,
                     HttpRequestSent, HttpResponseReceived, PacketSent,
                     PathSampled, PathStateRequested, QualitySwitched,
                     RadioStateChange, SchedulerActivated, SessionClosed,
                     StallEnd, StallStart, SubflowReconnected,
                     SubflowStateChange, SweepCompleted, SweepRunFailed,
                     SweepRunFinished, SweepRunStarted, SweepRunSummarized,
                     SweepStarted, TraceEvent, TransferCompleted,
                     TransferStarted)

#: Violation severities, in increasing order of badness.
INFO = "info"
WARNING = "warning"
ERROR = "error"
SEVERITIES = (INFO, WARNING, ERROR)

#: Sweep harness events carry wall-clock times from a different bus; no
#: session-level invariant applies to them.
_SWEEP_EVENTS = (SweepStarted, SweepRunStarted, SweepRunFinished,
                 SweepRunSummarized, SweepRunFailed, SweepCompleted)

#: Events held to per-path (not global) time monotonicity — see
#: :class:`MonotonicTimeChecker`.  Exact-class membership, matching the
#: stream's publication semantics (events are never subclassed).
_PER_PATH_EVENTS = frozenset((PacketSent, RadioStateChange))

_INF = math.inf


@dataclass(frozen=True)
class Violation:
    """One broken invariant: who found it, how bad, when, and why.

    ``events`` holds the zero-based stream indices of the offending
    events (publication order — the same order a JSONL trace lists them),
    so a violation can be joined back to the exact events and the span
    tree built from the same stream.
    """

    checker: str
    severity: str
    time: float
    message: str
    events: Tuple[int, ...] = ()
    details: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"checker": self.checker, "severity": self.severity,
                "time": self.time, "message": self.message,
                "events": list(self.events),
                "details": dict(self.details)}


class Checker:
    """Base of every invariant checker: a named bus-event state machine.

    Subclasses declare interest via :meth:`subscriptions` (event class →
    bound handler) and report through :meth:`violation`.  ``finish`` runs
    once at end of stream (at :class:`~repro.obs.events.SessionClosed`,
    or explicitly for truncated traces) for whole-session verdicts.
    """

    #: Stable identifier used in reports and violation records.
    name = "checker"
    #: Default severity of this checker's violations.
    severity = ERROR

    def __init__(self) -> None:
        self._monitor: Optional["InvariantMonitor"] = None

    def bind(self, monitor: "InvariantMonitor") -> None:
        self._monitor = monitor

    def subscriptions(self) -> Mapping[Type[TraceEvent],
                                       Callable[[TraceEvent], None]]:
        """Event class → handler; override in subclasses."""
        return {}

    def finish(self, time: float) -> None:
        """End-of-stream hook; ``time`` is the last simulated instant."""

    # ------------------------------------------------------------------
    def violation(self, time: float, message: str,
                  events: Sequence[int] = (),
                  severity: Optional[str] = None, **details: Any) -> None:
        """Record one violation; ``events`` defaults to the current event."""
        if self._monitor is None:
            raise RuntimeError(f"checker {self.name!r} is not bound to a "
                               f"monitor")
        if not events:
            index = self._monitor.index
            events = (index,) if index >= 0 else ()
        self._monitor.record(Violation(
            checker=self.name, severity=severity or self.severity,
            time=time, message=message, events=tuple(events),
            details=details))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class CheckReport:
    """Every verdict of one monitored stream, plus context."""

    violations: List[Violation]
    events: int
    checkers: List[str]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity violation was recorded."""
        return not any(v.severity == ERROR for v in self.violations)

    def count(self, severity: str) -> int:
        return sum(1 for v in self.violations if v.severity == severity)

    def errors(self) -> List[Violation]:
        """The ERROR-severity violations, in stream order — the subset
        the attribution engine explains."""
        return [v for v in self.violations if v.severity == ERROR]

    def by_severity(self) -> Dict[str, int]:
        return {severity: self.count(severity) for severity in SEVERITIES}

    def by_checker(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.checker] = counts.get(violation.checker, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok, "events": self.events,
                "checkers": list(self.checkers),
                "counts": self.by_severity(),
                "violations": [v.to_dict() for v in self.violations]}

    def render(self) -> str:
        """Human-readable verdict summary (the ``repro check`` view)."""
        counts = self.by_severity()
        lines = [f"checked {self.events} events with "
                 f"{len(self.checkers)} checkers: "
                 f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
                 f"{counts[INFO]} info"]
        for violation in self.violations:
            events = ",".join(str(i) for i in violation.events)
            lines.append(f"  [{violation.severity.upper():7s}] "
                         f"t={violation.time:10.3f}s {violation.checker}: "
                         f"{violation.message}"
                         + (f" (events {events})" if events else ""))
        if not self.violations:
            lines.append("  all invariants hold")
        return "\n".join(lines)


class InvariantMonitor:
    """Fans the bus stream out to checkers and collects their verdicts.

    One wildcard subscription tracks the stream index; per-event-class
    handler lists keep dispatch to one dict lookup, so unmonitored event
    types cost nothing beyond the index bump.  ``finish`` fires
    automatically at :class:`~repro.obs.events.SessionClosed` (after the
    checkers' own handlers) and is idempotent, so truncated traces can
    call it explicitly.
    """

    def __init__(self, checkers: Optional[Iterable[Checker]] = None,
                 bus: Optional[EventBus] = None):
        self.checkers: List[Checker] = (list(checkers) if checkers is not None
                                        else stock_checkers())
        self.violations: List[Violation] = []
        #: Stream index of the event currently being dispatched.
        self.index = -1
        self._last_time = 0.0
        self._finished = False
        self._handlers: Dict[Type[TraceEvent],
                             List[Callable[[TraceEvent], None]]] = {}
        self._wildcard: List[Callable[[TraceEvent], None]] = []
        #: Per-class merged typed+wildcard handler list, built lazily —
        #: ``observe`` runs once per event per session across entire
        #: fleets, so the merge must not happen per event.
        self._dispatch: Dict[Type[TraceEvent],
                             List[Callable[[TraceEvent], None]]] = {}
        for checker in self.checkers:
            checker.bind(self)
            for event_type, handler in checker.subscriptions().items():
                if event_type is None:
                    self._wildcard.append(handler)
                else:
                    self._handlers.setdefault(event_type, []).append(handler)
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus) -> "InvariantMonitor":
        bus.subscribe_all(self.observe)
        return self

    # ------------------------------------------------------------------
    def observe(self, event: TraceEvent) -> None:
        """Dispatch one event to every interested checker."""
        self.index += 1
        cls = event.__class__
        if cls not in _SWEEP_EVENTS and event.time > self._last_time:
            self._last_time = event.time
        handlers = self._dispatch.get(cls)
        if handlers is None:
            handlers = self._handlers.get(cls, []) + self._wildcard
            self._dispatch[cls] = handlers
        for handler in handlers:
            handler(event)
        if cls is SessionClosed:
            self.finish(event.time)

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)

    def finish(self, time: Optional[float] = None) -> None:
        """Run every checker's end-of-stream verdicts exactly once."""
        if self._finished:
            return
        self._finished = True
        end = self._last_time if time is None else time
        for checker in self.checkers:
            checker.finish(end)

    def report(self) -> CheckReport:
        return CheckReport(violations=list(self.violations),
                           events=self.index + 1,
                           checkers=[c.name for c in self.checkers])


def check_trace(trace, checkers: Optional[Iterable[Checker]] = None
                ) -> CheckReport:
    """Judge a loaded JSONL trace offline: identical verdicts to live.

    Feeds the stream straight into a fresh monitor — with the monitor as
    sole subscriber this is exactly a bus replay minus the dispatch
    overhead, which matters to the flight recorder's per-session check —
    and runs ``finish`` at the stream's ``SessionClosed`` (or the last
    event time for truncated traces), exactly as the live monitor would.
    """
    monitor = InvariantMonitor(checkers)
    observe = monitor.observe
    for event in trace.events:
        observe(event)
    monitor.finish()
    return monitor.report()


# ======================================================================
# Stock checkers: the paper's semantics, one invariant each
# ======================================================================
class MonotonicTimeChecker(Checker):
    """Simulated time never runs backwards.

    The stream as a whole is publication-ordered; every event's timestamp
    must be finite, non-negative, and non-decreasing — except
    :class:`~repro.obs.events.PacketSent` (bin-aggregated, documented as
    time-sorted per path only, flushed late at connection close) and
    :class:`~repro.obs.events.RadioStateChange` (derived per interface),
    which are held to per-path monotonicity instead.
    """

    name = "monotonic-time"

    def __init__(self) -> None:
        super().__init__()
        self._watermark = 0.0
        self._per_path: Dict[Tuple[str, str], float] = {}

    def subscriptions(self):
        return {None: self._on_event}

    def _on_event(self, event: TraceEvent) -> None:
        cls = event.__class__
        if cls in _SWEEP_EVENTS:
            return  # wall-clock times of the sweep harness, not the sim
        time = event.time
        # Hot path first: this handler sees every event of every checked
        # session, and almost all of them just advance the watermark.
        if self._watermark <= time < _INF \
                and cls not in _PER_PATH_EVENTS:
            self._watermark = time
            return
        if not math.isfinite(time) or time < 0.0:
            self.violation(0.0, f"{type(event).__name__} has illegal "
                           f"timestamp {time!r}", value=time)
            return
        if cls in _PER_PATH_EVENTS:
            key = (type(event).__name__, event.path)
            previous = self._per_path.get(key, 0.0)
            if time < previous - 1e-9:
                self.violation(
                    time, f"{key[0]} on path {event.path!r} went backwards: "
                    f"{time:.6f} < {previous:.6f}",
                    path=event.path, previous=previous)
            else:
                self._per_path[key] = time
            return
        if time < self._watermark - 1e-9:
            self.violation(
                time, f"{type(event).__name__} went backwards: "
                f"{time:.6f} < {self._watermark:.6f}",
                previous=self._watermark)
        else:
            self._watermark = time


class DeadlineLifecycleChecker(Checker):
    """The MP-DASH control plane's legal state machine.

    Mirrors :class:`~repro.core.scheduler.DeadlineAwareScheduler`: an
    ``MP_DASH_ENABLE`` (DeadlineArmed) makes a deadline *pending*; the
    next transfer start binds it (SchedulerActivated → *active*); the
    activation ends by transfer completion, deadline miss, or explicit
    disarm.  Activations without an armed deadline and misses for
    transfers that are not the bound one are illegal.
    """

    name = "deadline-lifecycle"

    def __init__(self) -> None:
        super().__init__()
        self._pending = False
        self._pending_event = -1
        self._active: Optional[int] = None  # bound transfer id

    def subscriptions(self):
        return {DeadlineArmed: self._on_armed,
                DeadlineDisarmed: self._on_disarmed,
                SchedulerActivated: self._on_activated,
                DeadlineMissed: self._on_missed,
                TransferCompleted: self._on_transfer_completed}

    def _on_armed(self, event: DeadlineArmed) -> None:
        if self._pending:
            self.violation(
                event.time, "deadline re-armed before the pending one "
                "activated (the earlier window is silently overwritten)",
                events=(self._pending_event, self._monitor.index),
                severity=WARNING)
        if self._active is not None:
            self.violation(
                event.time, f"deadline armed while transfer "
                f"{self._active} still carries an active deadline",
                severity=WARNING, active_transfer=self._active)
        if event.size <= 0 or event.window <= 0:
            self.violation(event.time, f"deadline armed with illegal "
                           f"size={event.size!r} window={event.window!r}")
        self._pending = True
        self._pending_event = self._monitor.index

    def _on_disarmed(self, event: DeadlineDisarmed) -> None:
        # MP_DASH_DISABLE is legal in any state (the adapter disarms
        # defensively on every skipped chunk).
        self._pending = False
        self._active = None

    def _on_activated(self, event: SchedulerActivated) -> None:
        if not self._pending:
            self.violation(
                event.time, f"scheduler activated for transfer "
                f"{event.transfer} with no armed deadline",
                transfer=event.transfer)
        if self._active is not None:
            self.violation(
                event.time, f"scheduler activated for transfer "
                f"{event.transfer} while transfer {self._active} is still "
                f"active", transfer=event.transfer,
                active_transfer=self._active)
        self._pending = False
        self._active = event.transfer

    def _on_missed(self, event: DeadlineMissed) -> None:
        if self._active != event.transfer:
            self.violation(
                event.time, f"deadline miss reported for transfer "
                f"{event.transfer} but the active deadline is "
                f"{self._active}", transfer=event.transfer,
                active_transfer=self._active)
        if self._active == event.transfer:
            self._active = None

    def _on_transfer_completed(self, event: TransferCompleted) -> None:
        if self._active == event.transfer:
            self._active = None  # deactivation condition (1): S bytes done


class PathControlChecker(Checker):
    """§3.1 / Algorithm 1: never every path disabled while a deadline is
    armed.

    MP-DASH always drives the preferred path; a scheduler that requests
    *all* paths off while a deadline is pending or active has wedged the
    transfer it is supposed to expedite.  Path states are tracked from
    :class:`~repro.obs.events.PathStateRequested` (the client's intent —
    the violation exists the moment it is requested, before signaling
    delay).  The check fires only once at least two paths are known, so a
    legitimately single-path stream cannot trip it.
    """

    name = "path-control"

    def __init__(self) -> None:
        super().__init__()
        self._armed = False
        self._active: Optional[int] = None
        self._requested: Dict[str, bool] = {}
        self._known: Set[str] = set()

    def subscriptions(self):
        return {DeadlineArmed: self._on_armed,
                DeadlineDisarmed: self._on_disarmed,
                SchedulerActivated: self._on_activated,
                DeadlineMissed: self._on_missed,
                TransferCompleted: self._on_transfer_completed,
                PathStateRequested: self._on_path_state,
                PacketSent: self._learn_path,
                PathSampled: self._learn_path,
                SubflowStateChange: self._learn_path,
                SubflowReconnected: self._learn_path,
                CwndRestarted: self._learn_path}

    # -- armed-window tracking -----------------------------------------
    def _on_armed(self, event: DeadlineArmed) -> None:
        self._armed = True
        self._check(event.time)

    def _on_disarmed(self, event: DeadlineDisarmed) -> None:
        self._armed = False
        self._active = None

    def _on_activated(self, event: SchedulerActivated) -> None:
        self._armed = True
        self._active = event.transfer

    def _on_missed(self, event: DeadlineMissed) -> None:
        if self._active == event.transfer or self._active is None:
            self._armed = False
            self._active = None

    def _on_transfer_completed(self, event: TransferCompleted) -> None:
        if self._active == event.transfer:
            self._armed = False
            self._active = None

    # -- path-state tracking -------------------------------------------
    def _learn_path(self, event) -> None:
        path = event.path
        if path not in self._known:
            self._known.add(path)
            self._requested.setdefault(path, True)

    def _on_path_state(self, event: PathStateRequested) -> None:
        self._known.add(event.path)
        self._requested[event.path] = event.enabled
        if not event.enabled:
            self._check(event.time)

    def _check(self, time: float) -> None:
        if (self._armed and len(self._known) >= 2
                and not any(self._requested.get(p, True)
                            for p in self._known)):
            self.violation(
                time, f"all {len(self._known)} paths requested disabled "
                f"while a deadline is armed (Algorithm 1 always keeps the "
                f"preferred path on)", paths=sorted(self._known))


class ByteConservationChecker(Checker):
    """Bytes are conserved from transport deliveries to player chunks.

    Per chunk: the per-path byte breakdown must sum to the chunk's size.
    Per session: the bytes the transport delivered (PacketSent) must
    cover the bytes the transfers claim completed, and — when no transfer
    was cut off by session end — match them.
    """

    name = "byte-conservation"

    #: Relative tolerance of the fluid model's float accumulation.
    REL = 1e-3
    ABS = 1.0  # bytes

    def __init__(self) -> None:
        super().__init__()
        self._delivered = 0.0     # sum of PacketSent bytes
        self._completed = 0.0     # sum of TransferCompleted sizes
        self._open: Set[Tuple[int, int]] = set()  # (conn, transfer)

    def subscriptions(self):
        return {PacketSent: self._on_packet,
                TransferStarted: self._on_started,
                TransferCompleted: self._on_completed,
                ChunkDownloaded: self._on_chunk}

    def _on_packet(self, event: PacketSent) -> None:
        if event.num_bytes < 0:
            self.violation(event.time, f"negative PacketSent on "
                           f"{event.path!r}: {event.num_bytes!r}",
                           path=event.path)
            return
        self._delivered += event.num_bytes

    def _on_started(self, event: TransferStarted) -> None:
        self._open.add((event.conn, event.transfer))

    def _on_completed(self, event: TransferCompleted) -> None:
        self._open.discard((event.conn, event.transfer))
        self._completed += event.size

    def _on_chunk(self, event: ChunkDownloaded) -> None:
        per_path = sum(event.bytes_per_path.values())
        if abs(per_path - event.size) > max(self.REL * event.size, self.ABS):
            self.violation(
                event.time, f"chunk {event.index} per-path bytes "
                f"{per_path:.0f} != size {event.size:.0f}",
                index=event.index, per_path=per_path, size=event.size)

    def finish(self, time: float) -> None:
        tolerance = max(self.REL * max(self._completed, self._delivered),
                        self.ABS)
        if self._completed - self._delivered > tolerance:
            self.violation(
                time, f"transfers completed {self._completed:.0f} bytes but "
                f"the transport only delivered {self._delivered:.0f}",
                completed=self._completed, delivered=self._delivered)
        elif not self._open and self._completed > 0 and \
                self._delivered - self._completed > tolerance:
            self.violation(
                time, f"transport delivered {self._delivered:.0f} bytes but "
                f"transfers only account for {self._completed:.0f}",
                completed=self._completed, delivered=self._delivered)


class StallPairingChecker(Checker):
    """StallStart / StallEnd strictly alternate, start first.

    A stall still open at session close is legal (the session may end
    mid-rebuffer); an end without a start, a nested start, or a stall of
    negative length is not.
    """

    name = "stall-pairing"

    def __init__(self) -> None:
        super().__init__()
        self._open: Optional[float] = None
        self._open_event = -1

    def subscriptions(self):
        return {StallStart: self._on_start, StallEnd: self._on_end}

    def _on_start(self, event: StallStart) -> None:
        if self._open is not None:
            self.violation(
                event.time, "stall started while another stall is open",
                events=(self._open_event, self._monitor.index))
        self._open = event.time
        self._open_event = self._monitor.index

    def _on_end(self, event: StallEnd) -> None:
        if self._open is None:
            self.violation(event.time, "stall ended with no open stall")
            return
        if event.time < self._open - 1e-9:
            self.violation(
                event.time, f"stall ends at {event.time:.3f}s before it "
                f"started at {self._open:.3f}s",
                events=(self._open_event, self._monitor.index))
        self._open = None


class HttpPairingChecker(Checker):
    """Every HttpResponseReceived answers exactly one outstanding
    HttpRequestSent, with matching request id and URL, never before the
    request was sent.  Requests still outstanding at session close are
    legal truncation."""

    name = "http-pairing"

    def __init__(self) -> None:
        super().__init__()
        self._outstanding: Dict[int, Tuple[str, float, int]] = {}

    def subscriptions(self):
        return {HttpRequestSent: self._on_request,
                HttpResponseReceived: self._on_response}

    def _on_request(self, event: HttpRequestSent) -> None:
        if event.request in self._outstanding:
            self.violation(
                event.time, f"request id {event.request} reused while "
                f"still outstanding", request=event.request, url=event.url,
                events=(self._outstanding[event.request][2],
                        self._monitor.index))
        self._outstanding[event.request] = (event.url, event.time,
                                            self._monitor.index)

    def _on_response(self, event: HttpResponseReceived) -> None:
        entry = self._outstanding.pop(event.request, None)
        if entry is None:
            self.violation(
                event.time, f"response for unknown request id "
                f"{event.request} ({event.url})", request=event.request,
                url=event.url)
            return
        url, sent_at, sent_index = entry
        if url != event.url:
            self.violation(
                event.time, f"response URL {event.url!r} != request URL "
                f"{url!r} for id {event.request}",
                events=(sent_index, self._monitor.index),
                request=event.request)
        if event.time < sent_at - 1e-9:
            self.violation(
                event.time, f"response at {event.time:.3f}s precedes its "
                f"request at {sent_at:.3f}s",
                events=(sent_index, self._monitor.index),
                request=event.request)


class BufferOccupancyChecker(Checker):
    """The playback buffer can never hold a negative amount of content."""

    name = "buffer-occupancy"

    def subscriptions(self):
        return {ChunkRequested: self._on_requested,
                ChunkDownloaded: self._on_downloaded,
                DeadlineExtended: self._on_extended}

    def _check(self, time: float, value: float, source: str) -> None:
        if value < -1e-9:
            self.violation(time, f"negative buffer occupancy "
                           f"{value:.6f}s reported by {source}",
                           value=value, source=source)

    def _on_requested(self, event: ChunkRequested) -> None:
        self._check(event.time, event.buffer_level, "ChunkRequested")

    def _on_downloaded(self, event: ChunkDownloaded) -> None:
        self._check(event.time, event.buffer_at_request, "ChunkDownloaded")

    def _on_extended(self, event: DeadlineExtended) -> None:
        self._check(event.time, event.buffer_level, "DeadlineExtended")


class RadioStateChecker(Checker):
    """Radio power states move ACTIVE→TAIL→IDLE (with TAIL→ACTIVE and
    IDLE→ACTIVE promotions) and nothing else — the §2.3 / Table 4 energy
    model's state machine.  Each interface starts idle."""

    name = "radio-state"

    _LEGAL = {(RADIO_IDLE, RADIO_ACTIVE), (RADIO_ACTIVE, RADIO_TAIL),
              (RADIO_TAIL, RADIO_IDLE), (RADIO_TAIL, RADIO_ACTIVE)}
    _STATES = (RADIO_ACTIVE, RADIO_TAIL, RADIO_IDLE)

    def __init__(self) -> None:
        super().__init__()
        self._state: Dict[str, str] = {}

    def subscriptions(self):
        return {RadioStateChange: self._on_change}

    def _on_change(self, event: RadioStateChange) -> None:
        if event.state not in self._STATES:
            self.violation(event.time, f"unknown radio state "
                           f"{event.state!r} on {event.path!r}",
                           path=event.path, state=event.state)
            return
        previous = self._state.get(event.path, RADIO_IDLE)
        if (previous, event.state) not in self._LEGAL:
            self.violation(
                event.time, f"illegal radio transition {previous} -> "
                f"{event.state} on {event.path!r}",
                path=event.path, from_state=previous, to_state=event.state)
        self._state[event.path] = event.state


class TransferLifecycleChecker(Checker):
    """Transfers start once, complete once, one at a time per connection,
    with a self-consistent size and duration."""

    name = "transfer-lifecycle"

    def __init__(self) -> None:
        super().__init__()
        # (conn, transfer) -> (start time, size, stream index)
        self._open: Dict[Tuple[int, int], Tuple[float, float, int]] = {}
        self._active_per_conn: Dict[int, int] = {}
        self._seen: Set[Tuple[int, int]] = set()

    def subscriptions(self):
        return {TransferStarted: self._on_started,
                TransferCompleted: self._on_completed}

    def _on_started(self, event: TransferStarted) -> None:
        key = (event.conn, event.transfer)
        if key in self._seen:
            self.violation(event.time, f"transfer {event.transfer} started "
                           f"twice on connection {event.conn}",
                           transfer=event.transfer)
        self._seen.add(key)
        active = self._active_per_conn.get(event.conn)
        if active is not None:
            self.violation(
                event.time, f"transfer {event.transfer} started while "
                f"transfer {active} is still active on connection "
                f"{event.conn}", transfer=event.transfer, active=active)
        self._active_per_conn[event.conn] = event.transfer
        self._open[key] = (event.time, event.size, self._monitor.index)

    def _on_completed(self, event: TransferCompleted) -> None:
        key = (event.conn, event.transfer)
        entry = self._open.pop(key, None)
        if self._active_per_conn.get(event.conn) == event.transfer:
            del self._active_per_conn[event.conn]
        if entry is None:
            self.violation(event.time, f"transfer {event.transfer} "
                           f"completed without starting",
                           transfer=event.transfer)
            return
        started_at, size, start_index = entry
        linked = (start_index, self._monitor.index)
        if abs(event.size - size) > max(1e-6 * size, 1e-6):
            self.violation(
                event.time, f"transfer {event.transfer} completed with size "
                f"{event.size!r} != started size {size!r}", events=linked,
                transfer=event.transfer)
        # duration is request-to-last-byte; TransferStarted fires one
        # request RTT later, so duration must *cover* the started ->
        # completed window but may legitimately exceed it.
        elapsed = event.time - started_at
        if event.duration < elapsed - 1e-6:
            self.violation(
                event.time, f"transfer {event.transfer} duration "
                f"{event.duration:.6f}s shorter than its observed "
                f"start-to-completion window {elapsed:.6f}s",
                events=linked, transfer=event.transfer)


class SubflowStateChecker(Checker):
    """Effective subflow state changes are real flips: a path that is
    already (server-side) enabled cannot 'change' to enabled again.
    Paths start enabled."""

    name = "subflow-state"

    def __init__(self) -> None:
        super().__init__()
        self._effective: Dict[Tuple[int, str], bool] = {}

    def subscriptions(self):
        return {SubflowStateChange: self._on_change}

    def _on_change(self, event: SubflowStateChange) -> None:
        key = (event.conn, event.path)
        current = self._effective.get(key, True)
        if event.enabled == current:
            self.violation(
                event.time, f"redundant subflow state change on "
                f"{event.path!r}: already "
                f"{'enabled' if current else 'disabled'}",
                path=event.path, enabled=event.enabled)
        self._effective[key] = event.enabled


class ChunkSanityChecker(Checker):
    """Per-chunk fields are physically sensible: positive sizes,
    non-negative durations and throughputs, causal request times, and
    real quality switches."""

    name = "chunk-sanity"

    def __init__(self) -> None:
        super().__init__()
        self._last_index: Optional[int] = None

    def subscriptions(self):
        return {ChunkRequested: self._on_requested,
                ChunkDownloaded: self._on_downloaded,
                QualitySwitched: self._on_switched}

    def _on_requested(self, event: ChunkRequested) -> None:
        if event.index < 0 or event.level < 0:
            self.violation(event.time, f"chunk request with illegal "
                           f"index={event.index} level={event.level}")
        if self._last_index is not None and event.index <= self._last_index:
            self.violation(
                event.time, f"chunk {event.index} requested after chunk "
                f"{self._last_index} (playback is sequential)",
                severity=WARNING, index=event.index)
        self._last_index = event.index

    def _on_downloaded(self, event: ChunkDownloaded) -> None:
        if event.size <= 0:
            self.violation(event.time, f"chunk {event.index} downloaded "
                           f"with size {event.size!r}", index=event.index)
        if event.duration < 0 or event.throughput < 0:
            self.violation(
                event.time, f"chunk {event.index} has negative "
                f"duration/throughput ({event.duration!r}, "
                f"{event.throughput!r})", index=event.index)
        if event.requested_at > event.time + 1e-9:
            self.violation(
                event.time, f"chunk {event.index} downloaded at "
                f"{event.time:.3f}s before its request at "
                f"{event.requested_at:.3f}s", index=event.index)
        if event.deadline is not None and event.deadline <= 0:
            self.violation(event.time, f"chunk {event.index} carries a "
                           f"non-positive deadline {event.deadline!r}",
                           index=event.index)

    def _on_switched(self, event: QualitySwitched) -> None:
        if event.from_level == event.to_level:
            self.violation(event.time, f"quality 'switch' to the same "
                           f"level {event.to_level}", level=event.to_level)
        if event.from_level < 0 or event.to_level < 0:
            self.violation(event.time, f"quality switch with negative "
                           f"level ({event.from_level} -> "
                           f"{event.to_level})")


class DeadlineBudgetChecker(Checker):
    """SLO: the deadline-miss rate stays under a configurable budget.

    A WARNING, not an ERROR — a breached budget is a quality regression,
    not a broken invariant.
    """

    name = "deadline-budget"
    severity = WARNING

    def __init__(self, max_miss_rate: float = 0.25):
        super().__init__()
        if not 0 <= max_miss_rate <= 1:
            raise ValueError(
                f"max_miss_rate must be in [0, 1]: {max_miss_rate!r}")
        self.max_miss_rate = max_miss_rate
        self._activations = 0
        self._misses = 0

    def subscriptions(self):
        return {SchedulerActivated: self._on_activated,
                DeadlineMissed: self._on_missed}

    def _on_activated(self, event: SchedulerActivated) -> None:
        self._activations += 1

    def _on_missed(self, event: DeadlineMissed) -> None:
        self._misses += 1

    def finish(self, time: float) -> None:
        if self._activations == 0:
            return
        rate = self._misses / self._activations
        if rate > self.max_miss_rate:
            self.violation(
                time, f"deadline-miss rate {rate:.1%} "
                f"({self._misses}/{self._activations}) exceeds budget "
                f"{self.max_miss_rate:.1%}", rate=rate,
                misses=self._misses, activations=self._activations,
                budget=self.max_miss_rate)


class StallBudgetChecker(Checker):
    """SLO: the fraction of session time spent rebuffering stays under a
    configurable budget (WARNING severity, like every budget)."""

    name = "stall-budget"
    severity = WARNING

    def __init__(self, max_stall_ratio: float = 0.10):
        super().__init__()
        if not 0 <= max_stall_ratio <= 1:
            raise ValueError(
                f"max_stall_ratio must be in [0, 1]: {max_stall_ratio!r}")
        self.max_stall_ratio = max_stall_ratio
        self._stall_time = 0.0
        self._open: Optional[float] = None

    def subscriptions(self):
        return {StallStart: self._on_start, StallEnd: self._on_end}

    def _on_start(self, event: StallStart) -> None:
        self._open = event.time

    def _on_end(self, event: StallEnd) -> None:
        if self._open is not None:
            self._stall_time += max(0.0, event.time - self._open)
            self._open = None

    def finish(self, time: float) -> None:
        if self._open is not None:
            self._stall_time += max(0.0, time - self._open)
            self._open = None
        if time <= 0:
            return
        ratio = self._stall_time / time
        if ratio > self.max_stall_ratio:
            self.violation(
                time, f"stall ratio {ratio:.1%} "
                f"({self._stall_time:.2f}s of {time:.2f}s) exceeds budget "
                f"{self.max_stall_ratio:.1%}", ratio=ratio,
                stall_time=self._stall_time, budget=self.max_stall_ratio)


def stock_checkers(max_miss_rate: float = 0.25,
                   max_stall_ratio: float = 0.10) -> List[Checker]:
    """The standard battery: every stock invariant across every layer.

    The two budget thresholds are the only knobs; everything else is a
    hard contract of the simulation's semantics.
    """
    return [
        MonotonicTimeChecker(),
        DeadlineLifecycleChecker(),
        PathControlChecker(),
        ByteConservationChecker(),
        TransferLifecycleChecker(),
        SubflowStateChecker(),
        StallPairingChecker(),
        HttpPairingChecker(),
        BufferOccupancyChecker(),
        RadioStateChecker(),
        ChunkSanityChecker(),
        DeadlineBudgetChecker(max_miss_rate=max_miss_rate),
        StallBudgetChecker(max_stall_ratio=max_stall_ratio),
    ]
