"""Causal root-cause attribution: explain *why* each anomaly happened.

The flight recorder (:mod:`repro.obs.recorder`) captures the worst
sessions of a fleet and ``repro triage`` ranks them, but a ranked list
still leaves the operator's actual question open: did this chunk miss
its deadline because WiFi collapsed, because Algorithm 1 armed the
cellular path too late, because the ABR picked a bitrate the paths could
never carry, because the throughput estimator lagged reality, or because
a queue built up in front of the deadline chunk?  Every signal needed to
answer that — per-subflow cwnd/RTT/throughput samples, path enable
requests, deadline arm/activate/miss events, per-chunk download records
— is already on the bus; this module connects them into explanations.

Like every derived view, attribution is a **pure function of the
trace**: :func:`attributions_from_trace` walks the span tree and the
indexed event history backwards through a small declarative rule set and
emits one :class:`Attribution` per anomaly (deadline miss, stall, or
ERROR invariant violation), carrying the blamed layer, the evidence
event indices, a counterfactual slack estimate ("activated 1.8 s
earlier ⇒ deadline met"), and a confidence tier.  Live runs, ``--load``
of the exported trace, and recorder-captured anomaly streams therefore
produce byte-identical verdicts.

The rule set, evaluated in order (first hit wins):

======================  ==========  ====================================
cause                   layer       trigger
======================  ==========  ====================================
path-control-violation  scheduler   an ERROR from the ``path-control``
                                    checker precedes the miss (all paths
                                    requested disabled while armed)
scheduler-activation-   scheduler   ``SchedulerActivated`` lagged
latency                             ``TransferStarted`` by enough to
                                    cover the deadline deficit
bandwidth-drop          network     the preferred path's sampled
                                    throughput during the transfer fell
                                    well below its session baseline
abr-overreach           abr         the chosen level needs more
                                    throughput than recent chunks
                                    actually delivered
estimator-drift         estimator   the path estimator promised far
                                    more than the chunk delivered
queue-buildup           network     RTT inflated without throughput
                                    gain: queued bytes ahead of the
                                    deadline chunk
======================  ==========  ====================================

Counterfactual slack is the rule-specific estimate of how many seconds
of deadline slack the blamed decision cost — e.g. for activation
latency it is the arm gap itself, for a bandwidth drop the extra
transfer time relative to the baseline rate.  When the causal chain is
malformed (orphaned transfers, chunks that never downloaded, truncated
traces) the walker degrades the verdict to ``confidence="low"`` instead
of raising.

Differential attribution (:func:`diff_traces`) aligns two traces of the
same manifest chunk-by-chunk, finds the first diverging decision (ABR
level pick or MP-DASH arm/skip), and ranks the per-cause anomaly deltas
— turning two ``repro compare`` arms into a "what changed" table.

Fleet aggregation (:func:`fold_attributions`) folds attribution counts
into the mergeable :class:`~repro.obs.metrics.MetricsRegistry` wire
format, so shard workers can ship root-cause histograms the same way
they ship QoE distributions and the fleet report can render "62 % of
deadline misses: WiFi dip" breakdowns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from statistics import fmean, median
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .check import CheckReport, Violation, check_trace
from .events import (ChunkDownloaded, ChunkRequested, DeadlineMissed,
                     MpDashArmed, MpDashSkipped, PathSampled,
                     PathStateRequested, SchedulerActivated,
                     SessionClosed, StallStart, TransferCompleted,
                     TransferStarted)
from .spans import spans_from_trace, transfer_chunk_map
from .trace_export import Trace, load_jsonl

# ----------------------------------------------------------------------
# Vocabulary
# ----------------------------------------------------------------------
#: Confidence tiers, strongest first.
CONFIDENCE_HIGH = "high"
CONFIDENCE_MEDIUM = "medium"
CONFIDENCE_LOW = "low"
CONFIDENCES = (CONFIDENCE_HIGH, CONFIDENCE_MEDIUM, CONFIDENCE_LOW)

#: Anomaly kinds an attribution explains.
KIND_MISS = "deadline-miss"
KIND_STALL = "stall"
KIND_VIOLATION = "violation"
_KIND_ORDER = {KIND_MISS: 0, KIND_STALL: 1, KIND_VIOLATION: 2}

#: Blamed layers (the paper's cross-layer decision chain).
LAYER_SCHEDULER = "scheduler"
LAYER_NETWORK = "network"
LAYER_ABR = "abr"
LAYER_ESTIMATOR = "estimator"
LAYER_PLAYER = "player"
LAYER_TRANSPORT = "transport"
LAYER_HTTP = "http"
LAYER_TRACE = "trace"
LAYER_UNKNOWN = "unknown"

#: Causes, in rule-evaluation order (first hit wins).
CAUSE_PATH_CONTROL = "path-control-violation"
CAUSE_ACTIVATION_LATENCY = "scheduler-activation-latency"
CAUSE_BANDWIDTH_DROP = "bandwidth-drop"
CAUSE_ABR_OVERREACH = "abr-overreach"
CAUSE_ESTIMATOR_DRIFT = "estimator-drift"
CAUSE_QUEUE_BUILDUP = "queue-buildup"
CAUSE_MISS_CASCADE = "miss-cascade"
CAUSE_INVARIANT = "invariant-violation"
CAUSE_UNKNOWN = "insufficient-evidence"

RULE_ORDER = (CAUSE_PATH_CONTROL, CAUSE_ACTIVATION_LATENCY,
              CAUSE_BANDWIDTH_DROP, CAUSE_ABR_OVERREACH,
              CAUSE_ESTIMATOR_DRIFT, CAUSE_QUEUE_BUILDUP)

#: Tie-break rank for "dominant cause": specific rules beat the generic
#: and fallback causes, in rule-evaluation order.
_CAUSE_RANK = {cause: rank for rank, cause in enumerate(
    RULE_ORDER + (CAUSE_MISS_CASCADE, CAUSE_INVARIANT, CAUSE_UNKNOWN))}

#: Checker name -> blamed layer for ERROR invariant violations.
CHECKER_LAYERS = {
    "monotonic-time": LAYER_TRACE,
    "deadline-lifecycle": LAYER_SCHEDULER,
    "path-control": LAYER_SCHEDULER,
    "deadline-budget": LAYER_SCHEDULER,
    "byte-conservation": LAYER_TRANSPORT,
    "transfer-lifecycle": LAYER_TRANSPORT,
    "subflow-state": LAYER_TRANSPORT,
    "radio-state": LAYER_TRANSPORT,
    "stall-pairing": LAYER_PLAYER,
    "buffer-occupancy": LAYER_PLAYER,
    "stall-budget": LAYER_PLAYER,
    "http-pairing": LAYER_HTTP,
    "chunk-sanity": LAYER_ABR,
}

# Rule thresholds.  Pinned module constants: verdicts must be a
# deterministic function of the trace alone, so there are no knobs.
_ACTIVATION_GAP_MIN = 0.1       # s of arm lag before the rule fires
_BANDWIDTH_DROP_FRACTION = 0.6  # window mean below this x baseline
_BANDWIDTH_DROP_SEVERE = 0.4    # ... and below this -> high confidence
_OVERREACH_HEADROOM = 1.2       # required rate above this x recent
_OVERREACH_SEVERE = 2.0
_DRIFT_FACTOR = 1.5             # estimate above this x delivered
_DRIFT_SEVERE = 2.0
_QUEUE_RTT_INFLATION = 2.0      # window RTT above this x baseline
_STALL_LOOKBACK = 10.0          # s a stall inherits a prior miss cause
_STALL_PROBE_WINDOW = 5.0       # s of samples behind an orphan stall
_RECENT_DOWNLOADS = 3           # chunks averaged for "recent delivery"
_MIN_BASELINE_SAMPLES = 6
_MIN_WINDOW_SAMPLES = 2


def _mbps(bytes_per_second: float) -> float:
    return bytes_per_second * 8.0 / 1e6


# ----------------------------------------------------------------------
# The verdict record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Attribution:
    """One explained anomaly: the blamed decision and its evidence.

    ``anomaly_index`` and ``evidence`` are zero-based indices into the
    trace's event stream (the same coordinate system
    :class:`~repro.obs.check.Violation` uses), ``slack`` the
    counterfactual slack estimate in seconds (how much the blamed cause
    cost), and ``confidence`` one of :data:`CONFIDENCES` — forced to
    ``"low"`` whenever the causal chain around the anomaly was
    incomplete.
    """

    kind: str
    anomaly_index: int
    time: float
    layer: str
    cause: str
    confidence: str
    chunk: Optional[int] = None
    transfer: Optional[int] = None
    slack: Optional[float] = None
    counterfactual: str = ""
    evidence: Tuple[int, ...] = ()
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "anomaly_index": self.anomaly_index,
                "time": self.time, "layer": self.layer,
                "cause": self.cause, "confidence": self.confidence,
                "chunk": self.chunk, "transfer": self.transfer,
                "slack": self.slack,
                "counterfactual": self.counterfactual,
                "evidence": list(self.evidence),
                "message": self.message}


#: Event types whose presence marks a per-event anomaly worth walking.
_ANOMALY_EVENT_TYPES = frozenset((DeadlineMissed, StallStart))


def _has_anomaly_events(events: Sequence[Any]) -> bool:
    """Cheap probe so anomaly-free traces skip the whole walk."""
    for event in events:
        if type(event) in _ANOMALY_EVENT_TYPES:
            return True
    return False


# ----------------------------------------------------------------------
# Indexed evidence: one pass over the stream
# ----------------------------------------------------------------------
class _Evidence:
    """Everything the rules consult, keyed by event stream index."""

    def __init__(self, events: Sequence[Any]):
        # path -> [(index, time, throughput, rtt, cwnd)]
        self.samples: Dict[str, List[Tuple[int, float, float, float,
                                           float]]] = {}
        # [(index, time, path, enabled)] client-side requests
        self.toggles: List[Tuple[int, float, str, bool]] = []
        # transfer -> (index, time, size, window)
        self.activations: Dict[int, Tuple[int, float, float, float]] = {}
        # [(index, time, transfer)] in stream order
        self.misses: List[Tuple[int, float, int]] = []
        # transfer -> (index, time, tag, size)
        self.transfer_start: Dict[int, Tuple[int, float, str,
                                             float]] = {}
        # transfer -> (index, time, duration)
        self.transfer_end: Dict[int, Tuple[int, float, float]] = {}
        # chunk -> (index, time, level, buffer_level)
        self.chunk_requested: Dict[int, Tuple[int, float, int,
                                              float]] = {}
        # chunk -> (index, ChunkDownloaded)
        self.chunk_downloads: Dict[int, Tuple[int, Any]] = {}
        # [(index, time, chunk, throughput)] in completion order
        self.downloads_order: List[Tuple[int, float, int, float]] = []
        # [(index, time)]
        self.stalls: List[Tuple[int, float]] = []
        # chunk -> (index, "armed"/"skipped", deadline-or-None)
        self.mpdash: Dict[int, Tuple[int, str, Optional[float]]] = {}
        self.closed = False
        for index, event in enumerate(events):
            cls = type(event)
            if cls is PathSampled:
                self.samples.setdefault(event.path, []).append(
                    (index, event.time, event.throughput, event.rtt,
                     event.cwnd))
            elif cls is PathStateRequested:
                self.toggles.append(
                    (index, event.time, event.path, event.enabled))
            elif cls is SchedulerActivated:
                self.activations[event.transfer] = (
                    index, event.time, event.size, event.window)
            elif cls is DeadlineMissed:
                self.misses.append((index, event.time, event.transfer))
            elif cls is TransferStarted:
                self.transfer_start[event.transfer] = (
                    index, event.time, event.tag, event.size)
            elif cls is TransferCompleted:
                self.transfer_end[event.transfer] = (
                    index, event.time, event.duration)
            elif cls is ChunkRequested:
                self.chunk_requested[event.index] = (
                    index, event.time, event.level, event.buffer_level)
            elif cls is ChunkDownloaded:
                self.chunk_downloads[event.index] = (index, event)
                self.downloads_order.append(
                    (index, event.time, event.index, event.throughput))
            elif cls is StallStart:
                self.stalls.append((index, event.time))
            elif cls is MpDashArmed:
                self.mpdash[event.index] = (index, "armed",
                                            event.deadline)
            elif cls is MpDashSkipped:
                self.mpdash[event.index] = (index, "skipped", None)
            elif cls is SessionClosed:
                self.closed = True

    def preferred_path(self) -> Optional[str]:
        """The path whose health the network rules judge.

        MP-DASH always prefers WiFi (§3.1), so ``wifi`` when sampled;
        otherwise the most-sampled path (ties broken by name, so the
        choice is deterministic)."""
        if "wifi" in self.samples:
            return "wifi"
        if not self.samples:
            return None
        return sorted(self.samples,
                      key=lambda path: (-len(self.samples[path]),
                                        path))[0]

    def window_samples(self, path: str, start: float, end: float,
                       column: int) -> List[Tuple[int, float]]:
        """``(index, value)`` of one sample column inside ``[start, end]``."""
        return [(sample[0], sample[column])
                for sample in self.samples.get(path, ())
                if start - 1e-9 <= sample[1] <= end + 1e-9]


# ----------------------------------------------------------------------
# The attribution walker
# ----------------------------------------------------------------------
class _RuleHit:
    """What one matched rule reports back to the walker."""

    __slots__ = ("layer", "cause", "confidence", "slack",
                 "counterfactual", "evidence", "message")

    def __init__(self, layer: str, cause: str, confidence: str,
                 slack: Optional[float], counterfactual: str,
                 evidence: Tuple[int, ...], message: str):
        self.layer = layer
        self.cause = cause
        self.confidence = confidence
        self.slack = slack
        self.counterfactual = counterfactual
        self.evidence = evidence
        self.message = message


class _Attributor:
    """One trace's walk: evidence index + span joins + the rule chain."""

    def __init__(self, trace: Trace, report: CheckReport):
        self.trace = trace
        self.report = report
        self.evidence = _Evidence(trace.events)
        spans = spans_from_trace(trace)
        self.transfer_chunk = transfer_chunk_map(spans)
        # transfer -> its deadline span (slack / deadline_at / window).
        self.deadline_spans = {
            span.attrs["transfer"]: span for span in spans
            if span.kind == "deadline" and "transfer" in span.attrs}
        self.errors = report.errors()

    # ------------------------------------------------------------------
    def explain(self) -> List[Attribution]:
        out: List[Attribution] = []
        miss_attrs: List[Attribution] = []
        for index, time, transfer in self.evidence.misses:
            attribution = self._safely(
                self._explain_miss, KIND_MISS, index, time,
                transfer=transfer)
            miss_attrs.append(attribution)
            out.append(attribution)
        for index, time in self.evidence.stalls:
            out.append(self._safely(self._explain_stall, KIND_STALL,
                                    index, time, prior=miss_attrs))
        for violation in self.errors:
            out.append(self._explain_violation(violation))
        out.sort(key=lambda a: (a.anomaly_index, _KIND_ORDER[a.kind],
                                a.cause))
        return out

    def _safely(self, walk, kind: str, index: int, time: float,
                **context) -> Attribution:
        """Degrade to a low-confidence verdict rather than raise.

        Malformed causal chains (orphaned transfers, truncated traces)
        are data, not bugs — the walker must always produce *a* verdict
        for every anomaly."""
        try:
            return walk(index, time, **context)
        except Exception as exc:  # degraded trace, never fatal
            return Attribution(
                kind=kind, anomaly_index=index, time=time,
                layer=LAYER_UNKNOWN, cause=CAUSE_UNKNOWN,
                confidence=CONFIDENCE_LOW, evidence=(index,),
                message=f"attribution walker degraded: "
                        f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # Deadline misses
    # ------------------------------------------------------------------
    def _explain_miss(self, index: int, time: float,
                      transfer: int) -> Attribution:
        ev = self.evidence
        start = ev.transfer_start.get(transfer)
        end = ev.transfer_end.get(transfer)
        activation = ev.activations.get(transfer)
        chunk = self.transfer_chunk.get(transfer)
        span = self.deadline_spans.get(transfer)
        window = (activation[3] if activation is not None
                  else span.attrs.get("window") if span is not None
                  else None)
        deadline_at = (span.attrs.get("deadline_at")
                       if span is not None else
                       activation[1] + activation[3]
                       if activation is not None else None)
        deficit = None
        if end is not None and deadline_at is not None:
            deficit = max(end[1] - deadline_at, 0.0)
        degraded = (not ev.closed or start is None or chunk is None
                    or chunk not in ev.chunk_downloads
                    or deficit is None)
        start_time = (start[1] if start is not None
                      else activation[1] if activation is not None
                      else time)
        context = {"index": index, "time": time, "transfer": transfer,
                   "chunk": chunk, "start": start, "end": end,
                   "activation": activation, "window": window,
                   "deficit": deficit, "start_time": start_time}
        for rule in (self._rule_path_control,
                     self._rule_activation_latency,
                     self._rule_bandwidth_drop,
                     self._rule_abr_overreach,
                     self._rule_estimator_drift,
                     self._rule_queue_buildup):
            hit = rule(context)
            if hit is not None:
                return Attribution(
                    kind=KIND_MISS, anomaly_index=index, time=time,
                    chunk=chunk, transfer=transfer, layer=hit.layer,
                    cause=hit.cause,
                    confidence=(CONFIDENCE_LOW if degraded
                                else hit.confidence),
                    slack=hit.slack, counterfactual=hit.counterfactual,
                    evidence=hit.evidence, message=hit.message)
        return self._unknown(KIND_MISS, index, time, chunk=chunk,
                             transfer=transfer, degraded=degraded)

    def _where(self, chunk: Optional[int], transfer: int) -> str:
        return (f"chunk {chunk}" if chunk is not None
                else f"transfer {transfer}")

    def _rule_path_control(self, ctx) -> Optional[_RuleHit]:
        """All paths requested disabled while a deadline was armed."""
        culprit = None
        for violation in self.errors:
            if (violation.checker == "path-control"
                    and violation.time <= ctx["time"] + 1e-9):
                culprit = violation
        if culprit is None:
            return None
        deficit = ctx["deficit"]
        baseline = self._baseline_throughput()
        capacity = (f"~{_mbps(baseline):.1f} Mb/s of delivery returns"
                    if baseline is not None else "delivery resumes")
        counterfactual = (
            f"preferred path kept enabled ⇒ {capacity}"
            + (f"; deadline was missed by {deficit:.2f} s"
               if deficit is not None else ""))
        evidence = tuple(sorted(set(culprit.events)
                                | {ctx["index"]}))
        return _RuleHit(
            LAYER_SCHEDULER, CAUSE_PATH_CONTROL, CONFIDENCE_HIGH,
            deficit, counterfactual, evidence,
            f"{self._where(ctx['chunk'], ctx['transfer'])} missed its "
            f"deadline after the scheduler disabled every path mid-"
            f"transfer (Algorithm 1 keeps the preferred path on): "
            f"{culprit.message}")

    def _rule_activation_latency(self, ctx) -> Optional[_RuleHit]:
        """The armed deadline bound to the transfer too late."""
        activation, start = ctx["activation"], ctx["start"]
        if activation is None or start is None:
            return None
        gap = activation[1] - start[1]
        if gap < _ACTIVATION_GAP_MIN:
            return None
        deficit = ctx["deficit"]
        if deficit is not None and gap < 0.5 * deficit:
            return None
        met = deficit is not None and gap >= deficit
        counterfactual = (
            f"scheduler activated {gap:.2f} s after the transfer "
            f"started; activating at start ⇒ "
            + ("deadline met" if met else f"miss shrinks by {gap:.2f} s"))
        return _RuleHit(
            LAYER_SCHEDULER, CAUSE_ACTIVATION_LATENCY,
            CONFIDENCE_HIGH if met else CONFIDENCE_MEDIUM, gap,
            counterfactual, (start[0], activation[0], ctx["index"]),
            f"{self._where(ctx['chunk'], ctx['transfer'])}: the "
            f"deadline was armed {gap:.2f} s into the transfer, "
            f"shrinking the scheduler's reaction window")

    def _baseline_throughput(self) -> Optional[float]:
        path = self.evidence.preferred_path()
        if path is None:
            return None
        values = [sample[2] for sample in self.evidence.samples[path]
                  if sample[2] > 0]
        if len(values) < _MIN_BASELINE_SAMPLES:
            return None
        return median(values)

    def _rule_bandwidth_drop(self, ctx) -> Optional[_RuleHit]:
        """The preferred path dipped well below its own baseline."""
        path = self.evidence.preferred_path()
        baseline = self._baseline_throughput()
        if path is None or baseline is None or baseline <= 0:
            return None
        window = self.evidence.window_samples(
            path, ctx["start_time"], ctx["time"], column=2)
        if len(window) < _MIN_WINDOW_SAMPLES:
            return None
        current = fmean(value for _, value in window)
        if current >= _BANDWIDTH_DROP_FRACTION * baseline:
            return None
        saved = None
        met = False
        if ctx["end"] is not None:
            duration = max(ctx["end"][1] - ctx["start_time"], 0.0)
            saved = duration * (1.0 - current / baseline)
            met = ctx["deficit"] is not None and saved >= ctx["deficit"]
        counterfactual = (
            f"{path} averaged {_mbps(current):.1f} Mb/s during the "
            f"transfer vs a typical {_mbps(baseline):.1f}"
            + (f"; at the typical rate the chunk finishes "
               f"{saved:.2f} s sooner" if saved is not None else "")
            + (" ⇒ deadline met" if met else ""))
        evidence = (window[0][0], window[-1][0], ctx["index"])
        severe = current < _BANDWIDTH_DROP_SEVERE * baseline
        return _RuleHit(
            LAYER_NETWORK, CAUSE_BANDWIDTH_DROP,
            CONFIDENCE_HIGH if severe else CONFIDENCE_MEDIUM, saved,
            counterfactual, evidence,
            f"{self._where(ctx['chunk'], ctx['transfer'])}: {path} "
            f"throughput collapsed to "
            f"{current / baseline:.0%} of its session baseline during "
            f"the transfer")

    def _rule_abr_overreach(self, ctx) -> Optional[_RuleHit]:
        """The ABR picked a level the recent delivery rate cannot carry."""
        chunk, window = ctx["chunk"], ctx["window"]
        if chunk is None or window is None or window <= 0:
            return None
        requested = self.evidence.chunk_requested.get(chunk)
        size = (ctx["start"][3] if ctx["start"] is not None
                else ctx["activation"][2]
                if ctx["activation"] is not None else None)
        if requested is None or size is None or size <= 0:
            return None
        prior = [entry for entry in self.evidence.downloads_order
                 if entry[1] <= requested[1] + 1e-9]
        if not prior:
            return None
        recent_entries = prior[-_RECENT_DOWNLOADS:]
        recent = fmean(entry[3] for entry in recent_entries)
        if recent <= 0:
            return None
        required = size / window
        if required <= _OVERREACH_HEADROOM * recent:
            return None
        fitted_slack = window - size / recent
        counterfactual = (
            f"level {requested[2]} needs {_mbps(required):.1f} Mb/s "
            f"inside the {window:.2f} s window but recent chunks "
            f"delivered {_mbps(recent):.1f}; sized to recent delivery "
            f"the chunk finishes {fitted_slack:+.2f} s from the "
            f"deadline")
        evidence = (requested[0], recent_entries[-1][0], ctx["index"])
        severe = required > _OVERREACH_SEVERE * recent
        return _RuleHit(
            LAYER_ABR, CAUSE_ABR_OVERREACH,
            CONFIDENCE_HIGH if severe else CONFIDENCE_MEDIUM,
            fitted_slack, counterfactual, evidence,
            f"chunk {chunk}: the ABR requested "
            f"{required / recent:.1f}x the recently delivered "
            f"throughput")

    def _rule_estimator_drift(self, ctx) -> Optional[_RuleHit]:
        """The estimator promised far more than the chunk delivered."""
        chunk = ctx["chunk"]
        if chunk is None:
            return None
        requested = self.evidence.chunk_requested.get(chunk)
        downloaded = self.evidence.chunk_downloads.get(chunk)
        if requested is None or downloaded is None:
            return None
        delivered = downloaded[1].throughput
        if delivered <= 0:
            return None
        estimate = 0.0
        evidence: List[int] = []
        for path in sorted(self.evidence.samples):
            last = None
            for sample in self.evidence.samples[path]:
                if sample[1] > requested[1] + 1e-9:
                    break
                last = sample
            if last is not None:
                estimate += last[2]
                evidence.append(last[0])
        if not evidence or estimate <= _DRIFT_FACTOR * delivered:
            return None
        counterfactual = (
            f"estimator promised {_mbps(estimate):.1f} Mb/s at request "
            f"time but the chunk delivered {_mbps(delivered):.1f}; a "
            f"calibrated estimate picks a level that fits")
        return _RuleHit(
            LAYER_ESTIMATOR, CAUSE_ESTIMATOR_DRIFT,
            CONFIDENCE_HIGH if estimate > _DRIFT_SEVERE * delivered
            else CONFIDENCE_MEDIUM, None, counterfactual,
            tuple(evidence) + (downloaded[0], ctx["index"]),
            f"chunk {chunk}: the throughput estimate led delivery by "
            f"{estimate / delivered:.1f}x")

    def _rule_queue_buildup(self, ctx) -> Optional[_RuleHit]:
        """RTT inflated without throughput gain: standing queue ahead."""
        path = self.evidence.preferred_path()
        if path is None:
            return None
        rtts = [sample[3] for sample in self.evidence.samples[path]
                if sample[3] > 0]
        if len(rtts) < _MIN_BASELINE_SAMPLES:
            return None
        baseline_rtt = median(rtts)
        window = self.evidence.window_samples(
            path, ctx["start_time"], ctx["time"], column=3)
        window = [(index, value) for index, value in window if value > 0]
        if len(window) < _MIN_WINDOW_SAMPLES or baseline_rtt <= 0:
            return None
        current_rtt = fmean(value for _, value in window)
        ratio = current_rtt / baseline_rtt
        if ratio < _QUEUE_RTT_INFLATION:
            return None
        counterfactual = (
            f"{path} RTT inflated {ratio:.1f}x "
            f"({baseline_rtt * 1e3:.0f} ms → "
            f"{current_rtt * 1e3:.0f} ms) with no throughput gain; "
            f"draining the queue restores the baseline delay")
        return _RuleHit(
            LAYER_NETWORK, CAUSE_QUEUE_BUILDUP, CONFIDENCE_MEDIUM,
            None, counterfactual,
            (window[0][0], window[-1][0], ctx["index"]),
            f"{self._where(ctx['chunk'], ctx['transfer'])}: a standing "
            f"queue built up on {path} ahead of the deadline chunk")

    # ------------------------------------------------------------------
    # Stalls and violations
    # ------------------------------------------------------------------
    def _explain_stall(self, index: int, time: float,
                       prior: List[Attribution]) -> Attribution:
        recent = [attribution for attribution in prior
                  if attribution.time <= time + 1e-9
                  and time - attribution.time <= _STALL_LOOKBACK]
        if recent:
            source = recent[-1]
            return Attribution(
                kind=KIND_STALL, anomaly_index=index, time=time,
                chunk=source.chunk, transfer=source.transfer,
                layer=source.layer, cause=source.cause,
                confidence=source.confidence, slack=source.slack,
                counterfactual=source.counterfactual,
                evidence=tuple(sorted(set(source.evidence)
                                      | {index})),
                message=f"stall at {time:.2f} s follows the missed "
                        f"deadline on "
                        f"{self._where(source.chunk, source.transfer or -1)}"
                        f" ({source.cause})")
        path = self.evidence.preferred_path()
        baseline = self._baseline_throughput()
        if path is not None and baseline is not None and baseline > 0:
            window = self.evidence.window_samples(
                path, time - _STALL_PROBE_WINDOW, time, column=2)
            if len(window) >= _MIN_WINDOW_SAMPLES:
                current = fmean(value for _, value in window)
                if current < _BANDWIDTH_DROP_FRACTION * baseline:
                    return Attribution(
                        kind=KIND_STALL, anomaly_index=index,
                        time=time, layer=LAYER_NETWORK,
                        cause=CAUSE_BANDWIDTH_DROP,
                        confidence=(CONFIDENCE_HIGH
                                    if self.evidence.closed
                                    else CONFIDENCE_LOW),
                        counterfactual=(
                            f"{path} averaged {_mbps(current):.1f} "
                            f"Mb/s over the {_STALL_PROBE_WINDOW:.0f} s"
                            f" before the stall vs a typical "
                            f"{_mbps(baseline):.1f}"),
                        evidence=(window[0][0], window[-1][0], index),
                        message=f"buffer drained behind a {path} "
                                f"throughput dip")
        return self._unknown(KIND_STALL, index, time,
                             degraded=not self.evidence.closed)

    def _explain_violation(self, violation: Violation) -> Attribution:
        layer = CHECKER_LAYERS.get(violation.checker, LAYER_UNKNOWN)
        cause = (CAUSE_PATH_CONTROL
                 if violation.checker == "path-control"
                 else CAUSE_INVARIANT)
        anomaly_index = (violation.events[0] if violation.events
                         else max(len(self.trace.events) - 1, 0))
        return Attribution(
            kind=KIND_VIOLATION, anomaly_index=anomaly_index,
            time=violation.time, layer=layer, cause=cause,
            confidence=(CONFIDENCE_HIGH if layer != LAYER_UNKNOWN
                        else CONFIDENCE_LOW),
            evidence=tuple(violation.events),
            message=f"{violation.checker}: {violation.message}")

    def _unknown(self, kind: str, index: int, time: float,
                 chunk: Optional[int] = None,
                 transfer: Optional[int] = None,
                 degraded: bool = False) -> Attribution:
        return Attribution(
            kind=kind, anomaly_index=index, time=time, chunk=chunk,
            transfer=transfer, layer=LAYER_UNKNOWN,
            cause=CAUSE_UNKNOWN, confidence=CONFIDENCE_LOW,
            evidence=(index,),
            message="no attribution rule matched"
                    + (" (causal chain incomplete)" if degraded
                       else ""))


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def attributions_from_trace(trace: Trace,
                            report: Optional[CheckReport] = None
                            ) -> List[Attribution]:
    """Explain every anomaly in ``trace``: one verdict per deadline
    miss, stall, and ERROR invariant violation.

    A pure function of the trace — live runs, ``--load`` of the export,
    and recorder-captured streams produce identical verdict lists.
    Pass a precomputed ``report`` (from :func:`check_trace` on the same
    trace) to skip re-judging; anomaly-free traces return ``[]`` after
    a cheap probe, which is what keeps the fleet recorder path within
    its overhead budget.
    """
    if report is None:
        report = check_trace(trace)
    if not report.errors() and not _has_anomaly_events(trace.events):
        return []
    return _Attributor(trace, report).explain()


def summarize_attributions(attributions: Sequence[Attribution]
                           ) -> Dict[str, Any]:
    """Deterministic roll-up: counts by cause/layer/kind/confidence plus
    the dominant cause and layer (count ties prefer specific rule causes
    over the generic ones, then break by name)."""
    counts: Dict[str, int] = {}
    layers: Dict[str, int] = {}
    kinds: Dict[str, int] = {}
    confidences: Dict[str, int] = {}
    for attribution in attributions:
        counts[attribution.cause] = counts.get(attribution.cause, 0) + 1
        layers[attribution.layer] = layers.get(attribution.layer, 0) + 1
        kinds[attribution.kind] = kinds.get(attribution.kind, 0) + 1
        confidences[attribution.confidence] = \
            confidences.get(attribution.confidence, 0) + 1

    def top(table: Dict[str, int]) -> Optional[str]:
        if not table:
            return None
        return sorted(
            table.items(),
            key=lambda item: (-item[1],
                              _CAUSE_RANK.get(item[0], len(_CAUSE_RANK)),
                              item[0]))[0][0]

    return {"total": len(attributions),
            "counts": dict(sorted(counts.items())),
            "layers": dict(sorted(layers.items())),
            "kinds": dict(sorted(kinds.items())),
            "confidences": dict(sorted(confidences.items())),
            "top_cause": top(counts), "top_layer": top(layers)}


def fold_attributions(registry, attributions: Sequence[Attribution]
                      ) -> None:
    """Fold attribution counts into a mergeable registry.

    Counters only — they merge across shards and kill/resume boundaries
    without bucket-bound coordination, which is what lets the fleet
    report aggregate root causes the same way it aggregates QoE."""
    for attribution in attributions:
        registry.counter("repro_fleet_attribution_total",
                         {"cause": attribution.cause,
                          "layer": attribution.layer}).inc()
        registry.counter("repro_fleet_attribution_kind_total",
                         {"kind": attribution.kind}).inc()
        registry.counter("repro_fleet_attribution_confidence_total",
                         {"confidence": attribution.confidence}).inc()


def attribute_anomaly(artifact_dir: str,
                      record: Mapping[str, Any]) -> Dict[str, Any]:
    """Attribute one flight-recorder capture from its artifact on disk.

    The ``repro why --record-dir`` path: loads the record's gzip
    artifact relative to the recorder root and runs the same pure
    attribution the live run would have produced.  Failures are
    reported, not raised (mirrors
    :func:`~repro.obs.recorder.replay_anomaly`)."""
    artifact = record.get("artifact")
    if not artifact:
        return {"attributed": False, "attributions": [],
                "summary": None,
                "error": "record has no trace artifact"}
    path = os.path.join(artifact_dir, artifact)
    try:
        trace = load_jsonl(path)
        attributions = attributions_from_trace(trace)
    except (OSError, ValueError) as exc:
        return {"attributed": False, "attributions": [],
                "summary": None, "error": f"{path}: {exc}"}
    return {"attributed": True,
            "attributions": [a.to_dict() for a in attributions],
            "summary": summarize_attributions(attributions),
            "error": None}


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _columns(headers: Sequence[str],
             rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = ["  ".join(header.ljust(width)
                       for header, width in zip(headers, widths))]
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_attributions(attributions: Sequence[Attribution],
                        top: Optional[int] = None) -> str:
    """Human-readable verdict table (goes to stderr in the CLI)."""
    if not attributions:
        return "no anomalies to attribute: 0 deadline misses, " \
               "0 stalls, 0 ERROR violations"
    shown = list(attributions[:top] if top is not None
                 else attributions)
    rows = []
    for attribution in shown:
        where = ("-" if attribution.chunk is None
                 else f"chunk {attribution.chunk}")
        slack = ("-" if attribution.slack is None
                 else f"{attribution.slack:.2f}s")
        rows.append([attribution.kind, where, attribution.layer,
                     attribution.cause, attribution.confidence, slack,
                     attribution.counterfactual or attribution.message])
    table = _columns(["kind", "where", "layer", "cause", "conf",
                      "slack", "counterfactual"], rows)
    summary = summarize_attributions(attributions)
    footer = (f"{summary['total']} anomalies attributed; "
              f"top cause: {summary['top_cause']} "
              f"(layer {summary['top_layer']})")
    if len(shown) < len(attributions):
        footer += (f"; showing the first {len(shown)} of "
                   f"{len(attributions)}")
    return f"{table}\n{footer}"


# ----------------------------------------------------------------------
# Differential attribution
# ----------------------------------------------------------------------
@dataclass
class TraceDiff:
    """Chunk-aligned semantic diff of two traces of the same manifest.

    ``first_divergence`` names the earliest chunk where the two arms
    *decided* differently (ABR level pick or MP-DASH arm/skip) — the
    root of every downstream delta; ``cause_deltas`` ranks the
    per-cause anomaly count differences (positive = more in A);
    ``chunk_deltas`` lists every aligned chunk whose decision, miss
    state, or slack changed."""

    summary_a: Dict[str, Any]
    summary_b: Dict[str, Any]
    aligned_chunks: int
    first_divergence: Optional[Dict[str, Any]]
    chunk_deltas: List[Dict[str, Any]]
    cause_deltas: List[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        return {"summary_a": self.summary_a,
                "summary_b": self.summary_b,
                "aligned_chunks": self.aligned_chunks,
                "first_divergence": self.first_divergence,
                "chunk_deltas": self.chunk_deltas,
                "cause_deltas": self.cause_deltas}

    @property
    def top_cause(self) -> Optional[str]:
        """The cause whose anomaly count moved the most between arms."""
        return (self.cause_deltas[0]["cause"] if self.cause_deltas
                else None)

    def render(self, top: Optional[int] = None) -> str:
        lines = [f"arm A: {self.summary_a['chunks']} chunks, "
                 f"{self.summary_a['anomalies']} anomalies | "
                 f"arm B: {self.summary_b['chunks']} chunks, "
                 f"{self.summary_b['anomalies']} anomalies "
                 f"({self.aligned_chunks} aligned)"]
        if self.first_divergence is not None:
            div = self.first_divergence
            lines.append(f"first diverging decision: chunk "
                         f"{div['chunk']} {div['decision']} "
                         f"(A={div['a']} vs B={div['b']})")
        else:
            lines.append("no diverging per-chunk decision found")
        if self.cause_deltas:
            shown = (self.cause_deltas[:top] if top is not None
                     else self.cause_deltas)
            rows = [[delta["cause"], delta["layer"],
                     str(delta["count_a"]), str(delta["count_b"]),
                     f"{delta['delta']:+d}"] for delta in shown]
            lines.append(_columns(
                ["cause", "layer", "A", "B", "delta"], rows))
        else:
            lines.append("no attribution deltas between the arms")
        return "\n".join(lines)


_SLACK_DELTA_MIN = 0.25  # s of per-chunk slack drift worth reporting


def _chunk_table(trace: Trace, attributions: Sequence[Attribution]
                 ) -> Dict[int, Dict[str, Any]]:
    """Per-chunk decision/outcome records keyed by chunk index."""
    evidence = _Evidence(trace.events)
    missed = {attribution.chunk for attribution in attributions
              if attribution.kind == KIND_MISS
              and attribution.chunk is not None}
    table: Dict[int, Dict[str, Any]] = {}
    for chunk, (index, _, level, _) in \
            evidence.chunk_requested.items():
        table[chunk] = {"level": level, "request_index": index,
                        "mpdash": None, "slack": None,
                        "missed": chunk in missed}
    for chunk, (_, state, _) in evidence.mpdash.items():
        if chunk in table:
            table[chunk]["mpdash"] = state
    for chunk, (_, event) in evidence.chunk_downloads.items():
        row = table.setdefault(
            chunk, {"level": event.level, "request_index": None,
                    "mpdash": None, "slack": None,
                    "missed": chunk in missed})
        row["level"] = event.level
        if event.deadline is not None:
            row["slack"] = event.deadline - event.duration
    return table


def diff_traces(a: Trace, b: Trace,
                attributions_a: Optional[Sequence[Attribution]] = None,
                attributions_b: Optional[Sequence[Attribution]] = None
                ) -> TraceDiff:
    """Differential attribution of two arms of the same workload.

    Align the traces chunk-by-chunk, find the first diverging decision,
    and rank per-cause anomaly deltas — what ``repro why --diff A B``
    prints.  Precomputed attribution lists can be passed to skip the
    per-arm walks."""
    if attributions_a is None:
        attributions_a = attributions_from_trace(a)
    if attributions_b is None:
        attributions_b = attributions_from_trace(b)
    table_a = _chunk_table(a, attributions_a)
    table_b = _chunk_table(b, attributions_b)
    common = sorted(set(table_a) & set(table_b))

    first_divergence = None
    chunk_deltas: List[Dict[str, Any]] = []
    for chunk in common:
        row_a, row_b = table_a[chunk], table_b[chunk]
        diverged = [field for field in ("level", "mpdash")
                    if row_a[field] != row_b[field]]
        if diverged and first_divergence is None:
            decision = diverged[0]
            first_divergence = {
                "chunk": chunk, "decision": decision,
                "a": row_a[decision], "b": row_b[decision],
                "evidence_a": row_a["request_index"],
                "evidence_b": row_b["request_index"]}
        slack_a, slack_b = row_a["slack"], row_b["slack"]
        slack_delta = (slack_b - slack_a
                       if slack_a is not None and slack_b is not None
                       else None)
        changed = (bool(diverged)
                   or row_a["missed"] != row_b["missed"]
                   or (slack_delta is not None
                       and abs(slack_delta) >= _SLACK_DELTA_MIN))
        if changed:
            chunk_deltas.append({
                "chunk": chunk, "diverged": diverged,
                "level_a": row_a["level"], "level_b": row_b["level"],
                "mpdash_a": row_a["mpdash"],
                "mpdash_b": row_b["mpdash"],
                "missed_a": row_a["missed"],
                "missed_b": row_b["missed"],
                "slack_a": slack_a, "slack_b": slack_b,
                "slack_delta": slack_delta})

    summary_counts_a = summarize_attributions(attributions_a)["counts"]
    summary_counts_b = summarize_attributions(attributions_b)["counts"]
    layers = {attribution.cause: attribution.layer
              for attribution in
              list(attributions_b) + list(attributions_a)}
    cause_deltas = []
    for cause in sorted(set(summary_counts_a) | set(summary_counts_b)):
        count_a = summary_counts_a.get(cause, 0)
        count_b = summary_counts_b.get(cause, 0)
        cause_deltas.append({
            "cause": cause, "layer": layers.get(cause, LAYER_UNKNOWN),
            "count_a": count_a, "count_b": count_b,
            "delta": count_a - count_b})
    cause_deltas.sort(key=lambda delta: (-abs(delta["delta"]),
                                         -delta["delta"],
                                         delta["cause"]))

    def summary(table: Dict[int, Dict[str, Any]],
                attributions: Sequence[Attribution]) -> Dict[str, Any]:
        return {"chunks": len(table),
                "anomalies": len(attributions),
                "misses": sum(1 for a in attributions
                              if a.kind == KIND_MISS),
                "stalls": sum(1 for a in attributions
                              if a.kind == KIND_STALL),
                "violations": sum(1 for a in attributions
                                  if a.kind == KIND_VIOLATION)}

    return TraceDiff(summary_a=summary(table_a, attributions_a),
                     summary_b=summary(table_b, attributions_b),
                     aligned_chunks=len(common),
                     first_divergence=first_divergence,
                     chunk_deltas=chunk_deltas,
                     cause_deltas=cause_deltas)
