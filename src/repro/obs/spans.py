"""Causal spans: the life of each chunk as a tree, from the event stream.

The bus answers "what happened"; spans answer "what *caused* what".  A
:class:`SpanBuilder` subscribes to the session bus and correlates the
per-chunk event chain

    ChunkRequested → HttpRequestSent → TransferStarted/Completed
                   → SchedulerActivated/DeadlineMissed → ChunkDownloaded

into nested :class:`Span` intervals under one session root, using the
stream's own identifiers: the HTTP request id threaded through
``HttpRequestSent``/``HttpResponseReceived``, the transfer id, and the
request URL as the request→transfer join key (transfers are tagged with
the URL they serve).  Correlation state is driven purely by event order
and ids — no wall clock, no randomness — so rebuilding spans offline from
a JSONL trace (:func:`spans_from_trace`) yields *identical* spans to the
live subscriber on the same stream.

Export: :func:`to_chrome_trace` renders the tree as Chrome trace-event
JSON (complete ``"ph": "X"`` records, microsecond timestamps) which loads
directly in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Deque, Dict, List, Optional, Union

from .bus import EventBus
from .events import (ChunkDownloaded, ChunkRequested, DeadlineMissed,
                     HttpRequestSent, HttpResponseReceived, MpDashArmed,
                     MpDashSkipped, PlaybackStarted, SchedulerActivated,
                     SessionClosed, StallEnd, StallStart, TransferCompleted,
                     TransferStarted)

#: Span status values.
STATUS_OK = "ok"
STATUS_MISSED = "missed"
STATUS_OPEN = "open"

#: Chrome-trace thread ids, one lane per span kind so Perfetto stacks the
#: causal chain vertically instead of interleaving everything on one row.
_KIND_TIDS = {"session": 1, "chunk": 2, "request": 3, "transfer": 4,
              "deadline": 5, "stall": 6}


@dataclass
class Span:
    """One named interval with a parent link and JSON-able attributes.

    Equality is plain value equality (dataclass-generated), which is what
    the offline-equals-live determinism tests compare.
    """

    span_id: int
    name: str
    kind: str
    start: float
    parent: Optional[int] = None
    end: Optional[float] = None
    status: str = STATUS_OPEN
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def close(self, time: float, status: str = STATUS_OK) -> None:
        self.end = time
        self.status = status

    def to_dict(self) -> Dict[str, Any]:
        return {"span_id": self.span_id, "name": self.name,
                "kind": self.kind, "start": self.start, "end": self.end,
                "parent": self.parent, "status": self.status,
                "attrs": dict(self.attrs)}


class SpanBuilder:
    """Bus subscriber that assembles the causal span tree of a session."""

    def __init__(self, bus: Optional[EventBus] = None):
        self.spans: List[Span] = []
        self._next_id = 1
        self._session: Optional[Span] = None
        # chunk index -> its open span (closed by ChunkDownloaded).
        self._chunks: Dict[int, Span] = {}
        # The chunk span expecting the next HttpRequestSent: the player
        # publishes ChunkRequested then synchronously issues the request,
        # so a one-slot latch is a sound (and deterministic) join.
        self._awaiting_http: Optional[Span] = None
        # request id -> open request span (closed by HttpResponseReceived).
        self._requests: Dict[int, Span] = {}
        # url -> FIFO of open request spans: transfers join on tag == url.
        self._by_url: Dict[str, Deque[Span]] = {}
        # transfer id -> open transfer span.
        self._transfers: Dict[int, Span] = {}
        # transfer id -> open deadline span.
        self._deadlines: Dict[int, Span] = {}
        self._open_stall: Optional[Span] = None
        if bus is not None:
            self.attach(bus)

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "SpanBuilder":
        sub = bus.subscribe
        sub(ChunkRequested, self._on_chunk_requested)
        sub(HttpRequestSent, self._on_http_request)
        sub(HttpResponseReceived, self._on_http_response)
        sub(TransferStarted, self._on_transfer_started)
        sub(TransferCompleted, self._on_transfer_completed)
        sub(SchedulerActivated, self._on_scheduler_activated)
        sub(DeadlineMissed, self._on_deadline_missed)
        sub(MpDashArmed, self._on_mpdash_armed)
        sub(MpDashSkipped, self._on_mpdash_skipped)
        sub(ChunkDownloaded, self._on_chunk_downloaded)
        sub(PlaybackStarted, self._on_playback_started)
        sub(StallStart, self._on_stall_start)
        sub(StallEnd, self._on_stall_end)
        sub(SessionClosed, self._on_session_closed)
        return self

    def _new_span(self, name: str, kind: str, start: float,
                  parent: Optional[Span], **attrs: Any) -> Span:
        span = Span(self._next_id, name, kind, start,
                    parent=None if parent is None else parent.span_id,
                    attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        return span

    def _root(self, time: float) -> Span:
        if self._session is None:
            self._session = self._new_span("session", "session", time, None)
        return self._session

    # ------------------------------------------------------------------
    # Handlers — one per event in the causal chain
    # ------------------------------------------------------------------
    def _on_chunk_requested(self, event: ChunkRequested) -> None:
        span = self._new_span(f"chunk[{event.index}]", "chunk", event.time,
                              self._root(event.time), index=event.index,
                              level=event.level,
                              buffer_level=event.buffer_level)
        self._chunks[event.index] = span
        self._awaiting_http = span

    def _on_http_request(self, event: HttpRequestSent) -> None:
        parent = self._awaiting_http or self._root(event.time)
        self._awaiting_http = None
        span = self._new_span(f"http[{event.url}]", "request", event.time,
                              parent, url=event.url, request=event.request)
        self._requests[event.request] = span
        self._by_url.setdefault(event.url, deque()).append(span)

    def _on_http_response(self, event: HttpResponseReceived) -> None:
        span = self._requests.pop(event.request, None)
        if span is None:
            return
        span.attrs["status"] = event.status
        span.attrs["content_length"] = event.content_length
        span.close(event.time)
        queue = self._by_url.get(event.url)
        if queue and span in queue:
            queue.remove(span)

    def _on_transfer_started(self, event: TransferStarted) -> None:
        queue = self._by_url.get(event.tag)
        parent = queue[0] if queue else self._root(event.time)
        span = self._new_span(f"transfer[{event.transfer}]", "transfer",
                              event.time, parent, transfer=event.transfer,
                              size=event.size, conn=event.conn)
        self._transfers[event.transfer] = span

    def _on_transfer_completed(self, event: TransferCompleted) -> None:
        span = self._transfers.pop(event.transfer, None)
        if span is not None:
            span.close(event.time)
        deadline = self._deadlines.pop(event.transfer, None)
        if deadline is not None:
            slack = deadline.attrs["deadline_at"] - event.time
            deadline.attrs["slack"] = slack
            deadline.close(event.time, deadline.status
                           if deadline.status == STATUS_MISSED else STATUS_OK)

    def _on_scheduler_activated(self, event: SchedulerActivated) -> None:
        parent = self._transfers.get(event.transfer)
        span = self._new_span(f"deadline[{event.transfer}]", "deadline",
                              event.time,
                              parent if parent is not None
                              else self._root(event.time),
                              transfer=event.transfer, size=event.size,
                              window=event.window,
                              deadline_at=event.time + event.window)
        self._deadlines[event.transfer] = span

    def _on_deadline_missed(self, event: DeadlineMissed) -> None:
        span = self._deadlines.get(event.transfer)
        if span is not None:
            span.status = STATUS_MISSED
            span.attrs["missed_at"] = event.time

    def _on_mpdash_armed(self, event: MpDashArmed) -> None:
        span = self._chunks.get(event.index)
        if span is not None:
            span.attrs["mpdash"] = "armed"
            span.attrs["deadline"] = event.deadline

    def _on_mpdash_skipped(self, event: MpDashSkipped) -> None:
        span = self._chunks.get(event.index)
        if span is not None:
            span.attrs["mpdash"] = "skipped"

    def _on_chunk_downloaded(self, event: ChunkDownloaded) -> None:
        span = self._chunks.pop(event.index, None)
        if span is None:
            return
        span.attrs["size"] = event.size
        span.attrs["throughput"] = event.throughput
        span.attrs["final_level"] = event.level
        span.close(event.time)

    def _on_playback_started(self, event: PlaybackStarted) -> None:
        self._root(event.time).attrs["playback_started"] = event.time

    def _on_stall_start(self, event: StallStart) -> None:
        self._open_stall = self._new_span("stall", "stall", event.time,
                                          self._root(event.time))

    def _on_stall_end(self, event: StallEnd) -> None:
        if self._open_stall is not None:
            self._open_stall.close(event.time)
            self._open_stall = None

    def _on_session_closed(self, event: SessionClosed) -> None:
        for span in self.spans:
            if span.end is None and span is not self._session:
                span.end = event.time
        if self._session is None:
            self._root(event.time)
        self._session.close(event.time)
        self._chunks.clear()
        self._requests.clear()
        self._by_url.clear()
        self._transfers.clear()
        self._deadlines.clear()
        self._open_stall = None
        self._awaiting_http = None


# ----------------------------------------------------------------------
# Queries and export
# ----------------------------------------------------------------------
def children(spans: List[Span], parent: Span) -> List[Span]:
    """Direct children of ``parent``, in creation order."""
    return [s for s in spans if s.parent == parent.span_id]


def spans_to_dicts(spans: List[Span]) -> List[Dict[str, Any]]:
    return [span.to_dict() for span in spans]


def transfer_chunk_map(spans: List[Span]) -> Dict[int, int]:
    """Map each transfer id to the chunk index it served.

    Walks every transfer span's parent chain up to its chunk span —
    the join the attribution engine needs to say "transfer 17 *is*
    chunk 4".  Orphaned transfers (parented to the session root because
    their request span never existed) are simply absent from the map,
    which is what lets callers degrade instead of mis-join.
    """
    by_id = {span.span_id: span for span in spans}
    mapping: Dict[int, int] = {}
    for span in spans:
        if span.kind != "transfer" or "transfer" not in span.attrs:
            continue
        parent = by_id.get(span.parent)
        while parent is not None and parent.kind != "chunk":
            parent = by_id.get(parent.parent)
        if parent is not None and "index" in parent.attrs:
            mapping[span.attrs["transfer"]] = parent.attrs["index"]
    return mapping


def to_chrome_trace(spans: List[Span], pid: int = 1) -> List[Dict[str, Any]]:
    """Render spans as Chrome trace-event complete events.

    Every record is ``{"name", "cat", "ph": "X", "ts", "dur", "pid",
    "tid", "args"}`` with timestamps in *microseconds* (the format's
    unit); the bare-array form is accepted by Perfetto and
    ``chrome://tracing`` directly.  Open spans render with zero duration.
    """
    records: List[Dict[str, Any]] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        args = dict(span.attrs)
        args["status"] = span.status
        args["span_id"] = span.span_id
        if span.parent is not None:
            args["parent"] = span.parent
        records.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round((end - span.start) * 1e6, 3),
            "pid": pid,
            "tid": _KIND_TIDS.get(span.kind, 0),
            "args": args,
        })
    return records


def dump_chrome_trace(path_or_file: Union[str, IO[str]],
                      spans: List[Span]) -> None:
    """Write the Chrome trace-event JSON array to a path or file object."""
    text = json.dumps(to_chrome_trace(spans), sort_keys=True,
                      separators=(",", ":"))
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)


def spans_from_trace(trace) -> List[Span]:
    """Rebuild the span tree offline from a loaded JSONL trace.

    Identical to the live builder's ``spans`` for the same stream — the
    spans half of the capture-then-analyze workflow.
    """
    from .trace_export import replay

    bus = EventBus()
    builder = SpanBuilder(bus)
    replay(trace.events, bus)
    return builder.spans


def render_span_tree(spans: List[Span], max_spans: Optional[int] = None
                     ) -> str:
    """Human-readable indented tree (the ``repro spans`` default view)."""
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent, []).append(span)
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        if max_spans is not None and len(lines) >= max_spans:
            return
        duration = span.duration
        timing = (f"{span.start:.3f}s +{duration:.3f}s"
                  if duration is not None else f"{span.start:.3f}s …")
        note = ""
        if span.status == STATUS_MISSED:
            note = "  [MISSED]"
        elif span.status == STATUS_OPEN:
            note = "  [open]"
        lines.append(f"{'  ' * depth}{span.name}  {timing}{note}")
        for child in by_parent.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in by_parent.get(None, ()):
        walk(root, 0)
    total = len(spans)
    if max_spans is not None and total > len(lines):
        lines.append(f"… {total - len(lines)} more spans")
    return "\n".join(lines)
