"""Drift sentinel over the run ledger: population-based regression
detection.

``repro bench --compare`` is strictly pairwise — one current report
against one stored baseline.  This module generalizes that to the
whole ledger population: every ``(kind, metric)`` pair in the ledger
(:mod:`repro.obs.ledger`) forms one series in file order, and each new
point is judged against a baseline learned from the points before it.

Two detectors run side by side:

* **EWMA control bands.**  An exponentially-weighted mean and variance
  track the series; a point landing ``warn_sigma``/``error_sigma``
  deviations outside the band is flagged.  The band never collapses
  below a relative floor, so a perfectly-deterministic history (every
  prior run byte-identical) still tolerates ``rel_floor`` of benign
  movement before alarming.
* **CUSUM change points.**  One-sided cumulative sums of the
  standardized deviations catch small-but-sustained level shifts that
  never individually breach the band.

Every alarm is a frozen :class:`DriftFinding` carrying the severity,
direction, the offending ``entry_id``, and the baseline entry ids as
evidence.  Severity encodes *adversity*: metrics with a known good
direction (QoE up, deadline misses down …) only gate when they move
the wrong way — an improvement drifts at INFO.  The gate contract
mirrors :mod:`repro.obs.check`: ``repro history --gate`` exits nonzero
exactly when an ERROR-severity finding exists.

Everything here is a pure function of the entry sequence — the same
ledger always yields the same findings, byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .check import ERROR, INFO, WARNING
from .ledger import LedgerEntry

#: Detector names stamped into findings.
EWMA = "ewma"
CUSUM = "cusum"

#: How many baseline entry ids one finding cites at most.
_EVIDENCE_CAP = 8

#: Known good directions by metric-name fragment, checked in order
#: against the last dot-separated metric component.  "higher" means
#: larger values are better (dropping is adverse); "lower" the reverse.
_DIRECTIONS: Tuple[Tuple[str, str], ...] = (
    ("unfinished", "lower"),  # must outrank the bare "finished" fragment
    ("qoe", "higher"),
    ("bitrate", "higher"),
    ("sim_per_wall", "higher"),
    ("events_per_sec", "higher"),
    ("finished", "higher"),
    ("cache_hits", "higher"),
    ("deadline_miss", "lower"),
    ("stall", "lower"),
    ("startup", "lower"),
    ("cellular", "lower"),
    ("energy", "lower"),
    ("violation", "lower"),
    ("failure", "lower"),
    ("wall_clock", "lower"),
    ("peak_rss", "lower"),
)


def metric_direction(name: str) -> Optional[str]:
    """The metric's good direction ("higher"/"lower"), or None when the
    sentinel cannot tell and must treat both directions as adverse."""
    leaf = name.rsplit(".", 1)[-1]
    for fragment, direction in _DIRECTIONS:
        if fragment in leaf:
            return direction
    return None


@dataclass(frozen=True)
class DriftFinding:
    """One metric's drift verdict at one ledger entry."""

    #: The entry kind whose series drifted ("session"/"sweep"/...).
    kind: str
    metric: str
    detector: str  # EWMA or CUSUM
    severity: str  # repro.obs.check severities: error/warning/info
    direction: str  # "up" or "down": where the series moved
    #: Zero-based position of the offending entry in the loaded ledger.
    position: int
    entry_id: str
    value: float
    baseline: float  # EWMA mean the point was judged against
    band: float  # allowed half-width at error_sigma
    #: Sigma multiples (EWMA) or the cumulative statistic (CUSUM).
    deviation: float
    #: Baseline entry ids the verdict rests on (most recent last).
    evidence: Tuple[str, ...]
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "metric": self.metric,
                "detector": self.detector, "severity": self.severity,
                "direction": self.direction, "position": self.position,
                "entry_id": self.entry_id, "value": self.value,
                "baseline": self.baseline, "band": self.band,
                "deviation": self.deviation,
                "evidence": list(self.evidence),
                "message": self.message}


def metric_series(entries: Sequence[LedgerEntry]
                  ) -> Dict[Tuple[str, str],
                            List[Tuple[int, str, float]]]:
    """Group the ledger into per-``(kind, metric)`` series.

    Each series lists ``(position, entry_id, value)`` in file order —
    the timeline the detectors (and the trend charts) walk.
    """
    series: Dict[Tuple[str, str], List[Tuple[int, str, float]]] = {}
    for position, entry in enumerate(entries):
        for metric, value in entry.metrics.items():
            series.setdefault((entry.kind, metric), []).append(
                (position, entry.entry_id, value))
    return series


def control_track(values: Sequence[float], *, alpha: float = 0.3,
                  rel_floor: float = 0.05, abs_floor: float = 1e-9
                  ) -> Tuple[List[float], List[float]]:
    """EWMA mean and floored standard deviation, one pair per point.

    ``means[i]``/``stds[i]`` describe the expectation for point ``i``
    formed from points ``[0, i)`` only (the first point is its own
    expectation), so judging point ``i`` against them never lets the
    point absorb itself first.
    """
    means: List[float] = []
    stds: List[float] = []
    mean: Optional[float] = None
    var = 0.0
    for value in values:
        if mean is None:
            mean = value
            means.append(value)
            stds.append(max(abs(value) * rel_floor, abs_floor))
            continue
        means.append(mean)
        stds.append(max(math.sqrt(var), abs(mean) * rel_floor, abs_floor))
        delta = value - mean
        mean += alpha * delta
        var = (1.0 - alpha) * (var + alpha * delta * delta)
    return means, stds


def detect_drift(entries: Sequence[LedgerEntry], *, alpha: float = 0.3,
                 warn_sigma: float = 2.0, error_sigma: float = 3.0,
                 cusum_threshold: float = 5.0, cusum_slack: float = 0.5,
                 min_history: int = 2, rel_floor: float = 0.05,
                 abs_floor: float = 1e-9) -> List[DriftFinding]:
    """Run both detectors over every series; findings in a fixed order.

    A point is only judged once at least ``min_history`` earlier points
    exist in its series.  Findings sort by (kind, metric, position,
    detector) so the output is deterministic for a given ledger.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
    if warn_sigma <= 0 or error_sigma < warn_sigma:
        raise ValueError(f"need 0 < warn_sigma <= error_sigma: "
                         f"{warn_sigma!r}, {error_sigma!r}")
    if min_history < 1:
        raise ValueError(f"min_history must be >= 1: {min_history!r}")
    findings: List[DriftFinding] = []
    for (kind, metric), points in sorted(metric_series(entries).items()):
        values = [value for _, _, value in points]
        means, stds = control_track(values, alpha=alpha,
                                    rel_floor=rel_floor,
                                    abs_floor=abs_floor)
        good = metric_direction(metric)
        cusum_up = cusum_down = 0.0
        for i, (position, entry_id, value) in enumerate(points):
            z = (value - means[i]) / stds[i]
            if i < min_history:
                continue
            evidence = tuple(
                eid for _, eid, _ in points[max(0, i - _EVIDENCE_CAP):i])
            direction = "up" if z >= 0 else "down"
            adverse = (good is None
                       or (good == "higher" and direction == "down")
                       or (good == "lower" and direction == "up"))
            if abs(z) >= warn_sigma:
                if not adverse:
                    severity = INFO
                elif abs(z) >= error_sigma:
                    severity = ERROR
                else:
                    severity = WARNING
                band = error_sigma * stds[i]
                findings.append(DriftFinding(
                    kind=kind, metric=metric, detector=EWMA,
                    severity=severity, direction=direction,
                    position=position, entry_id=entry_id, value=value,
                    baseline=means[i], band=band, deviation=abs(z),
                    evidence=evidence,
                    message=(f"{kind}.{metric} {direction} "
                             f"{abs(z):.3g} sigma: {value:.6g} vs "
                             f"EWMA {means[i]:.6g} "
                             f"(band +-{band:.6g})")))
            # CUSUM accumulates every judged point, alarm or not.
            cusum_up = max(0.0, cusum_up + z - cusum_slack)
            cusum_down = max(0.0, cusum_down - z - cusum_slack)
            for statistic, direction in ((cusum_up, "up"),
                                         (cusum_down, "down")):
                if statistic <= cusum_threshold:
                    continue
                adverse = (good is None
                           or (good == "higher" and direction == "down")
                           or (good == "lower" and direction == "up"))
                findings.append(DriftFinding(
                    kind=kind, metric=metric, detector=CUSUM,
                    severity=WARNING if adverse else INFO,
                    direction=direction, position=position,
                    entry_id=entry_id, value=value, baseline=means[i],
                    band=error_sigma * stds[i], deviation=statistic,
                    evidence=evidence,
                    message=(f"{kind}.{metric} sustained {direction} "
                             f"shift (CUSUM {statistic:.3g} > "
                             f"{cusum_threshold:.3g})")))
            if cusum_up > cusum_threshold:
                cusum_up = 0.0
            if cusum_down > cusum_threshold:
                cusum_down = 0.0
    findings.sort(key=lambda f: (f.kind, f.metric, f.position,
                                 f.detector, f.direction))
    return findings


def trend_document(entries: Sequence[LedgerEntry],
                   findings: Optional[Sequence[DriftFinding]] = None
                   ) -> Dict[str, object]:
    """The machine-readable trend report (``repro history trend --json``).

    A pure function of the entry sequence: per-series points with their
    EWMA track, every drift finding, and the gate verdict.  Serializing
    it with sorted keys yields byte-identical output for the same
    ledger.
    """
    entries = list(entries)
    if findings is None:
        findings = detect_drift(entries)
    series_payload = []
    for (kind, metric), points in sorted(metric_series(entries).items()):
        values = [value for _, _, value in points]
        means, stds = control_track(values)
        series_payload.append({
            "kind": kind, "metric": metric,
            "direction": metric_direction(metric),
            "points": [{"position": position, "entry_id": entry_id,
                        "value": value}
                       for position, entry_id, value in points],
            "ewma": means, "band": stds})
    return {"entries": len(entries),
            "kinds": sorted({entry.kind for entry in entries}),
            "series": series_payload,
            "findings": [finding.to_dict() for finding in findings],
            "gate_ok": gate_ok(findings)}


def gate_ok(findings: Sequence[DriftFinding]) -> bool:
    """The CI gate verdict: True when nothing drifted at ERROR."""
    return not any(f.severity == ERROR for f in findings)


def drift_table(findings: Sequence[DriftFinding]) -> str:
    """Human-readable drift summary (for stderr)."""
    counts = {ERROR: 0, WARNING: 0, INFO: 0}
    for finding in findings:
        counts[finding.severity] += 1
    lines = [f"drift: {counts[ERROR]} error(s), "
             f"{counts[WARNING]} warning(s), {counts[INFO]} info"]
    for finding in findings:
        lines.append(f"  [{finding.severity.upper():7}] "
                     f"@{finding.position} {finding.entry_id[:12]} "
                     f"{finding.message}")
    return "\n".join(lines)
