"""Self-contained single-file HTML reports over the observability stack.

One honest principle: a report is a **pure function of a trace**.
:func:`session_report_html` consumes only a loaded
:class:`~repro.obs.trace_export.Trace` and derives every panel through
the same offline views the determinism tests pin (`analyzer_from_trace`,
`registry_from_trace`, `check_trace`, `spans_from_trace`) — so rendering
live at the end of ``run_session(report=...)`` and rendering later from
the exported JSONL produce byte-identical files.  No wall clock, no
randomness, no external references: the output is one HTML document with
inline CSS and inline SVG, openable offline and diffable across runs.

Three generators:

* :func:`session_report_html` — the paper's figures for one session:
  the Figure-8 chunk strip, per-path throughput/cwnd/RTT timelines,
  buffer occupancy with stall shading, the deadline-slack distribution,
  the radio-state/energy timeline, invariant verdicts, and span lanes.
* :func:`sweep_report_html` — a whole
  :class:`~repro.experiments.sweep.SweepResult`: run table, QoE
  scheme-comparison grid, merged sweep-wide distributions, failures,
  and (optionally) the benchmark panel.
* :func:`bench_report_html` — standalone benchmark trajectories from
  ``BENCH_*.json`` reports with baseline regression gating.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from .bench import BenchReport, compare_reports
from .check import ERROR, INFO, WARNING, CheckReport, check_trace
from .events import StallEnd, StallStart
from .metrics import Histogram, MetricsRegistry, registry_from_trace
from .spans import STATUS_MISSED, Span, spans_from_trace
from .svg import (LaneSegment, Series, StripCell, bar_chart, cdf_chart,
                  flame_lanes, histogram_chart, legend_html, line_chart,
                  series_class, strip_chart)
from .trace_export import Trace, analyzer_from_trace

# ----------------------------------------------------------------------
# Stylesheet (inline; light and dark from the same document)
# ----------------------------------------------------------------------
_LIGHT_VARS = """\
color-scheme:light;--surface-1:#fcfcfb;--page:#f9f9f7;--ink-1:#0b0b0b;
--ink-2:#52514e;--ink-muted:#898781;--gridline:#e1e0d9;--baseline:#c3c2b7;
--border:rgba(11,11,11,0.10);
--series-1:#2a78d6;--series-2:#eb6834;--series-3:#1baf7a;--series-4:#eda100;
--series-5:#e87ba4;--series-6:#008300;--series-7:#4a3aa7;--series-8:#e34948;
--lvl-0:#86b6ef;--lvl-1:#5598e7;--lvl-2:#2a78d6;--lvl-3:#1c5cab;
--lvl-4:#104281;
--good:#0ca30c;--warning:#fab219;--serious:#ec835a;--critical:#d03b3b;"""

_DARK_VARS = """\
color-scheme:dark;--surface-1:#1a1a19;--page:#0d0d0d;--ink-1:#ffffff;
--ink-2:#c3c2b7;--ink-muted:#898781;--gridline:#2c2c2a;--baseline:#383835;
--border:rgba(255,255,255,0.10);
--series-1:#3987e5;--series-2:#d95926;--series-3:#199e70;--series-4:#c98500;
--series-5:#d55181;--series-6:#008300;--series-7:#9085e9;--series-8:#e66767;
--lvl-0:#184f95;--lvl-1:#256abf;--lvl-2:#3987e5;--lvl-3:#6da7ec;
--lvl-4:#9ec5f4;
--good:#0ca30c;--warning:#fab219;--serious:#ec835a;--critical:#d03b3b;"""

#: Every categorical slot sets ``--c``; marks read it.  The quality-level
#: ramp (``lvl0``-``lvl4``) and the radio states reuse the mechanism.
_SLOT_RULES = "".join(
    [f".s{i}{{--c:var(--series-{i})}}" for i in range(1, 9)]
    + [f".lvl{i}{{--c:var(--lvl-{i})}}" for i in range(5)]
    + [".radio-active{--c:var(--series-1)}",
       ".radio-tail{--c:var(--series-3)}",
       ".radio-idle{--c:var(--gridline)}",
       ".status-critical{--c:var(--critical)}"])

_CSS = f"""
body{{{_LIGHT_VARS}}}
@media (prefers-color-scheme:dark){{
:root:where(:not([data-theme="light"])) body{{{_DARK_VARS}}}}}
:root[data-theme="dark"] body{{{_DARK_VARS}}}
body{{margin:0;background:var(--page);color:var(--ink-1);
font:14px/1.5 system-ui,-apple-system,"Segoe UI",sans-serif;}}
main{{max-width:800px;margin:0 auto;padding:28px 16px 64px;}}
h1{{font-size:20px;margin:0 0 2px;}}
h2{{font-size:14px;margin:0 0 10px;color:var(--ink-1);}}
section.panel{{background:var(--surface-1);border:1px solid var(--border);
border-radius:8px;padding:16px;margin:16px 0;}}
.tiles{{display:flex;flex-wrap:wrap;gap:10px 26px;margin:4px 0;}}
.tile .v{{font-size:21px;font-weight:600;}}
.tile .v small{{font-size:12px;font-weight:400;color:var(--ink-2);}}
.tile .l{{font-size:11px;color:var(--ink-muted);}}
.row{{display:flex;gap:16px;flex-wrap:wrap;align-items:flex-start;}}
table{{border-collapse:collapse;width:100%;font-size:12.5px;
font-variant-numeric:tabular-nums;}}
th{{color:var(--ink-muted);text-align:left;font-weight:500;
border-bottom:1px solid var(--baseline);padding:3px 8px;}}
td{{border-bottom:1px solid var(--gridline);padding:3px 8px;
vertical-align:top;}}
.num{{text-align:right;}}th.num{{text-align:right;}}
.legend{{display:flex;gap:14px;font-size:12px;color:var(--ink-2);
margin:6px 0 2px;flex-wrap:wrap;}}
.key{{display:inline-flex;align-items:center;gap:5px;}}
.sw{{width:10px;height:10px;border-radius:2px;display:inline-block;
background:var(--c,var(--ink-muted));}}
svg.chart{{display:block;max-width:100%;height:auto;margin:6px 0;}}
svg text{{font-family:system-ui,-apple-system,"Segoe UI",sans-serif;}}
.grid{{stroke:var(--gridline);stroke-width:1;}}
.axis{{stroke:var(--baseline);stroke-width:1;}}
.tick{{fill:var(--ink-muted);font-size:10px;
font-variant-numeric:tabular-nums;}}
.axis-label{{fill:var(--ink-2);font-size:11px;}}
.value{{fill:var(--ink-2);font-size:10px;
font-variant-numeric:tabular-nums;}}
.refline{{stroke:var(--ink-muted);stroke-width:1;stroke-dasharray:4 3;}}
.line{{fill:none;stroke:var(--c,var(--ink-muted));stroke-width:2;
stroke-linejoin:round;stroke-linecap:round;}}
.dot{{fill:var(--c,var(--ink-muted));stroke:var(--surface-1);
stroke-width:2;}}
.fill{{fill:var(--c,var(--ink-muted));}}
.area{{fill:var(--c,var(--ink-muted));opacity:.85;}}
.shade{{fill:var(--serious);fill-opacity:.14;}}
.sw.shade{{background:var(--serious);opacity:.35;}}
.overlay{{fill:var(--ink-1);fill-opacity:.45;}}
.sw.overlay{{background:var(--ink-1);opacity:.45;}}
.badge{{display:inline-block;font-size:11px;line-height:1.5;
padding:0 7px;border-radius:9px;color:#ffffff;}}
.badge.critical{{background:var(--critical);}}
.badge.warning{{background:var(--warning);color:#0b0b0b;}}
.badge.good{{background:var(--good);}}
.badge.info{{background:var(--ink-muted);}}
.note{{color:var(--ink-muted);font-size:12.5px;margin:4px 0;}}
.mono{{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;
font-size:11.5px;}}
ul.flat{{margin:4px 0;padding-left:20px;font-size:12.5px;}}
{_SLOT_RULES}
"""


# ----------------------------------------------------------------------
# Document scaffolding
# ----------------------------------------------------------------------
def _document(title: str, subtitle: str, sections: Sequence[str]) -> str:
    """The single self-contained document (XHTML-style well-formed)."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8"/>'
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head><body><main>"
        f"<h1>{escape(title)}</h1>"
        f'<p class="note">{escape(subtitle)}</p>'
        f'{"".join(sections)}'
        '<p class="note">Generated by <span class="mono">repro report'
        "</span> — a pure function of the trace; identical inputs render "
        "identical bytes.</p>"
        "</main></body></html>\n")


def _panel(title: str, *body: str) -> str:
    return (f'<section class="panel"><h2>{escape(title)}</h2>'
            f'{"".join(body)}</section>')


def _tiles(items: Sequence[Tuple[str, str, str]]) -> str:
    """Stat tiles: (value, unit, label) triplets."""
    tiles = "".join(
        f'<div class="tile"><div class="v">{escape(value)}'
        + (f"<small> {escape(unit)}</small>" if unit else "")
        + f'</div><div class="l">{escape(label)}</div></div>'
        for value, unit, label in items)
    return f'<div class="tiles">{tiles}</div>'


def _table(headers: Sequence[Tuple[str, bool]],
           rows: Sequence[Sequence[str]]) -> str:
    """Rows of pre-rendered (already escaped) cell HTML."""
    head = "".join(f'<th class="num">{escape(text)}</th>' if numeric
                   else f"<th>{escape(text)}</th>"
                   for text, numeric in headers)
    body = "".join(
        "<tr>" + "".join(
            f'<td class="num">{cell}</td>' if headers[i][1]
            else f"<td>{cell}</td>"
            for i, cell in enumerate(row)) + "</tr>"
        for row in rows)
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table>")


def _note(text: str) -> str:
    return f'<p class="note">{escape(text)}</p>'


def _downsample(points: Sequence[Tuple[float, float]],
                limit: int = 360) -> List[Tuple[float, float]]:
    """Max-pooling downsample: keep each stride's peak sample.

    Peaks (not means) because throughput/cwnd spikes are the signal; the
    kept points are real samples, so determinism is preserved.
    """
    if len(points) <= limit:
        return list(points)
    stride = -(-len(points) // limit)  # ceil
    kept: List[Tuple[float, float]] = []
    for start in range(0, len(points), stride):
        group = points[start:start + stride]
        kept.append(max(group, key=lambda p: p[1]))
    return kept


def _severity_badge(severity: str) -> str:
    css = {ERROR: "critical", WARNING: "warning", INFO: "info"}.get(
        severity, "info")
    return f'<span class="badge {css}">{escape(severity)}</span>'


def _confidence_badge(confidence: str) -> str:
    css = {"high": "good", "medium": "warning", "low": "info"}.get(
        confidence, "info")
    return f'<span class="badge {css}">{escape(confidence)}</span>'


# ----------------------------------------------------------------------
# Session report panels
# ----------------------------------------------------------------------
def _overview_panel(trace: Trace, metrics: Any) -> str:
    startup = ("-" if metrics.startup_delay is None
               else f"{metrics.startup_delay:.2f}")
    tiles = _tiles([
        (f"{trace.meta.session_duration:.1f}", "s", "session"),
        (f"{metrics.chunk_count}", "", "chunks"),
        (f"{metrics.mean_bitrate_mbps:.2f}", "Mbit/s", "mean bitrate"),
        (f"{metrics.quality_switches}", "", "quality switches"),
        (f"{metrics.stall_count}", "", "stalls"),
        (f"{metrics.total_stall_time:.2f}", "s", "stall time"),
        (startup, "s", "startup delay"),
        (f"{metrics.cellular_bytes / 1e6:.1f}", "MB", "cellular data"),
        (f"{metrics.cellular_fraction:.1%}", "", "cellular share"),
        (f"{metrics.radio_energy:.1f}", "J", "radio energy"),
    ])
    return _panel("Session overview", tiles)


def _chunk_strip_panel(analyzer: Any) -> str:
    from ..analysis.visualize import chunk_cells

    cells = chunk_cells(analyzer.chunk_views())
    if not cells:
        return _panel("Chunk downloads (Figure 8)",
                      _note("no chunks downloaded"))
    strip = strip_chart(
        [StripCell(
            x0=cell.start, x1=cell.end, height=cell.height_fraction,
            fill=cell.cellular_fraction, css=f"lvl{cell.level}",
            label=(f"chunk {cell.index}: level {cell.level}, "
                   f"{cell.size / 1e6:.2f} MB, "
                   f"{cell.cellular_fraction:.0%} cellular, "
                   f"{cell.start:.1f}-{cell.end:.1f}s"))
         for cell in cells],
        title="per-chunk quality, download window, and cellular share")
    levels = sorted({cell.level for cell in cells})
    legend = legend_html([(f"lvl{level}", f"level {level}")
                          for level in levels]
                         + [("overlay", "cellular share")])
    return _panel(
        "Chunk downloads (Figure 8)",
        _note("bar height = quality level, width = download window, "
              "dark fill = cellular byte share"),
        strip, legend)


def _path_panel(analyzer: Any, registry: MetricsRegistry,
                duration: float) -> str:
    paths = sorted(analyzer.activity.paths())
    parts: List[str] = []
    if paths:
        series = []
        for path in paths:
            times, values = analyzer.throughput_timeline(path)
            points = _downsample(
                [(t, v * 8.0 / 1e6) for t, v in zip(times, values)])
            series.append(Series(path, points))
        parts.append(line_chart(series, x_label="time (s)",
                                y_label="throughput (Mbit/s)",
                                title="per-path delivered throughput"))
        parts.append(legend_html([
            (series_class(i), path) for i, path in enumerate(paths)]))
    else:
        parts.append(_note("no transport activity in this trace"))

    sampled = [p for p in paths
               if registry.get("repro_path_cwnd_bytes", {"path": p})]
    if sampled:
        cwnd_series, rtt_series = [], []
        for path in sampled:
            cwnd = registry.get("repro_path_cwnd_bytes", {"path": path})
            rtt = registry.get("repro_path_rtt_seconds", {"path": path})
            cwnd_series.append(Series(path, _downsample(
                [(t, v / 1e3) for t, v in cwnd.samples])))
            if rtt is not None:
                rtt_series.append(Series(path, _downsample(
                    [(t, v * 1e3) for t, v in rtt.samples])))
        parts.append(
            '<div class="row">'
            + line_chart(cwnd_series, width=352, height=200,
                         x_label="time (s)", y_label="cwnd (kB)",
                         title="cwnd")
            + line_chart(rtt_series, width=352, height=200,
                         x_label="time (s)", y_label="RTT (ms)",
                         y_min=None, title="RTT")
            + "</div>")
    else:
        parts.append(_note(
            "no PathSampled events in this trace (metrics collection was "
            "off), so cwnd/RTT timelines are unavailable"))
    return _panel("Path timelines", *parts)


def _buffer_panel(trace: Trace, registry: MetricsRegistry,
                  duration: float) -> str:
    buffer = registry.get("repro_buffer_level_seconds")
    samples = list(buffer.samples) if buffer is not None else []
    stalls: List[Tuple[float, float]] = []
    open_stall: Optional[float] = None
    for event in trace.events:
        if isinstance(event, StallStart):
            open_stall = event.time
        elif isinstance(event, StallEnd) and open_stall is not None:
            stalls.append((open_stall, event.time))
            open_stall = None
    if open_stall is not None:
        stalls.append((open_stall, duration))
    if not samples:
        return _panel("Buffer occupancy",
                      _note("no chunk requests in this trace"))
    chart = line_chart(
        [Series("buffer level", samples)], step=True, x_label="time (s)",
        y_label="buffer (s)",
        shades=[(a, b, "shade") for a, b in stalls],
        title="playback buffer occupancy with stall windows")
    entries = [("s1", "buffer level")]
    if stalls:
        entries.append(("shade", f"stall ({len(stalls)})"))
    return _panel("Buffer occupancy", chart, legend_html(entries))


def _slack_panel(registry: MetricsRegistry) -> str:
    histogram = registry.get("repro_deadline_slack_seconds")
    if histogram is None or histogram.count == 0:
        return _panel(
            "Deadline slack",
            _note("no deadline slack observations (MP-DASH deadlines "
                  "were never armed in this trace)"))
    payload = histogram.to_dict()
    late = sum(count for bound, count
               in zip(histogram.bounds, histogram.counts) if bound <= 0)
    stats = _tiles([
        (f"{histogram.count}", "", "deadlines"),
        (f"{late}", "", "negative slack"),
        (f"{histogram.quantile(0.5):.2f}", "s", "median slack"),
        (f"{histogram.quantile(0.95):.2f}", "s", "p95 slack"),
        (f"{histogram.min:.2f}", "s", "min"),
        (f"{histogram.max:.2f}", "s", "max"),
    ])
    row = ('<div class="row">'
           + histogram_chart(payload, x_label="slack (s)", refs=(0.0,),
                             title="deadline slack distribution")
           + cdf_chart(payload, x_label="slack (s)", refs=(0.0,),
                       title="deadline slack CDF")
           + "</div>")
    return _panel(
        "Deadline slack", stats, row,
        _note("slack = deadline minus completion time; left of the "
              "dashed line the deadline was missed"))


def _radio_panel(analyzer: Any, metrics: Any, duration: float) -> str:
    changes = analyzer.radio_timeline()
    by_path: Dict[str, List[Any]] = {}
    for change in changes:
        by_path.setdefault(change.path, []).append(change)
    lanes: List[Tuple[str, List[LaneSegment]]] = []
    for path in sorted(by_path):
        segments: List[LaneSegment] = []
        state, since = "idle", 0.0
        for change in by_path[path]:
            if change.time > since:
                segments.append(LaneSegment(
                    since, change.time, f"radio-{state}",
                    f"{state} {since:.1f}-{change.time:.1f}s"))
            state, since = change.state, change.time
        if duration > since:
            segments.append(LaneSegment(
                since, duration, f"radio-{state}",
                f"{state} {since:.1f}-{duration:.1f}s"))
        lanes.append((path, segments))
    if not lanes:
        return _panel("Radio states and energy",
                      _note("no radio activity in this trace"))
    chart = flame_lanes(lanes, x_label="time (s)", x_min=0.0,
                        x_max=duration,
                        title="radio power states per interface")
    legend = legend_html([("radio-active", "active"),
                          ("radio-tail", "tail"),
                          ("radio-idle", "idle")])
    energy = _tiles(
        [(f"{value:.1f}", "J", f"{path} energy")
         for path, value in sorted(metrics.energy_per_path.items())]
        + [(f"{metrics.radio_energy:.1f}", "J", "total radio energy")])
    return _panel("Radio states and energy", chart, legend, energy)


def _violations_panel(report: CheckReport) -> str:
    counts = report.by_severity()
    summary = _note(
        f"checked {report.events} events with {len(report.checkers)} "
        f"checkers: {counts[ERROR]} error(s), {counts[WARNING]} "
        f"warning(s), {counts[INFO]} info")
    if not report.violations:
        return _panel("Invariant verdicts", summary,
                      '<p><span class="badge good">all invariants hold'
                      "</span></p>")
    rows = []
    for violation in report.violations:
        events = ",".join(str(i) for i in violation.events)
        rows.append([
            _severity_badge(violation.severity),
            f"{violation.time:.3f}",
            f'<span class="mono">{escape(violation.checker)}</span>',
            escape(violation.message),
            f'<span class="mono">{escape(events)}</span>'])
    table = _table([("severity", False), ("t (s)", True),
                    ("checker", False), ("message", False),
                    ("events", False)], rows)
    return _panel("Invariant verdicts", summary, table)


def _attribution_panel(trace: Trace, report: CheckReport) -> str:
    """Root-cause verdicts for the session's anomalies (repro why)."""
    from .why import attributions_from_trace, summarize_attributions

    attributions = attributions_from_trace(trace, report=report)
    if not attributions:
        return _panel(
            "Root-cause attribution",
            _note("no anomalies to attribute: no deadline misses, "
                  "stalls, or ERROR violations in this session"))
    summary = summarize_attributions(attributions)
    rows = []
    for attribution in attributions:
        where = ("-" if attribution.chunk is None
                 else f"chunk {attribution.chunk}")
        slack = ("-" if attribution.slack is None
                 else f"{attribution.slack:.2f}")
        rows.append([
            escape(attribution.kind), escape(where),
            f"{attribution.time:.2f}", escape(attribution.layer),
            f'<span class="mono">{escape(attribution.cause)}</span>',
            _confidence_badge(attribution.confidence), slack,
            escape(attribution.counterfactual or attribution.message)])
    table = _table([("kind", False), ("where", False), ("t (s)", True),
                    ("layer", False), ("cause", False),
                    ("confidence", False), ("slack (s)", True),
                    ("counterfactual", False)], rows)
    note = _note(
        f"{summary['total']} anomaly verdict(s); dominant cause "
        f"{summary['top_cause']} (layer {summary['top_layer']}); "
        f"slack = the counterfactual seconds the blamed decision cost")
    return _panel("Root-cause attribution", note, table)


#: Span kinds worth a lane, in causal order (the session root span is
#: omitted — it would be one full-width bar).
_SPAN_LANES = ("chunk", "request", "transfer", "deadline", "stall")


def _spans_panel(spans: List[Span], duration: float) -> str:
    if not spans:
        return _panel("Causal spans", _note("no spans in this trace"))
    lanes: List[Tuple[str, List[LaneSegment]]] = []
    lane_css: Dict[str, str] = {}
    for index, kind in enumerate(_SPAN_LANES):
        members = [span for span in spans if span.kind == kind]
        if not members:
            continue
        lane_css[kind] = series_class(index)
        segments = []
        for span in members:
            end = span.end if span.end is not None else duration
            css = ("status-critical" if span.status == STATUS_MISSED
                   else lane_css[kind])
            segments.append(LaneSegment(
                span.start, end, css,
                f"{span.name} {span.start:.2f}-{end:.2f}s"
                f" [{span.status}]"))
        lanes.append((kind, segments))
    chart = flame_lanes(lanes, x_label="time (s)", x_min=0.0,
                        x_max=duration, title="causal span lanes")
    entries: List[Tuple[str, str]] = [
        (lane_css[kind], kind) for kind, _ in lanes]
    entries.append(("status-critical", "missed deadline"))
    return _panel("Causal spans",
                  _note(f"{len(spans)} spans; the life of each chunk "
                        f"from request to delivery"),
                  chart, legend_html(entries))


def session_report_html(trace: Trace) -> str:
    """Render one session's full report from its (loaded) trace.

    A pure function: every panel is computed through the offline derived
    views, so live rendering at session end and offline rendering from
    the exported JSONL produce byte-identical documents.
    """
    if trace.meta.session_duration <= 0:
        # Degenerate (empty) traces still render, with fallback panels;
        # the analyzer needs a positive horizon.
        trace = Trace(meta=replace(trace.meta, session_duration=1.0),
                      events=trace.events)
    analyzer = analyzer_from_trace(trace)
    metrics = analyzer.metrics(trace.meta.steady_state_fraction)
    registry = registry_from_trace(trace)
    verdicts = check_trace(trace)
    spans = spans_from_trace(trace)
    duration = trace.meta.session_duration
    subtitle = (f"device {trace.meta.device} | {len(trace.events)} events "
                f"| {duration:.1f}s session | trace format v"
                f"{trace.meta.version}")
    return _document("MP-DASH session report", subtitle, [
        _overview_panel(trace, metrics),
        _chunk_strip_panel(analyzer),
        _path_panel(analyzer, registry, duration),
        _buffer_panel(trace, registry, duration),
        _slack_panel(registry),
        _radio_panel(analyzer, metrics, duration),
        _violations_panel(verdicts),
        _attribution_panel(trace, verdicts),
        _spans_panel(spans, duration),
    ])


# ----------------------------------------------------------------------
# Sweep report
# ----------------------------------------------------------------------
def _scheme_name(config: Any) -> str:
    mpdash = getattr(config, "mpdash", None)
    if mpdash is False:
        return "baseline"
    if mpdash is True:
        mode = getattr(config, "deadline_mode", None)
        return f"mpdash-{mode}" if mode else "mpdash"
    return type(config).__name__


def _violation_text(violations: Optional[Mapping[str, int]]) -> str:
    if violations is None:
        return "-"
    parts = [f"{violations[s]}{s[0].upper()}"
             for s in (ERROR, WARNING, INFO) if violations.get(s)]
    return "+".join(parts) if parts else "0"


def _p95_slack(summary: Any) -> Optional[float]:
    payload = getattr(summary, "histograms", {}).get(
        "repro_deadline_slack_seconds")
    if not payload or not payload.get("count"):
        return None
    return Histogram.from_dict(payload).quantile(0.95)


def _sweep_runs_table(result: Any) -> str:
    rows = []
    for run in result.runs:
        if run.failure is not None:
            status = (f'<span class="badge critical">'
                      f"{escape(run.failure.kind)}</span>")
        elif run.cached:
            status = '<span class="badge info">cached</span>'
        else:
            status = '<span class="badge good">ok</span>'
        summary = run.summary
        metrics = getattr(summary, "metrics", None)
        if metrics is not None:
            slack = _p95_slack(summary)
            cells = [f"{metrics.cellular_bytes / 1e6:.1f}",
                     f"{metrics.mean_bitrate_mbps:.2f}",
                     f"{metrics.radio_energy:.0f}",
                     f"{metrics.stall_count}",
                     "-" if slack is None else f"{slack:.2f}",
                     escape(_violation_text(
                         getattr(summary, "violations", None)))]
        elif summary is not None:  # download-only summary
            cells = [f"{summary.cellular_bytes / 1e6:.1f}",
                     "-", f"{summary.radio_energy:.0f}", "-", "-", "-"]
        else:
            cells = ["-"] * 6
        rows.append([
            f"{run.index}",
            f'<span class="mono">{escape(run.config_key[:10])}</span>',
            status, f"{run.elapsed:.2f}"] + cells)
    return _table(
        [("run", True), ("key", False), ("status", False),
         ("time (s)", True), ("cell MB", True), ("Mbit/s", True),
         ("energy J", True), ("stalls", True), ("p95 slack", True),
         ("viol", True)], rows)


def _scheme_panel(result: Any) -> str:
    """Per-scheme QoE means: the paper's four-metric comparison."""
    groups: Dict[str, List[Any]] = {}
    for run in result.runs:
        metrics = getattr(run.summary, "metrics", None)
        if metrics is not None:
            groups.setdefault(_scheme_name(run.config), []).append(metrics)
    if not groups:
        return _panel("Scheme comparison",
                      _note("no session summaries to compare"))
    schemes = sorted(groups)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def chart(label: str, fmt: str, pick: Any) -> str:
        return bar_chart(schemes,
                         [mean([pick(m) for m in groups[s]])
                          for s in schemes],
                         width=352, height=190, y_label=label,
                         value_format=fmt, title=label)

    counts = ", ".join(f"{scheme}: {len(groups[scheme])} run(s)"
                       for scheme in schemes)
    grid = ('<div class="row">'
            + chart("cellular data (MB)", "{:.1f}",
                    lambda m: m.cellular_bytes / 1e6)
            + chart("mean bitrate (Mbit/s)", "{:.2f}",
                    lambda m: m.mean_bitrate_mbps)
            + chart("radio energy (J)", "{:.0f}",
                    lambda m: m.radio_energy)
            + chart("stalls", "{:.1f}", lambda m: float(m.stall_count))
            + "</div>")
    legend = legend_html([(series_class(i), scheme)
                          for i, scheme in enumerate(schemes)])
    return _panel("Scheme comparison", _note(f"means over {counts}"),
                  legend, grid)


def _merged_histogram_panel(result: Any) -> str:
    from ..experiments.sweep import merged_histograms

    merged = merged_histograms(result)
    parts: List[str] = []
    slack = merged.get("repro_deadline_slack_seconds")
    if slack is not None and slack.count:
        payload = slack.to_dict()
        parts.append(_note(
            f"deadline slack over {slack.count} deadlines across all "
            f"runs (p95 = {slack.quantile(0.95):.2f}s)"))
        parts.append('<div class="row">'
                     + histogram_chart(payload, x_label="slack (s)",
                                       refs=(0.0,),
                                       title="sweep-wide slack")
                     + cdf_chart(payload, x_label="slack (s)",
                                 refs=(0.0,),
                                 title="sweep-wide slack CDF")
                     + "</div>")
    download = merged.get("repro_chunk_download_seconds")
    if download is not None and download.count:
        parts.append(histogram_chart(
            download.to_dict(), width=352, x_label="download time (s)",
            css="s2", title="chunk download time"))
    if not parts:
        parts.append(_note(
            "no histograms in the summaries (sweep the configs with "
            "session metrics to aggregate distributions)"))
    return _panel("Merged distributions", *parts)


def _failures_panel(result: Any) -> Optional[str]:
    failures = result.failures
    if not failures:
        return None
    rows = [[f"{f.index}",
             f'<span class="mono">{escape(f.config_key[:10])}</span>',
             f'<span class="badge critical">{escape(f.kind)}</span>',
             f"{f.attempts}", f"{f.elapsed:.2f}", escape(f.error)]
            for f in failures]
    return _panel("Failures", _table(
        [("run", True), ("key", False), ("kind", False),
         ("attempts", True), ("time (s)", True), ("error", False)], rows))


#: Bench metric -> (axis label, scale) for the trajectory charts.
_BENCH_METRICS = (
    ("wall_clock", "wall clock (s)", 1.0),
    ("sim_per_wall", "sim seconds per wall second", 1.0),
    ("events_per_sec", "bus events per second", 1.0),
    ("peak_rss_kb", "peak RSS (MB)", 1.0 / 1024.0),
)


def _bench_section(reports: Sequence[BenchReport],
                   baseline: Optional[BenchReport],
                   threshold: float) -> str:
    reports = list(reports)
    if not reports:
        return _panel("Benchmarks", _note("no bench reports supplied"))
    scenarios: List[str] = []
    for report in reports:
        for result in report.results:
            if result.scenario not in scenarios:
                scenarios.append(result.scenario)
    x_ticks = [(float(i), report.label or str(i))
               for i, report in enumerate(reports)]
    charts: List[str] = []
    for metric, label, scale in _BENCH_METRICS:
        series = []
        for scenario in scenarios:
            points = []
            for i, report in enumerate(reports):
                result = report.result(scenario)
                value = getattr(result, metric, None) if result else None
                if value is not None:
                    points.append((float(i), value * scale))
            if points:
                series.append(Series(scenario, points))
        if series:
            charts.append(line_chart(
                series, width=352, height=190, y_label=label,
                markers=True, x_ticks=x_ticks, title=label))
    parts = [legend_html([(series_class(i), scenario)
                          for i, scenario in enumerate(scenarios)]),
             f'<div class="row">{"".join(charts)}</div>']
    if baseline is not None:
        regressions = compare_reports(reports[-1], baseline, threshold)
        if regressions:
            items = "".join(f"<li>{escape(r)}</li>" for r in regressions)
            parts.append(
                f'<p><span class="badge critical">'
                f"{len(regressions)} regression(s) vs baseline "
                f"{escape(baseline.label)}</span></p>"
                f'<ul class="flat">{items}</ul>')
        else:
            parts.append(
                f'<p><span class="badge good">no regressions vs '
                f"baseline {escape(baseline.label)} (threshold "
                f"{threshold:.0%})</span></p>")
    meta = reports[-1].meta
    if meta:
        parts.append(_note(" | ".join(
            f"{key}: {meta[key]}" for key in sorted(meta))))
    return _panel("Benchmarks", *parts)


def sweep_report_html(result: Any,
                      bench_reports: Sequence[BenchReport] = (),
                      baseline: Optional[BenchReport] = None,
                      threshold: float = 0.25) -> str:
    """Render a :class:`~repro.experiments.sweep.SweepResult` comparison.

    ``bench_reports`` (loaded ``BENCH_*.json`` files, oldest first) add a
    trajectory panel; ``baseline`` additionally gates the newest report
    with :func:`~repro.obs.bench.compare_reports`.
    """
    succeeded = sum(1 for run in result.runs if run.ok)
    overview = _panel("Sweep overview", _tiles([
        (f"{len(result.runs)}", "", "runs"),
        (f"{succeeded}", "", "succeeded"),
        (f"{len(result.runs) - succeeded}", "", "failed"),
        (f"{result.cache_hits}", "", "cache hits"),
        (f"{result.jobs}", "", "workers"),
        (f"{result.wall_clock:.1f}", "s", "wall clock"),
    ]))
    sections = [overview,
                _panel("Runs", _sweep_runs_table(result)),
                _scheme_panel(result),
                _merged_histogram_panel(result)]
    failures = _failures_panel(result)
    if failures is not None:
        sections.append(failures)
    if bench_reports or baseline is not None:
        sections.append(_bench_section(bench_reports, baseline, threshold))
    subtitle = (f"{len(result.runs)} configurations | {result.jobs} "
                f"worker(s) | cache "
                f"{'off' if result.cache_dir is None else 'on'}")
    return _document("MP-DASH sweep report", subtitle, sections)


# ----------------------------------------------------------------------
# Fleet report
# ----------------------------------------------------------------------
def _fleet_histogram(registry: MetricsRegistry,
                     name: str) -> Optional[Histogram]:
    metric = registry.get(name)
    if isinstance(metric, Histogram) and metric.count:
        return metric
    return None


def _labeled_counts(registry: MetricsRegistry, name: str,
                    label: str) -> List[Tuple[str, float]]:
    """(label value, count) pairs of one labeled counter family."""
    pairs: List[Tuple[str, float]] = []
    for metric in registry:
        if metric.name == name and dict(metric.labels).get(label):
            pairs.append((dict(metric.labels)[label], metric.value))
    return pairs


def _fleet_overview_panel(result: Any) -> str:
    resumed = getattr(result, "resumed_shards", 0)
    shards = f"{result.shards_done}/{result.total_shards}"
    if resumed:
        shards += f" ({resumed} resumed)"
    rate = (result.sim_seconds / result.wall_clock
            if result.wall_clock > 0 else 0.0)
    return _panel("Fleet overview", _tiles([
        (f"{result.sessions}", "", "sessions simulated"),
        (f"{result.failures}", "", "session failures"),
        (shards, "", "shards"),
        (f"{result.jobs}", "", "workers"),
        (f"{result.wall_clock:.1f}", "s", "wall clock"),
        (f"{result.sim_seconds:.0f}", "s", "simulated time"),
        (f"{rate:.0f}x", "", "sim/wall"),
    ]))


def _fleet_qoe_panel(registry: MetricsRegistry) -> str:
    parts: List[str] = []
    bitrate = _fleet_histogram(registry, "repro_fleet_bitrate_mbps")
    if bitrate is not None:
        payload = bitrate.to_dict()
        parts.append(_note(
            f"mean bitrate over {bitrate.count} sessions "
            f"(p50 = {bitrate.quantile(0.5):.2f}, "
            f"p95 = {bitrate.quantile(0.95):.2f} Mbit/s)"))
        parts.append('<div class="row">'
                     + histogram_chart(payload, x_label="Mbit/s",
                                       title="population mean bitrate")
                     + cdf_chart(payload, x_label="Mbit/s",
                                 title="population bitrate CDF")
                     + "</div>")
    stalls = _fleet_histogram(registry, "repro_fleet_stall_seconds")
    stall_count = _fleet_histogram(registry, "repro_fleet_stall_count")
    row: List[str] = []
    if stalls is not None:
        row.append(histogram_chart(
            stalls.to_dict(), width=352, x_label="stall time (s)",
            css="s2", title="stall time per session"))
    if stall_count is not None:
        row.append(histogram_chart(
            stall_count.to_dict(), width=352, x_label="stalls",
            css="s3", title="stall count per session"))
    if row:
        parts.append(f'<div class="row">{"".join(row)}</div>')
    if not parts:
        parts.append(_note("no sessions folded yet"))
    return _panel("Population QoE", *parts)


def _fleet_cellular_panel(registry: MetricsRegistry) -> str:
    parts: List[str] = []
    fraction = _fleet_histogram(registry, "repro_fleet_cellular_fraction")
    if fraction is not None:
        payload = fraction.to_dict()
        parts.append(_note(
            f"cellular byte share over {fraction.count} multipath "
            f"sessions (p50 = {fraction.quantile(0.5):.1%})"))
        parts.append('<div class="row">'
                     + histogram_chart(payload, x_label="cellular share",
                                       title="cellular byte share")
                     + cdf_chart(payload, x_label="cellular share",
                                 title="cellular share CDF")
                     + "</div>")
    row: List[str] = []
    mbytes = _fleet_histogram(registry, "repro_fleet_cellular_mbytes")
    if mbytes is not None:
        row.append(histogram_chart(
            mbytes.to_dict(), width=352, x_label="cellular MB", css="s2",
            title="cellular data per session"))
    energy = _fleet_histogram(registry, "repro_fleet_radio_energy_joules")
    if energy is not None:
        row.append(histogram_chart(
            energy.to_dict(), width=352, x_label="energy (J)", css="s4",
            title="radio energy per session"))
    if row:
        parts.append(f'<div class="row">{"".join(row)}</div>')
    if not parts:
        parts.append(_note("no multipath sessions folded yet"))
    return _panel("Cellular usage and energy", *parts)


def _fleet_deadline_panel(registry: MetricsRegistry) -> str:
    total = registry.get("repro_fleet_deadline_misses_total")
    misses = _fleet_histogram(registry, "repro_fleet_deadline_misses")
    if misses is None:
        return _panel("Deadline misses",
                      _note("no deadline observations (baseline scheme "
                            "or no sessions folded)"))
    clean = misses.counts[0] if misses.bounds[0] >= 1.0 else 0
    tiles = _tiles([
        (f"{int(total.value) if total else 0}", "", "misses total"),
        (f"{misses.count - clean}", "", "sessions with misses"),
        (f"{clean / misses.count:.1%}" if misses.count else "-", "",
         "miss-free sessions"),
    ])
    chart = histogram_chart(misses.to_dict(), width=352,
                            x_label="misses per session", css="s8",
                            title="deadline misses per session")
    return _panel("Deadline misses", tiles, chart)


def _fleet_mix_panel(registry: MetricsRegistry) -> str:
    parts: List[str] = []
    arrivals = _fleet_histogram(registry, "repro_fleet_arrival_hour")
    if arrivals is not None:
        parts.append(histogram_chart(
            arrivals.to_dict(), x_label="arrival hour (local)",
            title="session arrivals by hour"))
    row: List[str] = []
    scenarios = _labeled_counts(registry, "repro_fleet_sessions_total",
                                "scenario")
    if scenarios:
        order = {"never": 0, "sometimes": 1, "always": 2}
        scenarios.sort(key=lambda pair: order.get(pair[0], 9))
        row.append(bar_chart([name for name, _ in scenarios],
                             [count for _, count in scenarios],
                             width=352, height=190, y_label="sessions",
                             value_format="{:.0f}",
                             title="sessions by WiFi scenario"))
    devices = _labeled_counts(registry,
                              "repro_fleet_sessions_by_device_total",
                              "device")
    if devices:
        devices.sort()
        row.append(bar_chart([name for name, _ in devices],
                             [count for _, count in devices],
                             width=352, height=190, y_label="sessions",
                             value_format="{:.0f}",
                             title="sessions by device"))
    if row:
        parts.append(f'<div class="row">{"".join(row)}</div>')
    if not parts:
        parts.append(_note("no arrival observations yet"))
    return _panel("Workload mix", *parts)


def _fleet_attribution_panel(registry: MetricsRegistry) -> str:
    """Root-cause breakdown folded from every shard's attribution walks.

    Always rendered: a zero-anomaly fleet states so explicitly instead
    of omitting the section, so two campaign reports always diff
    section-for-section.
    """
    pairs: List[Tuple[str, str, float]] = []
    for metric in registry:
        if metric.name == "repro_fleet_attribution_total":
            labels = dict(metric.labels)
            if labels.get("cause"):
                pairs.append((labels["cause"],
                              labels.get("layer", "unknown"),
                              metric.value))
    if not pairs:
        return _panel(
            "Root-cause attribution",
            _note("no anomalies captured: every judged session was "
                  "free of deadline misses, stalls, and ERROR "
                  "violations"))
    pairs.sort(key=lambda entry: (-entry[2], entry[0]))
    total = sum(count for _, _, count in pairs)
    shares = ", ".join(
        f"{count / total:.0%} {cause} ({layer})"
        for cause, layer, count in pairs)
    parts = [_note(f"{total:.0f} anomaly verdict(s) across the fleet: "
                   f"{shares}"),
             bar_chart([cause for cause, _, _ in pairs],
                       [count for _, _, count in pairs],
                       width=720, height=200, y_label="anomalies",
                       value_format="{:.0f}",
                       title="anomalies by attributed root cause")]
    confidences = _labeled_counts(
        registry, "repro_fleet_attribution_confidence_total",
        "confidence")
    if confidences:
        order = {"high": 0, "medium": 1, "low": 2}
        confidences.sort(key=lambda pair: order.get(pair[0], 9))
        parts.append(_note("verdict confidence: " + ", ".join(
            f"{name} {count:.0f}" for name, count in confidences)))
    return _panel("Root-cause attribution", *parts)


def _fleet_failures_panel(result: Any) -> Optional[str]:
    errors = list(getattr(result, "errors", ()))
    if not result.failures and not errors:
        return None
    parts = [_note(f"{result.failures} session(s) failed and were "
                   f"excluded from the population distributions")]
    if errors:
        items = "".join(f'<li><span class="mono">{escape(e)}</span></li>'
                        for e in errors)
        dropped = int(getattr(result, "errors_dropped", 0))
        if dropped:
            items += (f'<li><span class="mono">(+{dropped} more '
                      f"failure(s) beyond the bounded sample)"
                      "</span></li>")
        parts.append(f'<ul class="flat">{items}</ul>')
    return _panel("Session failures", *parts)


def _anomaly_row(record: Mapping[str, Any],
                 link: Optional[str]) -> List[str]:
    def num(value: Any, fmt: str = "{:.2f}") -> str:
        return "-" if value is None else fmt.format(value)

    index = int(record.get("index", 0))
    session = (f'<a href="{escape(link)}">#{index}</a>'
               if link else f"#{index}")
    artifact = record.get("artifact")
    attribution = record.get("attribution") or {}
    cause = attribution.get("top_cause")
    return [session, f"{record.get('shard', '-')}",
            escape(str(record.get("reason", "-"))),
            num(record.get("score")), num(record.get("qoe")),
            num(record.get("misses"), "{:.0f}"),
            num(record.get("stalls"), "{:.0f}"),
            (f'<span class="mono">{escape(str(cause))}</span>'
             if cause else "-"),
            (f'<span class="mono">{escape(str(artifact))}</span>'
             if artifact else "-")]


_ANOMALY_HEADERS = [("session", False), ("shard", True),
                    ("reason", False), ("score", True), ("qoe", True),
                    ("misses", True), ("stalls", True),
                    ("top cause", False), ("artifact", False)]


def _fleet_anomalies_panel(result: Any,
                           anomaly_links: Optional[Mapping[int, str]]
                           ) -> Optional[str]:
    """Flight-recorder summary plus the worst captured sessions.

    Rendered only when the campaign ran with the recorder armed; rows
    are ranked worst-first and capped, and sessions with a rendered mini
    report (``anomaly_links``) link straight to it.
    """
    stats = getattr(result, "recorder", None)
    if stats is None:
        return None
    from .recorder import rank_anomalies

    links = dict(anomaly_links or {})
    parts = [_tiles([
        (f"{stats.get('sessions', 0)}", "", "sessions judged"),
        (f"{stats.get('captured', 0)}", "", "traces captured"),
        (f"{stats.get('oversized', 0)}", "", "oversized (dropped)"),
        (f"{stats.get('bytes_written', 0) / 1e6:.2f}", "MB",
         "artifact bytes"),
    ])]
    by_reason = stats.get("by_reason", {})
    if any(by_reason.values()):
        parts.append(_note("captures by reason: " + ", ".join(
            f"{reason} {count}" for reason, count in by_reason.items()
            if count)))
    ranked = rank_anomalies(getattr(result, "anomalies", []), top=20)
    if ranked:
        parts.append(_table(_ANOMALY_HEADERS, [
            _anomaly_row(record, links.get(int(record.get("index", -1))))
            for record in ranked]))
        total = len(getattr(result, "anomalies", []))
        if total > len(ranked):
            parts.append(_note(f"showing the worst {len(ranked)} of "
                               f"{total} captured sessions"))
    else:
        parts.append(_note("no sessions crossed a capture trigger"))
    return _panel("Captured anomalies", *parts)


def fleet_report_html(result: Any,
                      anomaly_links: Optional[Mapping[int, str]] = None
                      ) -> str:
    """Render a fleet campaign's population-distribution report.

    ``result`` is duck-typed (a
    :class:`~repro.experiments.fleet.FleetResult`): this module reads
    only its registry and plain counters, never the experiment layer.
    A pure function of the merged registry, so jobs=1 and jobs=N runs
    of the same campaign render byte-identical documents.
    ``anomaly_links`` maps captured session indices to (relative) hrefs
    of rendered mini session reports; see
    :meth:`~repro.experiments.fleet.FleetResult.export_report`.
    """
    registry = result.registry
    config = getattr(result, "config", None)
    bits = [f"{result.sessions} sessions"]
    if config is not None:
        bits += [f"{config.arrival} arrivals", f"seed {config.seed}",
                 f"scheme {config.scheme}"]
    bits.append(f"{result.jobs} worker(s)")
    if not getattr(result, "completed", True):
        bits.append("partial campaign")
    sections = [
        _fleet_overview_panel(result),
        _fleet_qoe_panel(registry),
        _fleet_cellular_panel(registry),
        _fleet_deadline_panel(registry),
        _fleet_attribution_panel(registry),
        _fleet_mix_panel(registry),
    ]
    anomalies = _fleet_anomalies_panel(result, anomaly_links)
    if anomalies is not None:
        sections.append(anomalies)
    failures = _fleet_failures_panel(result)
    if failures is not None:
        sections.append(failures)
    return _document("MP-DASH fleet report", " | ".join(bits), sections)


def triage_report_html(records: Sequence[Mapping[str, Any]],
                       fleet_key: str = "",
                       links: Optional[Mapping[int, str]] = None,
                       replays: Optional[Mapping[int, Mapping[str, Any]]]
                       = None) -> str:
    """Standalone anomaly-triage document (the ``repro triage --html``
    output): ranked capture records, offline replay verdicts, and links
    to rendered mini session reports."""
    links = dict(links or {})
    replays = dict(replays or {})
    sections: List[str] = []
    if records:
        rows = []
        for record in records:
            index = int(record.get("index", -1))
            row = _anomaly_row(record, links.get(index))
            replay = replays.get(index)
            if replay is None:
                row.append("-")
            elif not replay.get("replayed"):
                row.append(escape(str(replay.get("error", "-"))))
            else:
                verdicts = replay.get("violations", {})
                match = ("identical" if replay.get("matches_recorded")
                         else "MISMATCH")
                row.append(escape(
                    f"{verdicts.get('error', 0)} error / "
                    f"{verdicts.get('warning', 0)} warning ({match})"))
            rows.append(row)
        sections.append(_panel(
            "Ranked anomalies",
            _table(_ANOMALY_HEADERS + [("offline replay", False)], rows),
            _note("replay = the captured trace re-judged offline via "
                  "check_trace; 'identical' means the live and offline "
                  "verdicts agree")))
    else:
        sections.append(_panel(
            "Ranked anomalies",
            _note("no captured anomalies under this artifact root")))
    subtitle = (f"fleet {fleet_key[:16]}" if fleet_key
                else "anomaly triage")
    return _document("MP-DASH triage report",
                     f"{subtitle} | {len(records)} record(s)", sections)


def bench_report_html(reports: Sequence[BenchReport],
                      baseline: Optional[BenchReport] = None,
                      threshold: float = 0.25) -> str:
    """Standalone benchmark-trajectory document from loaded reports."""
    reports = list(reports)
    sections = [_bench_section(reports, baseline, threshold)]
    if reports:
        rows = [[escape(r.scenario), f"{r.wall_clock:.3f}",
                 f"{r.sim_seconds:.1f}", f"{r.sim_per_wall:.1f}",
                 "-" if r.events is None else f"{r.events}",
                 ("-" if r.events_per_sec is None
                  else f"{r.events_per_sec:.0f}"),
                 ("-" if r.peak_rss_kb is None
                  else f"{r.peak_rss_kb}"),
                 f"{r.repeats}"]
                for r in reports[-1].results]
        sections.append(_panel(
            f"Latest report: {reports[-1].label or '(unlabeled)'}",
            _table([("scenario", False), ("wall s", True),
                    ("sim s", True), ("sim/wall", True), ("events", True),
                    ("ev/s", True), ("RSS KiB", True), ("repeats", True)],
                   rows)))
    subtitle = f"{len(reports)} report(s)"
    return _document("MP-DASH benchmark report", subtitle, sections)


# ----------------------------------------------------------------------
# Longitudinal history report (the run ledger's view)
# ----------------------------------------------------------------------
#: Metric leafs rendered first within each kind's trend panel; anything
#: else follows alphabetically.
_HISTORY_PRIORITY = (
    "qoe", "bitrate_mbps", "bitrate_p50_mbps", "deadline_misses",
    "stalled_session_fraction", "stall_seconds", "stall_seconds_p95",
    "cellular_mbytes", "cellular_mbytes_p50", "energy_joules",
    "radio_energy_p50_joules", "violations", "sim_per_wall",
    "wall_clock_seconds", "peak_rss_kb",
)


def _history_metric_order(metric: str) -> Tuple[int, str]:
    try:
        return (_HISTORY_PRIORITY.index(metric), metric)
    except ValueError:
        return (len(_HISTORY_PRIORITY), metric)


def _history_overview_panel(entries: Sequence[Any],
                            findings: Sequence[Any],
                            gate_passed: bool) -> str:
    by_kind: Dict[str, int] = {}
    for entry in entries:
        by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
    by_severity: Dict[str, int] = {ERROR: 0, WARNING: 0, INFO: 0}
    for finding in findings:
        by_severity[finding.severity] += 1
    tiles = [(str(len(entries)), "", "ledger entries")]
    tiles.extend((str(count), "", f"{kind} runs")
                 for kind, count in sorted(by_kind.items()))
    tiles.append((str(by_severity[ERROR]), "", "error drift"))
    tiles.append((str(by_severity[WARNING]), "", "warning drift"))
    badge = ('<span class="badge good">gate: pass</span>'
             if gate_passed else
             '<span class="badge critical">gate: fail</span>')
    return _panel("History", _tiles(tiles), f"<p>{badge}</p>")


def _history_trend_panels(entries: Sequence[Any],
                          findings: Sequence[Any]) -> List[str]:
    from .drift import control_track, metric_series

    series_map = metric_series(entries)
    drifted: Dict[Tuple[str, str], List[Any]] = {}
    for finding in findings:
        drifted.setdefault((finding.kind, finding.metric),
                           []).append(finding)
    kinds: List[str] = []
    for entry in entries:
        if entry.kind not in kinds:
            kinds.append(entry.kind)
    panels: List[str] = []
    for kind in kinds:
        metrics = sorted((metric for k, metric in series_map if k == kind),
                         key=_history_metric_order)
        charts: List[str] = []
        for metric in metrics:
            points = series_map[(kind, metric)]
            values = [value for _, _, value in points]
            means, _stds = control_track(values)
            series = [Series(metric,
                             [(float(position), value)
                              for position, _, value in points]),
                      Series("ewma",
                             [(float(position), mean)
                              for (position, _, _), mean
                              in zip(points, means)])]
            lane_findings = drifted.get((kind, metric), [])
            refs = sorted({float(f.position) for f in lane_findings})
            title = metric
            worst = _worst_severity(lane_findings)
            if worst is not None:
                title = f"{metric} [{worst}]"
            charts.append(line_chart(
                series, width=352, height=190, y_label=metric,
                markers=True, y_min=None, refs=refs, title=title,
                x_label="ledger position"))
        if charts:
            panels.append(_panel(
                f"Trends: {kind}",
                legend_html([(series_class(0), "recorded"),
                             (series_class(1), "EWMA baseline")]),
                f'<div class="row">{"".join(charts)}</div>',
                _note("vertical lines mark drift findings at that "
                      "ledger position")))
    return panels


def _worst_severity(findings: Sequence[Any]) -> Optional[str]:
    for severity in (ERROR, WARNING, INFO):
        if any(f.severity == severity for f in findings):
            return severity
    return None


def _history_findings_panel(findings: Sequence[Any]) -> str:
    if not findings:
        return _panel("Drift findings",
                      _note("no drift detected across the ledger"))
    rows = [[_severity_badge(f.severity),
             escape(f"{f.kind}.{f.metric}"), escape(f.detector),
             escape(f.direction), str(f.position),
             f'<span class="mono">{escape(f.entry_id[:12])}</span>',
             escape(f.message)]
            for f in findings]
    return _panel(
        "Drift findings",
        _table([("severity", False), ("series", False),
                ("detector", False), ("direction", False),
                ("position", True), ("entry", False),
                ("finding", False)], rows))


def _history_entries_panel(entries: Sequence[Any]) -> str:
    rows = []
    for position, entry in enumerate(entries):
        environment = " ".join(
            f"{key}={value}"
            for key, value in sorted(entry.environment.items()))
        rows.append([str(position), escape(entry.kind),
                     f'<span class="mono">{escape(entry.entry_id[:12])}'
                     "</span>",
                     f'<span class="mono">{escape(entry.key[:12])}</span>',
                     escape(entry.label), str(len(entry.metrics)),
                     escape(environment)])
    return _panel(
        "Ledger entries",
        _table([("#", True), ("kind", False), ("entry", False),
                ("key", False), ("label", False), ("metrics", True),
                ("environment", False)], rows))


def history_report_html(entries: Sequence[Any],
                        findings: Optional[Sequence[Any]] = None,
                        bench_reports: Sequence[BenchReport] = (),
                        baseline: Optional[BenchReport] = None,
                        threshold: float = 0.25,
                        warnings: Sequence[str] = ()) -> str:
    """Single-file longitudinal report over a loaded run ledger.

    A pure function of the entry sequence (plus any loaded
    ``BENCH_*.json`` trajectory reports): the same ledger renders
    byte-identical HTML.  ``findings`` defaults to running the drift
    sentinel (:func:`~repro.obs.drift.detect_drift`) at its default
    tuning; ``warnings`` surfaces tolerated-load messages (corrupt
    ledger lines) in the document.
    """
    from .drift import detect_drift, gate_ok

    entries = list(entries)
    if findings is None:
        findings = detect_drift(entries)
    sections = [_history_overview_panel(entries, findings,
                                        gate_ok(findings))]
    sections.extend(_history_trend_panels(entries, findings))
    sections.append(_history_findings_panel(findings))
    if entries:
        sections.append(_history_entries_panel(entries))
    if bench_reports:
        sections.append(_bench_section(list(bench_reports), baseline,
                                       threshold))
    for warning in warnings:
        sections.append(_note(f"ledger warning: {warning}"))
    subtitle = (f"{len(entries)} ledger entr"
                f"{'y' if len(entries) == 1 else 'ies'}, "
                f"{len(findings)} drift finding(s)")
    return _document("MP-DASH run history", subtitle, sections)


def write_report(path: str, html: str) -> None:
    """Write a rendered report to ``path`` (UTF-8)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(html)
