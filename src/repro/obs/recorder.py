"""Tail-sampled flight recorder and anomaly triage for fleet workers.

The fleet engine scales by folding every session into a mergeable
registry and discarding per-run artifacts — so the sessions that matter
most (invariant violations, deadline-miss storms, bottom-percentile QoE,
outright failures) leave no trace behind.  This module closes that gap
the way production serving fleets do: every worker runs its sessions
with an in-memory trace buffer, and keeps the full JSONL trace only when
a *trigger* fires.

Triggers, in triage-severity order (:data:`REASON_ORDER`):

* ``violation`` — the session's trace fails the stock invariant battery
  with an ERROR-severity violation (checked offline via
  :func:`~repro.obs.check.check_trace`, which is pinned identical to the
  live monitor);
* ``failure`` — the session raised (recorded trace-less; the exception
  preempts the event stream);
* ``deadline_miss`` / ``stall`` — the scheduler's deadline-miss count or
  the player's stall count crossed a configured threshold;
* ``bottom_qoe`` — the session is among the shard's ``bottom_k`` worst
  by QoE (a per-shard reservoir, so capture decisions never depend on
  cross-shard execution order);
* ``head_sample`` — deterministic head sampling (every ``head_every``-th
  session), the unbiased reference population.

Kept traces are written as deterministic gzip JSONL artifacts keyed by
``(fleet_key, session_index)`` — same campaign, same index ⇒ identical
bytes, across worker counts and kill/resume boundaries — plus a JSON
*manifest* (:func:`save_manifest`) that :func:`rank_anomalies` and the
``repro triage`` CLI consume to rank, replay, and render the worst
sessions through the existing offline pipeline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .check import ERROR, check_trace
from .trace_export import Trace, dumps_jsonl, gzip_bytes, load_jsonl
from .why import attributions_from_trace, summarize_attributions

#: Capture reasons, most severe first — the primary triage ranking key.
REASON_VIOLATION = "violation"
REASON_FAILURE = "failure"
REASON_MISS = "deadline_miss"
REASON_STALL = "stall"
REASON_BOTTOM = "bottom_qoe"
REASON_HEAD = "head_sample"
REASON_ORDER: Tuple[str, ...] = (
    REASON_VIOLATION, REASON_FAILURE, REASON_MISS, REASON_STALL,
    REASON_BOTTOM, REASON_HEAD)

#: Manifest filename inside one campaign's artifact directory.
MANIFEST_FILE = "anomalies.json"
MANIFEST_VERSION = 1

#: Characters of the fleet key used as the artifact directory name.
_KEY_DIR_CHARS = 16

#: Stall-time weight of the recorder's QoE proxy (Mbps of bitrate one
#: unit of rebuffer *ratio* is worth — the spirit of the robust-MPC
#: rebuffer penalty in :mod:`repro.analysis.qoe`).
QOE_REBUFFER_WEIGHT = 8.0


@dataclass(frozen=True)
class RecorderConfig:
    """Flight-recorder policy: where artifacts go and what fires capture.

    Every field is a pure per-session predicate (or a per-shard one, for
    the reservoir), so the captured set is a deterministic function of
    the fleet config and seed alone.
    """

    #: Root directory for artifacts; one subdirectory per campaign key.
    artifact_dir: str
    #: Keep every Nth session unconditionally (0 disables head sampling).
    head_every: int = 0
    #: Capture when scheduler deadline misses reach this count.
    miss_threshold: int = 10
    #: Capture when the player stalled at least this many times.
    stall_threshold: int = 3
    #: Per-shard reservoir of the k worst sessions by QoE proxy.
    bottom_k: int = 1
    #: Traces longer than this many events are counted, not kept.
    max_events: int = 200_000
    #: Record failed sessions (trace-less — the raise preempts capture).
    capture_failures: bool = True
    #: Run the stock invariant battery offline on every session trace.
    check: bool = True

    def __post_init__(self) -> None:
        if not self.artifact_dir:
            raise ValueError("recorder needs an artifact_dir")
        for name in ("head_every", "miss_threshold", "stall_threshold",
                     "bottom_k", "max_events"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative: "
                                 f"{getattr(self, name)!r}")


def key_dir(artifact_dir: str, key: str) -> str:
    """One campaign's artifact directory under the recorder root."""
    return os.path.join(artifact_dir, key[:_KEY_DIR_CHARS])


def artifact_name(index: int) -> str:
    """Artifact filename for one session index (fixed-width, sortable)."""
    return f"session-{index:08d}.jsonl.gz"


def _qoe_proxy(metrics: Any, session_duration: float) -> float:
    """Bitrate minus a stall-ratio penalty: higher is better.

    A deliberately simple, ladder-free stand-in for the composite QoE in
    :mod:`repro.analysis.qoe` — it only has to *order* sessions within a
    shard, deterministically, from SessionMetrics alone.
    """
    ratio = metrics.total_stall_time / max(session_duration, 1e-9)
    return metrics.mean_bitrate_mbps - QOE_REBUFFER_WEIGHT * ratio


def empty_stats() -> Dict[str, Any]:
    return {"sessions": 0, "captured": 0, "oversized": 0, "untraced": 0,
            "bytes_written": 0,
            "by_reason": {reason: 0 for reason in REASON_ORDER}}


def merge_stats(total: Dict[str, Any], part: Mapping[str, Any]) -> None:
    """Fold one shard's recorder stats into a running total, in place."""
    for name in ("sessions", "captured", "oversized", "untraced",
                 "bytes_written"):
        total[name] = total.get(name, 0) + int(part.get(name, 0))
    by_reason = total.setdefault("by_reason", {})
    for reason, count in part.get("by_reason", {}).items():
        by_reason[reason] = by_reason.get(reason, 0) + int(count)


class ShardRecorder:
    """Capture policy applied to one shard's sessions, worker-side.

    The worker calls :meth:`observe` per finished session and
    :meth:`record_failure` per raised one, then :meth:`flush` at shard
    end (which settles the bottom-QoE reservoir).  :meth:`payload`
    returns the JSON-ready summary — stats plus ordered capture records
    — that rides the shard result channel back to the parent; the traces
    themselves never do (they go straight to disk here).
    """

    def __init__(self, config: RecorderConfig, key: str, shard: int):
        self.config = config
        self.key = key
        self.shard = shard
        self.directory = key_dir(config.artifact_dir, key)
        self.stats = empty_stats()
        self.records: List[Dict[str, Any]] = []
        self._kept: set = set()
        #: Reservoir of (qoe, index, canonical trace text) for sessions
        #: not otherwise captured — at most ``bottom_k`` entries live.
        self._reservoir: List[Tuple[float, int, str]] = []

    # ------------------------------------------------------------------
    def observe(self, index: int, result: Any) -> List[Any]:
        """Judge one finished session and capture its trace if triggered.

        ``result`` is duck-typed on the :class:`SessionResult` surface:
        ``events``/``trace_meta`` (absent on runners that ignore
        ``record_trace`` — such sessions are counted ``untraced``),
        ``metrics``, ``scheduler_stats``, ``finished``,
        ``session_duration``.

        Returns the session's :class:`~repro.obs.why.Attribution` list
        (empty for untraced, unchecked, or anomaly-free sessions) so the
        caller can fold root causes into its shard registry.
        """
        self.stats["sessions"] += 1
        events = getattr(result, "events", None)
        if events is None:
            self.stats["untraced"] += 1
            return []
        metrics = result.metrics
        misses = int(dict(result.scheduler_stats).get(
            "deadline_misses", 0))
        stalls = int(metrics.stall_count)
        qoe = _qoe_proxy(metrics, result.session_duration)
        violations: Optional[Dict[str, int]] = None
        attributions: List[Any] = []
        reasons: List[str] = []
        if self.config.check:
            trace = Trace(meta=result.trace_meta, events=list(events))
            report = check_trace(trace)
            violations = report.by_severity()
            if violations.get(ERROR):
                reasons.append(REASON_VIOLATION)
            # Same cost discipline as capture itself: the attribution
            # walker's cheap probe returns [] for anomaly-free sessions,
            # so only sessions with something to explain pay the walk.
            attributions = attributions_from_trace(trace, report=report)
        if misses >= self.config.miss_threshold > 0:
            reasons.append(REASON_MISS)
        if stalls >= self.config.stall_threshold > 0:
            reasons.append(REASON_STALL)
        if self.config.head_every and index % self.config.head_every == 0:
            reasons.append(REASON_HEAD)
        detail = {"qoe": qoe, "misses": misses, "stalls": stalls,
                  "bitrate_mbps": metrics.mean_bitrate_mbps,
                  "stall_seconds": metrics.total_stall_time,
                  "finished": bool(result.finished),
                  "violations": violations,
                  "attribution": (summarize_attributions(attributions)
                                  if attributions else None),
                  "error": None}
        if reasons:
            text = dumps_jsonl(events, result.trace_meta)
            self._keep(index, reasons, len(events), text, detail)
        elif self.config.bottom_k and self._admits(qoe, index):
            # Serialize lazily: only sessions actually entering the
            # reservoir pay the dumps cost (most are dominated and skip
            # it), which is what keeps the anomaly-free overhead small.
            self._offer_reservoir(
                qoe, index, dumps_jsonl(events, result.trace_meta))
        return attributions

    def record_failure(self, index: int, error: str) -> None:
        """A session raised: keep a trace-less anomaly record."""
        self.stats["sessions"] += 1
        if not self.config.capture_failures:
            return
        self.stats["captured"] += 1
        self.stats["by_reason"][REASON_FAILURE] += 1
        self._kept.add(index)
        self.records.append({
            "index": index, "shard": self.shard,
            "reason": REASON_FAILURE, "reasons": [REASON_FAILURE],
            "score": 1.0, "artifact": None, "events": 0,
            "qoe": None, "misses": None, "stalls": None,
            "bitrate_mbps": None, "stall_seconds": None,
            "finished": False, "violations": None,
            "attribution": None, "error": error})

    def flush(self) -> None:
        """Settle the reservoir: the surviving k worst become records."""
        for qoe, index, text in sorted(self._reservoir,
                                       key=lambda entry: entry[:2]):
            if index in self._kept:
                continue
            events = max(text.count("\n") - 1, 0)
            self._keep(index, [REASON_BOTTOM], events, text,
                       {"qoe": qoe, "misses": None, "stalls": None,
                        "bitrate_mbps": None, "stall_seconds": None,
                        "finished": True, "violations": None,
                        "attribution": None, "error": None})
        self._reservoir = []
        self.records.sort(key=lambda record: record["index"])

    def payload(self) -> Dict[str, Any]:
        """The JSON-ready shard summary for the result channel."""
        return {"stats": self.stats, "records": list(self.records)}

    # ------------------------------------------------------------------
    def _admits(self, qoe: float, index: int) -> bool:
        """Would ``(qoe, index)`` enter the bottom-k reservoir?"""
        if len(self._reservoir) < self.config.bottom_k:
            return True
        worst = max(self._reservoir, key=lambda e: e[:2])
        return (qoe, index) < worst[:2]

    def _offer_reservoir(self, qoe: float, index: int, text: str) -> None:
        if len(self._reservoir) >= self.config.bottom_k:
            self._reservoir.remove(
                max(self._reservoir, key=lambda e: e[:2]))
        self._reservoir.append((qoe, index, text))

    def _score(self, reason: str, detail: Mapping[str, Any]) -> float:
        """Reason-specific badness (higher = worse) for triage ranking."""
        if reason == REASON_VIOLATION:
            return float((detail.get("violations") or {}).get(ERROR, 0))
        if reason == REASON_MISS:
            return float(detail.get("misses") or 0)
        if reason == REASON_STALL:
            return float(detail.get("stalls") or 0)
        if reason == REASON_BOTTOM:
            return -float(detail.get("qoe") or 0.0)
        return 0.0

    def _keep(self, index: int, reasons: List[str], events: int,
              text: str, detail: Dict[str, Any]) -> None:
        reason = min(reasons, key=REASON_ORDER.index)
        artifact: Optional[str] = None
        if events > self.config.max_events:
            self.stats["oversized"] += 1
        else:
            artifact = self._write(index, text)
        self.stats["captured"] += 1
        self.stats["by_reason"][reason] += 1
        self._kept.add(index)
        record = {"index": index, "shard": self.shard, "reason": reason,
                  "reasons": sorted(reasons, key=REASON_ORDER.index),
                  "score": self._score(reason, detail),
                  "artifact": artifact, "events": events}
        record.update(detail)
        self.records.append(record)

    def _write(self, index: int, text: str) -> str:
        """Atomically write one deterministic gzip artifact; returns the
        path relative to the recorder root."""
        os.makedirs(self.directory, exist_ok=True)
        blob = gzip_bytes(text.encode("utf-8"))
        final = os.path.join(self.directory, artifact_name(index))
        tmp = f"{final}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, final)
        self.stats["bytes_written"] += len(blob)
        return os.path.join(os.path.basename(self.directory),
                            artifact_name(index))


# ----------------------------------------------------------------------
# The manifest (what `repro triage` consumes)
# ----------------------------------------------------------------------
def save_manifest(artifact_dir: str, key: str, stats: Mapping[str, Any],
                  records: Sequence[Mapping[str, Any]]) -> str:
    """Atomically write one campaign's anomaly manifest; returns its path.

    Written by the *parent* at checkpoint cadence and on completion, so
    a manifest always describes a committed (in-order) prefix of the
    campaign — never a torn view of in-flight workers.
    """
    directory = key_dir(artifact_dir, key)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_FILE)
    payload = {"version": MANIFEST_VERSION, "fleet_key": key,
               "stats": dict(stats), "records": list(records)}
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)
    return path


def find_manifests(artifact_dir: str) -> List[str]:
    """Every campaign manifest under ``artifact_dir`` (sorted).

    Accepts either the recorder root (manifests one level down) or a
    single campaign directory containing the manifest itself.
    """
    direct = os.path.join(artifact_dir, MANIFEST_FILE)
    if os.path.isfile(direct):
        return [direct]
    found = []
    try:
        entries = sorted(os.listdir(artifact_dir))
    except OSError:
        return []
    for entry in entries:
        candidate = os.path.join(artifact_dir, entry, MANIFEST_FILE)
        if os.path.isfile(candidate):
            found.append(candidate)
    return found


def load_manifest(path: str) -> Dict[str, Any]:
    """Load one manifest; raises ``ValueError`` on malformed content."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "records" not in payload:
        raise ValueError(f"not an anomaly manifest: {path}")
    return payload


# ----------------------------------------------------------------------
# Triage: rank, replay, drill down
# ----------------------------------------------------------------------
def rank_anomalies(records: Sequence[Mapping[str, Any]],
                   top: Optional[int] = None) -> List[Dict[str, Any]]:
    """Captured records, worst first: by reason severity, then score
    (descending badness), then session index — a total, deterministic
    order."""
    rank = {reason: i for i, reason in enumerate(REASON_ORDER)}

    def sort_key(record: Mapping[str, Any]):
        return (rank.get(record.get("reason"), len(REASON_ORDER)),
                -float(record.get("score") or 0.0),
                int(record.get("index", 0)))

    ranked = [dict(record) for record in sorted(records, key=sort_key)]
    return ranked if top is None else ranked[:top]


def replay_anomaly(artifact_dir: str,
                   record: Mapping[str, Any]) -> Dict[str, Any]:
    """Re-judge one captured trace through the offline pipeline.

    Loads the gzip artifact, replays it through
    :func:`~repro.obs.check.check_trace`, and reports the offline
    verdict counts alongside the recorded ones — live == offline is the
    observability layer's standing identity, and this is where a fleet
    operator verifies it per anomaly.  Trace-less records (failures) and
    unreadable artifacts degrade to an ``error`` entry, never a raise.
    """
    artifact = record.get("artifact")
    if not artifact:
        return {"replayed": False, "error": "no artifact (trace-less)"}
    path = os.path.join(artifact_dir, artifact)
    try:
        trace = load_jsonl(path)
    except (OSError, ValueError) as exc:
        return {"replayed": False,
                "error": f"{type(exc).__name__}: {exc}"}
    report = check_trace(trace)
    verdicts = report.by_severity()
    recorded = record.get("violations")
    return {"replayed": True, "events": len(trace.events),
            "violations": verdicts, "ok": report.ok,
            "matches_recorded": (recorded is None
                                 or dict(recorded) == dict(verdicts)),
            "error": None}


def render_anomaly_reports(artifact_dir: str,
                           records: Sequence[Mapping[str, Any]],
                           out_dir: str) -> Dict[int, str]:
    """Render mini session reports for captured traces, worst-k style.

    For each record with a loadable artifact, writes
    ``anomaly-<index>.html`` (the full single-session report via
    :func:`~repro.obs.report.session_report_html`, derived offline from
    the captured trace) into ``out_dir`` and returns ``{session index:
    filename}`` for linking.  Trace-less and unreadable records are
    skipped — triage must degrade, not raise, on a partially scrubbed
    artifact directory.
    """
    from .report import session_report_html, write_report

    links: Dict[int, str] = {}
    os.makedirs(out_dir, exist_ok=True)
    for record in records:
        artifact = record.get("artifact")
        if not artifact:
            continue
        try:
            trace = load_jsonl(os.path.join(artifact_dir, artifact))
        except (OSError, ValueError):
            continue
        index = int(record["index"])
        name = f"anomaly-{index:08d}.html"
        write_report(os.path.join(out_dir, name),
                     session_report_html(trace))
        links[index] = name
    return links


def triage_table(records: Sequence[Mapping[str, Any]]) -> str:
    """Plain-text ranking of captured anomalies, worst first."""
    from ..experiments.tables import format_table  # avoid cycle

    def num(value, fmt="{:.2f}"):
        return "-" if value is None else fmt.format(value)

    rows = []
    for record in records:
        attribution = record.get("attribution") or {}
        rows.append([
            record.get("index", "-"), record.get("shard", "-"),
            str(record.get("reason", "-")),
            num(record.get("score")),
            num(record.get("qoe")),
            num(record.get("misses"), "{:.0f}"),
            num(record.get("stalls"), "{:.0f}"),
            attribution.get("top_cause") or "-",
            record.get("artifact") or "-"])
    return format_table(
        ["session", "shard", "reason", "score", "qoe", "misses",
         "stalls", "top cause", "artifact"],
        rows, title=f"triage: {len(records)} anomaly record(s), "
                    f"worst first")
