"""Persistent, append-only run ledger — the longitudinal memory.

Every other view in :mod:`repro.obs` is within-run: the bus, the
registry, spans, invariants, and the flight recorder all die with the
process.  The ledger is the piece that remembers *across* runs: a
schema-versioned JSONL file to which every entry point — `run_session`,
`run_sweep`, `run_fleet`, `run_bench` — can append one
:class:`LedgerEntry` recording its config/fleet key, an environment
fingerprint (the same ``platform`` triple ``run_bench`` stores in its
report meta), headline metrics (QoE, deadline misses, stalls, cellular
bytes, energy, violations, sim-per-wall, peak RSS), and a digest of the
serialized :class:`~repro.obs.metrics.MetricsRegistry`.

Durability contract:

* **Appends are atomic.**  One entry is one canonical-JSON line written
  with a single ``write`` on an ``O_APPEND`` descriptor, so concurrent
  appenders (two sweeps sharing a ledger) never interleave partial
  records.
* **Loads tolerate a corrupt tail.**  A crash mid-append can leave a
  truncated last line; :meth:`RunLedger.load` skips any unreadable line
  and reports it as a warning instead of refusing the whole file.
* **Entries are content-addressed.**  ``entry_id`` is the SHA-256 of
  the entry's canonical JSON body, so an id names exactly one payload
  and the drift sentinel (:mod:`repro.obs.drift`) can cite evidence by
  id.  ``from_dict`` recomputes and verifies the recorded id.

The ledger records no wall-clock timestamps: file order *is* the
timeline, which keeps every derived view (``repro history`` trends,
:func:`~repro.obs.report.history_report_html`) a byte-deterministic
pure function of the ledger file.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Schema version stamped into every entry; loads skip (with a warning)
#: entries written by a future schema.
LEDGER_SCHEMA = 1

#: The entry kinds the schema knows, one per entry point.
ENTRY_KINDS = ("session", "sweep", "fleet", "bench")

#: Stall-ratio weight of the ledger's ladder-free QoE headline (same
#: spirit and value as the flight recorder's proxy).
_QOE_REBUFFER_WEIGHT = 8.0


def canonical_json(payload: Any) -> str:
    """The repo-wide canonical encoding: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def environment_fingerprint() -> Dict[str, str]:
    """The run's environment, in the exact shape ``run_bench`` records
    as report ``meta`` — so ledger entries and bench reports compare."""
    return {"python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine()}


def registry_digest(registry: Any) -> str:
    """Content digest of a serialized ``MetricsRegistry`` (24 hex chars,
    like ``config_key``)."""
    body = canonical_json(registry.to_dict())
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class LedgerEntry:
    """One run's record: what ran, where, and how it scored.

    ``metrics`` maps headline-metric name to a finite float; which
    names appear depends on ``kind`` (a bench entry has per-scenario
    throughput figures, a fleet entry population quantiles).  The
    drift sentinel treats each ``(kind, metric)`` pair as one series.
    """

    kind: str
    #: Config/fleet key (``config_key``/``fleet_key``) or bench label —
    #: whatever names "the same experiment" for this kind.
    key: str
    label: str = ""
    environment: Mapping[str, str] = field(default_factory=dict)
    metrics: Mapping[str, float] = field(default_factory=dict)
    #: Digest of the run's serialized MetricsRegistry (None when the
    #: run carried no registry, e.g. bench).
    registry_digest: Optional[str] = None
    schema: int = LEDGER_SCHEMA

    def __post_init__(self) -> None:
        if self.kind not in ENTRY_KINDS:
            raise ValueError(f"unknown ledger entry kind {self.kind!r}; "
                             f"known: {', '.join(ENTRY_KINDS)}")
        if self.schema > LEDGER_SCHEMA:
            raise ValueError(f"entry schema {self.schema} is newer than "
                             f"this reader (schema {LEDGER_SCHEMA})")
        numeric: Dict[str, float] = {}
        for name in sorted(self.metrics):
            value = float(self.metrics[name])
            if not math.isfinite(value):
                raise ValueError(
                    f"ledger metric {name!r} must be finite: {value!r}")
            numeric[name] = value
        object.__setattr__(self, "metrics", numeric)
        object.__setattr__(self, "environment",
                           {str(k): str(v)
                            for k, v in sorted(self.environment.items())})

    def _body(self) -> Dict[str, Any]:
        return {"schema": self.schema, "kind": self.kind, "key": self.key,
                "label": self.label, "environment": dict(self.environment),
                "metrics": dict(self.metrics),
                "registry_digest": self.registry_digest}

    @property
    def entry_id(self) -> str:
        """Content address: SHA-256 of the canonical body (24 hex)."""
        body = canonical_json(self._body())
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:24]

    def to_dict(self) -> Dict[str, Any]:
        payload = self._body()
        payload["entry_id"] = self.entry_id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LedgerEntry":
        """Inverse of :meth:`to_dict`; verifies the content address."""
        entry = cls(kind=payload["kind"], key=payload["key"],
                    label=payload.get("label", ""),
                    environment=payload.get("environment", {}),
                    metrics=payload.get("metrics", {}),
                    registry_digest=payload.get("registry_digest"),
                    schema=payload.get("schema", LEDGER_SCHEMA))
        recorded = payload.get("entry_id")
        if recorded is not None and recorded != entry.entry_id:
            raise ValueError(f"entry id mismatch: recorded {recorded!r}, "
                             f"body hashes to {entry.entry_id!r}")
        return entry


@dataclass(frozen=True)
class LedgerLoad:
    """A tolerant load's outcome: the readable entries, in file order,
    plus one warning per line that could not be read."""

    entries: Tuple[LedgerEntry, ...]
    warnings: Tuple[str, ...]


class RunLedger:
    """The append-only JSONL ledger at ``path``.

    The file need not exist yet; the first :meth:`append` creates it.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)

    def append(self, entry: LedgerEntry) -> str:
        """Durably append one entry; returns its ``entry_id``.

        A single ``write`` on an ``O_APPEND`` descriptor: concurrent
        appenders interleave whole lines, never fragments.
        """
        data = (canonical_json(entry.to_dict()) + "\n").encode("utf-8")
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return entry.entry_id

    def load(self) -> LedgerLoad:
        """Read every entry, skipping (with a warning) unreadable lines.

        A missing file loads as empty — a ledger that has never been
        appended to holds no history, which is not an error.
        """
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return LedgerLoad((), ())
        entries: List[LedgerEntry] = []
        warnings: List[str] = []
        for number, line in enumerate(raw.split(b"\n"), 1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("entry is not a JSON object")
                entries.append(LedgerEntry.from_dict(payload))
            except (ValueError, KeyError, TypeError) as exc:
                warnings.append(
                    f"{self.path}:{number}: skipped unreadable ledger "
                    f"line ({exc})")
        return LedgerLoad(tuple(entries), tuple(warnings))

    def entries(self) -> Tuple[LedgerEntry, ...]:
        """The readable entries, warnings dropped."""
        return self.load().entries

    def __repr__(self) -> str:
        return f"<RunLedger {self.path}>"


# ----------------------------------------------------------------------
# Entry builders, one per entry point
# ----------------------------------------------------------------------
def _qoe_proxy(metrics: Any, session_duration: float) -> float:
    """Bitrate minus a stall-ratio penalty (the recorder's ordering
    proxy): ladder-free, computable from ``SessionMetrics`` alone."""
    ratio = metrics.total_stall_time / max(session_duration, 1e-9)
    return metrics.mean_bitrate_mbps - _QOE_REBUFFER_WEIGHT * ratio


def _perf_metrics(wall_clock: Optional[float],
                  sim_seconds: Optional[float]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    if wall_clock is not None and wall_clock > 0:
        out["wall_clock_seconds"] = float(wall_clock)
        if sim_seconds is not None:
            out["sim_per_wall"] = float(sim_seconds) / float(wall_clock)
    peak = _peak_rss_kb()
    if peak is not None:
        out["peak_rss_kb"] = float(peak)
    return out


def _peak_rss_kb() -> Optional[int]:
    from .bench import _peak_rss_kb as probe

    return probe()


def session_entry(result: Any, label: str = "",
                  wall_clock: Optional[float] = None) -> LedgerEntry:
    """Build the ledger entry for one finished ``run_session`` result."""
    m = result.metrics
    stats = result.scheduler_stats
    metrics: Dict[str, float] = {
        "qoe": _qoe_proxy(m, result.session_duration),
        "bitrate_mbps": m.mean_bitrate_mbps,
        "stall_seconds": m.total_stall_time,
        "stall_count": float(m.stall_count),
        "startup_seconds": m.startup_delay or 0.0,
        "cellular_mbytes": m.cellular_bytes / 1e6,
        "cellular_fraction": m.cellular_fraction,
        "energy_joules": m.radio_energy,
        "deadline_misses": float(stats.get("deadline_misses", 0)),
        "finished": 1.0 if result.finished else 0.0,
    }
    report = getattr(result, "check_report", None)
    if report is not None:
        metrics["violations"] = float(len(report.errors()))
    metrics.update(_perf_metrics(wall_clock, result.session_duration))
    digest = None
    if getattr(result, "metrics_registry", None) is not None:
        digest = registry_digest(result.metrics_registry)
    from ..experiments.sweep import config_key

    return LedgerEntry(kind="session", key=config_key(result.config),
                       label=label,
                       environment=environment_fingerprint(),
                       metrics=metrics, registry_digest=digest)


def sweep_entry(result: Any, label: str = "") -> LedgerEntry:
    """Build the ledger entry for one ``run_sweep`` result.

    The key hashes the sorted set of run config keys, so "the same
    grid" maps to the same series regardless of run order.
    """
    keys = sorted({run.config_key for run in result.runs})
    key = hashlib.sha256(
        canonical_json(keys).encode("utf-8")).hexdigest()[:24]
    sessions = [s for s in result.summaries
                if hasattr(s, "metrics")]  # downloads carry no QoE
    metrics: Dict[str, float] = {
        "runs": float(len(result.runs)),
        "failures": float(len(result.failures)),
        "cache_hits": float(result.cache_hits),
    }
    if sessions:
        count = float(len(sessions))
        metrics["qoe"] = sum(
            _qoe_proxy(s.metrics, s.session_duration)
            for s in sessions) / count
        metrics["bitrate_mbps"] = sum(
            s.metrics.mean_bitrate_mbps for s in sessions) / count
        metrics["stall_seconds"] = sum(
            s.metrics.total_stall_time for s in sessions)
        metrics["cellular_mbytes"] = sum(
            s.metrics.cellular_bytes for s in sessions) / 1e6
        metrics["energy_joules"] = sum(
            s.metrics.radio_energy for s in sessions)
        metrics["deadline_misses"] = float(sum(
            s.scheduler_stats.get("deadline_misses", 0)
            for s in sessions))
        checked = [s for s in sessions if s.violations is not None]
        if checked:
            metrics["violations"] = float(sum(
                s.violations.get("error", 0) for s in checked))
        sim_seconds = sum(s.session_duration for s in sessions)
        metrics.update(_perf_metrics(result.wall_clock, sim_seconds))
    else:
        metrics.update(_perf_metrics(result.wall_clock, None))
    return LedgerEntry(kind="sweep", key=key, label=label,
                       environment=environment_fingerprint(),
                       metrics=metrics, registry_digest=None)


def fleet_entry(result: Any, label: str = "") -> LedgerEntry:
    """Build the ledger entry for one ``run_fleet`` result."""
    from ..experiments.fleet import fleet_key

    population = result.population()
    metrics: Dict[str, float] = {
        "sessions": float(result.sessions),
        "failures": float(result.failures),
        "deadline_misses": float(population["deadline_misses_total"]),
        "unfinished_sessions": float(population["unfinished_sessions"]),
    }
    for name in ("bitrate_p50_mbps", "bitrate_p95_mbps",
                 "stalled_session_fraction", "stall_seconds_p95",
                 "startup_p50_seconds", "cellular_fraction_p50",
                 "cellular_mbytes_p50", "radio_energy_p50_joules"):
        value = population.get(name)
        if value is not None:
            metrics[name] = float(value)
    # With the flight recorder armed, its capture verdicts become part
    # of the longitudinal record: an ERROR-violation capture appearing
    # where the history had none is exactly the drift the gate exists
    # to catch.
    stats = result.recorder
    if stats is not None:
        metrics["anomalies"] = float(stats.get("captured", 0))
        by_reason = stats.get("by_reason", {})
        metrics["violations"] = float(by_reason.get("violation", 0))
    metrics.update(_perf_metrics(result.wall_clock, result.sim_seconds))
    return LedgerEntry(kind="fleet", key=fleet_key(result.config),
                       label=label,
                       environment=environment_fingerprint(),
                       metrics=metrics,
                       registry_digest=registry_digest(result.registry))


def bench_entry(report: Any, label: Optional[str] = None) -> LedgerEntry:
    """Build the ledger entry for one ``run_bench`` report.

    Metrics are flattened per scenario (``single.sim_per_wall`` …), so
    each pinned scenario trends as its own series.
    """
    metrics: Dict[str, float] = {}
    for result in report.results:
        prefix = result.scenario
        metrics[f"{prefix}.wall_clock"] = result.wall_clock
        metrics[f"{prefix}.sim_per_wall"] = result.sim_per_wall
        if result.events_per_sec is not None:
            metrics[f"{prefix}.events_per_sec"] = result.events_per_sec
        if result.peak_rss_kb is not None:
            metrics[f"{prefix}.peak_rss_kb"] = float(result.peak_rss_kb)
    environment = dict(report.meta) or environment_fingerprint()
    return LedgerEntry(kind="bench", key=report.label,
                       label=label if label is not None else report.label,
                       environment=environment, metrics=metrics,
                       registry_digest=None)
