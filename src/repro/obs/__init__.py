"""Cross-layer observability: one typed event stream for the whole stack.

Every layer of the reproduction — the simulation kernel, TCP, MPTCP
subflows and their schedulers, the MP-DASH control plane, HTTP, the DASH
player, and the energy model — publishes typed events onto a single
:class:`~repro.obs.bus.EventBus` owned by the
:class:`~repro.net.simulator.Simulator`.  The legacy per-layer records
(:class:`~repro.mptcp.activity.ActivityLog`,
:class:`~repro.dash.events.PlayerEventLog`) are subscribers of that bus,
and :mod:`repro.obs.trace_export` turns the stream into a JSONL trace that
can be dumped, reloaded, and replayed into the analysis tool offline.
"""

from .bus import EventBus
from .events import (EVENT_TYPES, RADIO_ACTIVE, RADIO_IDLE, RADIO_TAIL,
                     ChunkDownloaded, ChunkRequested,
                     CwndRestarted, DeadlineArmed, DeadlineDisarmed,
                     DeadlineExtended, DeadlineMissed, HttpRequestSent,
                     HttpResponseReceived, MpDashArmed, MpDashSkipped,
                     PacketSent, PathStateRequested, PlaybackEnded,
                     PlaybackStarted, QualitySwitched, RadioStateChange,
                     SchedulerActivated, SessionClosed, StallEnd, StallStart,
                     SubflowReconnected, SubflowStateChange, SweepCompleted,
                     SweepRunFailed, SweepRunFinished, SweepRunStarted,
                     SweepStarted, TraceEvent, TransferCompleted,
                     TransferStarted, event_from_dict, event_to_dict)
from .trace_export import (Trace, TraceMeta, TraceRecorder,
                           analyzer_from_trace, dump_jsonl, dumps_jsonl,
                           load_jsonl, loads_jsonl, metrics_from_trace,
                           replay)

__all__ = [
    "EVENT_TYPES", "RADIO_ACTIVE", "RADIO_IDLE", "RADIO_TAIL", "ChunkDownloaded", "ChunkRequested", "CwndRestarted",
    "DeadlineArmed", "DeadlineDisarmed", "DeadlineExtended",
    "DeadlineMissed", "EventBus", "HttpRequestSent", "HttpResponseReceived",
    "MpDashArmed", "MpDashSkipped", "PacketSent", "PathStateRequested",
    "PlaybackEnded", "PlaybackStarted", "QualitySwitched",
    "RadioStateChange", "SchedulerActivated", "SessionClosed", "StallEnd",
    "StallStart", "SubflowReconnected", "SubflowStateChange",
    "SweepCompleted", "SweepRunFailed", "SweepRunFinished",
    "SweepRunStarted", "SweepStarted", "Trace",
    "TraceEvent", "TraceMeta", "TraceRecorder", "TransferCompleted",
    "TransferStarted", "analyzer_from_trace", "dump_jsonl", "dumps_jsonl",
    "event_from_dict", "event_to_dict", "load_jsonl", "loads_jsonl",
    "metrics_from_trace", "replay",
]
