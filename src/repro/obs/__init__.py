"""Cross-layer observability: one typed event stream for the whole stack.

Every layer of the reproduction — the simulation kernel, TCP, MPTCP
subflows and their schedulers, the MP-DASH control plane, HTTP, the DASH
player, and the energy model — publishes typed events onto a single
:class:`~repro.obs.bus.EventBus` owned by the
:class:`~repro.net.simulator.Simulator`.  The legacy per-layer records
(:class:`~repro.mptcp.activity.ActivityLog`,
:class:`~repro.dash.events.PlayerEventLog`) are subscribers of that bus,
and :mod:`repro.obs.trace_export` turns the stream into a JSONL trace that
can be dumped, reloaded, and replayed into the analysis tool offline.

On top of the stream sit five derived views, all bus subscribers or pure
functions of a trace, all reconstructible offline:

* :mod:`repro.obs.metrics` — counters, gauges, mergeable histograms, and
  timeseries (the standard session registry, Prometheus/JSON exposition);
* :mod:`repro.obs.spans` — the causal span tree of every chunk, exportable
  as Chrome trace-event JSON for Perfetto;
* :mod:`repro.obs.profile` — opt-in wall-clock attribution per event
  type, subscriber handler, and simulator callback;
* :mod:`repro.obs.check` — declarative invariant monitoring: stock
  checkers judge the stream against the paper's semantic contracts and
  emit structured violations;
* :mod:`repro.obs.why` — causal root-cause attribution: every deadline
  miss, stall, and ERROR violation explained through a declarative rule
  set, two traces diffed chunk-by-chunk, and blame histograms folded
  into the fleet registry.

:mod:`repro.obs.bench` is the performance counterpart: pinned scenarios
measured for wall-clock, sim-time throughput, bus event rate, and peak
RSS, with baseline comparison for regression gating.

:mod:`repro.obs.ledger` and :mod:`repro.obs.drift` extend observability
*across* runs: an append-only, content-addressed JSONL run ledger every
entry point can opt into, and a drift sentinel (EWMA control bands +
CUSUM change points) that turns the ledger population into a regression
gate (``repro history``).

The presentation layer sits on top of the derived views:
:mod:`repro.obs.svg` is a dependency-free SVG chart renderer,
:mod:`repro.obs.report` turns traces, sweep results, and bench reports
into self-contained single-file HTML documents (pure functions of their
inputs — live and offline rendering are byte-identical), and
:mod:`repro.obs.live` draws a live terminal dashboard during sweeps.
"""

from .bench import (BenchReport, BenchResult, MetaMismatch, compare_meta,
                    compare_reports, run_bench, run_scenario)
from .bus import EventBus
from .drift import (DriftFinding, control_track, detect_drift,
                    drift_table, gate_ok, metric_direction, metric_series,
                    trend_document)
from .check import (ERROR, INFO, SEVERITIES, WARNING, Checker, CheckReport,
                    InvariantMonitor, Violation, check_trace,
                    stock_checkers)
from .events import (EVENT_TYPES, RADIO_ACTIVE, RADIO_IDLE, RADIO_TAIL,
                     ChunkDownloaded, ChunkRequested,
                     CwndRestarted, DeadlineArmed, DeadlineDisarmed,
                     DeadlineExtended, DeadlineMissed, FleetCheckpointSaved,
                     FleetCompleted, FleetSessionCaptured,
                     FleetShardCompleted, FleetStarted,
                     FleetWorkerHeartbeat, HttpRequestSent,
                     HttpResponseReceived, MpDashArmed, MpDashSkipped,
                     PacketSent, PathSampled, PathStateRequested,
                     PlaybackEnded, PlaybackStarted, QualitySwitched,
                     RadioStateChange, SchedulerActivated, SessionClosed,
                     StallEnd, StallStart, SubflowReconnected,
                     SubflowStateChange, SweepCompleted, SweepRunFailed,
                     SweepRunFinished, SweepRunStarted, SweepRunSummarized,
                     SweepStarted, TraceEvent, TransferCompleted,
                     TransferStarted, event_from_dict, event_to_dict)
from .ledger import (ENTRY_KINDS, LEDGER_SCHEMA, LedgerEntry, LedgerLoad,
                     RunLedger, bench_entry, environment_fingerprint,
                     fleet_entry, registry_digest, session_entry,
                     sweep_entry)
from .live import FleetDashboard, SweepDashboard
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      PathSampler, SessionMetricsCollector, Timeseries,
                      collector_from_trace, exponential_buckets,
                      linear_buckets, metric_from_dict, registry_from_trace)
from .profile import ProfiledBus, Profiler
from .recorder import (REASON_ORDER, RecorderConfig, ShardRecorder,
                       find_manifests, load_manifest, rank_anomalies,
                       render_anomaly_reports, replay_anomaly,
                       save_manifest, triage_table)
from .report import (bench_report_html, fleet_report_html,
                     history_report_html, session_report_html,
                     sweep_report_html, triage_report_html, write_report)
from .spans import (Span, SpanBuilder, dump_chrome_trace, render_span_tree,
                    spans_from_trace, to_chrome_trace, transfer_chunk_map)
from .trace_export import (Trace, TraceMeta, TraceRecorder,
                           analyzer_from_trace, dump_jsonl, dumps_jsonl,
                           gzip_bytes, load_jsonl, loads_jsonl,
                           metrics_from_trace, replay)
from .why import (Attribution, TraceDiff, attribute_anomaly,
                  attributions_from_trace, diff_traces,
                  fold_attributions, render_attributions,
                  summarize_attributions)

__all__ = [
    "ENTRY_KINDS", "ERROR", "EVENT_TYPES", "INFO", "LEDGER_SCHEMA",
    "RADIO_ACTIVE", "RADIO_IDLE",
    "RADIO_TAIL", "SEVERITIES", "WARNING",
    "Attribution", "BenchReport", "BenchResult", "CheckReport", "Checker",
    "ChunkDownloaded", "ChunkRequested", "Counter", "CwndRestarted",
    "DeadlineArmed", "DeadlineDisarmed", "DeadlineExtended",
    "DeadlineMissed", "DriftFinding", "EventBus", "FleetCheckpointSaved",
    "FleetCompleted",
    "FleetDashboard", "FleetSessionCaptured", "FleetShardCompleted",
    "FleetStarted", "FleetWorkerHeartbeat", "Gauge", "Histogram",
    "HttpRequestSent", "LedgerEntry", "LedgerLoad", "MetaMismatch",
    "HttpResponseReceived", "InvariantMonitor", "MetricsRegistry",
    "MpDashArmed", "MpDashSkipped", "PacketSent", "PathSampled",
    "PathSampler", "PathStateRequested", "PlaybackEnded",
    "PlaybackStarted", "ProfiledBus", "Profiler", "QualitySwitched",
    "REASON_ORDER", "RadioStateChange", "RecorderConfig", "RunLedger",
    "SchedulerActivated", "SessionClosed", "ShardRecorder",
    "SessionMetricsCollector", "Span", "SpanBuilder", "StallEnd",
    "StallStart", "SubflowReconnected", "SubflowStateChange",
    "SweepCompleted", "SweepDashboard", "SweepRunFailed",
    "SweepRunFinished", "SweepRunStarted", "SweepRunSummarized",
    "SweepStarted", "Timeseries", "Trace",
    "TraceDiff", "TraceEvent", "TraceMeta", "TraceRecorder",
    "TransferCompleted",
    "TransferStarted", "Violation", "analyzer_from_trace",
    "attribute_anomaly", "attributions_from_trace",
    "bench_entry", "bench_report_html", "check_trace",
    "collector_from_trace",
    "compare_meta", "compare_reports", "control_track", "detect_drift",
    "diff_traces", "drift_table", "dump_chrome_trace", "dump_jsonl",
    "dumps_jsonl", "environment_fingerprint",
    "event_from_dict", "event_to_dict", "exponential_buckets",
    "find_manifests", "fleet_entry", "fleet_report_html",
    "fold_attributions", "gate_ok", "gzip_bytes", "history_report_html",
    "linear_buckets", "load_jsonl", "load_manifest", "loads_jsonl",
    "metric_direction", "metric_from_dict", "metric_series",
    "metrics_from_trace", "rank_anomalies",
    "registry_digest", "registry_from_trace", "render_anomaly_reports",
    "render_attributions", "render_span_tree",
    "replay", "replay_anomaly", "run_bench",
    "run_scenario", "save_manifest", "session_entry",
    "session_report_html",
    "spans_from_trace", "stock_checkers", "summarize_attributions",
    "sweep_entry", "sweep_report_html",
    "to_chrome_trace", "transfer_chunk_map", "trend_document",
    "triage_report_html",
    "triage_table", "write_report",
]
