"""Pinned performance scenarios: the ROADMAP's speed target, with teeth.

Each scenario is a fixed, deterministic workload — a single long
session, a trace-driven mobility walk, a 16-run sweep — measured for
wall-clock, simulated-seconds-per-wall-second, bus events per second,
and peak RSS.  :func:`run_bench` writes the measurements as a
``BENCH_<label>.json`` report; :func:`compare_reports` diffs a current
report against a stored baseline and flags any metric that regressed
beyond a threshold, which is how CI keeps "as fast as the hardware
allows" from silently eroding.

Times are best-of-``repeat`` (the minimum is the least-noisy estimator
of the true cost on a shared machine).  Peak RSS is the *process*
high-water mark (``ru_maxrss``), so it is monotone across scenarios in
one invocation — comparable run-to-run in scenario order, and an upper
bound individually.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, IO, List, Mapping, Optional, Union

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

def _peak_rss_kb() -> Optional[int]:
    """Process peak RSS in KiB (``ru_maxrss`` is KiB on Linux)."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class BenchResult:
    """One scenario's measurements (times are best-of-``repeats``)."""

    scenario: str
    wall_clock: float
    sim_seconds: float
    sim_per_wall: float
    #: Bus events published by the measured run; None when the scenario
    #: spans several buses (the sweep scenario).
    events: Optional[int]
    events_per_sec: Optional[float]
    peak_rss_kb: Optional[int]
    repeats: int

    def to_dict(self) -> Dict[str, Any]:
        return {"scenario": self.scenario, "wall_clock": self.wall_clock,
                "sim_seconds": self.sim_seconds,
                "sim_per_wall": self.sim_per_wall, "events": self.events,
                "events_per_sec": self.events_per_sec,
                "peak_rss_kb": self.peak_rss_kb, "repeats": self.repeats}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchResult":
        return cls(scenario=payload["scenario"],
                   wall_clock=payload["wall_clock"],
                   sim_seconds=payload["sim_seconds"],
                   sim_per_wall=payload["sim_per_wall"],
                   events=payload.get("events"),
                   events_per_sec=payload.get("events_per_sec"),
                   peak_rss_kb=payload.get("peak_rss_kb"),
                   repeats=payload.get("repeats", 1))


@dataclass
class BenchReport:
    """Every scenario's result plus enough context to interpret it."""

    label: str
    results: List[BenchResult]
    meta: Dict[str, Any] = field(default_factory=dict)

    def result(self, scenario: str) -> Optional[BenchResult]:
        for result in self.results:
            if result.scenario == scenario:
                return result
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "meta": dict(self.meta),
                "results": [r.to_dict() for r in self.results]}

    def dump(self, path_or_file: Union[str, IO[str]]) -> None:
        if isinstance(path_or_file, str):
            with open(path_or_file, "w") as handle:
                self.dump(handle)
            return
        json.dump(self.to_dict(), path_or_file, indent=2, sort_keys=True)
        path_or_file.write("\n")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchReport":
        return cls(label=payload.get("label", ""),
                   results=[BenchResult.from_dict(r)
                            for r in payload.get("results", [])],
                   meta=dict(payload.get("meta", {})))

    @classmethod
    def load(cls, path_or_file: Union[str, IO[str]]) -> "BenchReport":
        if isinstance(path_or_file, str):
            with open(path_or_file) as handle:
                return cls.load(handle)
        return cls.from_dict(json.load(path_or_file))

    def render(self) -> str:
        lines = [f"bench {self.label or '(unlabeled)'}"]
        if self.meta:
            env = " ".join(f"{key}={self.meta[key]}"
                           for key in sorted(self.meta))
            lines.append(f"  env {env}")
        header = (f"  {'scenario':<10} {'wall s':>8} {'sim s':>8} "
                  f"{'sim/wall':>9} {'events':>8} {'ev/s':>10} "
                  f"{'rss KiB':>9}")
        lines.append(header)
        for result in self.results:
            events = "-" if result.events is None else str(result.events)
            rate = ("-" if result.events_per_sec is None
                    else f"{result.events_per_sec:.0f}")
            rss = ("-" if result.peak_rss_kb is None
                   else str(result.peak_rss_kb))
            lines.append(
                f"  {result.scenario:<10} {result.wall_clock:>8.3f} "
                f"{result.sim_seconds:>8.1f} {result.sim_per_wall:>9.1f} "
                f"{events:>8} {rate:>10} {rss:>9}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _bench_config(**overrides: Any):
    """The pinned benchmark session: MP-DASH rate mode near Figure 7's
    operating point."""
    # Imported lazily: repro.obs must stay importable before the
    # experiment layer (which itself subscribes to repro.obs) loads.
    from ..experiments.configs import SessionConfig

    defaults: Dict[str, Any] = dict(
        video="big_buck_bunny", abr="festive", mpdash=True,
        deadline_mode="rate", wifi_mbps=3.8, lte_mbps=3.0,
        video_duration=300.0)
    defaults.update(overrides)
    return SessionConfig(**defaults)


def _run_single() -> Dict[str, Any]:
    from ..experiments.runner import run_session

    result = run_session(_bench_config())
    return {"sim_seconds": result.session_duration,
            "events": result.connection.bus.published}


def _run_single_tick() -> Dict[str, Any]:
    """The ``single`` workload under the reference tick kernel.

    Same config as ``single`` apart from ``kernel="tick"``, so the
    report reads as a direct fast-vs-tick speedup on identical work —
    and CI exercising the default scenario list smoke-tests both
    kernels on every run.
    """
    from ..experiments.runner import run_session

    result = run_session(_bench_config(kernel="tick"))
    return {"sim_seconds": result.session_duration,
            "events": result.connection.bus.published}


def _run_mobility() -> Dict[str, Any]:
    from ..experiments.runner import run_session
    from ..workloads.mobility import MobilityScenario

    duration = 300.0
    scenario = MobilityScenario()
    result = run_session(_bench_config(
        video_duration=duration,
        wifi_trace=scenario.wifi_trace(duration + 100.0),
        lte_trace=scenario.lte_trace(duration + 100.0)))
    return {"sim_seconds": result.session_duration,
            "events": result.connection.bus.published}


def _run_sweep16() -> Dict[str, Any]:
    from ..experiments.sweep import expand_grid, run_sweep

    configs = expand_grid(_bench_config(video_duration=40.0),
                          {"wifi_mbps": [2.0, 4.0, 6.0, 8.0],
                           "lte_mbps": [2.0, 4.0, 6.0, 8.0]})
    result = run_sweep(configs, jobs=1)
    if not result.ok:
        raise RuntimeError(f"sweep16 benchmark had "
                           f"{len(result.failures)} failed runs")
    sim_seconds = sum(s.session_duration for s in result.summaries)
    return {"sim_seconds": sim_seconds, "events": None}


def _run_fleet() -> Dict[str, Any]:
    """A pinned 96-session fleet shard-merge workload.

    Small enough for CI, large enough that per-session state leaking
    into the parent (the thing the fleet design forbids) would move the
    peak-RSS measurement.
    """
    from ..experiments.fleet import FleetConfig, run_fleet

    result = run_fleet(FleetConfig(sessions=96, shard_size=16,
                                   video_duration=20.0, seed=2016),
                       jobs=1)
    if result.failures:
        raise RuntimeError(f"fleet benchmark had {result.failures} "
                           f"failed sessions")
    return {"sim_seconds": result.sim_seconds, "events": None}


def _run_fleet_rec() -> Dict[str, Any]:
    """The ``fleet`` workload with the flight recorder armed at default
    sampling, on an anomaly-free population.

    The pair (``fleet``, ``fleet_rec``) states the recorder's overhead
    contract: judging every session (offline invariant check, QoE
    proxy, reservoir) plus writing the few bottom-k artifacts must cost
    at most ~10% wall clock over the recorder-off run — asserted
    against this report in CI.
    """
    import tempfile

    from ..experiments.fleet import FleetConfig, run_fleet
    from .recorder import RecorderConfig

    with tempfile.TemporaryDirectory() as artifact_dir:
        result = run_fleet(
            FleetConfig(sessions=96, shard_size=16,
                        video_duration=20.0, seed=2016),
            jobs=1, recorder=RecorderConfig(artifact_dir=artifact_dir))
        if result.failures:
            raise RuntimeError(f"fleet_rec benchmark had "
                               f"{result.failures} failed sessions")
    return {"sim_seconds": result.sim_seconds, "events": None}


#: Scenario name -> callable returning {"sim_seconds": float,
#: "events": Optional[int]}.  Measured order is the listed order.
SCENARIOS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "single": _run_single,
    "single_tick": _run_single_tick,
    "mobility": _run_mobility,
    "sweep16": _run_sweep16,
    "fleet": _run_fleet,
    "fleet_rec": _run_fleet_rec,
}


def run_scenario(name: str, repeats: int = 1) -> BenchResult:
    """Measure one pinned scenario, best-of-``repeats``."""
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown benchmark scenario {name!r}; "
                         f"known: {', '.join(SCENARIOS)}") from None
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats!r}")
    best: Optional[float] = None
    outcome: Dict[str, Any] = {}
    for _ in range(repeats):
        started = perf_counter()
        outcome = runner()
        elapsed = perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    wall = max(best or 0.0, 1e-9)
    events = outcome.get("events")
    sim_seconds = float(outcome["sim_seconds"])
    return BenchResult(
        scenario=name, wall_clock=wall, sim_seconds=sim_seconds,
        sim_per_wall=sim_seconds / wall, events=events,
        events_per_sec=(events / wall if events is not None else None),
        peak_rss_kb=_peak_rss_kb(), repeats=repeats)


def run_bench(scenarios: Optional[List[str]] = None, repeats: int = 1,
              label: str = "local",
              progress: Optional[Callable[[str], None]] = None,
              ledger: Optional[str] = None) -> BenchReport:
    """Measure the requested scenarios (all of them by default).

    With ``ledger`` set, the finished report is also appended to the
    run ledger at that path (see :mod:`repro.obs.ledger`).
    """
    names = list(SCENARIOS) if scenarios is None else list(scenarios)
    results = []
    for name in names:
        if progress is not None:
            progress(f"bench {name} (x{repeats}) ...")
        results.append(run_scenario(name, repeats=repeats))
    meta = {"python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine()}
    report = BenchReport(label=label, results=results, meta=meta)
    if ledger is not None:
        from .ledger import RunLedger, bench_entry

        RunLedger(ledger).append(bench_entry(report))
    return report


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
#: metric field -> direction ("lower" = lower is better).
_METRICS = {"wall_clock": "lower", "peak_rss_kb": "lower",
            "sim_per_wall": "higher", "events_per_sec": "higher"}


@dataclass(frozen=True)
class MetaMismatch:
    """One environment field differing between two compared reports.

    Timings from different interpreters, platforms, or machines are not
    commensurable; a comparison across them can "regress" for reasons
    that have nothing to do with the code under test.
    """

    field: str
    current: Optional[str]
    baseline: Optional[str]

    def render(self) -> str:
        def show(value: Optional[str]) -> str:
            return value if value is not None else "(unrecorded)"

        return (f"environment mismatch: {self.field} is "
                f"{show(self.current)} here but {show(self.baseline)} "
                f"in the baseline")

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()


def compare_meta(current: BenchReport,
                 baseline: BenchReport) -> List[MetaMismatch]:
    """Environment fields differing between the two reports.

    Empty means the recorded environments agree (or neither recorded
    any).  ``repro bench --compare`` prints these as warnings — they
    never gate, but they explain a gating verdict's credibility.
    """
    mismatches: List[MetaMismatch] = []
    for name in sorted(set(current.meta) | set(baseline.meta)):
        mine = current.meta.get(name)
        theirs = baseline.meta.get(name)
        if mine != theirs:
            mismatches.append(MetaMismatch(
                field=name,
                current=None if mine is None else str(mine),
                baseline=None if theirs is None else str(theirs)))
    return mismatches


def compare_reports(current: BenchReport, baseline: BenchReport,
                    threshold: float = 0.25) -> List[str]:
    """Regression messages: empty means the current report is clean.

    A lower-is-better metric regresses when it exceeds the baseline by
    more than ``threshold`` (fraction); a higher-is-better metric when it
    falls short by more than ``threshold``.  Scenarios or metrics absent
    from either side are skipped — a baseline can't gate what it never
    measured.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0: {threshold!r}")
    regressions: List[str] = []
    for base in baseline.results:
        now = current.result(base.scenario)
        if now is None:
            continue
        for metric, direction in _METRICS.items():
            reference = getattr(base, metric)
            measured = getattr(now, metric)
            if reference is None or measured is None or reference <= 0:
                continue
            if direction == "lower":
                limit = reference * (1.0 + threshold)
                if measured > limit:
                    regressions.append(
                        f"{base.scenario}.{metric}: {measured:.3f} > "
                        f"{limit:.3f} (baseline {reference:.3f} "
                        f"+{threshold:.0%})")
            else:
                floor = reference * (1.0 - threshold)
                if measured < floor:
                    regressions.append(
                        f"{base.scenario}.{metric}: {measured:.3f} < "
                        f"{floor:.3f} (baseline {reference:.3f} "
                        f"-{threshold:.0%})")
    return regressions
