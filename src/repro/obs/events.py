"""The event taxonomy: one frozen dataclass per observable occurrence.

Events are immutable values ordered only by publication: the bus never
reorders, so a recorded stream is exactly the simulation's causal order.
Field values are restricted to JSON-representable types (numbers, strings,
bools, ``None``, and string-keyed dicts of numbers) so every event can be
exported to a JSONL trace and reloaded without loss —
:func:`event_to_dict` / :func:`event_from_dict` are exact inverses.

Layer map:

=============  ======================================================
kernel/net     :class:`CwndRestarted`
transport      :class:`PacketSent`, :class:`PathSampled`,
               :class:`TransferStarted`,
               :class:`TransferCompleted`, :class:`SubflowStateChange`,
               :class:`SubflowReconnected`, :class:`PathStateRequested`
MP-DASH core   :class:`DeadlineArmed`, :class:`DeadlineDisarmed`,
               :class:`DeadlineExtended`, :class:`SchedulerActivated`,
               :class:`DeadlineMissed`
HTTP           :class:`HttpRequestSent`, :class:`HttpResponseReceived`
DASH player    :class:`ChunkRequested`, :class:`MpDashArmed`,
               :class:`MpDashSkipped`, :class:`ChunkDownloaded`,
               :class:`QualitySwitched`, :class:`PlaybackStarted`,
               :class:`StallStart`, :class:`StallEnd`,
               :class:`PlaybackEnded`, :class:`SessionClosed`
energy         :class:`RadioStateChange`
=============  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base of every bus event: a simulated-clock timestamp."""

    time: float


# ----------------------------------------------------------------------
# Transport layer (repro.mptcp, repro.net)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PacketSent(TraceEvent):
    """``num_bytes`` delivered on ``path`` during one activity bin.

    The fluid transport model has no literal packets; its finest delivery
    record is the activity bin (see
    :class:`~repro.mptcp.activity.ActivityLog`), so the connection
    aggregates each path's per-tick deliveries and publishes one event per
    (path, bin) — per-tick events would be pure bus overhead that every
    subscriber immediately re-bins.  ``time`` is the bin's first delivery
    instant (strictly increasing per path).  An event is published when
    the path's next delivery lands in a later bin, and any open bins are
    flushed by :meth:`~repro.mptcp.connection.MptcpConnection.close` — so
    the stream as a whole is *not* time-sorted, only per-path.
    """

    path: str
    num_bytes: float
    conn: int = 0


@dataclass(frozen=True, slots=True)
class PathSampled(TraceEvent):
    """Periodic read-only snapshot of one subflow's transport state.

    Published by the metrics :class:`~repro.obs.metrics.PathSampler` (not
    by the transport itself) so cwnd/RTT/throughput timeseries exist
    without a per-tick event flood.  Sampling never mutates the subflow,
    so attaching a sampler cannot perturb simulation physics.
    """

    path: str
    cwnd: float
    rtt: float
    throughput: float
    conn: int = 0


@dataclass(frozen=True, slots=True)
class TransferStarted(TraceEvent):
    """A transfer's first response byte is about to flow."""

    transfer: int
    tag: str
    size: float
    conn: int = 0


@dataclass(frozen=True, slots=True)
class TransferCompleted(TraceEvent):
    """The transfer's last byte arrived."""

    transfer: int
    tag: str
    size: float
    duration: float
    conn: int = 0


@dataclass(frozen=True, slots=True)
class PathStateRequested(TraceEvent):
    """Client-side enable/disable decision entered the signaling channel."""

    path: str
    enabled: bool
    conn: int = 0


@dataclass(frozen=True, slots=True)
class SubflowStateChange(TraceEvent):
    """Server-side *effective* path state flipped (post signaling delay)."""

    path: str
    enabled: bool
    conn: int = 0


@dataclass(frozen=True, slots=True)
class SubflowReconnected(TraceEvent):
    """A torn-down subflow finished its re-establishment handshake."""

    path: str
    count: int
    conn: int = 0


@dataclass(frozen=True, slots=True)
class CwndRestarted(TraceEvent):
    """RFC 2861 congestion-window validation collapsed the window."""

    path: str
    conn: int = 0


# ----------------------------------------------------------------------
# MP-DASH control plane (repro.core)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class DeadlineArmed(TraceEvent):
    """MP_DASH_ENABLE: the next ``size`` bytes carry a deadline window."""

    size: float
    window: float


@dataclass(frozen=True, slots=True)
class DeadlineDisarmed(TraceEvent):
    """MP_DASH_DISABLE: scheduler explicitly deactivated."""


@dataclass(frozen=True, slots=True)
class DeadlineExtended(TraceEvent):
    """The §5 deadline-extension relaxed a chunk's window above Φ."""

    base: float
    extended: float
    buffer_level: float


@dataclass(frozen=True, slots=True)
class SchedulerActivated(TraceEvent):
    """An armed deadline bound to a concrete transfer."""

    transfer: int
    size: float
    window: float


@dataclass(frozen=True, slots=True)
class DeadlineMissed(TraceEvent):
    """The deadline passed mid-transfer; every path re-enabled."""

    transfer: int


# ----------------------------------------------------------------------
# HTTP (repro.dash.http)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class HttpRequestSent(TraceEvent):
    url: str
    #: Client-scoped request id correlating request with response (spans
    #: join on it).  Defaults to 0 so pre-PR-3 traces still load.
    request: int = 0


@dataclass(frozen=True, slots=True)
class HttpResponseReceived(TraceEvent):
    url: str
    status: int
    content_length: int
    request: int = 0


# ----------------------------------------------------------------------
# DASH player (repro.dash)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ChunkRequested(TraceEvent):
    index: int
    level: int
    buffer_level: float


@dataclass(frozen=True, slots=True)
class MpDashArmed(TraceEvent):
    """The adapter armed the scheduler for this chunk."""

    index: int
    deadline: float


@dataclass(frozen=True, slots=True)
class MpDashSkipped(TraceEvent):
    """The adapter left MP-DASH off for this chunk (Ω guard / startup)."""

    index: int


@dataclass(frozen=True, slots=True)
class ChunkDownloaded(TraceEvent):
    """A chunk landed; carries everything the per-chunk record needs."""

    index: int
    level: int
    size: float
    duration: float
    requested_at: float
    throughput: float
    bytes_per_path: Mapping[str, float]
    deadline: Optional[float]
    buffer_at_request: float


@dataclass(frozen=True, slots=True)
class QualitySwitched(TraceEvent):
    from_level: int
    to_level: int


@dataclass(frozen=True, slots=True)
class PlaybackStarted(TraceEvent):
    """Startup threshold reached; the playout clock starts draining."""


@dataclass(frozen=True, slots=True)
class StallStart(TraceEvent):
    """Playback buffer ran dry mid-session."""


@dataclass(frozen=True, slots=True)
class StallEnd(TraceEvent):
    """Playback resumed after a rebuffering interval."""


@dataclass(frozen=True, slots=True)
class PlaybackEnded(TraceEvent):
    """The last chunk played out."""


@dataclass(frozen=True, slots=True)
class SessionClosed(TraceEvent):
    """Terminal event: the session's simulation stopped at this time."""


# ----------------------------------------------------------------------
# Experiment sweeps (repro.experiments.sweep)
# ----------------------------------------------------------------------
# Sweep events describe the *harness*, not a simulation: ``time`` is
# wall-clock seconds since the sweep started, and ``key`` the run's
# deterministic config hash (see :func:`repro.experiments.sweep.config_key`).
@dataclass(frozen=True, slots=True)
class SweepStarted(TraceEvent):
    """A sweep of ``total`` configs began on ``jobs`` workers."""

    total: int
    jobs: int


@dataclass(frozen=True, slots=True)
class SweepRunStarted(TraceEvent):
    """One run (or retry ``attempt`` of it) was handed to a worker."""

    key: str
    index: int
    attempt: int


@dataclass(frozen=True, slots=True)
class SweepRunFinished(TraceEvent):
    """One run produced a summary, freshly (``elapsed`` seconds of worker
    time) or straight from the on-disk cache."""

    key: str
    index: int
    elapsed: float
    cached: bool


@dataclass(frozen=True, slots=True)
class SweepRunSummarized(TraceEvent):
    """Headline QoE figures of one finished session run, published right
    after its :class:`SweepRunFinished` so live consumers (the terminal
    dashboard) can show rolling aggregates without touching the result
    objects.  Only published for full session runs — download-only
    summaries carry no QoE."""

    key: str
    index: int
    finished: bool
    mean_bitrate: float
    stall_count: int
    cellular_bytes: float
    radio_energy: float
    violations: int


@dataclass(frozen=True, slots=True)
class SweepRunFailed(TraceEvent):
    """One run exhausted its retries; ``kind`` is ``error`` or ``timeout``."""

    key: str
    index: int
    kind: str
    error: str
    attempts: int


@dataclass(frozen=True, slots=True)
class SweepCompleted(TraceEvent):
    """The sweep drained; every config is accounted for."""

    total: int
    succeeded: int
    failed: int
    cache_hits: int


# ----------------------------------------------------------------------
# Fleet campaigns (repro.experiments.fleet)
# ----------------------------------------------------------------------
# Fleet events, like sweep events, describe the harness: ``time`` is
# wall-clock seconds since the campaign (re)started.
@dataclass(frozen=True, slots=True)
class FleetStarted(TraceEvent):
    """A fleet campaign of ``sessions`` sessions in ``shards`` shards
    began on ``jobs`` workers."""

    sessions: int
    shards: int
    jobs: int


@dataclass(frozen=True, slots=True)
class FleetShardCompleted(TraceEvent):
    """One shard's folded registry was merged into the population."""

    shard: int
    sessions: int
    failures: int
    elapsed: float


@dataclass(frozen=True, slots=True)
class FleetCheckpointSaved(TraceEvent):
    """The population state through ``shards_done`` shards was atomically
    written to ``path``."""

    shards_done: int
    path: str


@dataclass(frozen=True, slots=True)
class FleetCompleted(TraceEvent):
    """The campaign drained (or hit its ``stop_after`` bound)."""

    sessions: int
    failures: int
    shards: int


@dataclass(frozen=True, slots=True)
class FleetWorkerHeartbeat(TraceEvent):
    """One worker's health snapshot, shipped with each shard result.

    Workers cannot publish onto the parent's bus, so their telemetry
    rides the existing result channel — the shard payload — and the
    parent re-publishes it here at commit time.  ``worker`` is the
    worker process id; ``peak_rss_kb`` is that process's high-water mark
    (0 where ``resource`` is unavailable); ``captured`` counts traces
    the flight recorder kept in this shard."""

    worker: int
    shard: int
    sessions: int
    failures: int
    sim_seconds: float
    elapsed: float
    peak_rss_kb: int
    last_index: int
    captured: int


@dataclass(frozen=True, slots=True)
class FleetSessionCaptured(TraceEvent):
    """The flight recorder kept one session's full trace.

    ``artifact`` is the path relative to the recorder's artifact root
    (empty for trace-less failure records); ``score`` is the reason-
    specific badness used by triage ranking."""

    session: int
    shard: int
    reason: str
    score: float
    artifact: str


# ----------------------------------------------------------------------
# Energy (repro.energy)
# ----------------------------------------------------------------------
#: Radio power states for :class:`RadioStateChange`.
RADIO_ACTIVE = "active"
RADIO_TAIL = "tail"
RADIO_IDLE = "idle"


@dataclass(frozen=True, slots=True)
class RadioStateChange(TraceEvent):
    """One interface's radio moved between idle/active/tail."""

    path: str
    state: str


#: Name → class registry used by the JSONL loader.
EVENT_TYPES: Dict[str, type] = {
    cls.__name__: cls for cls in (
        PacketSent, PathSampled, TransferStarted, TransferCompleted,
        PathStateRequested,
        SubflowStateChange, SubflowReconnected, CwndRestarted, DeadlineArmed,
        DeadlineDisarmed, DeadlineExtended, SchedulerActivated,
        DeadlineMissed, HttpRequestSent, HttpResponseReceived,
        ChunkRequested, MpDashArmed, MpDashSkipped, ChunkDownloaded,
        QualitySwitched, PlaybackStarted, StallStart, StallEnd,
        PlaybackEnded, SessionClosed, RadioStateChange, SweepStarted,
        SweepRunStarted, SweepRunFinished, SweepRunSummarized,
        SweepRunFailed, SweepCompleted, FleetStarted, FleetShardCompleted,
        FleetCheckpointSaved, FleetCompleted, FleetWorkerHeartbeat,
        FleetSessionCaptured,
    )
}


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """Flat JSON-ready dict with a ``type`` discriminator."""
    record: Dict[str, Any] = {"type": type(event).__name__}
    for spec in fields(event):
        value = getattr(event, spec.name)
        if isinstance(value, Mapping):
            value = dict(value)
        record[spec.name] = value
    return record


def event_from_dict(record: Mapping[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`."""
    payload = dict(record)
    name = payload.pop("type", None)
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown trace event type {name!r}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ValueError(f"malformed {name} record: {exc}") from None


def fast_ctor(cls: type) -> Any:
    """Positional-only constructor for a frozen slots event class.

    Frozen dataclasses route every ``__init__`` field assignment through
    ``object.__setattr__``, roughly tripling construction cost.  That is
    irrelevant everywhere except the per-subflow-per-tick transport events
    (thousands per simulated session), where it dominates the bus's
    overhead.  Assigning through the slot descriptors directly skips the
    frozen guard during construction only — instances are as immutable as
    ones built normally.  All fields are required, in declaration order.
    """
    names = [spec.name for spec in fields(cls)]
    namespace: Dict[str, Any] = {
        f"_set_{name}": getattr(cls, name).__set__ for name in names}
    namespace["_new"] = cls.__new__
    namespace["_cls"] = cls
    body = "".join(f"    _set_{name}(self, {name})\n" for name in names)
    source = (f"def ctor({', '.join(names)}):\n"
              f"    self = _new(_cls)\n{body}    return self\n")
    exec(source, namespace)
    return namespace["ctor"]


#: Fast constructor for the hottest event on the bus (one per subflow per
#: simulator tick while a transfer is active).
new_packet_sent = fast_ctor(PacketSent)
