"""Dependency-free SVG chart rendering for the HTML reports.

The paper's analysis tool is fundamentally visual — Figure 8 encodes each
chunk's quality, download window, and cellular share in one bar; Figures
1, 6 and 11 are per-path throughput timelines.  This module renders those
shapes (and the derived-view ones: histograms, CDFs, span lanes) as plain
SVG strings using nothing outside the standard library, so a report is a
deterministic pure function of its inputs:

* every coordinate goes through one fixed-precision formatter,
* colors are CSS *classes* (``s1``–``s8``, ``radio-active``, …) resolved
  by the embedding document's stylesheet — the same SVG renders in light
  and dark mode without re-generation,
* no timestamps, ids, or randomness ever enter the output.

Chart forms: :func:`line_chart` (line/step timeseries with optional
shaded windows), :func:`stacked_area`, :func:`bar_chart`,
:func:`histogram_chart`, :func:`cdf_chart`, :func:`strip_chart` (the
Figure-8 categorical strip), and :func:`flame_lanes` (span/radio-state
lanes).  :func:`legend_html` renders the matching HTML legend row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

#: Categorical CSS classes in fixed assignment order (never cycled: a
#: ninth series folds into the eighth slot rather than inventing a hue).
SERIES_CLASSES = ("s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8")

#: Chart margins (left, top, right, bottom) around the plot area.
_MARGINS = (52, 10, 14, 30)


def fmt(value: float) -> str:
    """Canonical coordinate text: two decimals, trailing zeros trimmed.

    Every number in an SVG goes through here, so byte-determinism reduces
    to IEEE-754 arithmetic determinism (which CPython guarantees).
    """
    text = f"{value:.2f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return "0" if text == "-0" else text


def tick_label(value: float) -> str:
    """Tick text: %g keeps clean numbers clean (0.3, 250, 1e+06)."""
    return f"{value:g}"


def series_class(index: int) -> str:
    """The categorical class for series ``index`` (clamped, not cycled)."""
    return SERIES_CLASSES[min(index, len(SERIES_CLASSES) - 1)]


def nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Clean tick positions covering ``[lo, hi]`` (1/2/2.5/5 stepping)."""
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return []
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(count, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = magnitude * 10.0
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        if span / (multiple * magnitude) <= count:
            step = multiple * magnitude
            break
    first = math.ceil(lo / step)
    ticks = []
    index = first
    while index * step <= hi + 1e-9 * span:
        value = index * step
        ticks.append(0.0 if abs(value) < step * 1e-9 else value)
        index += 1
    return ticks


@dataclass(frozen=True)
class Series:
    """One named (x, y) series."""

    label: str
    points: Sequence[Tuple[float, float]]


@dataclass(frozen=True)
class StripCell:
    """One cell of a categorical strip (one Figure-8 chunk bar).

    ``height`` and ``fill`` are fractions of the strip height: ``height``
    is the bar itself (quality level) and ``fill`` the darker overlay
    drawn from the baseline up (the paper's "black fill" cellular share).
    """

    x0: float
    x1: float
    height: float
    fill: float
    css: str
    label: str = ""


@dataclass(frozen=True)
class LaneSegment:
    """One interval on a flame lane."""

    start: float
    end: float
    css: str
    label: str = ""


@dataclass
class _Frame:
    """Pixel scales plus the shared axis/grid chrome."""

    width: int
    height: int
    x0: float
    x1: float
    y0: float
    y1: float
    margins: Tuple[int, int, int, int] = _MARGINS

    @property
    def left(self) -> float:
        return float(self.margins[0])

    @property
    def top(self) -> float:
        return float(self.margins[1])

    @property
    def right(self) -> float:
        return float(self.width - self.margins[2])

    @property
    def bottom(self) -> float:
        return float(self.height - self.margins[3])

    def sx(self, x: float) -> float:
        span = self.x1 - self.x0
        if span <= 0:
            return self.left
        return self.left + (x - self.x0) / span * (self.right - self.left)

    def sy(self, y: float) -> float:
        span = self.y1 - self.y0
        if span <= 0:
            return self.bottom
        return self.bottom - (y - self.y0) / span * (self.bottom - self.top)

    def chrome(self, x_label: str = "", y_label: str = "",
               x_ticks: Optional[Sequence[Tuple[float, str]]] = None,
               y_ticks: Optional[Sequence[Tuple[float, str]]] = None
               ) -> List[str]:
        """Gridlines, axis line, tick labels, and axis titles."""
        parts: List[str] = []
        if y_ticks is None:
            y_ticks = [(t, tick_label(t))
                       for t in nice_ticks(self.y0, self.y1, 4)]
        if x_ticks is None:
            x_ticks = [(t, tick_label(t))
                       for t in nice_ticks(self.x0, self.x1, 6)]
        for value, text in y_ticks:
            y = fmt(self.sy(value))
            parts.append(f'<line class="grid" x1="{fmt(self.left)}" '
                         f'y1="{y}" x2="{fmt(self.right)}" y2="{y}"/>')
            parts.append(f'<text class="tick" text-anchor="end" '
                         f'x="{fmt(self.left - 6)}" y="{y}" dy="3">'
                         f'{escape(text)}</text>')
        for value, text in x_ticks:
            x = fmt(self.sx(value))
            parts.append(f'<text class="tick" text-anchor="middle" '
                         f'x="{x}" y="{fmt(self.bottom + 14)}">'
                         f'{escape(text)}</text>')
        parts.append(f'<line class="axis" x1="{fmt(self.left)}" '
                     f'y1="{fmt(self.bottom)}" x2="{fmt(self.right)}" '
                     f'y2="{fmt(self.bottom)}"/>')
        if x_label:
            parts.append(f'<text class="axis-label" text-anchor="middle" '
                         f'x="{fmt((self.left + self.right) / 2)}" '
                         f'y="{fmt(self.height - 4)}">'
                         f'{escape(x_label)}</text>')
        if y_label:
            x = 12
            y = fmt((self.top + self.bottom) / 2)
            parts.append(f'<text class="axis-label" text-anchor="middle" '
                         f'x="{x}" y="{y}" '
                         f'transform="rotate(-90 {x} {y})">'
                         f'{escape(y_label)}</text>')
        return parts


def _svg(width: int, height: int, parts: Sequence[str],
         title: str = "") -> str:
    body = "".join(parts)
    caption = f"<title>{escape(title)}</title>" if title else ""
    return (f'<svg class="chart" role="img" viewBox="0 0 {width} {height}" '
            f'width="{width}" height="{height}" '
            f'preserveAspectRatio="xMinYMin meet">{caption}{body}</svg>')


def _empty(width: int, height: int, note: str) -> str:
    return _svg(width, height, [
        f'<text class="tick" text-anchor="middle" '
        f'x="{fmt(width / 2)}" y="{fmt(height / 2)}">'
        f'{escape(note)}</text>'], title=note)


def _data_range(series: Sequence[Series]) -> Tuple[float, float, float, float]:
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    return min(xs), max(xs), min(ys), max(ys)


def line_chart(series: Sequence[Series], *, width: int = 720,
               height: int = 220, x_label: str = "", y_label: str = "",
               step: bool = False, markers: bool = False,
               y_min: Optional[float] = 0.0, y_max: Optional[float] = None,
               shades: Sequence[Tuple[float, float, str]] = (),
               refs: Sequence[float] = (),
               x_ticks: Optional[Sequence[Tuple[float, str]]] = None,
               title: str = "") -> str:
    """Multi-series line (or step) timeseries.

    ``shades`` draws labeled background windows (stall shading) behind
    the data; ``refs`` draws vertical reference lines at fixed x values.
    ``y_min=None`` fits the axis to the data instead of anchoring at 0.
    """
    series = [s for s in series if len(s.points)]
    if not series:
        return _empty(width, height, "no samples")
    x0, x1, data_y0, data_y1 = _data_range(series)
    y0 = data_y0 if y_min is None else min(y_min, data_y0)
    y1 = data_y1 if y_max is None else y_max
    if y1 <= y0:
        y1 = y0 + 1.0
    frame = _Frame(width, height, x0, x1, y0, y1)
    parts: List[str] = []
    for start, end, css in shades:
        sx0 = frame.sx(max(start, x0))
        sx1 = frame.sx(min(end, x1))
        if sx1 <= sx0:
            continue
        parts.append(f'<rect class="{escape(css)}" x="{fmt(sx0)}" '
                     f'y="{fmt(frame.top)}" width="{fmt(sx1 - sx0)}" '
                     f'height="{fmt(frame.bottom - frame.top)}"/>')
    parts.extend(frame.chrome(x_label, y_label, x_ticks=x_ticks))
    for ref in refs:
        if x0 <= ref <= x1:
            x = fmt(frame.sx(ref))
            parts.append(f'<line class="refline" x1="{x}" '
                         f'y1="{fmt(frame.top)}" x2="{x}" '
                         f'y2="{fmt(frame.bottom)}"/>')
    for index, one in enumerate(series):
        css = series_class(index)
        coords: List[str] = []
        previous_y: Optional[float] = None
        for x, y in one.points:
            px, py = fmt(frame.sx(x)), fmt(frame.sy(y))
            if step and previous_y is not None:
                coords.append(f"{px},{previous_y}")
            coords.append(f"{px},{py}")
            previous_y = py
        parts.append(f'<polyline class="line {css}" '
                     f'points="{" ".join(coords)}">'
                     f'<title>{escape(one.label)}</title></polyline>')
        if markers:
            for x, y in one.points:
                parts.append(
                    f'<circle class="dot {css}" cx="{fmt(frame.sx(x))}" '
                    f'cy="{fmt(frame.sy(y))}" r="4">'
                    f'<title>{escape(one.label)}: '
                    f'{tick_label(y)} @ {tick_label(x)}</title></circle>')
    return _svg(width, height, parts, title=title)


def stacked_area(series: Sequence[Series], *, width: int = 720,
                 height: int = 220, x_label: str = "", y_label: str = "",
                 title: str = "") -> str:
    """Stacked area chart of aligned series (shared x grid).

    Series are stacked in the given order, bottom first; x values are
    aligned by position (extra points beyond the shortest series are
    dropped).
    """
    series = [s for s in series if len(s.points)]
    if not series:
        return _empty(width, height, "no samples")
    length = min(len(s.points) for s in series)
    xs = [x for x, _ in series[0].points[:length]]
    stacks: List[List[float]] = []
    running = [0.0] * length
    for one in series:
        running = [running[i] + one.points[i][1] for i in range(length)]
        stacks.append(list(running))
    frame = _Frame(width, height, min(xs), max(xs), 0.0,
                   max(max(running), 1e-9))
    parts = frame.chrome(x_label, y_label)
    for index in range(len(series) - 1, -1, -1):
        top = stacks[index]
        base = stacks[index - 1] if index > 0 else [0.0] * length
        coords = [f"{fmt(frame.sx(xs[i]))},{fmt(frame.sy(top[i]))}"
                  for i in range(length)]
        coords.extend(f"{fmt(frame.sx(xs[i]))},{fmt(frame.sy(base[i]))}"
                      for i in range(length - 1, -1, -1))
        parts.append(f'<polygon class="area {series_class(index)}" '
                     f'points="{" ".join(coords)}">'
                     f'<title>{escape(series[index].label)}</title>'
                     f'</polygon>')
    return _svg(width, height, parts, title=title)


def bar_chart(categories: Sequence[str], values: Sequence[float], *,
              width: int = 360, height: int = 200, y_label: str = "",
              per_category_css: bool = True, value_format: str = "{:g}",
              title: str = "") -> str:
    """One bar per category, value labeled at the cap.

    With ``per_category_css`` the bars take the categorical classes in
    order (identity = the category, consistent across sibling charts);
    otherwise every bar uses the first series class.
    """
    if not categories or len(categories) != len(values):
        return _empty(width, height, "no data")
    top = max(max(values), 1e-9)
    frame = _Frame(width, height, 0.0, float(len(categories)), 0.0,
                   top * 1.15)
    x_ticks: List[Tuple[float, str]] = []
    parts: List[str] = []
    slot = (frame.right - frame.left) / len(categories)
    bar_width = min(24.0, slot * 0.6)
    for index, (name, value) in enumerate(zip(categories, values)):
        center = frame.left + slot * (index + 0.5)
        x_ticks.append((index + 0.5, name))
        css = series_class(index) if per_category_css else series_class(0)
        y = frame.sy(value)
        bar_height = max(frame.bottom - y, 0.0)
        radius = min(4.0, bar_height)
        parts.append(
            f'<path class="fill {css}" d="M{fmt(center - bar_width / 2)} '
            f'{fmt(frame.bottom)} V{fmt(y + radius)} '
            f'Q{fmt(center - bar_width / 2)} {fmt(y)} '
            f'{fmt(center - bar_width / 2 + radius)} {fmt(y)} '
            f'H{fmt(center + bar_width / 2 - radius)} '
            f'Q{fmt(center + bar_width / 2)} {fmt(y)} '
            f'{fmt(center + bar_width / 2)} {fmt(y + radius)} '
            f'V{fmt(frame.bottom)} Z">'
            f'<title>{escape(name)}: {value_format.format(value)}</title>'
            f'</path>')
        parts.append(f'<text class="value" text-anchor="middle" '
                     f'x="{fmt(center)}" y="{fmt(y - 5)}">'
                     f'{escape(value_format.format(value))}</text>')
    parts = frame.chrome("", y_label, x_ticks=x_ticks) + parts
    return _svg(width, height, parts, title=title)


def _occupied(bounds: Sequence[float],
              counts: Sequence[int]) -> Tuple[int, int]:
    """Index range [first, last] of non-empty buckets (inclusive)."""
    nonzero = [i for i, c in enumerate(counts) if c]
    return (nonzero[0], nonzero[-1]) if nonzero else (0, 0)


def _bucket_edges(bounds: Sequence[float], index: int) -> Tuple[float, float]:
    """(lower, upper) edge of bucket ``index`` (overflow gets one width)."""
    first_width = (bounds[1] - bounds[0]) if len(bounds) > 1 else 1.0
    if index == 0:
        return bounds[0] - first_width, bounds[0]
    if index >= len(bounds):
        last_width = (bounds[-1] - bounds[-2]) if len(bounds) > 1 else 1.0
        return bounds[-1], bounds[-1] + last_width
    return bounds[index - 1], bounds[index]


def histogram_chart(payload: Mapping, *, width: int = 360,
                    height: int = 200, x_label: str = "",
                    y_label: str = "count", css: str = "s1",
                    refs: Sequence[float] = (), title: str = "") -> str:
    """Bars of a serialized :class:`~repro.obs.metrics.Histogram` dict."""
    bounds = list(payload.get("bounds", []))
    counts = list(payload.get("counts", []))
    if not bounds or not counts or not sum(counts):
        return _empty(width, height, "no observations")
    first, last = _occupied(bounds, counts)
    lo = _bucket_edges(bounds, first)[0]
    hi = _bucket_edges(bounds, last)[1]
    frame = _Frame(width, height, lo, hi, 0.0, max(max(counts), 1) * 1.1)
    parts = frame.chrome(x_label, y_label)
    for ref in refs:
        if lo <= ref <= hi:
            x = fmt(frame.sx(ref))
            parts.append(f'<line class="refline" x1="{x}" '
                         f'y1="{fmt(frame.top)}" x2="{x}" '
                         f'y2="{fmt(frame.bottom)}"/>')
    for index in range(first, last + 1):
        count = counts[index]
        if not count:
            continue
        left_edge, right_edge = _bucket_edges(bounds, index)
        x = frame.sx(left_edge)
        bar_width = max(frame.sx(right_edge) - x - 1.0, 0.5)
        y = frame.sy(count)
        parts.append(
            f'<rect class="fill {escape(css)}" x="{fmt(x)}" y="{fmt(y)}" '
            f'width="{fmt(bar_width)}" '
            f'height="{fmt(frame.bottom - y)}">'
            f'<title>[{tick_label(left_edge)}, {tick_label(right_edge)}'
            f'{"+" if index >= len(bounds) else ""}): {count}</title>'
            f'</rect>')
    return _svg(width, height, parts, title=title)


def cdf_chart(payload: Mapping, *, width: int = 360, height: int = 200,
              x_label: str = "", css: str = "s1",
              refs: Sequence[float] = (), title: str = "") -> str:
    """Empirical CDF of a serialized histogram (step line, 0 → 1)."""
    bounds = list(payload.get("bounds", []))
    counts = list(payload.get("counts", []))
    total = sum(counts)
    if not bounds or not total:
        return _empty(width, height, "no observations")
    first, last = _occupied(bounds, counts)
    lo = _bucket_edges(bounds, first)[0]
    hi = _bucket_edges(bounds, last)[1]
    frame = _Frame(width, height, lo, hi, 0.0, 1.0)
    y_ticks = [(0.0, "0"), (0.25, "0.25"), (0.5, "0.5"),
               (0.75, "0.75"), (1.0, "1")]
    parts = frame.chrome(x_label, "fraction", y_ticks=y_ticks)
    for ref in refs:
        if lo <= ref <= hi:
            x = fmt(frame.sx(ref))
            parts.append(f'<line class="refline" x1="{x}" '
                         f'y1="{fmt(frame.top)}" x2="{x}" '
                         f'y2="{fmt(frame.bottom)}"/>')
    cumulative = 0
    coords = [f"{fmt(frame.sx(lo))},{fmt(frame.sy(0.0))}"]
    for index in range(first, last + 1):
        cumulative += counts[index]
        upper = _bucket_edges(bounds, index)[1]
        fraction = cumulative / total
        previous = coords[-1].split(",")[1]
        coords.append(f"{fmt(frame.sx(upper))},{previous}")
        coords.append(f"{fmt(frame.sx(upper))},{fmt(frame.sy(fraction))}")
    parts.append(f'<polyline class="line {escape(css)}" '
                 f'points="{" ".join(coords)}"/>')
    return _svg(width, height, parts, title=title)


def strip_chart(cells: Sequence[StripCell], *, width: int = 720,
                height: int = 150, x_label: str = "time (s)",
                title: str = "") -> str:
    """The Figure-8 categorical strip: one bar per cell.

    Bar height encodes the cell's ``height`` fraction (quality level),
    the horizontal span its download window, and the darker overlay from
    the baseline its ``fill`` fraction (cellular byte share).
    """
    cells = [c for c in cells if c.x1 > c.x0]
    if not cells:
        return _empty(width, height, "no chunks")
    x0 = min(c.x0 for c in cells)
    x1 = max(c.x1 for c in cells)
    frame = _Frame(width, height, x0, x1, 0.0, 1.0)
    parts = frame.chrome(x_label, "", y_ticks=[])
    usable = frame.bottom - frame.top
    for cell in cells:
        left = frame.sx(cell.x0)
        bar_width = max(frame.sx(cell.x1) - left - 1.0, 1.0)
        bar_height = max(cell.height, 0.04) * usable
        top = frame.bottom - bar_height
        tooltip = (f"<title>{escape(cell.label)}</title>"
                   if cell.label else "")
        parts.append(f'<g>{tooltip}'
                     f'<rect class="fill {escape(cell.css)}" '
                     f'x="{fmt(left)}" y="{fmt(top)}" '
                     f'width="{fmt(bar_width)}" '
                     f'height="{fmt(bar_height)}"/>')
        overlay = bar_height * min(max(cell.fill, 0.0), 1.0)
        if overlay > 0:
            parts.append(f'<rect class="overlay" x="{fmt(left)}" '
                         f'y="{fmt(frame.bottom - overlay)}" '
                         f'width="{fmt(bar_width)}" '
                         f'height="{fmt(overlay)}"/>')
        parts.append("</g>")
    return _svg(width, height, parts, title=title)


def flame_lanes(lanes: Sequence[Tuple[str, Sequence[LaneSegment]]], *,
                width: int = 720, lane_height: int = 18,
                x_label: str = "time (s)", x_min: Optional[float] = None,
                x_max: Optional[float] = None, title: str = "") -> str:
    """Horizontal interval lanes (span trees, radio states).

    ``lanes`` is an ordered list of (label, segments); every segment is
    drawn as a rounded bar on its lane, classed by ``segment.css``.
    """
    lanes = list(lanes)
    segments = [seg for _, segs in lanes for seg in segs]
    if not lanes or not segments:
        return _empty(width, 60, "no intervals")
    x0 = min(seg.start for seg in segments) if x_min is None else x_min
    x1 = max(seg.end for seg in segments) if x_max is None else x_max
    gap = 6
    height = _MARGINS[1] + _MARGINS[3] + len(lanes) * (lane_height + gap)
    frame = _Frame(width, height, x0, x1, 0.0, 1.0)
    parts = frame.chrome(x_label, "", y_ticks=[])
    for row, (label, segs) in enumerate(lanes):
        top = frame.top + row * (lane_height + gap)
        parts.append(f'<text class="tick" text-anchor="end" '
                     f'x="{fmt(frame.left - 6)}" '
                     f'y="{fmt(top + lane_height / 2 + 3)}">'
                     f'{escape(label)}</text>')
        for seg in segs:
            left = frame.sx(max(seg.start, x0))
            right = frame.sx(min(seg.end, x1))
            seg_width = max(right - left, 1.0)
            tooltip = (f"<title>{escape(seg.label)}</title>"
                       if seg.label else "")
            parts.append(f'<rect class="fill {escape(seg.css)}" rx="2" '
                         f'x="{fmt(left)}" y="{fmt(top)}" '
                         f'width="{fmt(seg_width)}" '
                         f'height="{lane_height}">{tooltip}</rect>')
    return _svg(width, height, parts, title=title)


def legend_html(entries: Sequence[Tuple[str, str]]) -> str:
    """The HTML legend row matching a chart's CSS classes."""
    keys = "".join(
        f'<span class="key"><i class="sw {escape(css)}"></i>'
        f'{escape(text)}</span>' for css, text in entries)
    return f'<div class="legend">{keys}</div>'
